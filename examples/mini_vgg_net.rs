//! A miniature VGG-style network through the [`wino_conv::Network`]
//! runner: five same-padded 3×3 layers with ReLU, one shared auxiliary
//! buffer (§4.4), comparing training-mode and memoised-kernel ("FX")
//! inference end to end.
//!
//! ```text
//! cargo run --release --example mini_vgg_net
//! ```

use wino_conv::{ConvOptions, LayerSpec, Network};
use wino_sched::SerialExecutor;
use wino_tensor::{BlockedImage, BlockedKernels, SimpleKernels};
use wino_workloads::time_best;

fn main() {
    // conv3-32, conv3-32, conv3-64, conv3-64, conv3-64 — a VGG-A flavoured
    // stack (pooling omitted; it is not a convolution concern).
    let specs = vec![
        LayerSpec::same(32, 2, 3, 4),
        LayerSpec::same(32, 2, 3, 4),
        LayerSpec::same(64, 2, 3, 4),
        LayerSpec::same(64, 2, 3, 4),
        LayerSpec::same(64, 2, 3, 4),
    ];
    let mut net = Network::new(1, 16, &[56, 56], &specs, ConvOptions::default(), 1)
        .expect("network plans");
    println!(
        "{} layers, shared auxiliary buffer {:.1} MiB",
        net.num_layers(),
        net.scratch_bytes() as f64 / (1 << 20) as f64
    );

    // Deterministic weights per layer.
    let kernels: Vec<BlockedKernels> = net
        .layers()
        .iter()
        .enumerate()
        .map(|(i, l)| {
            let s = l.plan.shape();
            let k = SimpleKernels::from_fn(s.out_channels, s.in_channels, &[3, 3], |co, ci, xy| {
                ((co * 5 + ci * 3 + xy[0] + xy[1] * 2 + i * 7) % 17) as f32 * 0.02 - 0.15
            });
            BlockedKernels::from_simple(&k).unwrap()
        })
        .collect();

    let img = wino_workloads::uniform_input(net.layers()[0].plan.shape(), 77);
    let input = BlockedImage::from_simple(&img).unwrap();

    let train = net.forward(&input, &kernels, &SerialExecutor).unwrap();
    let t_train = time_best(3, || {
        net.forward(&input, &kernels, &SerialExecutor).unwrap();
    });

    let tks = net.prepare_kernels(&kernels, &SerialExecutor).unwrap();
    let fx = net.forward_fx(&input, &tks, &SerialExecutor).unwrap();
    let t_fx = time_best(3, || {
        net.forward_fx(&input, &tks, &SerialExecutor).unwrap();
    });

    assert_eq!(train.as_slice(), fx.as_slice(), "FX must be bit-identical");
    println!("final activation: {:?} × {} channels", fx.dims, fx.channels);
    println!("training-mode forward: {:.2} ms", t_train.best_ms);
    println!(
        "inference (FX) forward: {:.2} ms  ({:.1}% saved by memoising kernel transforms)",
        t_fx.best_ms,
        (1.0 - t_fx.best_ms / t_train.best_ms) * 100.0
    );
}
