//! Arbitrary kernel sizes — the headline generality claim. Runs the
//! Budden et al. sample network (3 layers, 32 channels, the "unusual"
//! 4×4 kernels from §5.1) with `F(3×3, 4×4)` Winograd and reports
//! throughput in MVox/s, plus a 1-D and a 5×5 example for good measure.
//!
//! ```text
//! cargo run --release --example custom_kernel_4x4
//! ```

use wino_baseline::direct_f64;
use wino_conv::{convolve_simple, ConvOptions, Scratch, WinogradLayer};
use wino_sched::SerialExecutor;
use wino_tensor::{BlockedImage, BlockedKernels, SimpleImage, SimpleKernels};
use wino_workloads::{budden_sample_net, mvox_per_sec, time_best, uniform_input, xavier_kernels};

fn main() {
    println!("== Budden sample network: 3 layers of 4x4 kernels, 32 channels ==");
    for layer in budden_sample_net(128) {
        let plan = WinogradLayer::new(layer.shape.clone(), &[3, 3], ConvOptions::default())
            .expect("F(3x3, 4x4) plans fine");
        let input = BlockedImage::from_simple(&uniform_input(&layer.shape, 5)).unwrap();
        let kernels =
            BlockedKernels::from_simple(&xavier_kernels(&layer.shape, 6)).unwrap();
        let mut out = plan.new_output().unwrap();
        let mut scratch = Scratch::new(&plan, 1);
        let t = time_best(3, || {
            plan.forward(&input, &kernels, &mut out, &mut scratch, &SerialExecutor)
                .expect("example forward failed");
        });
        println!(
            "  layer {}: tile {:?} (alpha 6), {:.2} ms -> {:.1} MVox/s",
            layer.label,
            plan.grid.tile_dims,
            t.best_ms,
            mvox_per_sec(&layer.shape, t.best_ms)
        );
    }

    println!("== 5x5 kernels with F(2x2, 5x5) ==");
    let img = SimpleImage::from_fn(1, 16, &[20, 20], |_, c, xy| {
        ((c + xy[0] * 2 + xy[1]) % 9) as f32 * 0.1
    });
    let ker = SimpleKernels::from_fn(16, 16, &[5, 5], |co, ci, xy| {
        ((co + ci + xy[0] + xy[1]) % 7) as f32 * 0.05 - 0.15
    });
    let out = convolve_simple(&img, &ker, &[2, 2], &[2, 2]).unwrap();
    let want = direct_f64(&img, &ker, &[2, 2]);
    let (max_err, _) = wino_baseline::element_errors(&out, &want);
    println!("  5x5 'same' conv: out {:?}, max err {max_err:.2e}", out.dims);
    assert!(max_err < 1e-3);

    println!("== 1-D signals with F(8, 3) ==");
    let sig = SimpleImage::from_fn(4, 16, &[257], |b, c, x| {
        ((b * 3 + c + x[0]) % 13) as f32 * 0.07 - 0.4
    });
    let taps = SimpleKernels::from_fn(16, 16, &[3], |co, ci, x| {
        ((co * 2 + ci + x[0]) % 5) as f32 * 0.2 - 0.4
    });
    let out = convolve_simple(&sig, &taps, &[1], &[8]).unwrap();
    let want = direct_f64(&sig, &taps, &[1]);
    let (max_err, _) = wino_baseline::element_errors(&out, &want);
    println!("  1-D conv over 257 samples: out {:?}, max err {max_err:.2e}", out.dims);
    assert!(max_err < 1e-2);
    println!("OK — kernels of any size, signals of any rank.");
}
