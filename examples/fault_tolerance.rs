//! Graceful degradation in action: a network whose middle layer cannot be
//! planned as Winograd (tile far larger than the image) still runs under
//! the default [`FallbackPolicy`], with the downgrade visible in the
//! per-layer [`ExecutionReport`]s — while the strict policy turns the same
//! situation into a typed error.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use wino_conv::{Activation, ConvOptions, FallbackPolicy, LayerSpec, Network};
use wino_sched::StaticExecutor;
use wino_tensor::{BlockedImage, BlockedKernels, SimpleImage, SimpleKernels};

fn main() {
    let spec = |m: &[usize]| LayerSpec {
        out_channels: 16,
        kernel: vec![3, 3],
        padding: vec![1, 1],
        m: m.to_vec(),
        activation: Activation::Relu,
    };
    // Layer 1 is fine; layer 2 asks for F(40×40) on a 12×12 image — no
    // Winograd plan exists for it.
    let specs = [spec(&[2, 2]), spec(&[40, 40]), spec(&[2, 2])];

    // Strict planning fails with a typed, printable error.
    match Network::new(1, 16, &[12, 12], &specs, ConvOptions::default(), 4) {
        Ok(_) => println!("strict planning unexpectedly succeeded"),
        Err(e) => println!("strict policy: planning failed: {e}"),
    }

    // The permissive (default) policy absorbs the failure into im2col.
    let mut net = Network::with_policy(
        1,
        16,
        &[12, 12],
        &specs,
        ConvOptions::default(),
        4,
        &FallbackPolicy::default(),
    )
    .expect("permissive planning absorbs the bad layer");

    let img = SimpleImage::from_fn(1, 16, &[12, 12], |_, c, xy| {
        ((c + xy[0] * 3 + xy[1]) % 19) as f32 * 0.05 - 0.4
    });
    let input = BlockedImage::from_simple(&img).unwrap();
    let kernels: Vec<BlockedKernels> = (0..specs.len())
        .map(|i| {
            let k = SimpleKernels::from_fn(16, 16, &[3, 3], |co, ci, xy| {
                ((co * 3 + ci * 7 + xy[0] + xy[1] + i) % 13) as f32 * 0.06 - 0.3
            });
            BlockedKernels::from_simple(&k).unwrap()
        })
        .collect();

    let exec = StaticExecutor::new(4);
    let (out, reports) = net
        .run_net(&input, &kernels, &exec, &FallbackPolicy::default())
        .expect("degraded execution still succeeds");

    println!("\nper-layer execution reports:");
    for r in &reports {
        match &r.fallback {
            Some(reason) => println!("  layer {}: {:?} (fallback: {reason})", r.layer, r.backend),
            None => println!("  layer {}: {:?}", r.layer, r.backend),
        }
    }
    println!("\nfinal activation: {:?} × {} channels", out.dims, out.channels);
    let sum: f32 = out.as_slice().iter().sum();
    println!("checksum: {sum:.4}");
}
