//! Empirical blocking-parameter selection with a persistent wisdom file —
//! the FFTW-style workflow of §4.3.2.
//!
//! ```text
//! cargo run --release --example autotune_wisdom
//! ```

use wino_conv::{ConvOptions, Scratch, WinogradLayer};
use wino_gemm::{autotune_with_wisdom, default_shape, TuneConfig, Wisdom};
use wino_sched::SerialExecutor;
use wino_tensor::{BlockedImage, BlockedKernels, ConvShape};
use wino_workloads::{time_best, uniform_input, xavier_kernels};

fn main() {
    let shape = ConvShape::new(2, 64, 64, &[28, 28], &[3, 3], &[1, 1]).unwrap();
    let m = [4usize, 4];

    // The stage-2 problem this layer produces: T matrices of (N·B) × C.
    let probe = WinogradLayer::new(shape.clone(), &m, ConvOptions::default()).unwrap();
    let (t, rows, c, cp) = (probe.t_vol(), probe.rows(), 64, 64);
    println!("stage-2 problem: {t} matrices of {rows}x{c} · {c}x{cp}");

    let model = default_shape(c, cp, rows);
    println!(
        "Eq. 11 model default: n_blk={} C_blk={} C'_blk={} (ratio {:.1} flops/float)",
        model.n_blk,
        model.c_blk,
        model.cp_blk,
        model.compute_to_memory_ratio(true)
    );

    // Empirical search, cached in a wisdom file.
    let wisdom_path = std::env::temp_dir().join("wino-example-wisdom.txt");
    let wisdom = Wisdom::load(&wisdom_path).unwrap_or_else(|_| Wisdom::new());
    let cfg = TuneConfig { reps: 2, max_candidates: 8 };
    let t0 = std::time::Instant::now();
    let tuned = autotune_with_wisdom(&wisdom, t, rows, c, cp, &SerialExecutor, cfg);
    println!(
        "autotuned in {:.2} s (cached for next time in {}): n_blk={} C_blk={} C'_blk={}",
        t0.elapsed().as_secs_f64(),
        wisdom_path.display(),
        tuned.n_blk,
        tuned.c_blk,
        tuned.cp_blk
    );
    wisdom.save(&wisdom_path).expect("save wisdom");

    // Use the tuned blocking in a real convolution plan and compare.
    let input = BlockedImage::from_simple(&uniform_input(&shape, 3)).unwrap();
    let kernels = BlockedKernels::from_simple(&xavier_kernels(&shape, 4)).unwrap();
    for (name, block) in [("model default", model), ("autotuned", tuned)] {
        let opts = ConvOptions { block: Some(block), ..Default::default() };
        let plan = WinogradLayer::new(shape.clone(), &m, opts).unwrap();
        let mut scratch = Scratch::new(&plan, 1);
        let mut out = plan.new_output().unwrap();
        let timing = time_best(3, || {
            plan.forward(&input, &kernels, &mut out, &mut scratch, &SerialExecutor)
                .expect("example forward failed");
        });
        println!("forward with {name:>14} blocking: {:.3} ms", timing.best_ms);
    }
}
