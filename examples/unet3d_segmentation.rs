//! A miniature 3-D U-Net encoder: two chained volumetric convolution
//! layers (batch 1, valid padding — the 3D U-Net 1.2/2.2 pattern from
//! Table 2, scaled down), demonstrating the property §4.1 highlights:
//! **the blocked output of one layer is directly the blocked input of the
//! next — no data reshuffling between layers.**
//!
//! ```text
//! cargo run --release --example unet3d_segmentation
//! ```

use wino_conv::{ConvOptions, Scratch, WinogradLayer};
use wino_sched::SerialExecutor;
use wino_tensor::{BlockedImage, BlockedKernels, ConvShape};
use wino_workloads::{uniform_input, xavier_kernels};

fn relu_inplace(img: &mut BlockedImage) {
    for v in img.as_mut_slice() {
        *v = v.max(0.0);
    }
}

fn main() {
    // Layer 1: 16 → 32 channels on a 30×34×34 volume, 3³ kernels.
    let shape1 = ConvShape::new(1, 16, 32, &[30, 34, 34], &[3, 3, 3], &[0, 0, 0]).unwrap();
    // Layer 2 consumes layer 1's output volume: 28×32×32, 32 → 32.
    let shape2 = ConvShape::new(1, 32, 32, &shape1.out_dims(), &[3, 3, 3], &[0, 0, 0]).unwrap();

    let m = [2usize, 4, 4]; // F(2×4×4, 3×3×3): T = 4·6·6 = 144
    let plan1 = WinogradLayer::new(shape1.clone(), &m, ConvOptions::default()).unwrap();
    let plan2 = WinogradLayer::new(shape2.clone(), &m, ConvOptions::default()).unwrap();

    let input = BlockedImage::from_simple(&uniform_input(&shape1, 11)).unwrap();
    let k1 = BlockedKernels::from_simple(&xavier_kernels(&shape1, 12)).unwrap();
    let k2 = BlockedKernels::from_simple(&xavier_kernels(&shape2, 13)).unwrap();

    // One scratch per plan (each layer shape needs its own buffer sizes;
    // a production runner would keep one per distinct shape).
    let mut s1 = Scratch::new(&plan1, 1);
    let mut s2 = Scratch::new(&plan2, 1);
    println!(
        "auxiliary memory: layer1 {:.1} MiB, layer2 {:.1} MiB (reused every forward pass)",
        s1.bytes() as f64 / (1 << 20) as f64,
        s2.bytes() as f64 / (1 << 20) as f64
    );

    let mut a1 = plan1.new_output().unwrap();
    let mut a2 = plan2.new_output().unwrap();

    let t0 = std::time::Instant::now();
    plan1.forward(&input, &k1, &mut a1, &mut s1, &SerialExecutor).unwrap();
    relu_inplace(&mut a1);
    // a1 feeds plan2 directly — same blocked layout, zero conversion.
    plan2.forward(&a1, &k2, &mut a2, &mut s2, &SerialExecutor).unwrap();
    relu_inplace(&mut a2);
    let ms = t0.elapsed().as_secs_f64() * 1e3;

    let total_gflop =
        (shape1.direct_flops() + shape2.direct_flops()) as f64 / 1e9;
    println!(
        "2-layer 3-D encoder: {:?} -> {:?} -> {:?} in {ms:.1} ms ({:.1} effective GFLOP/s)",
        shape1.image_dims,
        shape1.out_dims(),
        shape2.out_dims(),
        total_gflop / (ms * 1e-3)
    );

    // Sanity: activations are finite and not all zero.
    let nonzero = a2.as_slice().iter().filter(|v| **v > 0.0).count();
    assert!(a2.as_slice().iter().all(|v| v.is_finite()));
    assert!(nonzero > 0);
    println!("final activation volume: {:?}, {nonzero} positive activations — OK", a2.dims);
}
