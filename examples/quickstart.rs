//! Quickstart: convolve a small 2-D image batch with `F(4×4, 3×3)` and
//! check the result against a plain direct convolution.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use wino_baseline::direct_f64;
use wino_conv::convolve_simple;
use wino_tensor::{SimpleImage, SimpleKernels};

fn main() {
    // A batch of 2 images, 32 channels, 24×24 pixels.
    let img = SimpleImage::from_fn(2, 32, &[24, 24], |b, c, xy| {
        ((b + c + xy[0] * xy[1]) % 17) as f32 * 0.05 - 0.4
    });
    // 32 → 64 channels, 3×3 kernels.
    let ker = SimpleKernels::from_fn(64, 32, &[3, 3], |co, ci, xy| {
        ((co * 3 + ci * 7 + xy[0] + xy[1]) % 11) as f32 * 0.1 - 0.5
    });

    // Winograd F(4×4, 3×3): 36 multiplications per tile where the direct
    // method needs 144.
    let t0 = std::time::Instant::now();
    let out = convolve_simple(&img, &ker, &[1, 1], &[4, 4]).expect("valid layer");
    let wino_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = std::time::Instant::now();
    let reference = direct_f64(&img, &ker, &[1, 1]);
    let ref_ms = t0.elapsed().as_secs_f64() * 1e3;

    let (max_err, avg_err) = wino_baseline::element_errors(&out, &reference);
    println!("output shape: {:?} ({} channels, batch {})", out.dims, out.channels, out.batch);
    println!("winograd (plan + run): {wino_ms:.2} ms; scalar f64 reference: {ref_ms:.2} ms");
    println!("max |error| vs extended-precision reference: {max_err:.2e} (avg {avg_err:.2e})");
    assert!(max_err < 1e-4, "Winograd result should match the reference closely");
    println!("OK");
}
