//! Benchmark one VGG layer (scaled) across implementations and `F(m, r)`
//! choices — a miniature of the paper's Fig. 5 workflow, including the
//! inference-only "FX" mode with memoised kernel transforms.
//!
//! ```text
//! cargo run --release --example vgg_layer [-- --threads N]
//! ```

use wino_baseline::{direct_conv, im2col_conv};
use wino_conv::{ConvOptions, Scratch, WinogradLayer};
use wino_sched::{Executor, SerialExecutor, StaticExecutor};
use wino_tensor::BlockedImage;
use wino_workloads::{effective_gflops, scaled_catalog, time_best, uniform_input, xavier_kernels};

fn main() {
    let threads: usize = std::env::args()
        .skip_while(|a| a != "--threads")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let exec: Box<dyn Executor> = if threads <= 1 {
        Box::new(SerialExecutor)
    } else {
        Box::new(StaticExecutor::new(threads))
    };

    let layer = scaled_catalog().into_iter().find(|l| l.id() == "VGG 3.2").unwrap();
    println!(
        "layer {}: B={} C={} C'={} image {:?} (scaled variant of Table 2)",
        layer.id(),
        layer.shape.batch,
        layer.shape.in_channels,
        layer.shape.out_channels,
        layer.shape.image_dims
    );
    let input = BlockedImage::from_simple(&uniform_input(&layer.shape, 1)).unwrap();
    let kernels =
        wino_tensor::BlockedKernels::from_simple(&xavier_kernels(&layer.shape, 2)).unwrap();

    println!("{:<24} {:>10} {:>14}", "implementation", "best ms", "eff. GFLOP/s");

    // Direct baseline.
    let mut out = BlockedImage::zeros(
        layer.shape.batch,
        layer.shape.out_channels,
        &layer.shape.out_dims(),
    )
    .unwrap();
    let t = time_best(3, || {
        direct_conv(&input, &kernels, &layer.shape.padding, &mut out, exec.as_ref())
            .expect("direct_conv failed");
    });
    println!("{:<24} {:>10.3} {:>14.1}", "direct", t.best_ms, effective_gflops(&layer.shape, t.best_ms));

    let t = time_best(3, || {
        im2col_conv(&input, &kernels, &layer.shape.padding, &mut out, exec.as_ref())
            .expect("im2col_conv failed");
    });
    println!("{:<24} {:>10.3} {:>14.1}", "im2col-gemm", t.best_ms, effective_gflops(&layer.shape, t.best_ms));

    // Winograd across tile sizes, plus FX.
    for m in [[2usize, 2], [4, 4], [6, 6]] {
        let plan = WinogradLayer::new(layer.shape.clone(), &m, ConvOptions::default()).unwrap();
        let mut scratch = Scratch::new(&plan, exec.threads());
        let mut wout = plan.new_output().unwrap();
        let t = time_best(3, || {
            plan.forward(&input, &kernels, &mut wout, &mut scratch, exec.as_ref())
                .expect("forward failed");
        });
        println!(
            "{:<24} {:>10.3} {:>14.1}",
            format!("winograd F({}x{},3x3)", m[0], m[1]),
            t.best_ms,
            effective_gflops(&layer.shape, t.best_ms)
        );
        let tk = plan.prepare_kernels(&kernels, &mut scratch, exec.as_ref()).unwrap();
        let t = time_best(3, || {
            plan.forward_fx(&input, &tk, &mut wout, &mut scratch, exec.as_ref())
                .expect("forward_fx failed");
        });
        println!(
            "{:<24} {:>10.3} {:>14.1}",
            format!("winograd-fx F({}x{})", m[0], m[1]),
            t.best_ms,
            effective_gflops(&layer.shape, t.best_ms)
        );
    }
}
