//! FFT-based convolution — the stand-in for cuDNN's FFT algorithm in the
//! 3-D rows of Fig. 5.
//!
//! Classic frequency-domain convolution: zero-pad each (padded) input
//! channel to power-of-two dimensions `L_d ≥ in_d + 2·pad_d + r_d − 1`,
//! transform, multiply by the kernel spectra, accumulate over input
//! channels (Eqn. 7's summation moved into the frequency domain), inverse
//! transform once per output channel and crop. Correlation semantics are
//! obtained by reversing the kernel along every axis and reading the
//! output at offset `r_d − 1`.
//!
//! Kernel spectra are recomputed on the fly (memoising them for a
//! `C × C'` layer at 3-D sizes would need gigabytes); this matches a
//! straightforward FFT convolution and does not change the asymptotic
//! story the paper tells — for small kernels, FFT loses to Winograd on
//! both operation count and constant factors.

// Index-based loops are the idiom throughout: most walk several
// arrays with derived offsets, where iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]
use wino_sched::Executor;
use wino_tensor::{SimpleImage, SimpleKernels};

use crate::complex::C32;
use crate::fft1d::next_pow2;
use crate::ndfft::FftNd;

fn decompose(mut flat: usize, dims: &[usize], out: &mut [usize]) {
    for i in (0..dims.len()).rev() {
        out[i] = flat % dims[i];
        flat /= dims[i];
    }
}

/// FFT convolution with zero padding, stride 1 (correlation semantics,
/// like every other convolution in this workspace). Fails only if the
/// parallel substrate fails (worker panic, watchdog timeout).
pub fn fft_conv(
    input: &SimpleImage,
    kernels: &SimpleKernels,
    padding: &[usize],
    exec: &dyn Executor,
) -> Result<SimpleImage, wino_sched::PoolError> {
    let rank = input.dims.len();
    assert_eq!(kernels.in_channels, input.channels);
    assert_eq!(kernels.dims.len(), rank);
    assert_eq!(padding.len(), rank);

    let out_dims: Vec<usize> = (0..rank)
        .map(|d| input.dims[d] + 2 * padding[d] - kernels.dims[d] + 1)
        .collect();
    // FFT extents: linear convolution of (in + 2·pad) with r.
    let fft_dims: Vec<usize> = (0..rank)
        .map(|d| next_pow2(input.dims[d] + 2 * padding[d] + kernels.dims[d] - 1))
        .collect();
    let plan = FftNd::new(&fft_dims);
    let vol = plan.volume();
    let out_vol: usize = out_dims.iter().product();
    let ker_vol: usize = kernels.dims.iter().product();

    let mut out = SimpleImage::zeros(input.batch, kernels.out_channels, &out_dims);

    // FFT-space strides.
    let mut fstride = vec![1usize; rank];
    for d in (0..rank - 1).rev() {
        fstride[d] = fstride[d + 1] * fft_dims[d + 1];
    }

    for b in 0..input.batch {
        // Input spectra for this batch item: the padded channel goes at
        // offset `padding` so index 0 of FFT space is the first padded
        // sample.
        let spectra: Vec<Vec<C32>> = (0..input.channels)
            .map(|c| {
                let mut buf = vec![C32::ZERO; vol];
                let src = input.channel(b, c);
                let in_vol: usize = input.dims.iter().product();
                let mut ic = vec![0usize; rank];
                for i in 0..in_vol {
                    decompose(i, &input.dims, &mut ic);
                    let mut o = 0usize;
                    for d in 0..rank {
                        o += (ic[d] + padding[d]) * fstride[d];
                    }
                    buf[o] = C32::new(src[i], 0.0);
                }
                plan.forward(&mut buf);
                buf
            })
            .collect();

        // One task per output channel.
        let out_rows = std::sync::Mutex::new(vec![Vec::<f32>::new(); kernels.out_channels]);
        exec.run_grid(&[kernels.out_channels], &|_slot, co| {
            let mut acc = vec![C32::ZERO; vol];
            let mut kbuf = vec![C32::ZERO; vol];
            let mut kc = vec![0usize; rank];
            for c in 0..input.channels {
                // Reversed kernel at the origin.
                kbuf.iter_mut().for_each(|x| *x = C32::ZERO);
                let ker = kernels.kernel(co, c);
                for k in 0..ker_vol {
                    decompose(k, &kernels.dims, &mut kc);
                    let mut o = 0usize;
                    for d in 0..rank {
                        o += (kernels.dims[d] - 1 - kc[d]) * fstride[d];
                    }
                    kbuf[o] = C32::new(ker[k], 0.0);
                }
                plan.forward(&mut kbuf);
                for (a, (&x, &y)) in acc.iter_mut().zip(spectra[c].iter().zip(kbuf.iter())) {
                    *a += x * y;
                }
            }
            plan.inverse(&mut acc);
            // Crop: output o at FFT index o + r - 1 per dimension.
            let mut row = vec![0.0f32; out_vol];
            let mut oc = vec![0usize; rank];
            for (i, r) in row.iter_mut().enumerate() {
                decompose(i, &out_dims, &mut oc);
                let mut off = 0usize;
                for d in 0..rank {
                    off += (oc[d] + kernels.dims[d] - 1) * fstride[d];
                }
                *r = acc[off].re;
            }
            out_rows.lock().unwrap()[co] = row;
        })?;

        let rows = out_rows.into_inner().unwrap();
        for (co, row) in rows.into_iter().enumerate() {
            let dst = (b * kernels.out_channels + co) * out_vol;
            out.data[dst..dst + out_vol].copy_from_slice(&row);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_sched::SerialExecutor;

    /// Scalar direct correlation oracle (f64).
    fn direct(img: &SimpleImage, ker: &SimpleKernels, padding: &[usize]) -> SimpleImage {
        let rank = img.dims.len();
        let out_dims: Vec<usize> = (0..rank)
            .map(|d| img.dims[d] + 2 * padding[d] - ker.dims[d] + 1)
            .collect();
        let mut out = SimpleImage::zeros(img.batch, ker.out_channels, &out_dims);
        let out_vol: usize = out_dims.iter().product();
        let ker_vol: usize = ker.dims.iter().product();
        for b in 0..img.batch {
            for co in 0..ker.out_channels {
                for o in 0..out_vol {
                    let ocrd = wino_tensor::unflatten(o, &out_dims);
                    let mut acc = 0.0f64;
                    for ci in 0..img.channels {
                        for k in 0..ker_vol {
                            let kcrd = wino_tensor::unflatten(k, &ker.dims);
                            let coords: Vec<isize> = (0..rank)
                                .map(|d| (ocrd[d] + kcrd[d]) as isize - padding[d] as isize)
                                .collect();
                            acc += img.get_padded(b, ci, &coords) as f64
                                * ker.get(co, ci, &kcrd) as f64;
                        }
                    }
                    out.data[(b * ker.out_channels + co) * out_vol + o] = acc as f32;
                }
            }
        }
        out
    }

    fn check(batch: usize, c: usize, cp: usize, dims: &[usize], kd: &[usize], pad: &[usize]) {
        let img = SimpleImage::from_fn(batch, c, dims, |b, ch, xy| {
            ((b * 13 + ch * 5 + xy.iter().sum::<usize>()) % 9) as f32 * 0.25 - 1.0
        });
        let ker = SimpleKernels::from_fn(cp, c, kd, |co, ci, xy| {
            ((co * 3 + ci * 7 + xy.iter().sum::<usize>()) % 5) as f32 * 0.5 - 1.0
        });
        let got = fft_conv(&img, &ker, pad, &SerialExecutor).unwrap();
        let want = direct(&img, &ker, pad);
        assert_eq!(got.dims, want.dims);
        for i in 0..got.data.len() {
            assert!(
                (got.data[i] - want.data[i]).abs() <= 2e-3 * want.data[i].abs().max(1.0),
                "elem {i}: {} vs {}",
                got.data[i],
                want.data[i]
            );
        }
    }

    #[test]
    fn matches_direct_2d() {
        check(1, 2, 3, &[6, 6], &[3, 3], &[1, 1]);
        check(2, 1, 1, &[9, 7], &[3, 3], &[0, 0]);
    }

    #[test]
    fn matches_direct_3d() {
        check(1, 2, 2, &[4, 5, 5], &[3, 3, 3], &[1, 1, 1]);
    }

    #[test]
    fn matches_direct_1d_and_odd_kernels() {
        check(1, 1, 1, &[17], &[5], &[2]);
        check(1, 2, 2, &[8, 8], &[2, 4], &[0, 0]);
    }

    #[test]
    fn parallel_executor_matches() {
        let img = SimpleImage::from_fn(1, 4, &[8, 8], |_, c, xy| (c + xy[0] + xy[1]) as f32 * 0.1);
        let ker = SimpleKernels::from_fn(4, 4, &[3, 3], |co, ci, _| (co * 4 + ci) as f32 * 0.05);
        let a = fft_conv(&img, &ker, &[1, 1], &SerialExecutor).unwrap();
        let pool = wino_sched::StaticExecutor::new(3);
        let b = fft_conv(&img, &ker, &[1, 1], &pool).unwrap();
        assert_eq!(a.data, b.data);
    }
}
