//! Minimal single-precision complex arithmetic for the FFT substrate.

use std::ops::{Add, AddAssign, Mul, Sub};

/// A complex number in `f32`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct C32 {
    pub re: f32,
    pub im: f32,
}

impl C32 {
    pub const ZERO: C32 = C32 { re: 0.0, im: 0.0 };
    pub const ONE: C32 = C32 { re: 1.0, im: 0.0 };

    #[inline]
    pub fn new(re: f32, im: f32) -> C32 {
        C32 { re, im }
    }

    /// `e^{iθ}`.
    #[inline]
    pub fn cis(theta: f32) -> C32 {
        C32 { re: theta.cos(), im: theta.sin() }
    }

    #[inline]
    pub fn conj(self) -> C32 {
        C32 { re: self.re, im: -self.im }
    }

    #[inline]
    pub fn scale(self, s: f32) -> C32 {
        C32 { re: self.re * s, im: self.im * s }
    }

    #[inline]
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }
}

impl Add for C32 {
    type Output = C32;
    #[inline]
    fn add(self, o: C32) -> C32 {
        C32 { re: self.re + o.re, im: self.im + o.im }
    }
}

impl AddAssign for C32 {
    #[inline]
    fn add_assign(&mut self, o: C32) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for C32 {
    type Output = C32;
    #[inline]
    fn sub(self, o: C32) -> C32 {
        C32 { re: self.re - o.re, im: self.im - o.im }
    }
}

impl Mul for C32 {
    type Output = C32;
    #[inline]
    fn mul(self, o: C32) -> C32 {
        C32 {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = C32::new(1.0, 2.0);
        let b = C32::new(3.0, -1.0);
        assert_eq!(a + b, C32::new(4.0, 1.0));
        assert_eq!(a - b, C32::new(-2.0, 3.0));
        // (1+2i)(3-i) = 3 - i + 6i - 2i² = 5 + 5i
        assert_eq!(a * b, C32::new(5.0, 5.0));
        assert_eq!(a.conj(), C32::new(1.0, -2.0));
        assert_eq!(a.scale(2.0), C32::new(2.0, 4.0));
        assert_eq!(a.norm_sqr(), 5.0);
    }

    #[test]
    fn cis_unit_circle() {
        let z = C32::cis(std::f32::consts::FRAC_PI_2);
        assert!((z.re).abs() < 1e-6);
        assert!((z.im - 1.0).abs() < 1e-6);
    }
}
