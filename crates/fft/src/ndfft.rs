//! N-dimensional FFT: the 1-D plan applied along every axis of a
//! row-major complex array.

use crate::complex::C32;
use crate::fft1d::Fft1d;

/// A planned N-D FFT over power-of-two dimensions.
#[derive(Clone, Debug)]
pub struct FftNd {
    dims: Vec<usize>,
    plans: Vec<Fft1d>,
}

impl FftNd {
    pub fn new(dims: &[usize]) -> FftNd {
        FftNd { dims: dims.to_vec(), plans: dims.iter().map(|&d| Fft1d::new(d)).collect() }
    }

    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    pub fn volume(&self) -> usize {
        self.dims.iter().product()
    }

    fn transform(&self, data: &mut [C32], inverse: bool) {
        assert_eq!(data.len(), self.volume());
        let n = self.dims.len();
        let mut line = vec![C32::ZERO; *self.dims.iter().max().unwrap_or(&1)];
        for d in 0..n {
            let len = self.dims[d];
            let stride: usize = self.dims[d + 1..].iter().product();
            let outer: usize = self.dims[..d].iter().product();
            for o in 0..outer {
                for i in 0..stride {
                    let base = o * len * stride + i;
                    for k in 0..len {
                        line[k] = data[base + k * stride];
                    }
                    if inverse {
                        self.plans[d].inverse(&mut line[..len]);
                    } else {
                        self.plans[d].forward(&mut line[..len]);
                    }
                    for k in 0..len {
                        data[base + k * stride] = line[k];
                    }
                }
            }
        }
    }

    /// In-place forward N-D DFT.
    pub fn forward(&self, data: &mut [C32]) {
        self.transform(data, false);
    }

    /// In-place inverse N-D DFT (normalised).
    pub fn inverse(&self, data: &mut [C32]) {
        self.transform(data, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_2d() {
        let plan = FftNd::new(&[8, 16]);
        let x: Vec<C32> =
            (0..128).map(|i| C32::new((i % 7) as f32 - 3.0, (i % 5) as f32 * 0.5)).collect();
        let mut y = x.clone();
        plan.forward(&mut y);
        plan.inverse(&mut y);
        for i in 0..128 {
            assert!((y[i] - x[i]).norm_sqr().sqrt() < 1e-4, "elem {i}");
        }
    }

    #[test]
    fn separable_vs_manual_2d() {
        // 2-D DFT equals row FFTs followed by column FFTs — cross-check a
        // tiny case against the direct 2-D definition.
        let dims = [4usize, 4];
        let x: Vec<C32> = (0..16).map(|i| C32::new(i as f32, 0.0)).collect();
        let mut got = x.clone();
        FftNd::new(&dims).forward(&mut got);
        for k0 in 0..4 {
            for k1 in 0..4 {
                let mut want = C32::ZERO;
                for j0 in 0..4 {
                    for j1 in 0..4 {
                        let theta = -2.0 * std::f32::consts::PI
                            * ((k0 * j0) as f32 / 4.0 + (k1 * j1) as f32 / 4.0);
                        want += x[j0 * 4 + j1] * C32::cis(theta);
                    }
                }
                let g = got[k0 * 4 + k1];
                assert!((g - want).norm_sqr().sqrt() < 1e-3, "bin ({k0},{k1})");
            }
        }
    }

    #[test]
    fn convolution_theorem_1d_in_nd() {
        // Pointwise product in frequency = circular convolution in space.
        let plan = FftNd::new(&[8]);
        let a: Vec<C32> = (0..8).map(|i| C32::new((i as f32).sin(), 0.0)).collect();
        let b: Vec<C32> = (0..8).map(|i| C32::new(if i < 3 { 1.0 } else { 0.0 }, 0.0)).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        plan.forward(&mut fa);
        plan.forward(&mut fb);
        let mut prod: Vec<C32> = fa.iter().zip(&fb).map(|(&x, &y)| x * y).collect();
        plan.inverse(&mut prod);
        for o in 0..8 {
            let mut want = 0.0f32;
            for k in 0..3 {
                want += a[(o + 8 - k) % 8].re;
            }
            assert!((prod[o].re - want).abs() < 1e-4, "lag {o}");
        }
    }

    #[test]
    fn three_d_roundtrip() {
        let plan = FftNd::new(&[4, 8, 4]);
        let x: Vec<C32> = (0..128).map(|i| C32::new((i % 11) as f32, 0.0)).collect();
        let mut y = x.clone();
        plan.forward(&mut y);
        plan.inverse(&mut y);
        for i in 0..128 {
            assert!((y[i] - x[i]).norm_sqr().sqrt() < 1e-4);
        }
    }
}
