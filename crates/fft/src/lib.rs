//! # wino-fft
//!
//! FFT substrate and FFT-based convolution baseline (the cuDNN-FFT
//! comparator of Fig. 5): complex arithmetic ([`complex::C32`]), planned
//! radix-2 1-D FFTs ([`fft1d::Fft1d`]), separable N-D transforms
//! ([`ndfft::FftNd`]) and the frequency-domain convolution layer
//! ([`conv::fft_conv`]).

pub mod complex;
pub mod conv;
pub mod fft1d;
pub mod ndfft;

pub use complex::C32;
pub use conv::fft_conv;
pub use fft1d::{next_pow2, Fft1d};
pub use ndfft::FftNd;
