//! Iterative radix-2 Cooley–Tukey FFT with precomputed twiddle tables.

// Index-based loops are the idiom throughout: most walk several
// arrays with derived offsets, where iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]
use crate::complex::C32;

/// A planned 1-D FFT of power-of-two length.
#[derive(Clone, Debug)]
pub struct Fft1d {
    n: usize,
    /// Bit-reversal permutation.
    rev: Vec<u32>,
    /// Forward twiddles, one table per butterfly stage (concatenated).
    twiddles: Vec<C32>,
}

impl Fft1d {
    /// Plan an FFT of length `n` (must be a power of two ≥ 1).
    pub fn new(n: usize) -> Fft1d {
        assert!(n.is_power_of_two(), "FFT length {n} must be a power of two");
        let bits = n.trailing_zeros();
        let rev: Vec<u32> = (0..n as u32)
            .map(|i| if bits == 0 { 0 } else { i.reverse_bits() >> (32 - bits) })
            .collect();
        // Stage m = 2,4,…,n: twiddles w_m^j for j in 0..m/2.
        let mut twiddles = Vec::new();
        let mut m = 2;
        while m <= n {
            for j in 0..m / 2 {
                let theta = -2.0 * std::f32::consts::PI * j as f32 / m as f32;
                twiddles.push(C32::cis(theta));
            }
            m <<= 1;
        }
        Fft1d { n, rev, twiddles }
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn transform(&self, data: &mut [C32], inverse: bool) {
        let n = self.n;
        assert_eq!(data.len(), n);
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Butterflies.
        let mut m = 2;
        let mut toff = 0;
        while m <= n {
            let half = m / 2;
            for start in (0..n).step_by(m) {
                for j in 0..half {
                    let w = if inverse { self.twiddles[toff + j].conj() } else { self.twiddles[toff + j] };
                    let a = data[start + j];
                    let b = data[start + j + half] * w;
                    data[start + j] = a + b;
                    data[start + j + half] = a - b;
                }
            }
            toff += half;
            m <<= 1;
        }
    }

    /// In-place forward DFT.
    pub fn forward(&self, data: &mut [C32]) {
        self.transform(data, false);
    }

    /// In-place inverse DFT (includes the 1/n normalisation).
    pub fn inverse(&self, data: &mut [C32]) {
        self.transform(data, true);
        let s = 1.0 / self.n as f32;
        for x in data.iter_mut() {
            *x = x.scale(s);
        }
    }
}

/// Smallest power of two ≥ `n`.
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[C32]) -> Vec<C32> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = C32::ZERO;
                for (j, &v) in x.iter().enumerate() {
                    let theta = -2.0 * std::f32::consts::PI * (k * j) as f32 / n as f32;
                    acc += v * C32::cis(theta);
                }
                acc
            })
            .collect()
    }

    fn signal(n: usize) -> Vec<C32> {
        (0..n)
            .map(|i| C32::new(((i * 7 % 13) as f32 - 6.0) * 0.3, ((i * 5 % 11) as f32 - 5.0) * 0.2))
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 16, 64, 256] {
            let x = signal(n);
            let mut got = x.clone();
            Fft1d::new(n).forward(&mut got);
            let want = naive_dft(&x);
            for k in 0..n {
                let d = got[k] - want[k];
                assert!(
                    d.norm_sqr().sqrt() <= 1e-3 * want[k].norm_sqr().sqrt().max(1.0),
                    "n={n} bin {k}: {:?} vs {:?}",
                    got[k],
                    want[k]
                );
            }
        }
    }

    #[test]
    fn roundtrip() {
        for n in [2usize, 8, 32, 128, 1024] {
            let x = signal(n);
            let mut y = x.clone();
            let plan = Fft1d::new(n);
            plan.forward(&mut y);
            plan.inverse(&mut y);
            for i in 0..n {
                let d = y[i] - x[i];
                assert!(d.norm_sqr().sqrt() < 1e-4, "n={n} elem {i}");
            }
        }
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let mut x = vec![C32::ZERO; 8];
        x[0] = C32::ONE;
        Fft1d::new(8).forward(&mut x);
        for k in 0..8 {
            assert!((x[k].re - 1.0).abs() < 1e-6 && x[k].im.abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_rejected() {
        let _ = Fft1d::new(12);
    }

    #[test]
    fn next_pow2_works() {
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(8), 8);
        assert_eq!(next_pow2(100), 128);
    }
}
