//! An instrumented [`Executor`] wrapper: records one `fork-join` span per
//! grid plus a `barrier-wait` span per participating worker, and exposes
//! its collector through [`Executor::probe`] so stage code can record
//! categorised spans (see `wino-probe`).
//!
//! Design notes (DESIGN.md §8):
//!
//! * The wrapper owns its [`Collector`] outright — it is created in
//!   [`ProbedExecutor::new`] and never shared — so
//!   [`ProbedExecutor::take_events`] can be a *safe* method: `&mut self`
//!   proves no `probe()` borrow (and hence no in-flight recording)
//!   exists.
//! * Worker arrival times are captured with one relaxed atomic store per
//!   task — the cheapest possible hot-path footprint; the coordinator
//!   reads them only after the inner `run_grid` joined, which is the
//!   synchronisation point.
//! * With the `probe` feature off (more precisely: with `wino-probe`'s
//!   `enabled` feature off anywhere in the build), every branch below is
//!   guarded by the `wino_probe::ENABLED` const and folds away — the
//!   wrapper then delegates with zero added work.
//!
//! A `ProbedExecutor` must not execute two grids concurrently (no
//! executor in this crate supports that anyway: the static pool's
//! barriers assume one job at a time). The coordinator buffer and the
//! arrival array rely on that exclusivity.

use std::sync::atomic::{AtomicU64, Ordering};

use wino_probe::{Collector, SpanCategory, COORDINATOR};

use crate::pool::PoolError;
use crate::Executor;

/// Wraps any executor and records fork–join + barrier-wait spans.
pub struct ProbedExecutor<E> {
    inner: E,
    collector: Collector,
    /// Per-slot arrival timestamp of the current grid (ns; 0 = did not
    /// participate). Written by workers, read by the coordinator after
    /// the join.
    arrivals: Vec<AtomicU64>,
}

impl<E: Executor> ProbedExecutor<E> {
    pub fn new(inner: E) -> ProbedExecutor<E> {
        let threads = inner.threads();
        ProbedExecutor {
            inner,
            collector: Collector::new(threads),
            arrivals: (0..threads).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The wrapped executor.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Merge and clear every recorded span, sorted by start time. Safe:
    /// `&mut self` guarantees no `probe()` reference (and so no recorder)
    /// is alive, and the collector is owned exclusively by this wrapper.
    pub fn take_events(&mut self) -> Vec<wino_probe::SpanEvent> {
        // SAFETY: `&mut self` means no outstanding `&self` borrows — no
        // `run_grid` is executing and no `probe()` reference escapes, and
        // the collector was created here and never shared otherwise.
        unsafe { self.collector.drain() }
    }
}

impl<E: Executor> Executor for ProbedExecutor<E> {
    fn run_grid(
        &self,
        dims: &[usize],
        task: &(dyn Fn(usize, usize) + Sync),
    ) -> Result<(), PoolError> {
        if !wino_probe::ENABLED {
            return self.inner.run_grid(dims, task);
        }
        for a in &self.arrivals {
            // ORDERING: Relaxed — the grid's fork (inside inner.run_grid)
            // publishes this reset to workers; timestamps are only read
            // back after the join below.
            a.store(0, Ordering::Relaxed);
        }
        let t_fork = wino_probe::now_ns();
        let result = self.inner.run_grid(dims, &|slot, idx| {
            task(slot, idx);
            // ORDERING: Relaxed — last-write-wins arrival timestamp; the
            // inner executor's join is the happens-before edge to the
            // coordinator's read.
            self.arrivals[slot].store(wino_probe::now_ns().max(1), Ordering::Relaxed);
        });
        let t_join = wino_probe::now_ns();
        // SAFETY: the inner run_grid joined every worker, so no task is
        // recording; the coordinator buffer and the worker buffers are
        // exclusively ours until this method returns.
        unsafe {
            self.collector.record(COORDINATOR, SpanCategory::ForkJoin, t_fork, t_join);
            for (slot, a) in self.arrivals.iter().enumerate() {
                // ORDERING: Relaxed — see the store above; the join
                // already ordered these writes before this read.
                let arrival = a.load(Ordering::Relaxed);
                if arrival != 0 {
                    self.collector.record(slot as u32, SpanCategory::BarrierWait, arrival, t_join);
                }
            }
        }
        result
    }

    fn threads(&self) -> usize {
        self.inner.threads()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn probe(&self) -> Option<&Collector> {
        Some(&self.collector)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SerialExecutor, StaticExecutor};
    use wino_probe::SpanEvent;

    fn by_cat(events: &[SpanEvent], cat: SpanCategory) -> Vec<&SpanEvent> {
        events.iter().filter(|e| e.category == cat).collect()
    }

    #[test]
    fn records_fork_join_and_barrier_waits() {
        let mut e = ProbedExecutor::new(StaticExecutor::new(3));
        e.run_grid(&[32], &|_, _| {}).unwrap();
        e.run_grid(&[8, 8], &|_, _| {}).unwrap();
        let events = e.take_events();
        if wino_probe::ENABLED {
            assert_eq!(by_cat(&events, SpanCategory::ForkJoin).len(), 2);
            // Every slot got work on both grids (32 and 64 tasks over 3
            // threads), so 3 waits per fork–join.
            assert_eq!(by_cat(&events, SpanCategory::BarrierWait).len(), 6);
            for w in by_cat(&events, SpanCategory::BarrierWait) {
                assert!((w.thread as usize) < 3);
            }
            // Drained: a second take is empty.
            assert!(e.take_events().is_empty());
        } else {
            assert!(events.is_empty());
        }
    }

    #[test]
    fn delegates_behaviour() {
        let e = ProbedExecutor::new(SerialExecutor);
        assert_eq!(e.threads(), 1);
        assert_eq!(e.name(), "serial");
        assert!(e.probe().is_some());
        let hits = std::sync::atomic::AtomicUsize::new(0);
        e.run_grid(&[5, 5], &|_, _| {
            // ORDERING: Relaxed — test counter, read after join.
            hits.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        // ORDERING: Relaxed — all writers joined by run_grid.
        assert_eq!(hits.load(Ordering::Relaxed), 25);
    }

    #[test]
    fn propagates_task_panics() {
        let e = ProbedExecutor::new(SerialExecutor);
        let err = e
            .run_grid(&[4], &|_, i| {
                if i == 2 {
                    panic!("boom");
                }
            })
            .expect_err("panic must surface");
        assert!(matches!(err, PoolError::Panicked { .. }));
    }

    #[test]
    fn boxed_dyn_executor_is_wrappable() {
        let inner: Box<dyn Executor> = Box::new(StaticExecutor::new(2));
        let mut e = ProbedExecutor::new(inner);
        e.run_grid(&[16], &|_, _| {}).unwrap();
        assert_eq!(e.threads(), 2);
        assert_eq!(e.name(), "static");
        let events = e.take_events();
        if wino_probe::ENABLED {
            assert!(!events.is_empty());
        } else {
            assert!(events.is_empty());
        }
    }
}
