//! The custom busy-wait barrier (§4.5, "Efficient fork–join
//! synchronization").
//!
//! The paper replaces Cilk/OpenMP/pthread barriers with a SPIRAL-style
//! busy-wait barrier built from C++11 atomics; synchronisation completes in
//! "a fraction of cycles" of the library primitives. This is the Rust
//! equivalent: a sense-reversing central counter barrier using only
//! `AtomicUsize`.
//!
//! One pragmatic extension: after a bounded number of pure spins the waiter
//! yields to the OS scheduler. On a dedicated manycore machine (the paper's
//! setting) the yield never triggers; on an oversubscribed box (CI, this
//! dev machine) it prevents pathological timeslice waits without giving up
//! the fast path.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Pure spins before falling back to `yield_now` (tuned conservatively:
/// real barrier crossings complete within tens of spins when cores are
/// dedicated).
const SPINS_BEFORE_YIELD: u32 = 1 << 14;

/// A reusable busy-wait barrier for a fixed set of participants.
pub struct SpinBarrier {
    /// Threads arrived in the current generation.
    count: AtomicUsize,
    /// Completed generations; waiters spin on this.
    generation: AtomicUsize,
    total: usize,
}

impl SpinBarrier {
    /// Barrier for `total` participants.
    ///
    /// # Panics
    /// Panics if `total == 0`.
    pub fn new(total: usize) -> SpinBarrier {
        assert!(total > 0, "barrier needs at least one participant");
        SpinBarrier { count: AtomicUsize::new(0), generation: AtomicUsize::new(0), total }
    }

    pub fn participants(&self) -> usize {
        self.total
    }

    /// Block (busy-wait) until all `total` participants have called
    /// `wait` in this generation. Returns `true` on exactly one
    /// participant per generation (the last to arrive).
    pub fn wait(&self) -> bool {
        let gen = self.generation.load(Ordering::Acquire);
        // AcqRel: the RMW chain makes every pre-barrier write of every
        // earlier arriver visible to the last arriver.
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.total {
            self.count.store(0, Ordering::Relaxed);
            // Release: publishes all pre-barrier writes (transitively, via
            // the RMW chain) to the spinners' Acquire loads below.
            self.generation.store(gen.wrapping_add(1), Ordering::Release);
            true
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                std::hint::spin_loop();
                spins += 1;
                if spins >= SPINS_BEFORE_YIELD {
                    std::thread::yield_now();
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn single_participant_never_blocks() {
        let b = SpinBarrier::new(1);
        for _ in 0..100 {
            assert!(b.wait());
        }
    }

    #[test]
    fn all_threads_pass_each_generation_together() {
        const THREADS: usize = 4;
        const ROUNDS: usize = 200;
        let barrier = Arc::new(SpinBarrier::new(THREADS));
        let phase = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let barrier = Arc::clone(&barrier);
            let phase = Arc::clone(&phase);
            handles.push(std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    // Before the barrier: phase must still be `round`.
                    assert_eq!(phase.load(Ordering::SeqCst), round as u64);
                    if barrier.wait() {
                        // Exactly one thread advances the phase per round.
                        phase.fetch_add(1, Ordering::SeqCst);
                    }
                    barrier.wait(); // second barrier so the check above is safe
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(phase.load(Ordering::SeqCst), ROUNDS as u64);
    }

    #[test]
    fn exactly_one_leader_per_generation() {
        const THREADS: usize = 8;
        const ROUNDS: usize = 100;
        let barrier = Arc::new(SpinBarrier::new(THREADS));
        let leaders = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let barrier = Arc::clone(&barrier);
            let leaders = Arc::clone(&leaders);
            handles.push(std::thread::spawn(move || {
                for _ in 0..ROUNDS {
                    if barrier.wait() {
                        leaders.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::Relaxed), ROUNDS as u64);
    }

    #[test]
    fn barrier_publishes_writes() {
        // Data written before wait() by one thread must be visible after
        // wait() on another.
        const THREADS: usize = 2;
        let barrier = Arc::new(SpinBarrier::new(THREADS));
        let data = Arc::new(parking_lot_free_cell());
        let b2 = Arc::clone(&barrier);
        let d2 = Arc::clone(&data);
        let h = std::thread::spawn(move || {
            unsafe { *d2.0.get() = 42 };
            b2.wait();
            b2.wait();
        });
        barrier.wait();
        let v = unsafe { *data.0.get() };
        assert_eq!(v, 42);
        barrier.wait();
        h.join().unwrap();
    }

    struct RacyCell(std::cell::UnsafeCell<u64>);
    unsafe impl Sync for RacyCell {}
    fn parking_lot_free_cell() -> RacyCell {
        RacyCell(std::cell::UnsafeCell::new(0))
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_panics() {
        let _ = SpinBarrier::new(0);
    }
}
