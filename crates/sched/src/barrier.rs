//! The custom busy-wait barrier (§4.2, §4.5, "Efficient fork–join
//! synchronization") with a watchdog deadline.
//!
//! The paper replaces Cilk/OpenMP/pthread barriers with a SPIRAL-style
//! busy-wait barrier built from C++11 atomics; synchronisation completes in
//! "a fraction of cycles" of the library primitives. This is the Rust
//! equivalent: a sense-reversing central counter barrier using only
//! `AtomicUsize`.
//!
//! Two pragmatic extensions over the paper's dedicated-machine setting:
//!
//! 1. After a bounded number of pure spins the waiter yields to the OS
//!    scheduler. On a dedicated manycore machine the yield never triggers;
//!    on an oversubscribed box (CI, this dev machine) it prevents
//!    pathological timeslice waits without giving up the fast path.
//! 2. **Watchdog deadline** ([`SpinBarrier::wait_deadline`]): a production
//!    server cannot afford an infinite spin when a participant dies. Once
//!    the waiter has entered the yield regime it checks a wall-clock
//!    deadline; on expiry it *poisons* the barrier and returns
//!    [`BarrierError::Timeout`] carrying how long it waited and how many
//!    participants had arrived. Every subsequent or concurrent wait on a
//!    poisoned barrier fails fast with [`BarrierError::Poisoned`] instead
//!    of spinning on state that can never advance.
//!
//! The barrier is generic over the [`Atomics`] environment so that the
//! *identical* algorithm that ships ([`SpinBarrier`] =
//! [`SpinBarrierIn<StdAtomics>`]) is also what `wino-analyze`'s
//! deterministic model checker explores under every bounded interleaving
//! (`SpinBarrierIn<ModelAtomics>`). All backoff and time-dependence lives
//! behind [`Atomics::spin`]; this file contains no clock reads.

use std::sync::atomic::Ordering;
use std::time::Duration;

use crate::atomics::{AtomicUsizeOps, Atomics, StdAtomics};

/// Why a barrier wait failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierError {
    /// The watchdog deadline expired before all participants arrived.
    /// The barrier is now poisoned.
    Timeout {
        /// How long this waiter busy-waited before giving up.
        waited: Duration,
        /// Participants that had arrived in this generation (including
        /// the reporting waiter) when the watchdog fired. Approximate:
        /// captured just before poisoning, so a concurrent late arriver
        /// may be missed.
        arrived: usize,
        /// Participants required to release the barrier.
        expected: usize,
    },
    /// The barrier was poisoned by an earlier timeout; waiting on it can
    /// never succeed.
    Poisoned,
}

impl std::fmt::Display for BarrierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BarrierError::Timeout { waited, arrived, expected } => write!(
                f,
                "barrier timeout after {waited:?}: {arrived} of {expected} participants arrived"
            ),
            BarrierError::Poisoned => write!(f, "barrier poisoned by an earlier timeout"),
        }
    }
}

impl std::error::Error for BarrierError {}

/// High bit of [`SpinBarrierIn::state`]: set once the barrier is poisoned.
/// Keeping the poison flag in the *same* word as the generation counter
/// makes poisoning and generation completion mutually exclusive (both are
/// CAS transitions from the un-poisoned current generation): a watchdog
/// can never poison a crossing that actually succeeded, and a successful
/// poison guarantees no participant was released for that generation.
const POISON: usize = 1 << (usize::BITS - 1);

/// A reusable busy-wait barrier for a fixed set of participants, generic
/// over the [`Atomics`] environment (see the module docs).
pub struct SpinBarrierIn<A: Atomics = StdAtomics> {
    /// Threads arrived in the current generation.
    count: A::AtomicUsize,
    /// Completed generations in the low bits (waiters spin on this) plus
    /// the [`POISON`] flag in the high bit.
    state: A::AtomicUsize,
    total: usize,
}

/// The production barrier: the generic algorithm over real atomics and the
/// wall-clock watchdog.
pub type SpinBarrier = SpinBarrierIn<StdAtomics>;

impl<A: Atomics> SpinBarrierIn<A> {
    /// Barrier for `total` participants.
    ///
    /// # Panics
    /// Panics if `total == 0`.
    pub fn new(total: usize) -> SpinBarrierIn<A> {
        assert!(total > 0, "barrier needs at least one participant");
        SpinBarrierIn {
            count: A::AtomicUsize::new(0),
            state: A::AtomicUsize::new(0),
            total,
        }
    }

    pub fn participants(&self) -> usize {
        self.total
    }

    /// Whether a watchdog has poisoned this barrier.
    pub fn is_poisoned(&self) -> bool {
        self.state.load(Ordering::Acquire) & POISON != 0
    }

    /// Mark the barrier unusable; concurrent and future waiters fail fast
    /// with [`BarrierError::Poisoned`]. Unlike the watchdog's poison-CAS,
    /// this unconditionally kills the barrier whatever generation it is in.
    pub fn poison(&self) {
        self.state.fetch_or(POISON, Ordering::AcqRel);
    }

    /// Block (busy-wait) until all `total` participants have called
    /// `wait` in this generation. Returns `true` on exactly one
    /// participant per generation (the last to arrive).
    ///
    /// This is the paper-faithful unbounded wait; prefer
    /// [`Self::wait_deadline`] anywhere a participant could be missing.
    ///
    /// # Panics
    /// Panics if the barrier is (or becomes) poisoned — an unbounded wait
    /// on a poisoned barrier can never complete.
    pub fn wait(&self) -> bool {
        match self.wait_deadline(None) {
            Ok(leader) => leader,
            Err(e) => panic!("SpinBarrier::wait on a poisoned barrier: {e}"),
        }
    }

    /// As [`Self::wait`], but with an optional watchdog deadline measured
    /// from the moment the waiter enters the yield regime (so the
    /// uncontended fast path never reads the clock).
    ///
    /// On expiry the barrier is poisoned and `Timeout { waited, arrived,
    /// expected }` is returned. If another waiter's watchdog fired first
    /// (or [`Self::poison`] was called), returns `Poisoned` promptly.
    pub fn wait_deadline(&self, deadline: Option<Duration>) -> Result<bool, BarrierError> {
        let gen = self.state.load(Ordering::Acquire);
        if gen & POISON != 0 {
            return Err(BarrierError::Poisoned);
        }
        // ORDERING: AcqRel — the RMW chain makes every pre-barrier write of
        // every earlier arriver visible to the last arriver.
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.total {
            // ORDERING: Relaxed — the reset is published by the Release
            // generation-CAS below before any spinner can re-enter the
            // next generation; no one reads `count` racily for ordering.
            self.count.store(0, Ordering::Relaxed);
            // CAS, not store: a concurrently-successful watchdog poison
            // must win, in which case this crossing never completes and
            // every participant (including this one) reports Poisoned.
            // On success the Release publishes all pre-barrier writes
            // (transitively, via the RMW chain) to the spinners' Acquire
            // loads below.
            let next = gen.wrapping_add(1) & !POISON;
            return match self.state.compare_exchange(
                gen,
                next,
                Ordering::Release,
                Ordering::Acquire,
            ) {
                Ok(_) => Ok(true),
                Err(_) => Err(BarrierError::Poisoned),
            };
        }
        let mut spin = A::SpinState::default();
        loop {
            let s = self.state.load(Ordering::Acquire);
            if s & POISON != 0 {
                return Err(BarrierError::Poisoned);
            }
            if s != gen {
                return Ok(false);
            }
            if let Some(waited) = A::spin(&mut spin, deadline) {
                // Capture the arrival count before poisoning (the leader
                // resets it as part of completing); our own arrival is a
                // floor on the true value.
                // ORDERING: Relaxed — diagnostic snapshot only; the value
                // is advisory and never used for synchronisation.
                let seen = self.count.load(Ordering::Relaxed).max(arrived);
                // Poison via CAS from the un-poisoned current generation:
                // exactly one of {this poison, the leader's completion}
                // can win.
                return match self.state.compare_exchange(
                    gen,
                    gen | POISON,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => Err(BarrierError::Timeout {
                        waited,
                        arrived: seen,
                        expected: self.total,
                    }),
                    // Lost to a concurrent poison: fail fast.
                    Err(s) if s & POISON != 0 => Err(BarrierError::Poisoned),
                    // Lost to the leader: the crossing succeeded.
                    Err(_) => Ok(false),
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn single_participant_never_blocks() {
        let b = SpinBarrier::new(1);
        for _ in 0..100 {
            assert!(b.wait());
        }
    }

    #[test]
    fn all_threads_pass_each_generation_together() {
        const THREADS: usize = 4;
        const ROUNDS: usize = 200;
        let barrier = Arc::new(SpinBarrier::new(THREADS));
        let phase = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let barrier = Arc::clone(&barrier);
            let phase = Arc::clone(&phase);
            handles.push(std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    // Before the barrier: phase must still be `round`.
                    assert_eq!(phase.load(Ordering::SeqCst), round as u64);
                    if barrier.wait() {
                        // Exactly one thread advances the phase per round.
                        phase.fetch_add(1, Ordering::SeqCst);
                    }
                    barrier.wait(); // second barrier so the check above is safe
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(phase.load(Ordering::SeqCst), ROUNDS as u64);
    }

    #[test]
    fn exactly_one_leader_per_generation() {
        const THREADS: usize = 8;
        const ROUNDS: usize = 100;
        let barrier = Arc::new(SpinBarrier::new(THREADS));
        let leaders = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let barrier = Arc::clone(&barrier);
            let leaders = Arc::clone(&leaders);
            handles.push(std::thread::spawn(move || {
                for _ in 0..ROUNDS {
                    if barrier.wait() {
                        // ORDERING: Relaxed — test-local counter; the
                        // final value is read after `join`, which is
                        // already a synchronisation point.
                        leaders.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // ORDERING: Relaxed — all writers joined above.
        assert_eq!(leaders.load(Ordering::Relaxed), ROUNDS as u64);
    }

    #[test]
    fn barrier_publishes_writes() {
        // Data written before wait() by one thread must be visible after
        // wait() on another.
        const THREADS: usize = 2;
        let barrier = Arc::new(SpinBarrier::new(THREADS));
        let data = Arc::new(racy_cell());
        let b2 = Arc::clone(&barrier);
        let d2 = Arc::clone(&data);
        let h = std::thread::spawn(move || {
            // SAFETY: this store happens strictly before the first barrier
            // crossing; the reader only loads after crossing the same
            // barrier, so the accesses never race.
            unsafe { *d2.0.get() = 42 };
            b2.wait();
            b2.wait();
        });
        barrier.wait();
        // SAFETY: read after the barrier crossing that ordered it with the
        // writer's pre-barrier store (see above).
        let v = unsafe { *data.0.get() };
        assert_eq!(v, 42);
        barrier.wait();
        h.join().unwrap();
    }

    struct RacyCell(std::cell::UnsafeCell<u64>);
    // SAFETY: the test serialises all access through barrier crossings;
    // `RacyCell` exists precisely to test that ordering.
    unsafe impl Sync for RacyCell {}
    fn racy_cell() -> RacyCell {
        RacyCell(std::cell::UnsafeCell::new(0))
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_panics() {
        let _ = SpinBarrier::new(0);
    }

    // ---- watchdog / poisoning ----

    #[test]
    fn timeout_reports_arrived_and_expected() {
        // 3 participants, only 2 ever arrive: the watchdog must fire and
        // report 2/3.
        let barrier = Arc::new(SpinBarrier::new(3));
        let b2 = Arc::clone(&barrier);
        let other = std::thread::spawn(move || b2.wait_deadline(Some(Duration::from_secs(5))));
        let err = barrier
            .wait_deadline(Some(Duration::from_millis(50)))
            .expect_err("must time out: third participant never arrives");
        match err {
            BarrierError::Timeout { waited, arrived, expected } => {
                assert!(waited >= Duration::from_millis(50), "waited {waited:?}");
                assert_eq!(arrived, 2);
                assert_eq!(expected, 3);
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
        // The second waiter observes the poison promptly rather than
        // spinning out its own (much longer) deadline.
        let second = other.join().unwrap();
        assert_eq!(second, Err(BarrierError::Poisoned));
    }

    #[test]
    fn poisoned_barrier_fails_fast_on_reuse() {
        let barrier = SpinBarrier::new(2);
        barrier.poison();
        assert!(barrier.is_poisoned());
        let t0 = Instant::now();
        for _ in 0..100 {
            assert_eq!(barrier.wait_deadline(None), Err(BarrierError::Poisoned));
            assert_eq!(
                barrier.wait_deadline(Some(Duration::from_secs(10))),
                Err(BarrierError::Poisoned)
            );
        }
        // Fail-fast: 200 poisoned waits must not busy-wait anything close
        // to a deadline.
        assert!(t0.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn timeout_poisons_for_later_waiters() {
        let barrier = SpinBarrier::new(2);
        let err = barrier.wait_deadline(Some(Duration::from_millis(20))).unwrap_err();
        assert!(matches!(err, BarrierError::Timeout { arrived: 1, expected: 2, .. }));
        assert_eq!(barrier.wait_deadline(None), Err(BarrierError::Poisoned));
    }

    #[test]
    #[should_panic(expected = "poisoned")]
    fn unbounded_wait_panics_on_poison() {
        let barrier = SpinBarrier::new(2);
        barrier.poison();
        barrier.wait();
    }

    #[test]
    fn deadline_wait_succeeds_when_all_arrive() {
        const THREADS: usize = 4;
        let barrier = Arc::new(SpinBarrier::new(THREADS));
        let mut handles = Vec::new();
        for _ in 0..THREADS - 1 {
            let b = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    b.wait_deadline(Some(Duration::from_secs(5))).unwrap();
                }
            }));
        }
        for _ in 0..50 {
            barrier.wait_deadline(Some(Duration::from_secs(5))).unwrap();
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(!barrier.is_poisoned());
    }
}
