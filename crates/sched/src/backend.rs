//! Execution backends: the paper's static scheduler, plus a dynamic
//! work-stealing-style executor and a serial executor used as comparison
//! points in the §4.5 scheduling ablation.
//!
//! All backends share one failure contract: `run_grid` returns
//! `Err(PoolError::Panicked { .. })` if any task panicked (the panic is
//! contained, never propagated), and the static backend additionally
//! surfaces barrier watchdog failures as `PoolError::Barrier`. On `Ok(())`
//! every flat index was executed exactly once; on `Err` the grid may be
//! partially executed and the output buffers must be treated as garbage.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::pool::PoolError;
use crate::{GridPartition, ThreadPool};

/// Runs D-dimensional grids of equal tasks. Implementations must invoke
/// the task closure exactly once for every flat task index (when they
/// return `Ok`).
pub trait Executor: Sync {
    /// Run `task(slot, flat_index)` for every cell of the grid `dims`.
    ///
    /// `slot` identifies the executing thread: it is in `0..self.threads()`
    /// and no two concurrently running tasks share a slot — callers may use
    /// it to index per-thread scratch without locks. `task` must be safe to
    /// call concurrently from multiple threads on distinct indices.
    ///
    /// Panics inside `task` are contained and reported as
    /// [`PoolError::Panicked`]; they never unwind through this call.
    fn run_grid(
        &self,
        dims: &[usize],
        task: &(dyn Fn(usize, usize) + Sync),
    ) -> Result<(), PoolError>;

    /// Number of thread slots this executor uses (1 for serial).
    fn threads(&self) -> usize;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// The span collector this executor records into, if instrumented.
    /// Plain executors are not; wrap one in
    /// [`crate::ProbedExecutor`] to collect stage spans and fork–join
    /// timings. Stage code uses this hook to record categorised spans
    /// without threading a collector through every signature.
    fn probe(&self) -> Option<&wino_probe::Collector> {
        None
    }
}

impl<E: Executor + ?Sized> Executor for &E {
    fn run_grid(
        &self,
        dims: &[usize],
        task: &(dyn Fn(usize, usize) + Sync),
    ) -> Result<(), PoolError> {
        (**self).run_grid(dims, task)
    }

    fn threads(&self) -> usize {
        (**self).threads()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn probe(&self) -> Option<&wino_probe::Collector> {
        (**self).probe()
    }
}

impl<E: Executor + ?Sized> Executor for Box<E> {
    fn run_grid(
        &self,
        dims: &[usize],
        task: &(dyn Fn(usize, usize) + Sync),
    ) -> Result<(), PoolError> {
        (**self).run_grid(dims, task)
    }

    fn threads(&self) -> usize {
        (**self).threads()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn probe(&self) -> Option<&wino_probe::Collector> {
        (**self).probe()
    }
}

/// Single-threaded executor: iterates the grid in row-major order.
pub struct SerialExecutor;

impl Executor for SerialExecutor {
    fn run_grid(
        &self,
        dims: &[usize],
        task: &(dyn Fn(usize, usize) + Sync),
    ) -> Result<(), PoolError> {
        let total: usize = dims.iter().product();
        let result = catch_unwind(AssertUnwindSafe(|| {
            for i in 0..total {
                task(0, i);
            }
        }));
        wino_simd::sfence();
        match result {
            Ok(()) => Ok(()),
            Err(payload) => {
                let msg = crate::pool::panic_message(payload);
                Err(PoolError::Panicked { panics: vec![(0, msg)] })
            }
        }
    }

    fn threads(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "serial"
    }
}

/// The paper's scheduler: recursive-GCD static partition executed by the
/// persistent fork–join pool with the custom spin barrier.
pub struct StaticExecutor {
    pool: ThreadPool,
}

impl StaticExecutor {
    pub fn new(threads: usize) -> StaticExecutor {
        StaticExecutor { pool: ThreadPool::new(threads) }
    }

    /// As [`StaticExecutor::new`] with an explicit barrier watchdog
    /// deadline (see [`ThreadPool::with_deadline`]).
    pub fn with_deadline(threads: usize, deadline: std::time::Duration) -> StaticExecutor {
        StaticExecutor { pool: ThreadPool::with_deadline(threads, deadline) }
    }

    pub fn with_available_parallelism() -> StaticExecutor {
        StaticExecutor { pool: ThreadPool::with_available_parallelism() }
    }

    /// The underlying fork–join pool.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }
}

impl Executor for StaticExecutor {
    fn run_grid(
        &self,
        dims: &[usize],
        task: &(dyn Fn(usize, usize) + Sync),
    ) -> Result<(), PoolError> {
        let partition = GridPartition::new(dims, self.pool.n_threads());
        self.pool.run(|tid| {
            partition.boxes[tid].for_each_flat(dims, |idx| task(tid, idx));
        })
    }

    fn threads(&self) -> usize {
        self.pool.n_threads()
    }

    fn name(&self) -> &'static str {
        "static"
    }
}

/// Dynamically load-balanced executor — the comparison point for the §4.5
/// ablation ("static scheduling vs dynamic"). Tasks are claimed in small
/// chunks from a shared atomic counter by scoped worker threads, the
/// textbook dynamic-scheduling strategy the paper's static partition is
/// measured against. (The seed used `rayon` here; this dependency-free
/// replacement keeps the ablation available in offline builds.)
pub struct DynamicExecutor {
    threads: usize,
}

/// Tasks claimed per counter increment: amortises contention while keeping
/// the load balancing fine-grained.
const DYNAMIC_CHUNK: usize = 8;

impl DynamicExecutor {
    pub fn new(threads: usize) -> DynamicExecutor {
        assert!(threads > 0);
        DynamicExecutor { threads }
    }

    /// Executor sized by [`crate::topology::configured_threads`]
    /// (`WINO_THREADS` override, else every online CPU).
    pub fn with_available_parallelism() -> DynamicExecutor {
        DynamicExecutor::new(crate::topology::configured_threads())
    }
}

impl Default for DynamicExecutor {
    fn default() -> Self {
        DynamicExecutor::with_available_parallelism()
    }
}

impl Executor for DynamicExecutor {
    fn run_grid(
        &self,
        dims: &[usize],
        task: &(dyn Fn(usize, usize) + Sync),
    ) -> Result<(), PoolError> {
        let total: usize = dims.iter().product();
        // Shrink the claim chunk when the grid is small relative to the
        // thread count (e.g. the pipelined schedule's per-layer queue of a
        // handful of superblocks) so every slot still gets work; coarse
        // chunks would let one thread claim the whole grid.
        let chunk = DYNAMIC_CHUNK.min(total.div_ceil(self.threads)).max(1);
        let next = AtomicUsize::new(0);
        let panics: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());

        let worker = |slot: usize| {
            let result = catch_unwind(AssertUnwindSafe(|| loop {
                // ORDERING: Relaxed — the counter only partitions indices;
                // task data is published by scope-spawn and joined below.
                let lo = next.fetch_add(chunk, Ordering::Relaxed);
                if lo >= total {
                    break;
                }
                for i in lo..(lo + chunk).min(total) {
                    task(slot, i);
                }
            }));
            if let Err(payload) = result {
                let msg = crate::pool::panic_message(payload);
                panics.lock().unwrap_or_else(|e| e.into_inner()).push((slot, msg));
            }
            wino_simd::sfence();
        };

        std::thread::scope(|s| {
            for slot in 1..self.threads {
                s.spawn(move || worker(slot));
            }
            worker(0);
        });

        let mut collected = panics.into_inner().unwrap_or_else(|e| e.into_inner());
        if collected.is_empty() {
            Ok(())
        } else {
            collected.sort_by_key(|(slot, _)| *slot);
            Err(PoolError::Panicked { panics: collected })
        }
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn name(&self) -> &'static str {
        "dynamic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn check_covers(e: &dyn Executor, dims: &[usize]) {
        let total: usize = dims.iter().product();
        let hits: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
        let max_slot = AtomicUsize::new(0);
        e.run_grid(dims, &|slot, i| {
            assert!(slot < e.threads(), "slot {slot} out of range");
            // ORDERING: Relaxed — test counter, read only after run_grid
            // returns (its join is the synchronisation point).
            max_slot.fetch_max(slot, Ordering::Relaxed);
            // ORDERING: Relaxed — same as above.
            hits[i].fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        for (i, h) in hits.iter().enumerate() {
            // ORDERING: Relaxed — all writers joined inside run_grid.
            assert_eq!(h.load(Ordering::Relaxed), 1, "task {i} run {} times", h.load(Ordering::Relaxed));
        }
    }

    #[test]
    fn serial_covers() {
        check_covers(&SerialExecutor, &[3, 4, 5]);
    }

    #[test]
    fn borrowed_dyn_executor_is_an_executor() {
        // `&dyn Executor` implements Executor, so borrowed executors can
        // be wrapped (e.g. by ProbedExecutor) without taking ownership.
        let e = StaticExecutor::new(2);
        let borrowed: &dyn Executor = &e;
        check_covers(&borrowed, &[4, 4]);
        assert_eq!(borrowed.threads(), 2);
        assert_eq!(Executor::name(&borrowed), "static");
    }

    #[test]
    fn static_covers() {
        let e = StaticExecutor::new(4);
        check_covers(&e, &[8, 4, 7]);
        check_covers(&e, &[5]);
        check_covers(&e, &[3, 3, 3]);
    }

    #[test]
    fn dynamic_covers() {
        let e = DynamicExecutor::new(4);
        check_covers(&e, &[6, 6]);
        check_covers(&e, &[1]);
        check_covers(&e, &[37]); // not a multiple of the claim chunk
        // Grids smaller than threads × chunk (a superblock queue): the
        // adaptive chunk must still cover every index exactly once.
        check_covers(&e, &[3]);
        check_covers(&e, &[5]);
    }

    #[test]
    fn static_reuses_pool_across_grids() {
        let e = StaticExecutor::new(3);
        for _ in 0..20 {
            check_covers(&e, &[4, 9]);
        }
    }

    #[test]
    fn static_slot_is_stable_within_task_box() {
        // The static executor runs each thread's whole box under one slot.
        let e = StaticExecutor::new(2);
        let slots = std::sync::Mutex::new(vec![usize::MAX; 16]);
        e.run_grid(&[16], &|slot, i| {
            slots.lock().unwrap()[i] = slot;
        })
        .unwrap();
        let slots = slots.into_inner().unwrap();
        // Two contiguous halves, one per thread.
        assert!(slots[..8].iter().all(|&s| s == slots[0]));
        assert!(slots[8..].iter().all(|&s| s == slots[8]));
    }

    #[test]
    fn names_and_threads() {
        assert_eq!(SerialExecutor.threads(), 1);
        assert_eq!(SerialExecutor.name(), "serial");
        let e = StaticExecutor::new(2);
        assert_eq!(e.threads(), 2);
        assert_eq!(e.name(), "static");
        assert_eq!(DynamicExecutor::new(2).name(), "dynamic");
    }

    #[test]
    fn serial_contains_task_panics() {
        let err = SerialExecutor
            .run_grid(&[10], &|_, i| {
                if i == 3 {
                    panic!("task 3 fails");
                }
            })
            .expect_err("task panicked");
        match err {
            PoolError::Panicked { panics } => assert!(panics[0].1.contains("task 3")),
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn static_contains_task_panics_and_stays_usable() {
        let e = StaticExecutor::new(4);
        let err = e
            .run_grid(&[64], &|_, i| {
                if i == 17 {
                    panic!("grid task 17");
                }
            })
            .expect_err("task panicked");
        assert!(matches!(err, PoolError::Panicked { .. }));
        check_covers(&e, &[8, 8]);
    }

    #[test]
    fn dynamic_contains_task_panics() {
        let e = DynamicExecutor::new(3);
        let err = e
            .run_grid(&[100], &|_, i| {
                if i == 50 {
                    panic!("dynamic task 50");
                }
            })
            .expect_err("task panicked");
        assert!(matches!(err, PoolError::Panicked { .. }));
        // The executor is stateless; a fresh grid still covers fully.
        check_covers(&e, &[100]);
    }
}
