//! Execution backends: the paper's static scheduler, plus rayon (dynamic
//! work stealing) and serial executors used as comparison points in the
//! §4.5 scheduling ablation.

use crate::{GridPartition, ThreadPool};

/// Runs D-dimensional grids of equal tasks. Implementations must invoke
/// the task closure exactly once for every flat task index.
pub trait Executor: Sync {
    /// Run `task(slot, flat_index)` for every cell of the grid `dims`.
    ///
    /// `slot` identifies the executing thread: it is in `0..self.threads()`
    /// and no two concurrently running tasks share a slot — callers may use
    /// it to index per-thread scratch without locks. `task` must be safe to
    /// call concurrently from multiple threads on distinct indices.
    fn run_grid(&self, dims: &[usize], task: &(dyn Fn(usize, usize) + Sync));

    /// Number of thread slots this executor uses (1 for serial).
    fn threads(&self) -> usize;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Single-threaded executor: iterates the grid in row-major order.
pub struct SerialExecutor;

impl Executor for SerialExecutor {
    fn run_grid(&self, dims: &[usize], task: &(dyn Fn(usize, usize) + Sync)) {
        let total: usize = dims.iter().product();
        for i in 0..total {
            task(0, i);
        }
        wino_simd::sfence();
    }

    fn threads(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "serial"
    }
}

/// The paper's scheduler: recursive-GCD static partition executed by the
/// persistent fork–join pool with the custom spin barrier.
pub struct StaticExecutor {
    pool: ThreadPool,
}

impl StaticExecutor {
    pub fn new(threads: usize) -> StaticExecutor {
        StaticExecutor { pool: ThreadPool::new(threads) }
    }

    pub fn with_available_parallelism() -> StaticExecutor {
        StaticExecutor { pool: ThreadPool::with_available_parallelism() }
    }
}

impl Executor for StaticExecutor {
    fn run_grid(&self, dims: &[usize], task: &(dyn Fn(usize, usize) + Sync)) {
        let partition = GridPartition::new(dims, self.pool.n_threads());
        self.pool.run(|tid| {
            partition.boxes[tid].for_each_flat(dims, |idx| task(tid, idx));
        });
    }

    fn threads(&self) -> usize {
        self.pool.n_threads()
    }

    fn name(&self) -> &'static str {
        "static"
    }
}

/// Dynamic work-stealing executor built on rayon — the comparison point
/// for the §4.5 ablation ("static scheduling vs dynamic").
pub struct RayonExecutor;

impl Executor for RayonExecutor {
    fn run_grid(&self, dims: &[usize], task: &(dyn Fn(usize, usize) + Sync)) {
        use rayon::prelude::*;
        let total: usize = dims.iter().product();
        (0..total).into_par_iter().for_each(|i| {
            // Inside the pool `current_thread_index` is always Some; the
            // fallback covers tasks that rayon runs on the caller thread.
            let slot = rayon::current_thread_index().unwrap_or(0);
            task(slot, i);
        });
        wino_simd::sfence();
    }

    fn threads(&self) -> usize {
        // Slot ids come from rayon's global pool; reserve one extra slot
        // for the caller-thread fallback above.
        rayon::current_num_threads() + 1
    }

    fn name(&self) -> &'static str {
        "rayon"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn check_covers(e: &dyn Executor, dims: &[usize]) {
        let total: usize = dims.iter().product();
        let hits: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
        let max_slot = AtomicUsize::new(0);
        e.run_grid(dims, &|slot, i| {
            assert!(slot < e.threads(), "slot {slot} out of range");
            max_slot.fetch_max(slot, Ordering::Relaxed);
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "task {i} run {} times", h.load(Ordering::Relaxed));
        }
    }

    #[test]
    fn serial_covers() {
        check_covers(&SerialExecutor, &[3, 4, 5]);
    }

    #[test]
    fn static_covers() {
        let e = StaticExecutor::new(4);
        check_covers(&e, &[8, 4, 7]);
        check_covers(&e, &[5]);
        check_covers(&e, &[3, 3, 3]);
    }

    #[test]
    fn rayon_covers() {
        check_covers(&RayonExecutor, &[6, 6]);
    }

    #[test]
    fn static_reuses_pool_across_grids() {
        let e = StaticExecutor::new(3);
        for _ in 0..20 {
            check_covers(&e, &[4, 9]);
        }
    }

    #[test]
    fn static_slot_is_stable_within_task_box() {
        // The static executor runs each thread's whole box under one slot.
        let e = StaticExecutor::new(2);
        let slots = std::sync::Mutex::new(vec![usize::MAX; 16]);
        e.run_grid(&[16], &|slot, i| {
            slots.lock().unwrap()[i] = slot;
        });
        let slots = slots.into_inner().unwrap();
        // Two contiguous halves, one per thread.
        assert!(slots[..8].iter().all(|&s| s == slots[0]));
        assert!(slots[8..].iter().all(|&s| s == slots[8]));
    }

    #[test]
    fn names_and_threads() {
        assert_eq!(SerialExecutor.threads(), 1);
        assert_eq!(SerialExecutor.name(), "serial");
        let e = StaticExecutor::new(2);
        assert_eq!(e.threads(), 2);
        assert_eq!(e.name(), "static");
        assert_eq!(RayonExecutor.name(), "rayon");
    }
}
