//! # wino-sched
//!
//! The parallel-execution substrate (paper §4.5): static scheduling through
//! recursive-GCD grid partitioning ([`GridPartition`]), a custom busy-wait
//! [`SpinBarrier`] built from atomics with an optional watchdog deadline, a
//! persistent panic-safe fork–join [`ThreadPool`], and pluggable
//! [`Executor`] backends (static / dynamic / serial) so the scheduling
//! ablation can swap strategies without touching the convolution code.
//!
//! ## Failure model
//!
//! Panics inside parallel jobs are contained with `catch_unwind` on every
//! participant and surfaced as [`PoolError::Panicked`]; the pool remains
//! usable afterwards. A participant that never reaches a barrier trips the
//! watchdog ([`BarrierError::Timeout`]), which poisons the barriers and
//! permanently kills the pool ([`PoolError::Unusable`] thereafter) — but
//! never hangs the caller, not even in `Drop`. With the `fault-inject`
//! cargo feature, the `fault` module provides deterministic hooks to
//! exercise each of these paths from tests.

pub mod atomics;
pub mod backend;
pub mod barrier;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod grid;
pub mod handoff;
pub mod pool;
pub mod probed;

pub use atomics::{AtomicUsizeOps, Atomics, Clock, StdAtomics, StdClock};
pub use backend::{DynamicExecutor, Executor, SerialExecutor, StaticExecutor};
pub use probed::ProbedExecutor;
pub use barrier::{BarrierError, SpinBarrier, SpinBarrierIn};
pub use grid::{GridPartition, TaskBox};
pub use handoff::JobExitLatch;
pub use pool::{default_deadline, PoolError, ThreadPool, DEFAULT_DEADLINE};
