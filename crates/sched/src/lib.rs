//! # wino-sched
//!
//! The parallel-execution substrate (paper §4.5): static scheduling through
//! recursive-GCD grid partitioning ([`GridPartition`]), a custom busy-wait
//! [`SpinBarrier`] built from atomics with an optional watchdog deadline, a
//! persistent panic-safe fork–join [`ThreadPool`], and pluggable
//! [`Executor`] backends (static / dynamic / serial) so the scheduling
//! ablation can swap strategies without touching the convolution code.
//!
//! ## Topology awareness
//!
//! [`Topology`] describes the machine as cache-sharing CPU *domains*
//! (detected from sysfs, overridden with `WINO_TOPOLOGY`, or flat), and
//! [`configured_threads`] is the single sanctioned thread-count source
//! (`WINO_THREADS` override included) — no caller should read
//! `available_parallelism` directly. On multi-domain machines,
//! [`ShardedPool`] runs one [`ThreadPool`] per domain so barrier traffic
//! never crosses a cache boundary, with optional best-effort affinity
//! pinning and per-domain failure isolation. See `DESIGN.md` §11 and
//! `docs/scaling.md` for the policy and the measured scaling story.
//!
//! ## Failure model
//!
//! Panics inside parallel jobs are contained with `catch_unwind` on every
//! participant and surfaced as [`PoolError::Panicked`]; the pool remains
//! usable afterwards. A participant that never reaches a barrier trips the
//! watchdog ([`BarrierError::Timeout`]), which poisons the barriers and
//! permanently kills the pool ([`PoolError::Unusable`] thereafter) — but
//! never hangs the caller, not even in `Drop`. With the `fault-inject`
//! cargo feature, the `fault` module provides deterministic hooks to
//! exercise each of these paths from tests.

pub mod atomics;
pub mod backend;
pub mod barrier;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod grid;
pub mod handoff;
pub mod pool;
pub mod probed;
pub mod shard;
pub mod topology;

pub use atomics::{AtomicUsizeOps, Atomics, Clock, StdAtomics, StdClock};
pub use backend::{DynamicExecutor, Executor, SerialExecutor, StaticExecutor};
pub use probed::ProbedExecutor;
pub use barrier::{BarrierError, SpinBarrier, SpinBarrierIn};
pub use grid::{GridPartition, TaskBox};
pub use handoff::JobExitLatch;
pub use pool::{default_deadline, PoolError, ThreadPool, DEFAULT_DEADLINE};
pub use shard::ShardedPool;
pub use topology::{
    configured_threads, parse_cpulist, pin_current_thread, render_cpulist, Domain, Topology,
    TopologySource,
};
