//! # wino-sched
//!
//! The parallel-execution substrate (paper §4.5): static scheduling through
//! recursive-GCD grid partitioning ([`GridPartition`]), a custom busy-wait
//! [`SpinBarrier`] built from atomics, a persistent fork–join
//! [`ThreadPool`], and pluggable [`Executor`] backends (static / rayon /
//! serial) so the scheduling ablation can swap strategies without touching
//! the convolution code.

pub mod backend;
pub mod barrier;
pub mod grid;
pub mod pool;

pub use backend::{Executor, RayonExecutor, SerialExecutor, StaticExecutor};
pub use barrier::SpinBarrier;
pub use grid::{GridPartition, TaskBox};
pub use pool::ThreadPool;
