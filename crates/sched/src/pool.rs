//! Persistent fork–join thread pool with statically pre-assigned work
//! (§4.5).
//!
//! The pool holds `n − 1` worker threads plus the calling thread. Each
//! parallel region is exactly one fork–join: the main thread publishes a
//! job, everyone crosses the start [`SpinBarrier`], runs its statically
//! assigned share, flushes streaming stores, and crosses the end barrier.
//! No work stealing, no queues — per the paper, load balance comes from the
//! static [`crate::GridPartition`], and synchronisation cost is two spins.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::barrier::SpinBarrier;

/// Type-erased job pointer: a borrowed `Fn(usize)` whose lifetime is
/// guaranteed by the fork–join protocol (the publisher cannot return from
/// `run` until every worker has crossed the end barrier).
type JobPtr = *const (dyn Fn(usize) + Sync);

struct Shared {
    start: SpinBarrier,
    end: SpinBarrier,
    job: UnsafeCell<Option<JobPtr>>,
    shutdown: AtomicBool,
}

// SAFETY: `job` is only written by the main thread strictly before the
// start barrier and only read by workers strictly after it; the barrier's
// release/acquire pair orders those accesses.
unsafe impl Sync for Shared {}
unsafe impl Send for Shared {}

/// A fixed-size fork–join pool.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    n_threads: usize,
}

impl ThreadPool {
    /// Create a pool of `n_threads` total participants (including the
    /// calling thread), so `n_threads - 1` OS threads are spawned.
    ///
    /// # Panics
    /// Panics if `n_threads == 0`.
    pub fn new(n_threads: usize) -> ThreadPool {
        assert!(n_threads > 0);
        let shared = Arc::new(Shared {
            start: SpinBarrier::new(n_threads),
            end: SpinBarrier::new(n_threads),
            job: UnsafeCell::new(None),
            shutdown: AtomicBool::new(false),
        });
        let workers = (1..n_threads)
            .map(|tid| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("wino-worker-{tid}"))
                    .spawn(move || worker_loop(&shared, tid))
                    .expect("failed to spawn worker")
            })
            .collect();
        ThreadPool { shared, workers, n_threads }
    }

    /// Pool with one participant per available hardware thread.
    pub fn with_available_parallelism() -> ThreadPool {
        let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        ThreadPool::new(n)
    }

    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// One fork–join: run `f(tid)` on every thread (tid `0..n_threads`,
    /// the calling thread is tid 0), returning after all have finished.
    /// Streaming stores issued inside `f` are globally visible on return.
    pub fn run<F: Fn(usize) + Sync>(&self, f: F) {
        if self.n_threads == 1 {
            f(0);
            wino_simd::sfence();
            return;
        }
        let ptr: *const (dyn Fn(usize) + Sync + '_) = &f;
        // SAFETY: only the main thread writes `job`, and only outside a
        // fork–join region (workers are parked at the start barrier).
        // Erasing the lifetime is sound because we join at `end.wait()`
        // below before `f` can drop.
        let ptr: JobPtr =
            unsafe { std::mem::transmute::<*const (dyn Fn(usize) + Sync + '_), JobPtr>(ptr) };
        unsafe {
            *self.shared.job.get() = Some(ptr);
        }
        self.shared.start.wait();
        f(0);
        wino_simd::sfence();
        self.shared.end.wait();
    }
}

fn worker_loop(shared: &Shared, tid: usize) {
    loop {
        shared.start.wait();
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // SAFETY: the start barrier ordered this read after the main
        // thread's write; the job pointer is valid until the end barrier.
        let job = unsafe { (*shared.job.get()).expect("job published before barrier") };
        // SAFETY: dereferencing the type-erased borrow; validity as above.
        unsafe { (*job)(tid) };
        // Make this worker's streaming stores visible before the join.
        wino_simd::sfence();
        shared.end.wait();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        if self.n_threads > 1 {
            self.shared.shutdown.store(true, Ordering::Release);
            self.shared.start.wait();
            for w in self.workers.drain(..) {
                let _ = w.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let count = AtomicUsize::new(0);
        pool.run(|tid| {
            assert_eq!(tid, 0);
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn every_tid_runs_exactly_once_per_forkjoin() {
        let pool = ThreadPool::new(4);
        for _ in 0..50 {
            let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
            pool.run(|tid| {
                hits[tid].fetch_add(1, Ordering::Relaxed);
            });
            for (tid, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "tid {tid}");
            }
        }
    }

    #[test]
    fn results_are_visible_after_run() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0usize; 1024];
        {
            let chunks: Vec<_> = data.chunks_mut(256).collect();
            // Hand each thread a disjoint chunk through a lock-free cell.
            let cell = std::sync::Mutex::new(chunks);
            pool.run(|tid| {
                let chunk = {
                    let mut guard = cell.lock().unwrap();
                    guard.pop()
                };
                if let Some(chunk) = chunk {
                    for (i, x) in chunk.iter_mut().enumerate() {
                        *x = tid * 1000 + i;
                    }
                }
            });
        }
        // All four chunks written (values nonzero except index 0 of some).
        assert!(data[1] != 0 && data[257] != 0 && data[513] != 0 && data[769] != 0);
    }

    #[test]
    fn sequential_runs_do_not_deadlock() {
        let pool = ThreadPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..200 {
            pool.run(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 600);
    }

    #[test]
    fn drop_joins_workers() {
        for _ in 0..10 {
            let pool = ThreadPool::new(4);
            pool.run(|_| {});
            drop(pool); // must not hang or leak
        }
    }

    #[test]
    fn nested_data_parallel_work() {
        let pool = ThreadPool::new(4);
        let acc = AtomicUsize::new(0);
        pool.run(|tid| {
            // Simulate per-thread statically assigned iteration.
            let mut local = 0;
            for i in 0..1000 {
                if i % 4 == tid {
                    local += i;
                }
            }
            acc.fetch_add(local, Ordering::Relaxed);
        });
        assert_eq!(acc.load(Ordering::Relaxed), (0..1000).sum::<usize>());
    }
}
