//! Persistent fork–join thread pool with statically pre-assigned work
//! (§4.5), hardened for long-running server use.
//!
//! The pool holds `n − 1` worker threads plus the calling thread. Each
//! parallel region is exactly one fork–join: the main thread publishes a
//! job, everyone crosses the start [`SpinBarrier`], runs its statically
//! assigned share, flushes streaming stores, and crosses the end barrier.
//! No work stealing, no queues — per the paper, load balance comes from the
//! static [`crate::GridPartition`], and synchronisation cost is two spins.
//!
//! # Failure model
//!
//! The paper assumes a dedicated machine and perfect jobs; a production
//! server gets neither, so every participant (workers *and* tid 0) runs
//! its job share inside `catch_unwind` and **always crosses the end
//! barrier**. Panics are collected into a shared slot and surface as
//! [`PoolError::Panicked`] from [`ThreadPool::run`]; the pool remains
//! fully usable for subsequent fork–joins. Only a participant that is
//! truly gone (killed thread, runaway stall) trips the barrier watchdog —
//! the pool then poisons both barriers so every thread unwinds promptly,
//! marks itself [`PoolError::Unusable`], and `Drop` detaches instead of
//! joining threads that may never return. Because each job borrows the
//! caller's closure for the duration of the fork–join, an end-barrier
//! timeout does not return until every participant has provably exited
//! its job share; a participant wedged *inside* the closure past a grace
//! period aborts the process rather than let `run` return while the
//! borrow is live.

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::barrier::{BarrierError, SpinBarrier};
use crate::handoff::JobExitLatch;

/// Default watchdog deadline for one barrier crossing. The end-barrier
/// wait subsumes the other participants' entire job share, so this must
/// comfortably exceed the largest per-thread work item plus scheduling
/// noise on an oversubscribed machine.
pub const DEFAULT_DEADLINE: Duration = Duration::from_secs(30);

/// The process-wide default watchdog deadline: `WINO_WATCHDOG_MS`
/// (a positive integer, milliseconds) when set and parseable, otherwise
/// [`DEFAULT_DEADLINE`]. Read on every call — pool construction is rare,
/// and not caching keeps the override testable — and used by
/// [`ThreadPool::new`] so long soaks on contended CI machines can widen
/// the watchdog without code changes. An explicit
/// [`ThreadPool::with_deadline`] always wins over the environment.
pub fn default_deadline() -> Duration {
    match std::env::var("WINO_WATCHDOG_MS") {
        Ok(ms) => match ms.trim().parse::<u64>() {
            Ok(ms) if ms > 0 => Duration::from_millis(ms),
            _ => DEFAULT_DEADLINE,
        },
        Err(_) => DEFAULT_DEADLINE,
    }
}

/// Why a fork–join failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// One or more participants panicked while running the job. Contains
    /// `(tid, panic message)` per panicking participant, in tid order.
    /// The pool is still usable.
    Panicked { panics: Vec<(usize, String)> },
    /// A barrier watchdog fired: a participant never reached the
    /// fork–join barrier. The pool is dead afterwards.
    Barrier(BarrierError),
    /// The pool was disabled by an earlier barrier failure; no further
    /// fork–joins will run.
    Unusable,
}

impl PoolError {
    /// The tids reported as panicked (empty for non-panic errors).
    pub fn panicking_tids(&self) -> Vec<usize> {
        match self {
            PoolError::Panicked { panics } => panics.iter().map(|(t, _)| *t).collect(),
            _ => Vec::new(),
        }
    }
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Panicked { panics } => {
                write!(f, "{} participant(s) panicked:", panics.len())?;
                for (tid, msg) in panics {
                    write!(f, " [tid {tid}: {msg}]")?;
                }
                Ok(())
            }
            PoolError::Barrier(e) => write!(f, "fork-join barrier failure: {e}"),
            PoolError::Unusable => write!(f, "thread pool disabled by an earlier barrier failure"),
        }
    }
}

impl std::error::Error for PoolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PoolError::Barrier(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BarrierError> for PoolError {
    fn from(e: BarrierError) -> Self {
        PoolError::Barrier(e)
    }
}

/// Type-erased job pointer: a borrowed `Fn(usize)` whose lifetime is
/// guaranteed by the fork–join protocol (the publisher cannot return from
/// `run` until every worker has crossed the end barrier).
type JobPtr = *const (dyn Fn(usize) + Sync);

struct Shared {
    start: SpinBarrier,
    end: SpinBarrier,
    job: UnsafeCell<Option<JobPtr>>,
    shutdown: AtomicBool,
    /// Panic payloads collected during the current fork–join, drained by
    /// tid 0 after the end barrier.
    panics: Mutex<Vec<(usize, String)>>,
    /// Completed fork–join count; also the epoch used by fault injection.
    epoch: AtomicU64,
    /// Counts participants out of the borrowed job closure. Tid 0 resets
    /// it after each successful end-barrier crossing; on an end-barrier
    /// timeout it gates `run`'s return (see [`ThreadPool::await_job_exit`]
    /// and the [`crate::handoff`] module docs).
    job_done: JobExitLatch,
}

// SAFETY: `job` is only written by the main thread strictly before the
// start barrier and only read by workers strictly after it; the barrier's
// release/acquire pair orders those accesses.
unsafe impl Sync for Shared {}
// SAFETY: the raw `job` pointer is the only non-Send field; ownership of
// the pointee stays with `run`, which outlives every worker access.
unsafe impl Send for Shared {}

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one participant's share of the job with panic containment; records
/// any panic in the shared slot instead of unwinding into the barrier.
fn run_job(shared: &Shared, tid: usize, epoch: u64, job: &(dyn Fn(usize) + Sync)) {
    let _ = epoch; // used only by the fault hooks
    let result = catch_unwind(AssertUnwindSafe(|| {
        #[cfg(feature = "fault-inject")]
        crate::fault::before_job(tid, epoch);
        job(tid);
    }));
    // The closure borrow is dead from here on: counting out through the
    // latch is what lets `run` return (dropping the closure) on the
    // timeout path — even if this thread then stalls before the end
    // barrier (e.g. in the `after_job` fault hook).
    shared.job_done.record_exit();
    if let Err(payload) = result {
        let mut slot = shared.panics.lock().unwrap_or_else(|e| e.into_inner());
        slot.push((tid, panic_message(payload)));
    }
    #[cfg(feature = "fault-inject")]
    crate::fault::after_job(tid, epoch);
}

/// A fixed-size fork–join pool.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    n_threads: usize,
    deadline: Duration,
    /// Set after a barrier failure: the participant set is broken and no
    /// further fork–join can complete.
    dead: AtomicBool,
}

impl ThreadPool {
    /// Create a pool of `n_threads` total participants (including the
    /// calling thread), so `n_threads - 1` OS threads are spawned, with
    /// the default watchdog deadline ([`default_deadline`] — the
    /// `WINO_WATCHDOG_MS` environment override, or [`DEFAULT_DEADLINE`]).
    ///
    /// # Panics
    /// Panics if `n_threads == 0`.
    pub fn new(n_threads: usize) -> ThreadPool {
        ThreadPool::with_deadline(n_threads, default_deadline())
    }

    /// As [`ThreadPool::new`] with an explicit barrier watchdog deadline.
    pub fn with_deadline(n_threads: usize, deadline: Duration) -> ThreadPool {
        ThreadPool::with_deadline_pinned(n_threads, deadline, None)
    }

    /// As [`ThreadPool::with_deadline`], optionally pinning every spawned
    /// worker to `pin_cpus` (a topology domain's CPU set) before it first
    /// parks at the start barrier. Pinning is best effort: if the kernel
    /// refuses (or the target has no affinity syscall) the worker runs
    /// unpinned — locality is an optimisation, never a correctness
    /// requirement. The calling thread (tid 0) is *not* pinned here; a
    /// driver that wants matching affinity pins itself (see
    /// [`crate::shard::ShardedPool`]).
    pub fn with_deadline_pinned(
        n_threads: usize,
        deadline: Duration,
        pin_cpus: Option<Vec<usize>>,
    ) -> ThreadPool {
        assert!(n_threads > 0);
        let pin_cpus = pin_cpus.map(Arc::<[usize]>::from);
        let shared = Arc::new(Shared {
            start: SpinBarrier::new(n_threads),
            end: SpinBarrier::new(n_threads),
            job: UnsafeCell::new(None),
            shutdown: AtomicBool::new(false),
            panics: Mutex::new(Vec::new()),
            epoch: AtomicU64::new(0),
            job_done: JobExitLatch::new(),
        });
        let workers = (1..n_threads)
            .map(|tid| {
                let shared = Arc::clone(&shared);
                let pin = pin_cpus.clone();
                std::thread::Builder::new()
                    .name(format!("wino-worker-{tid}"))
                    .spawn(move || {
                        if let Some(cpus) = pin {
                            let _ = crate::topology::pin_current_thread(&cpus);
                        }
                        worker_loop(&shared, tid)
                    })
                    .expect("failed to spawn worker")
            })
            .collect();
        ThreadPool { shared, workers, n_threads, deadline, dead: AtomicBool::new(false) }
    }

    /// Pool sized by the process-wide thread policy
    /// ([`crate::topology::configured_threads`]): the `WINO_THREADS`
    /// override when set, otherwise every online CPU of the detected
    /// topology.
    pub fn with_available_parallelism() -> ThreadPool {
        ThreadPool::new(crate::topology::configured_threads())
    }

    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// The configured barrier watchdog deadline.
    pub fn deadline(&self) -> Duration {
        self.deadline
    }

    /// Fork–joins started so far (the epoch the *next* `run` will use).
    pub fn forkjoins(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Whether the pool has been disabled by a barrier failure.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// Active liveness probe: one empty fork–join across every
    /// participant. `Ok(())` proves each worker is parked at the start
    /// barrier and able to complete a round trip within the watchdog
    /// deadline; `Err` is the same typed failure [`ThreadPool::run`]
    /// would report (`Unusable` for an already-dead pool, `Barrier` for a
    /// participant that has silently died since the last job). Long-lived
    /// servers call this after a pool-level failure to decide whether the
    /// pool must be rebuilt.
    pub fn health_check(&self) -> Result<(), PoolError> {
        self.run(|_| {})
    }

    pub(crate) fn mark_dead(&self) {
        self.dead.store(true, Ordering::Release);
        // Unwind every parked or spinning participant promptly.
        self.shared.start.poison();
        self.shared.end.poison();
    }

    /// One fork–join: run `f(tid)` on every thread (tid `0..n_threads`,
    /// the calling thread is tid 0), returning after all have finished.
    /// Streaming stores issued inside `f` are globally visible on return.
    ///
    /// A panic inside `f` on any participant is contained: every thread
    /// still reaches the end barrier, and the panics are reported as
    /// [`PoolError::Panicked`] — the pool stays usable. A participant that
    /// never reaches a barrier (killed or stalled thread) trips the
    /// watchdog within [`Self::deadline`]; the pool is then permanently
    /// [`PoolError::Unusable`]. In that case the error is not returned
    /// until every participant has exited `f` (so the borrow of `f` and
    /// anything it captures is dead); a participant wedged inside `f`
    /// beyond a grace period aborts the process.
    pub fn run<F: Fn(usize) + Sync>(&self, f: F) -> Result<(), PoolError> {
        if self.is_dead() {
            return Err(PoolError::Unusable);
        }
        let epoch = self.shared.epoch.fetch_add(1, Ordering::AcqRel);
        if self.n_threads == 1 {
            run_job(&self.shared, 0, epoch, &f);
            self.shared.job_done.reset();
            wino_simd::sfence();
            return self.drain_panics();
        }
        let ptr: *const (dyn Fn(usize) + Sync + '_) = &f;
        // SAFETY: only the main thread writes `job`, and only outside a
        // fork–join region (workers are parked at the start barrier).
        // Erasing the lifetime is sound because `run` does not return
        // while any participant can still dereference the job:
        // * on the successful path, every worker has crossed the end
        //   barrier (its job share is long done);
        // * a start-barrier `Timeout` means the poison-CAS beat the
        //   generation CAS, so no worker was released into the job at
        //   all (see `SpinBarrier::wait_deadline`);
        // * an end-barrier timeout blocks in `await_job_exit` until every
        //   participant's `job_done` increment proves the borrow dead —
        //   or aborts the process if one is wedged inside the closure.
        let ptr: JobPtr =
            unsafe { std::mem::transmute::<*const (dyn Fn(usize) + Sync + '_), JobPtr>(ptr) };
        // SAFETY: exclusive access — workers only read `job` between the
        // barriers, and they are parked at the start barrier here.
        unsafe {
            *self.shared.job.get() = Some(ptr);
        }
        if let Err(e) = self.shared.start.wait_deadline(Some(self.deadline)) {
            self.mark_dead();
            return Err(e.into());
        }
        run_job(&self.shared, 0, epoch, &f);
        wino_simd::sfence();
        if let Err(e) = self.shared.end.wait_deadline(Some(self.deadline)) {
            self.mark_dead();
            self.await_job_exit();
            return Err(e.into());
        }
        // Workers are parked at the start barrier again; reset the exit
        // count for the next fork–join.
        self.shared.job_done.reset();
        self.drain_panics()
    }

    /// Block until every participant has exited the current job closure
    /// (all crossed the start barrier, so all will run it exactly once).
    /// Called after an end-barrier timeout: the barriers are already
    /// poisoned, but a participant that is merely slow — or stalled
    /// *between* its job share and the end barrier — may still hold the
    /// type-erased borrow of the caller's closure; returning from `run`
    /// before it lets go would leave it dereferencing freed memory. A
    /// participant still inside the closure after a further grace period
    /// is wedged for good, and aborting is the only sound option left.
    fn await_job_exit(&self) {
        let grace = self.deadline.max(Duration::from_secs(1));
        if self.shared.job_done.await_all(self.n_threads, grace).is_err() {
            eprintln!(
                "wino-sched: fatal: a participant is still executing its job share \
                 {grace:?} after the end-barrier watchdog fired; aborting, as \
                 returning would free buffers the stuck thread still references"
            );
            std::process::abort();
        }
    }

    fn drain_panics(&self) -> Result<(), PoolError> {
        let mut slot = self.shared.panics.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_empty() {
            Ok(())
        } else {
            let mut panics = std::mem::take(&mut *slot);
            panics.sort_by_key(|(tid, _)| *tid);
            Err(PoolError::Panicked { panics })
        }
    }
}

fn worker_loop(shared: &Shared, tid: usize) {
    loop {
        // Unbounded wait while idle (no watchdog churn between layers);
        // a poisoned barrier unparks us immediately.
        if shared.start.wait_deadline(None).is_err() {
            return;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let epoch = shared.epoch.load(Ordering::Acquire).wrapping_sub(1);
        // SAFETY: the start barrier ordered this read after the main
        // thread's write; the job pointer stays valid until this thread's
        // `job_done` increment inside `run_job` (which is what allows the
        // publisher to return and drop the closure).
        let job = unsafe { (*shared.job.get()).expect("job published before barrier") };
        // SAFETY: dereferencing the type-erased borrow; validity as above.
        run_job(shared, tid, epoch, unsafe { &*job });
        // Make this worker's streaming stores visible before the join.
        wino_simd::sfence();
        if shared.end.wait_deadline(None).is_err() {
            return;
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        if self.n_threads <= 1 {
            return;
        }
        if self.is_dead() {
            // Workers have unwound (or are unwinding) through the
            // poisoned barriers; one may still be stalled inside a job we
            // cannot interrupt. Detach instead of risking a join that
            // never returns.
            self.workers.clear();
            return;
        }
        self.shared.shutdown.store(true, Ordering::Release);
        match self.shared.start.wait_deadline(Some(self.deadline)) {
            Ok(_) => {
                for w in self.workers.drain(..) {
                    let _ = w.join();
                }
            }
            Err(_) => {
                // A worker died without tripping a run-time watchdog
                // (e.g. the pool was never used after the fault). The
                // barrier is now poisoned, so live workers exit on their
                // own; detach the handles.
                self.workers.clear();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Instant;

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let count = AtomicUsize::new(0);
        pool.run(|tid| {
            assert_eq!(tid, 0);
            // ORDERING: Relaxed — test counter; run()'s fork–join orders it.
            count.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        // ORDERING: Relaxed — read after run() returned.
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn every_tid_runs_exactly_once_per_forkjoin() {
        let pool = ThreadPool::new(4);
        for _ in 0..50 {
            let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
            pool.run(|tid| {
                // ORDERING: Relaxed — test counter; run()'s fork–join orders it.
                hits[tid].fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
            for (tid, h) in hits.iter().enumerate() {
                // ORDERING: Relaxed — read after run() returned.
                assert_eq!(h.load(Ordering::Relaxed), 1, "tid {tid}");
            }
        }
    }

    #[test]
    fn results_are_visible_after_run() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0usize; 1024];
        {
            let chunks: Vec<_> = data.chunks_mut(256).collect();
            // Hand each thread a disjoint chunk through a lock-free cell.
            let cell = std::sync::Mutex::new(chunks);
            pool.run(|tid| {
                let chunk = {
                    let mut guard = cell.lock().unwrap();
                    guard.pop()
                };
                if let Some(chunk) = chunk {
                    for (i, x) in chunk.iter_mut().enumerate() {
                        *x = tid * 1000 + i;
                    }
                }
            })
            .unwrap();
        }
        // All four chunks written (values nonzero except index 0 of some).
        assert!(data[1] != 0 && data[257] != 0 && data[513] != 0 && data[769] != 0);
    }

    #[test]
    fn sequential_runs_do_not_deadlock() {
        let pool = ThreadPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..200 {
            pool.run(|_| {
                // ORDERING: Relaxed — test counter; run()'s fork–join orders it.
                total.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        // ORDERING: Relaxed — read after run() returned.
        assert_eq!(total.load(Ordering::Relaxed), 600);
        assert_eq!(pool.forkjoins(), 200);
    }

    #[test]
    fn drop_joins_workers() {
        for _ in 0..10 {
            let pool = ThreadPool::new(4);
            pool.run(|_| {}).unwrap();
            drop(pool); // must not hang or leak
        }
    }

    #[test]
    fn nested_data_parallel_work() {
        let pool = ThreadPool::new(4);
        let acc = AtomicUsize::new(0);
        pool.run(|tid| {
            // Simulate per-thread statically assigned iteration.
            let mut local = 0;
            for i in 0..1000 {
                if i % 4 == tid {
                    local += i;
                }
            }
            // ORDERING: Relaxed — test counter; run()'s fork–join orders it.
            acc.fetch_add(local, Ordering::Relaxed);
        })
        .unwrap();
        // ORDERING: Relaxed — read after run() returned.
        assert_eq!(acc.load(Ordering::Relaxed), (0..1000).sum::<usize>());
    }

    // ---- panic containment ----

    #[test]
    fn single_worker_panic_is_reported_not_hung() {
        let pool = ThreadPool::new(4);
        let err = pool
            .run(|tid| {
                if tid == 2 {
                    panic!("boom on {tid}");
                }
            })
            .expect_err("tid 2 panicked");
        match &err {
            PoolError::Panicked { panics } => {
                assert_eq!(panics.len(), 1);
                assert_eq!(panics[0].0, 2);
                assert!(panics[0].1.contains("boom on 2"), "message: {}", panics[0].1);
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert_eq!(err.panicking_tids(), vec![2]);
        // The pool must still work.
        let count = AtomicUsize::new(0);
        pool.run(|_| {
            // ORDERING: Relaxed — test counter; run()'s fork–join orders it.
            count.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        // ORDERING: Relaxed — read after run() returned.
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn panic_on_main_participant_is_contained() {
        let pool = ThreadPool::new(3);
        let err = pool
            .run(|tid| {
                if tid == 0 {
                    panic!("main-thread job failure");
                }
            })
            .expect_err("tid 0 panicked");
        assert_eq!(err.panicking_tids(), vec![0]);
        pool.run(|_| {}).unwrap();
    }

    #[test]
    fn all_participants_panicking_reports_every_tid() {
        let pool = ThreadPool::new(4);
        let err = pool.run(|tid| panic!("tid {tid} dies")).expect_err("all panicked");
        assert_eq!(err.panicking_tids(), vec![0, 1, 2, 3]);
        pool.run(|_| {}).unwrap();
    }

    #[test]
    fn pool_survives_100_alternating_panicking_and_clean_forkjoins() {
        let pool = ThreadPool::new(4);
        let clean = AtomicUsize::new(0);
        for round in 0..100 {
            if round % 2 == 0 {
                let err = pool
                    .run(|tid| {
                        if tid == round % 4 {
                            panic!("round {round}");
                        }
                    })
                    .expect_err("one tid panics on even rounds");
                assert_eq!(err.panicking_tids(), vec![round % 4]);
            } else {
                pool.run(|_| {
                    // ORDERING: Relaxed — test counter; run()'s fork–join orders it.
                    clean.fetch_add(1, Ordering::Relaxed);
                })
                .unwrap();
            }
        }
        // ORDERING: Relaxed — read after run() returned.
        assert_eq!(clean.load(Ordering::Relaxed), 50 * 4);
        assert!(!pool.is_dead());
    }

    #[test]
    fn panic_in_single_thread_pool_is_contained() {
        let pool = ThreadPool::new(1);
        let err = pool.run(|_| panic!("inline")).expect_err("inline job panicked");
        assert_eq!(err.panicking_tids(), vec![0]);
        pool.run(|_| {}).unwrap();
    }

    #[test]
    fn non_string_panic_payload_is_reported() {
        let pool = ThreadPool::new(2);
        let err = pool
            .run(|tid| {
                if tid == 1 {
                    std::panic::panic_any(42usize);
                }
            })
            .expect_err("panicked with non-string payload");
        match err {
            PoolError::Panicked { panics } => {
                assert_eq!(panics[0].1, "non-string panic payload");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    // ---- watchdog / drop robustness ----

    #[test]
    fn dead_pool_fails_fast_and_drop_does_not_hang() {
        // Simulate a dead participant by poisoning the barriers directly
        // (the non-fault-injected stand-in for a killed worker).
        let pool = ThreadPool::with_deadline(4, Duration::from_millis(100));
        pool.run(|_| {}).unwrap();
        pool.mark_dead();
        assert_eq!(pool.run(|_| {}), Err(PoolError::Unusable));
        assert_eq!(pool.run(|_| {}), Err(PoolError::Unusable));
        drop(pool); // must detach, not deadlock
    }

    #[test]
    fn end_barrier_timeout_waits_for_slow_job_before_returning() {
        // A worker still *inside* its job share when the end-barrier
        // watchdog fires: `run` must not return (dropping the closure and
        // the captured buffer) until the worker has exited the closure.
        let pool = ThreadPool::with_deadline(2, Duration::from_millis(50));
        let buffer = vec![7u8; 4096];
        let finished = AtomicUsize::new(0);
        let t0 = Instant::now();
        let err = pool
            .run(|tid| {
                if tid == 1 {
                    std::thread::sleep(Duration::from_millis(400));
                }
                // Touch the captured buffer right up to the end of the
                // job — a use-after-free if `run` returned early.
                assert_eq!(buffer[tid], 7);
                finished.fetch_add(1, Ordering::SeqCst);
            })
            .expect_err("watchdog must fire before the slow worker finishes");
        assert!(matches!(err, PoolError::Barrier(BarrierError::Timeout { .. })), "{err:?}");
        // `run` returned only after both participants left the closure…
        assert_eq!(finished.load(Ordering::SeqCst), 2);
        assert!(t0.elapsed() >= Duration::from_millis(400), "returned while job ran");
        // …and the pool is dead (the watchdog did fire).
        assert!(pool.is_dead());
        drop(pool);
    }

    #[test]
    fn drop_tolerates_exited_workers() {
        // Worker threads that already unwound through a poisoned start
        // barrier must not deadlock Drop's shutdown handshake.
        let pool = ThreadPool::with_deadline(3, Duration::from_millis(100));
        pool.shared.start.poison();
        // Give the workers a moment to observe the poison and exit.
        std::thread::sleep(Duration::from_millis(50));
        drop(pool); // start.wait_deadline errors; handles are detached
    }

    #[test]
    fn health_check_reports_liveness() {
        let pool = ThreadPool::new(3);
        pool.health_check().unwrap();
        // Still usable for real work afterwards.
        pool.run(|_| {}).unwrap();
        // A dead pool fails the probe with the typed unusable error.
        pool.mark_dead();
        assert_eq!(pool.health_check(), Err(PoolError::Unusable));
    }

    #[test]
    fn watchdog_env_override_and_default() {
        // Serialised against other env-sensitive logic by using a value
        // far above every deadline used in this suite: a concurrently
        // constructed pool only ever gets a *longer* watchdog.
        std::env::set_var("WINO_WATCHDOG_MS", "120000");
        assert_eq!(default_deadline(), Duration::from_millis(120_000));
        let pool = ThreadPool::new(2);
        assert_eq!(pool.deadline(), Duration::from_millis(120_000));
        pool.run(|_| {}).unwrap();
        drop(pool);
        // Unparseable and non-positive values fall back to the default.
        std::env::set_var("WINO_WATCHDOG_MS", "not-a-number");
        assert_eq!(default_deadline(), DEFAULT_DEADLINE);
        std::env::set_var("WINO_WATCHDOG_MS", "0");
        assert_eq!(default_deadline(), DEFAULT_DEADLINE);
        // Unset: the default path (also what every other test exercises).
        std::env::remove_var("WINO_WATCHDOG_MS");
        assert_eq!(default_deadline(), DEFAULT_DEADLINE);
        let pool = ThreadPool::new(2);
        assert_eq!(pool.deadline(), DEFAULT_DEADLINE);
    }

    #[test]
    fn error_display_formats() {
        let e = PoolError::Panicked { panics: vec![(2, "boom".into())] };
        let s = e.to_string();
        assert!(s.contains("tid 2") && s.contains("boom"), "{s}");
        let e = PoolError::Barrier(BarrierError::Poisoned);
        assert!(e.to_string().contains("poisoned"));
        assert!(PoolError::Unusable.to_string().contains("disabled"));
    }
}
