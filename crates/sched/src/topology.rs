//! CPU topology detection and the process-wide thread-count policy.
//!
//! The paper's scalability results (§7) are taken on a 64-core KNL where
//! *where* a thread runs matters as much as how many there are: last-level
//! caches are not uniform, and a fork–join whose participants straddle
//! cache domains pays for it at every barrier. This module gives the rest
//! of the workspace one place to answer two questions:
//!
//! 1. **What does the machine look like?** [`Topology::detect`] groups
//!    online CPUs into *domains* — the set of CPUs sharing a last-level
//!    cache (a CCX on Zen, a socket on most Intel parts) — by reading
//!    Linux sysfs. The same reader runs against pinned fixture trees in
//!    tests ([`Topology::from_sysfs`] takes any directory shaped like
//!    `/sys/devices/system/cpu`), and the `WINO_TOPOLOGY` environment
//!    variable overrides detection entirely with a parsable spec, so CI
//!    runs are deterministic on any host.
//! 2. **How many threads should a pool have?** [`configured_threads`] is
//!    the single sizing policy: the `WINO_THREADS` override when set,
//!    otherwise every online CPU of the detected topology. All former
//!    ad-hoc `available_parallelism` call sites route through it.
//!
//! # The `WINO_TOPOLOGY` spec
//!
//! Three forms, checked in order:
//!
//! * `K x M` (e.g. `2x8`) — `K` domains of `M` consecutive CPU ids each;
//!   `K x M x S` additionally declares `S`-way SMT (ids still consecutive,
//!   `M · S` CPUs per domain).
//! * a `;`-separated list of sysfs *cpulists* (e.g. `0-3,16-19;4-7`),
//!   optionally prefixed `smtS:` — exactly the format
//!   [`Topology::to_spec`] renders, so specs round-trip.
//! * a bare integer `N` — one flat domain of `N` CPUs.
//!
//! ```
//! use wino_sched::topology::Topology;
//!
//! let t = Topology::from_spec("2x4").unwrap();
//! assert_eq!(t.domains().len(), 2);
//! assert_eq!(t.total_cpus(), 8);
//! assert_eq!(t.domains()[1].cpus, vec![4, 5, 6, 7]);
//!
//! // to_spec() renders the cpulist form, which parses back losslessly.
//! let spec = t.to_spec();
//! assert_eq!(spec, "0-3;4-7");
//! assert_eq!(Topology::from_spec(&spec).unwrap().domains(), t.domains());
//! ```
//!
//! # Affinity
//!
//! [`pin_current_thread`] restricts the calling thread to a CPU set via a
//! raw `sched_setaffinity` syscall (no libc dependency). It is always
//! best-effort: on non-Linux targets or when the kernel refuses it
//! returns a typed error and the caller proceeds unpinned — pinning is a
//! locality optimisation, never a correctness requirement.

use std::path::Path;

/// Where a [`Topology`] came from — recorded so reports can state their
/// provenance (`BENCH_scaling.json` carries it verbatim).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologySource {
    /// Parsed from the `WINO_TOPOLOGY` environment override.
    Env,
    /// Read from a sysfs tree (`/sys/devices/system/cpu` or a fixture).
    Sysfs,
    /// Fallback: one flat domain sized by `available_parallelism`.
    Flat,
}

impl TopologySource {
    /// Stable lower-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            TopologySource::Env => "env",
            TopologySource::Sysfs => "sysfs",
            TopologySource::Flat => "flat",
        }
    }
}

/// One scheduling domain: the CPUs sharing a last-level cache.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Domain {
    /// Dense domain index, `0..topology.domains().len()`.
    pub id: usize,
    /// The physical package (socket) the domain belongs to.
    pub package: usize,
    /// Sorted online CPU ids in the domain. Never empty.
    pub cpus: Vec<usize>,
}

/// The machine's CPU layout as a list of last-level-cache domains.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    domains: Vec<Domain>,
    smt_per_core: usize,
    source: TopologySource,
}

/// Why a spec or sysfs tree could not be turned into a [`Topology`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// A `WINO_TOPOLOGY` spec that parses to nothing or malformed fields.
    BadSpec(String),
    /// A sysfs tree missing the files the reader requires.
    Sysfs(String),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::BadSpec(m) => write!(f, "bad topology spec: {m}"),
            TopologyError::Sysfs(m) => write!(f, "sysfs topology read failed: {m}"),
        }
    }
}

impl std::error::Error for TopologyError {}

impl Topology {
    /// Detect the host topology: the `WINO_TOPOLOGY` override when set
    /// (a malformed spec falls through — detection must never fail),
    /// otherwise Linux sysfs, otherwise one flat domain of
    /// `available_parallelism` CPUs. Reads the environment on every call;
    /// topology lookups happen at pool construction, which is rare, and
    /// not caching keeps the override testable.
    pub fn detect() -> Topology {
        if let Ok(spec) = std::env::var("WINO_TOPOLOGY") {
            if let Ok(t) = Topology::from_spec(&spec) {
                return t;
            }
        }
        if let Ok(t) = Topology::from_sysfs(Path::new("/sys/devices/system/cpu")) {
            return t;
        }
        let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Topology::flat(n)
    }

    /// One flat domain of `n` CPUs (ids `0..n`), no SMT information.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn flat(n: usize) -> Topology {
        assert!(n > 0, "a topology needs at least one CPU");
        Topology {
            domains: vec![Domain { id: 0, package: 0, cpus: (0..n).collect() }],
            smt_per_core: 1,
            source: TopologySource::Flat,
        }
    }

    /// Parse a `WINO_TOPOLOGY` spec (see the module docs for the grammar).
    pub fn from_spec(spec: &str) -> Result<Topology, TopologyError> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Err(TopologyError::BadSpec("empty spec".into()));
        }
        // `KxM` / `KxMxS` form: all-integer fields joined by 'x'.
        if spec.contains('x') {
            let parts: Vec<&str> = spec.split('x').collect();
            let nums: Option<Vec<usize>> = parts.iter().map(|p| p.trim().parse().ok()).collect();
            let nums = nums
                .ok_or_else(|| TopologyError::BadSpec(format!("'{spec}' is not KxM or KxMxS")))?;
            let (k, m, s) = match nums.as_slice() {
                [k, m] => (*k, *m, 1),
                [k, m, s] => (*k, *m, *s),
                _ => return Err(TopologyError::BadSpec(format!("'{spec}' has too many 'x' fields"))),
            };
            if k == 0 || m == 0 || s == 0 {
                return Err(TopologyError::BadSpec(format!("'{spec}' has a zero field")));
            }
            let per = m * s;
            let domains = (0..k)
                .map(|d| Domain { id: d, package: d, cpus: (d * per..(d + 1) * per).collect() })
                .collect();
            return Ok(Topology { domains, smt_per_core: s, source: TopologySource::Env });
        }
        // `smtS:` prefix on the cpulist form.
        let (smt, lists) = match spec.split_once(':') {
            Some((pre, rest)) if pre.starts_with("smt") => {
                let s: usize = pre[3..]
                    .parse()
                    .map_err(|_| TopologyError::BadSpec(format!("bad smt prefix '{pre}'")))?;
                if s == 0 {
                    return Err(TopologyError::BadSpec("smt0 is meaningless".into()));
                }
                (s, rest)
            }
            Some((pre, _)) => {
                return Err(TopologyError::BadSpec(format!("unknown prefix '{pre}'")));
            }
            None => (1, spec),
        };
        // Bare integer: one flat domain.
        if !lists.contains([';', ',', '-']) {
            let n: usize = lists
                .parse()
                .map_err(|_| TopologyError::BadSpec(format!("'{lists}' is not a CPU count")))?;
            if n == 0 {
                return Err(TopologyError::BadSpec("0 CPUs".into()));
            }
            let mut t = Topology::flat(n);
            t.smt_per_core = smt;
            t.source = TopologySource::Env;
            return Ok(t);
        }
        // `;`-separated cpulists.
        let mut domains = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for (id, list) in lists.split(';').enumerate() {
            let cpus = parse_cpulist(list)?;
            if cpus.is_empty() {
                return Err(TopologyError::BadSpec(format!("domain {id} is empty")));
            }
            for &c in &cpus {
                if !seen.insert(c) {
                    return Err(TopologyError::BadSpec(format!("cpu {c} in two domains")));
                }
            }
            domains.push(Domain { id, package: id, cpus });
        }
        Ok(Topology { domains, smt_per_core: smt, source: TopologySource::Env })
    }

    /// Render the spec form that [`Topology::from_spec`] parses back to
    /// the same domains and SMT width (the round-trip the fixture tests
    /// pin): `;`-joined cpulists, `smtS:`-prefixed when `S > 1`.
    pub fn to_spec(&self) -> String {
        let lists: Vec<String> = self.domains.iter().map(|d| render_cpulist(&d.cpus)).collect();
        let body = lists.join(";");
        if self.smt_per_core > 1 {
            format!("smt{}:{body}", self.smt_per_core)
        } else {
            body
        }
    }

    /// Read a sysfs CPU directory — `/sys/devices/system/cpu` on a live
    /// host, or a fixture tree with the same shape. Requires `online`
    /// (a cpulist); per-CPU files are optional with flat fallbacks:
    /// `cpuN/topology/physical_package_id` (default 0),
    /// `cpuN/cache/index3/shared_cpu_list` (default: the whole package),
    /// `cpuN/topology/thread_siblings_list` (default: the CPU alone).
    pub fn from_sysfs(cpu_dir: &Path) -> Result<Topology, TopologyError> {
        let online_path = cpu_dir.join("online");
        let online_text = std::fs::read_to_string(&online_path)
            .map_err(|e| TopologyError::Sysfs(format!("{}: {e}", online_path.display())))?;
        let online = parse_cpulist(&online_text)?;
        if online.is_empty() {
            return Err(TopologyError::Sysfs("no online CPUs".into()));
        }
        let online_set: std::collections::HashSet<usize> = online.iter().copied().collect();

        let read_opt = |rel: String| -> Option<String> {
            std::fs::read_to_string(cpu_dir.join(rel)).ok().map(|s| s.trim().to_string())
        };

        // Group CPUs into LLC domains. Key: (package, min online CPU of
        // the shared-LLC set) — the min CPU names the group; the package
        // disambiguates trees that report no cache file at all.
        let mut groups: std::collections::BTreeMap<(usize, usize), Vec<usize>> =
            std::collections::BTreeMap::new();
        let mut smt = 1usize;
        for &cpu in &online {
            let package = read_opt(format!("cpu{cpu}/topology/physical_package_id"))
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            let llc: Vec<usize> = read_opt(format!("cpu{cpu}/cache/index3/shared_cpu_list"))
                .and_then(|s| parse_cpulist(&s).ok())
                .unwrap_or_default()
                .into_iter()
                .filter(|c| online_set.contains(c))
                .collect();
            let key_cpu = llc.first().copied().unwrap_or(usize::MAX); // MAX ⇒ per-package group
            let siblings = read_opt(format!("cpu{cpu}/topology/thread_siblings_list"))
                .and_then(|s| parse_cpulist(&s).ok())
                .map(|v| v.into_iter().filter(|c| online_set.contains(c)).count())
                .unwrap_or(1);
            smt = smt.max(siblings.max(1));
            groups.entry((package, key_cpu)).or_default().push(cpu);
        }
        let mut domains: Vec<Domain> = groups
            .into_iter()
            .map(|((package, _), mut cpus)| {
                cpus.sort_unstable();
                Domain { id: 0, package, cpus }
            })
            .collect();
        domains.sort_by_key(|d| (d.package, d.cpus[0]));
        for (i, d) in domains.iter_mut().enumerate() {
            d.id = i;
        }
        Ok(Topology { domains, smt_per_core: smt, source: TopologySource::Sysfs })
    }

    /// The last-level-cache domains, sorted by (package, first CPU).
    pub fn domains(&self) -> &[Domain] {
        &self.domains
    }

    /// Total online CPUs across all domains.
    pub fn total_cpus(&self) -> usize {
        self.domains.iter().map(|d| d.cpus.len()).sum()
    }

    /// Hardware threads per core (1 when SMT is off or unknown).
    pub fn smt_per_core(&self) -> usize {
        self.smt_per_core
    }

    /// Where this topology came from.
    pub fn source(&self) -> TopologySource {
        self.source
    }
}

/// Parse a sysfs cpulist (`"0-3,8,10-11"`) into sorted CPU ids.
pub fn parse_cpulist(s: &str) -> Result<Vec<usize>, TopologyError> {
    let mut out = Vec::new();
    for part in s.trim().split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        match part.split_once('-') {
            Some((lo, hi)) => {
                let lo: usize = lo
                    .trim()
                    .parse()
                    .map_err(|_| TopologyError::BadSpec(format!("bad range start '{part}'")))?;
                let hi: usize = hi
                    .trim()
                    .parse()
                    .map_err(|_| TopologyError::BadSpec(format!("bad range end '{part}'")))?;
                if hi < lo {
                    return Err(TopologyError::BadSpec(format!("inverted range '{part}'")));
                }
                out.extend(lo..=hi);
            }
            None => out.push(
                part.parse()
                    .map_err(|_| TopologyError::BadSpec(format!("bad cpu id '{part}'")))?,
            ),
        }
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

/// Render sorted CPU ids as a sysfs cpulist, folding runs into ranges.
pub fn render_cpulist(cpus: &[usize]) -> String {
    let mut out = String::new();
    let mut i = 0;
    while i < cpus.len() {
        let start = cpus[i];
        let mut end = start;
        while i + 1 < cpus.len() && cpus[i + 1] == end + 1 {
            i += 1;
            end = cpus[i];
        }
        if !out.is_empty() {
            out.push(',');
        }
        if end > start {
            out.push_str(&format!("{start}-{end}"));
        } else {
            out.push_str(&format!("{start}"));
        }
        i += 1;
    }
    out
}

/// The process-wide thread-count policy — the one replacement for every
/// former ad-hoc `available_parallelism()` call site. `WINO_THREADS`
/// (a positive integer) wins when set and parseable; otherwise the count
/// is every online CPU of [`Topology::detect`] (which itself honours
/// `WINO_TOPOLOGY`). Read on every call, like
/// [`crate::pool::default_deadline`], so overrides stay testable.
pub fn configured_threads() -> usize {
    if let Ok(v) = std::env::var("WINO_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    Topology::detect().total_cpus()
}

/// Typed failure of [`pin_current_thread`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AffinityError {
    /// The CPU set was empty (or contained only ids ≥ 1024).
    EmptySet,
    /// This target has no affinity syscall wired up (non-Linux/x86-64).
    Unsupported,
    /// The kernel refused; contains the negated errno.
    Syscall(i32),
}

impl std::fmt::Display for AffinityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AffinityError::EmptySet => write!(f, "empty CPU set"),
            AffinityError::Unsupported => write!(f, "thread affinity unsupported on this target"),
            AffinityError::Syscall(e) => write!(f, "sched_setaffinity failed (errno {e})"),
        }
    }
}

impl std::error::Error for AffinityError {}

/// Restrict the calling thread to `cpus` (best effort, Linux/x86-64 via a
/// raw `sched_setaffinity` syscall — the workspace carries no libc
/// dependency). CPU ids ≥ 1024 are ignored; an error leaves the thread's
/// affinity unchanged. Callers treat failure as "run unpinned".
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub fn pin_current_thread(cpus: &[usize]) -> Result<(), AffinityError> {
    const MASK_WORDS: usize = 16; // 1024 CPUs
    let mut mask = [0u64; MASK_WORDS];
    let mut any = false;
    for &c in cpus {
        if c < MASK_WORDS * 64 {
            mask[c / 64] |= 1u64 << (c % 64);
            any = true;
        }
    }
    if !any {
        return Err(AffinityError::EmptySet);
    }
    let ret: isize;
    // SAFETY: raw x86-64 Linux syscall 203 (sched_setaffinity) with
    // pid 0 (the calling thread), a correctly sized in-memory CPU mask
    // that outlives the call, and the kernel-clobbered rcx/r11 declared
    // as clobbers. The syscall only reads the mask and mutates kernel
    // scheduling state — no Rust-visible memory is written.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 203isize => ret,
            in("rdi") 0usize,
            in("rsi") std::mem::size_of_val(&mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    if ret < 0 {
        Err(AffinityError::Syscall(ret as i32))
    } else {
        Ok(())
    }
}

/// Fallback for targets without a wired-up affinity syscall.
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
pub fn pin_current_thread(_cpus: &[usize]) -> Result<(), AffinityError> {
    Err(AffinityError::Unsupported)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn fixture(name: &str) -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/sysfs").join(name)
    }

    // ---- cpulist parsing ----

    #[test]
    fn cpulist_parses_ranges_singles_and_mixtures() {
        assert_eq!(parse_cpulist("0-3").unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(parse_cpulist("5").unwrap(), vec![5]);
        assert_eq!(parse_cpulist("0-1,4,6-7").unwrap(), vec![0, 1, 4, 6, 7]);
        assert_eq!(parse_cpulist(" 2 , 0 ").unwrap(), vec![0, 2]);
        assert_eq!(parse_cpulist("3,3,1-3").unwrap(), vec![1, 2, 3], "dedup + sort");
        assert!(parse_cpulist("4-2").is_err(), "inverted range");
        assert!(parse_cpulist("a-b").is_err());
    }

    #[test]
    fn cpulist_renders_runs_as_ranges_and_round_trips() {
        for cpus in [vec![0], vec![0, 1, 2, 3], vec![0, 2, 4], vec![0, 1, 5, 7, 8, 9]] {
            let rendered = render_cpulist(&cpus);
            assert_eq!(parse_cpulist(&rendered).unwrap(), cpus, "{rendered}");
        }
        assert_eq!(render_cpulist(&[0, 1, 2, 3]), "0-3");
        assert_eq!(render_cpulist(&[4]), "4");
        assert_eq!(render_cpulist(&[0, 2, 3]), "0,2-3");
    }

    // ---- spec parsing ----

    #[test]
    fn spec_kxm_and_kxmxs_forms() {
        let t = Topology::from_spec("2x4").unwrap();
        assert_eq!(t.domains().len(), 2);
        assert_eq!(t.total_cpus(), 8);
        assert_eq!(t.smt_per_core(), 1);
        assert_eq!(t.domains()[0].cpus, vec![0, 1, 2, 3]);
        assert_eq!(t.domains()[1].cpus, vec![4, 5, 6, 7]);
        assert_eq!(t.source(), TopologySource::Env);

        let t = Topology::from_spec("4x2x2").unwrap();
        assert_eq!(t.domains().len(), 4);
        assert_eq!(t.total_cpus(), 16);
        assert_eq!(t.smt_per_core(), 2);
    }

    #[test]
    fn spec_bare_integer_and_cpulist_forms() {
        let t = Topology::from_spec("6").unwrap();
        assert_eq!(t.domains().len(), 1);
        assert_eq!(t.total_cpus(), 6);

        let t = Topology::from_spec("0-3,16-19;4-7").unwrap();
        assert_eq!(t.domains().len(), 2);
        assert_eq!(t.domains()[0].cpus, vec![0, 1, 2, 3, 16, 17, 18, 19]);
        assert_eq!(t.domains()[1].cpus, vec![4, 5, 6, 7]);

        let t = Topology::from_spec("smt2:0-7;8-15").unwrap();
        assert_eq!(t.smt_per_core(), 2);
        assert_eq!(t.total_cpus(), 16);
    }

    #[test]
    fn spec_rejects_malformed_inputs() {
        for bad in ["", "0", "0x4", "2x0", "axb", "2x2x2x2", "smt0:0-3", "huh:0-3", "0-3;2-5", "1-0"]
        {
            assert!(Topology::from_spec(bad).is_err(), "spec '{bad}' must be rejected");
        }
    }

    #[test]
    fn spec_round_trips_through_to_spec() {
        for spec in ["2x4", "4x2x2", "0-3;4-7", "smt2:0-7;8-15", "3"] {
            let t = Topology::from_spec(spec).unwrap();
            let rendered = t.to_spec();
            let back = Topology::from_spec(&rendered).unwrap();
            assert_eq!(back.domains(), t.domains(), "spec '{spec}' → '{rendered}'");
            assert_eq!(back.smt_per_core(), t.smt_per_core());
        }
    }

    // ---- sysfs fixtures (the CI round-trip gate) ----

    #[test]
    fn fixture_one_socket_is_one_domain() {
        let t = Topology::from_sysfs(&fixture("one-socket")).unwrap();
        assert_eq!(t.source(), TopologySource::Sysfs);
        assert_eq!(t.domains().len(), 1);
        assert_eq!(t.domains()[0].cpus, vec![0, 1, 2, 3]);
        assert_eq!(t.smt_per_core(), 1);
        assert_eq!(t.to_spec(), "0-3");
    }

    #[test]
    fn fixture_two_socket_splits_on_package() {
        let t = Topology::from_sysfs(&fixture("two-socket")).unwrap();
        assert_eq!(t.domains().len(), 2);
        assert_eq!(t.domains()[0].package, 0);
        assert_eq!(t.domains()[1].package, 1);
        assert_eq!(t.domains()[0].cpus, vec![0, 1, 2, 3]);
        assert_eq!(t.domains()[1].cpus, vec![4, 5, 6, 7]);
        assert_eq!(t.smt_per_core(), 1);
    }

    #[test]
    fn fixture_ccx_splits_one_socket_by_llc_with_smt() {
        // One package, two L3 complexes, 2-way SMT with the Linux
        // convention of sibling ids offset by the core count (0↔8 etc.).
        let t = Topology::from_sysfs(&fixture("ccx")).unwrap();
        assert_eq!(t.domains().len(), 2);
        assert_eq!(t.domains()[0].package, 0);
        assert_eq!(t.domains()[1].package, 0);
        assert_eq!(t.domains()[0].cpus, vec![0, 1, 2, 3, 8, 9, 10, 11]);
        assert_eq!(t.domains()[1].cpus, vec![4, 5, 6, 7, 12, 13, 14, 15]);
        assert_eq!(t.smt_per_core(), 2);
    }

    #[test]
    fn fixtures_round_trip_through_spec() {
        // The satellite gate: sysfs fixture → topology → spec → topology
        // reproduces the same domains and SMT width for every layout.
        for name in ["one-socket", "two-socket", "ccx"] {
            let t = Topology::from_sysfs(&fixture(name)).unwrap();
            let back = Topology::from_spec(&t.to_spec()).unwrap();
            assert_eq!(back.domains().len(), t.domains().len(), "{name}");
            for (a, b) in back.domains().iter().zip(t.domains()) {
                assert_eq!(a.cpus, b.cpus, "{name}");
            }
            assert_eq!(back.smt_per_core(), t.smt_per_core(), "{name}");
        }
    }

    #[test]
    fn sysfs_missing_online_file_errors() {
        let err = Topology::from_sysfs(Path::new("/nonexistent-sysfs")).unwrap_err();
        assert!(matches!(err, TopologyError::Sysfs(_)));
    }

    // ---- detection and sizing policy ----

    #[test]
    fn detect_never_panics_and_has_cpus() {
        let t = Topology::detect();
        assert!(t.total_cpus() >= 1);
        assert!(!t.domains().is_empty());
        assert!(t.domains().iter().all(|d| !d.cpus.is_empty()));
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn flat_topology_shape() {
        let t = Topology::flat(3);
        assert_eq!(t.domains().len(), 1);
        assert_eq!(t.total_cpus(), 3);
        assert_eq!(t.source(), TopologySource::Flat);
        assert_eq!(t.source().name(), "flat");
    }

    // ---- affinity ----

    #[test]
    fn pin_rejects_empty_set() {
        assert_eq!(pin_current_thread(&[]), Err(AffinityError::EmptySet).map_err(|e| {
            // On non-Linux targets Unsupported wins; both are "no pin".
            if cfg!(all(target_os = "linux", target_arch = "x86_64")) {
                e
            } else {
                AffinityError::Unsupported
            }
        }));
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    #[test]
    fn pin_to_an_online_cpu_succeeds_and_restores() {
        let t = Topology::detect();
        let all: Vec<usize> = t.domains().iter().flat_map(|d| d.cpus.iter().copied()).collect();
        // Pin to the first online CPU, then back to the full set.
        pin_current_thread(&all[..1]).expect("pin to one cpu");
        pin_current_thread(&all).expect("restore full mask");
    }
}
