//! Topology-aware pool sharding: one fork–join [`ThreadPool`] per
//! last-level-cache domain.
//!
//! A single pool spanning sockets (or CCXes) makes every barrier crossing
//! a cross-cache-domain round trip and lets the OS migrate workers across
//! domains mid-layer, churning the L2/L3 working sets the paper's blocked
//! layouts exist to protect. [`ShardedPool`] instead builds one
//! [`ThreadPool`] per [`crate::topology::Domain`], optionally pinning each
//! shard's workers to its domain's CPUs, and splits every grid across the
//! shards with the same recursive-GCD partitioner that splits work within
//! a shard: [`GridPartition::new(dims, total_threads)`](GridPartition)
//! yields one contiguous hyper-rectangle per *thread*, in an order that
//! keeps adjacent boxes adjacent in the grid, and each shard takes a
//! contiguous run of those boxes. Barriers then only ever synchronise
//! threads that share a last-level cache.
//!
//! # Failure model — per-shard degradation
//!
//! Each shard keeps the single-pool failure contract (see
//! [`crate::pool`]): panics are contained per participant and the shard
//! stays usable; a watchdog trip kills only that shard. A `run_grid` in
//! which any shard fails returns `Err` (the grid may be partially
//! executed, outputs are garbage — same contract as every
//! [`Executor`]), but subsequent calls keep running on the surviving
//! shards: dead shards are filtered out at entry and the whole grid is
//! re-partitioned across the live ones. [`ShardedPool::degraded`] reports
//! lost capacity and [`ShardedPool::rebuild`] respawns dead shards, the
//! sharded analogue of the serve layer's pool-rebuild path.
//!
//! No new lock-free protocol is introduced: shard fan-out uses
//! `std::thread::scope` (spawn/join are release/acquire pairs), results
//! travel through a `Mutex`, and the only atomics involved are the ones
//! already inside [`ThreadPool`] and its model-checked barrier.
//!
//! ```
//! use wino_sched::{Executor, ShardedPool, Topology};
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! // Two domains of two threads each (a fixture topology; real callers
//! // use `ShardedPool::detect()`).
//! let topo = Topology::from_spec("2x2").unwrap();
//! let pool = ShardedPool::new(&topo);
//! assert_eq!(pool.threads(), 4);
//! assert_eq!(pool.shards(), 2);
//!
//! let hits = AtomicUsize::new(0);
//! pool.run_grid(&[8, 8], &|slot, _idx| {
//!     assert!(slot < 4);
//!     hits.fetch_add(1, Ordering::Relaxed);
//! })
//! .unwrap();
//! assert_eq!(hits.load(Ordering::Relaxed), 64);
//! ```

use std::sync::Mutex;
use std::time::Duration;

use crate::backend::Executor;
use crate::pool::{default_deadline, PoolError, ThreadPool};
use crate::topology::{pin_current_thread, Topology};
use crate::GridPartition;

struct Shard {
    pool: ThreadPool,
    /// The domain's CPUs (pin target when pinning is on; also kept for
    /// rebuilds). Empty when the shard was built from a thread count
    /// rather than a real domain.
    cpus: Vec<usize>,
    /// First global slot of this shard; its slots are
    /// `slot_base..slot_base + threads`.
    slot_base: usize,
    threads: usize,
}

/// One [`ThreadPool`] per topology domain, driven as a single
/// [`Executor`]. See the [module docs](self) for the sharding and failure
/// model.
pub struct ShardedPool {
    shards: Vec<Shard>,
    deadline: Duration,
    pin: bool,
    /// Stable slot capacity: the sum of all shard sizes at construction,
    /// including currently-dead shards. `threads()` reports this so
    /// per-slot scratch sized once stays valid across degradation.
    total_threads: usize,
}

impl ShardedPool {
    /// One unpinned shard per domain of `topology`, watchdog deadline
    /// from [`default_deadline`].
    pub fn new(topology: &Topology) -> ShardedPool {
        ShardedPool::with_options(topology, default_deadline(), false)
    }

    /// Shards for the detected host topology ([`Topology::detect`]),
    /// pinned to their domains only when the topology came from sysfs —
    /// an env-spec or flat fallback describes CPUs that may not exist,
    /// and pinning to them would be meaningless at best.
    pub fn detect() -> ShardedPool {
        let topo = Topology::detect();
        let pin = topo.source() == crate::topology::TopologySource::Sysfs;
        ShardedPool::with_options(&topo, default_deadline(), pin)
    }

    /// Full control: one shard per domain, explicit watchdog `deadline`
    /// per shard, and `pin` to request best-effort affinity of each
    /// shard's workers (and its driver thread during `run_grid`) to the
    /// domain's CPUs.
    pub fn with_options(topology: &Topology, deadline: Duration, pin: bool) -> ShardedPool {
        let mut shards = Vec::with_capacity(topology.domains().len());
        let mut slot_base = 0;
        for d in topology.domains() {
            let threads = d.cpus.len();
            let pin_cpus = pin.then(|| d.cpus.clone());
            let pool = ThreadPool::with_deadline_pinned(threads, deadline, pin_cpus);
            shards.push(Shard { pool, cpus: d.cpus.clone(), slot_base, threads });
            slot_base += threads;
        }
        assert!(!shards.is_empty(), "a topology always has at least one domain");
        ShardedPool { shards, deadline, pin, total_threads: slot_base }
    }

    /// Number of shards (topology domains), dead or alive.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Shards currently able to run work.
    pub fn live_shards(&self) -> usize {
        self.shards.iter().filter(|s| !s.pool.is_dead()).count()
    }

    /// Whether any shard has been killed by a barrier failure. Work still
    /// runs (on the survivors) until *every* shard is dead.
    pub fn degraded(&self) -> bool {
        self.live_shards() < self.shards.len()
    }

    /// Per-shard active liveness probe: one empty fork–join on every
    /// shard (dead shards report [`PoolError::Unusable`] without being
    /// probed). Index `i` is the shard over
    /// `topology.domains()[i]`.
    pub fn shard_health(&self) -> Vec<Result<(), PoolError>> {
        self.shards.iter().map(|s| s.pool.health_check()).collect()
    }

    /// Respawn every dead shard with the same size, deadline and pinning;
    /// returns how many shards were rebuilt. Healthy shards (and their
    /// parked workers) are untouched.
    pub fn rebuild(&mut self) -> usize {
        let (deadline, pin) = (self.deadline, self.pin);
        let mut rebuilt = 0;
        for s in &mut self.shards {
            if s.pool.is_dead() {
                let pin_cpus = (pin && !s.cpus.is_empty()).then(|| s.cpus.clone());
                s.pool = ThreadPool::with_deadline_pinned(s.threads, deadline, pin_cpus);
                rebuilt += 1;
            }
        }
        rebuilt
    }

    /// Kill shard `i` as if its watchdog had fired (test hook for the
    /// fault battery; the shard reports `Unusable` until [`Self::rebuild`]).
    #[cfg(any(test, feature = "fault-inject"))]
    pub fn kill_shard(&self, i: usize) {
        self.shards[i].pool.mark_dead();
    }

    /// Run `job(global_slot)` once per participant of shard `shard_idx`
    /// (used by the probes and tests; grid work goes through
    /// [`Executor::run_grid`]).
    fn run_shard(
        &self,
        shard_idx: usize,
        job: &(dyn Fn(usize) + Sync),
    ) -> Result<(), PoolError> {
        let s = &self.shards[shard_idx];
        if self.pin && !s.cpus.is_empty() {
            // Drivers are scoped threads that die at the end of run_grid,
            // so pinning them cannot leak affinity onto caller threads.
            let _ = pin_current_thread(&s.cpus);
        }
        s.pool.run(|tid| job(s.slot_base + tid)).map_err(|e| match e {
            // The shard's pool reports shard-local tids; callers see
            // shard-global slots everywhere else, so remap.
            PoolError::Panicked { panics } => PoolError::Panicked {
                panics: panics.into_iter().map(|(tid, m)| (s.slot_base + tid, m)).collect(),
            },
            other => other,
        })
    }

    /// Merge per-shard results into the single `Executor` verdict.
    /// Severity order: a barrier failure (a shard died this call) wins,
    /// then `Unusable`, then panics merged across shards in slot order.
    fn merge(results: Vec<Result<(), PoolError>>) -> Result<(), PoolError> {
        let mut barrier = None;
        let mut unusable = false;
        let mut panics: Vec<(usize, String)> = Vec::new();
        for r in results {
            match r {
                Ok(()) => {}
                Err(PoolError::Barrier(e)) => barrier = Some(e),
                Err(PoolError::Unusable) => unusable = true,
                Err(PoolError::Panicked { panics: p }) => panics.extend(p),
            }
        }
        if let Some(e) = barrier {
            return Err(PoolError::Barrier(e));
        }
        if unusable {
            return Err(PoolError::Unusable);
        }
        if panics.is_empty() {
            Ok(())
        } else {
            panics.sort_by_key(|(slot, _)| *slot);
            Err(PoolError::Panicked { panics })
        }
    }
}

impl Executor for ShardedPool {
    /// Partition `dims` into one box per live *thread* with the
    /// recursive-GCD partitioner, hand each live shard its contiguous run
    /// of boxes, and drive all shards concurrently (one scoped driver per
    /// shard; with a single live shard the caller drives it directly,
    /// unless pinning is on — a pinned driver must not be the caller, or
    /// the affinity would outlive the call). The `slot` passed to `task`
    /// is the shard-global slot (`shard.slot_base + tid`), unique across
    /// concurrently running tasks and `< self.threads()`.
    ///
    /// Panic slots in [`PoolError::Panicked`] are likewise shard-global.
    /// A shard whose watchdog fires mid-grid is reported as
    /// [`PoolError::Barrier`] and excluded from subsequent calls; the
    /// error is returned only after every shard's driver has joined, so
    /// the borrow of `task` is dead on return exactly as for
    /// [`ThreadPool::run`].
    fn run_grid(
        &self,
        dims: &[usize],
        task: &(dyn Fn(usize, usize) + Sync),
    ) -> Result<(), PoolError> {
        let live: Vec<usize> = (0..self.shards.len())
            .filter(|&i| !self.shards[i].pool.is_dead())
            .collect();
        if live.is_empty() {
            return Err(PoolError::Unusable);
        }
        let live_threads: usize = live.iter().map(|&i| self.shards[i].threads).sum();
        let partition = GridPartition::new(dims, live_threads);
        // boxes[box_base[k] .. box_base[k] + threads_k] belongs to the
        // k-th live shard.
        let mut box_base = Vec::with_capacity(live.len());
        let mut acc = 0;
        for &i in &live {
            box_base.push(acc);
            acc += self.shards[i].threads;
        }

        let drive = |k: usize| -> Result<(), PoolError> {
            let shard_idx = live[k];
            let base = box_base[k];
            self.run_shard(shard_idx, &|slot| {
                let local = slot - self.shards[shard_idx].slot_base;
                partition.boxes[base + local].for_each_flat(dims, |idx| task(slot, idx));
            })
        };

        if live.len() == 1 && !self.pin {
            return drive(0);
        }
        let results = Mutex::new(Vec::with_capacity(live.len()));
        std::thread::scope(|scope| {
            let caller_drives = usize::from(!self.pin);
            for k in caller_drives..live.len() {
                let results = &results;
                let drive = &drive;
                scope.spawn(move || {
                    let r = drive(k);
                    results.lock().unwrap_or_else(|e| e.into_inner()).push(r);
                });
            }
            if caller_drives == 1 {
                let r = drive(0);
                results.lock().unwrap_or_else(|e| e.into_inner()).push(r);
            }
        });
        ShardedPool::merge(results.into_inner().unwrap_or_else(|e| e.into_inner()))
    }

    fn threads(&self) -> usize {
        self.total_threads
    }

    fn name(&self) -> &'static str {
        "sharded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn topo(spec: &str) -> Topology {
        Topology::from_spec(spec).unwrap()
    }

    fn check_covers(pool: &ShardedPool, dims: &[usize]) {
        let total: usize = dims.iter().product();
        let hits: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
        pool.run_grid(dims, &|slot, i| {
            assert!(slot < pool.threads(), "slot {slot} out of range");
            // ORDERING: Relaxed — test counter; run_grid's join orders it.
            hits[i].fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        for (i, h) in hits.iter().enumerate() {
            // ORDERING: Relaxed — all writers joined inside run_grid.
            assert_eq!(h.load(Ordering::Relaxed), 1, "task {i}");
        }
    }

    #[test]
    fn single_domain_behaves_like_one_pool() {
        let pool = ShardedPool::new(&topo("4"));
        assert_eq!(pool.shards(), 1);
        assert_eq!(pool.threads(), 4);
        assert_eq!(pool.name(), "sharded");
        check_covers(&pool, &[8, 8]);
        check_covers(&pool, &[7]);
    }

    #[test]
    fn two_domains_cover_grids_exactly() {
        let pool = ShardedPool::new(&topo("2x2"));
        assert_eq!(pool.shards(), 2);
        assert_eq!(pool.threads(), 4);
        check_covers(&pool, &[8, 8]);
        check_covers(&pool, &[3, 5, 7]);
        check_covers(&pool, &[1]);
        check_covers(&pool, &[64, 4]);
    }

    #[test]
    fn uneven_domains_cover_grids_exactly() {
        let pool = ShardedPool::new(&topo("0-2;3")); // 3 + 1 threads
        assert_eq!(pool.threads(), 4);
        check_covers(&pool, &[12]);
        check_covers(&pool, &[5, 5]);
    }

    #[test]
    fn slots_are_disjoint_across_shards() {
        let pool = ShardedPool::new(&topo("2x2"));
        let seen = Mutex::new(HashSet::new());
        pool.run_grid(&[4], &|slot, _| {
            seen.lock().unwrap().insert(slot);
        })
        .unwrap();
        // Every slot observed is < threads(); with a 4-task grid over
        // 4 threads every slot participates.
        assert_eq!(seen.into_inner().unwrap(), HashSet::from([0, 1, 2, 3]));
    }

    #[test]
    fn panic_in_one_shard_reports_global_slot_and_pool_survives() {
        let pool = ShardedPool::new(&topo("2x2"));
        let err = pool
            .run_grid(&[4], &|slot, _| {
                if slot == 3 {
                    panic!("slot 3 dies");
                }
            })
            .expect_err("slot 3 panicked");
        assert_eq!(err.panicking_tids(), vec![3], "global slot, not shard-local tid");
        assert!(!pool.degraded(), "panics never kill a shard");
        check_covers(&pool, &[8, 8]);
    }

    #[test]
    fn panics_across_shards_are_merged_in_slot_order() {
        let pool = ShardedPool::new(&topo("2x2"));
        let err = pool
            .run_grid(&[4], &|slot, _| {
                if slot == 0 || slot == 2 {
                    panic!("slot {slot}");
                }
            })
            .expect_err("two shards panicked");
        assert_eq!(err.panicking_tids(), vec![0, 2]);
    }

    #[test]
    fn dead_shard_degrades_that_shard_only() {
        let pool = ShardedPool::new(&topo("2x2"));
        pool.kill_shard(0);
        assert!(pool.degraded());
        assert_eq!(pool.live_shards(), 1);
        // Work still covers the full grid on the surviving shard.
        check_covers(&pool, &[8, 8]);
        let health = pool.shard_health();
        assert_eq!(health[0], Err(PoolError::Unusable));
        assert!(health[1].is_ok());
    }

    #[test]
    fn all_shards_dead_is_unusable() {
        let pool = ShardedPool::new(&topo("2x2"));
        pool.kill_shard(0);
        pool.kill_shard(1);
        assert_eq!(pool.run_grid(&[4], &|_, _| {}), Err(PoolError::Unusable));
        assert_eq!(pool.live_shards(), 0);
    }

    #[test]
    fn rebuild_restores_dead_shards() {
        let mut pool = ShardedPool::new(&topo("2x2"));
        pool.kill_shard(1);
        assert!(pool.degraded());
        assert_eq!(pool.rebuild(), 1);
        assert!(!pool.degraded());
        assert!(pool.shard_health().into_iter().all(|r| r.is_ok()));
        check_covers(&pool, &[8, 8]);
        // Nothing to rebuild when healthy.
        assert_eq!(pool.rebuild(), 0);
    }

    #[test]
    fn threads_is_stable_across_degradation() {
        let pool = ShardedPool::new(&topo("2x2"));
        assert_eq!(pool.threads(), 4);
        pool.kill_shard(0);
        // Capacity (for scratch sizing) must not shrink under the caller.
        assert_eq!(pool.threads(), 4);
    }

    #[test]
    fn pinned_pool_still_covers_and_leaves_caller_affinity_alone() {
        // Pin targets are CPUs 0..4, which may not all exist on the test
        // host — pinning is best effort, coverage must hold regardless.
        let pool = ShardedPool::with_options(&topo("2x2"), default_deadline(), true);
        check_covers(&pool, &[8, 8]);
        check_covers(&pool, &[5, 3]);
    }

    #[test]
    fn detect_builds_a_working_pool() {
        let pool = ShardedPool::detect();
        assert!(pool.threads() >= 1);
        assert!(pool.shards() >= 1);
        check_covers(&pool, &[4, 4]);
    }

    #[test]
    fn sequential_grids_do_not_deadlock() {
        let pool = ShardedPool::new(&topo("2x2"));
        for _ in 0..50 {
            check_covers(&pool, &[4, 4]);
        }
    }
}
