//! Deterministic fault injection for the recovery-path tests.
//!
//! Compiled only with the `fault-inject` feature; release builds carry no
//! hooks. The model is a process-global, one-shot *armed fault*: a test
//! arms exactly one fault, runs the scenario, and the fault disarms itself
//! when it fires. Three injection points cover every recovery path of the
//! execution layer:
//!
//! * **Panic on tid `k` at fork–join `n`** — exercises the
//!   `catch_unwind` containment in [`crate::ThreadPool::run`];
//! * **Barrier stall on tid `k` at fork–join `n`** — the job completes
//!   but the participant sleeps before the end barrier, exercising the
//!   [`crate::SpinBarrier`] watchdog and pool poisoning;
//! * **Poison value in stage `s` output** — consumed by the convolution
//!   stages (`wino-conv`), which overwrite one transformed value with a
//!   NaN, exercising the numeric guard and the im2col fallback.
//!
//! Because the state is global, tests that inject faults must serialise
//! themselves (see [`test_lock`]); the workspace's fault tests take that
//! lock around each scenario.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Which fork–join (pool epoch) a fault targets. Pools count fork–joins
/// from 0; [`crate::ThreadPool::forkjoins`] reports the next epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum When {
    /// Fire at the given pool epoch.
    AtForkJoin(u64),
    /// Fire at the next fork–join, whatever its epoch.
    Next,
}

impl When {
    fn matches(self, epoch: u64) -> bool {
        match self {
            When::AtForkJoin(n) => n == epoch,
            When::Next => true,
        }
    }
}

#[derive(Default)]
struct State {
    panic_at: Option<(usize, When)>,
    stall_at: Option<(usize, When, Duration)>,
    poison_stage: Option<u8>,
}

static STATE: Mutex<State> =
    Mutex::new(State { panic_at: None, stall_at: None, poison_stage: None });

fn state() -> MutexGuard<'static, State> {
    STATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Serialisation lock for fault tests: the armed fault is process-global,
/// so concurrently running tests would steal each other's faults.
pub fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Arm: panic on thread `tid` when it executes its job share at `when`.
pub fn arm_panic(tid: usize, when: When) {
    state().panic_at = Some((tid, when));
}

/// Arm: after finishing its job share at `when`, thread `tid` sleeps for
/// `dur` before reaching the end barrier (a stalled participant).
pub fn arm_stall(tid: usize, when: When, dur: Duration) {
    state().stall_at = Some((tid, when, dur));
}

/// Arm: the convolution stage numbered `stage` (1 = input transform,
/// 2 = multiply, 3 = inverse transform) overwrites one output value with
/// NaN on its next execution.
pub fn arm_poison_stage(stage: u8) {
    state().poison_stage = Some(stage);
}

/// Disarm everything (call between scenarios).
pub fn reset() {
    *state() = State::default();
}

/// Pool hook: runs inside the `catch_unwind` envelope, immediately before
/// the job closure.
#[doc(hidden)]
pub fn before_job(tid: usize, epoch: u64) {
    let fire = {
        let mut s = state();
        match s.panic_at {
            Some((t, when)) if t == tid && when.matches(epoch) => {
                s.panic_at = None;
                true
            }
            _ => false,
        }
    };
    if fire {
        panic!("injected fault: panic on tid {tid} at fork-join {epoch}");
    }
}

/// Pool hook: runs after the job closure (outside `catch_unwind`), before
/// the end barrier.
#[doc(hidden)]
pub fn after_job(tid: usize, epoch: u64) {
    let dur = {
        let mut s = state();
        match s.stall_at {
            Some((t, when, d)) if t == tid && when.matches(epoch) => {
                s.stall_at = None;
                Some(d)
            }
            _ => None,
        }
    };
    if let Some(d) = dur {
        std::thread::sleep(d);
    }
}

/// Stage hook (consumed by `wino-conv`): returns `true` exactly once if a
/// poison fault is armed for `stage`.
pub fn take_poison_stage(stage: u8) -> bool {
    let mut s = state();
    if s.poison_stage == Some(stage) {
        s.poison_stage = None;
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_are_one_shot() {
        let _g = test_lock();
        reset();
        arm_poison_stage(2);
        assert!(!take_poison_stage(1), "wrong stage must not consume");
        assert!(take_poison_stage(2));
        assert!(!take_poison_stage(2), "fault disarms after firing");
        reset();
    }

    #[test]
    fn when_matching() {
        assert!(When::Next.matches(0));
        assert!(When::Next.matches(17));
        assert!(When::AtForkJoin(3).matches(3));
        assert!(!When::AtForkJoin(3).matches(4));
    }
}
