//! Deterministic fault injection for the recovery-path tests.
//!
//! Compiled only with the `fault-inject` feature; release builds carry no
//! hooks. The model is a process-global, one-shot *armed fault*: a test
//! arms exactly one fault, runs the scenario, and the fault disarms itself
//! when it fires. Three injection points cover every recovery path of the
//! execution layer:
//!
//! * **Panic on tid `k` at fork–join `n`** — exercises the
//!   `catch_unwind` containment in [`crate::ThreadPool::run`];
//! * **Barrier stall on tid `k` at fork–join `n`** — the job completes
//!   but the participant sleeps before the end barrier, exercising the
//!   [`crate::SpinBarrier`] watchdog and pool poisoning;
//! * **Poison value in stage `s` output** — consumed by the convolution
//!   stages (`wino-conv`), which overwrite one transformed value with a
//!   NaN, exercising the numeric guard and the im2col fallback;
//! * **Silent corruption in stage `s` output** ([`arm_corrupt`]) — the
//!   stage perturbs its output with *finite* wrong values (a flipped
//!   mantissa bit, a run of denormals, or an additive bias), which the
//!   NaN/Inf guard cannot see: only the accuracy sentinels can. Armed
//!   with a shot count so a demoted re-run can be corrupted again,
//!   forcing the degradation ladder all the way to the im2col rescue.
//!
//! Because the state is global, tests that inject faults must serialise
//! themselves (see [`test_lock`]); the workspace's fault tests take that
//! lock around each scenario.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

// The allocation-failure injector lives next to the allocator it arms
// (`wino-simd`); re-exported here so fault batteries have one façade —
// and one [`test_lock`] — for every injectable failure in the engine.
pub use wino_simd::fault::{
    arm_fail_after_bytes, arm_fail_every, arm_fail_random, injected_failures,
    reset as reset_alloc,
};

/// Which fork–join (pool epoch) a fault targets. Pools count fork–joins
/// from 0; [`crate::ThreadPool::forkjoins`] reports the next epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum When {
    /// Fire at the given pool epoch.
    AtForkJoin(u64),
    /// Fire at the next fork–join, whatever its epoch.
    Next,
}

impl When {
    fn matches(self, epoch: u64) -> bool {
        match self {
            When::AtForkJoin(n) => n == epoch,
            When::Next => true,
        }
    }
}

/// The flavour of finite (guard-invisible) corruption [`arm_corrupt`]
/// injects. The concrete perturbation is applied by the consuming stage
/// (`wino-conv`); this is only the selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptKind {
    /// Flip a high mantissa bit of one element: large, finite, local.
    BitFlip,
    /// Overwrite a stretch of elements with subnormals.
    DenormalStorm,
    /// Add a finite bias to a block of elements.
    SilentBias,
}

#[derive(Default)]
struct State {
    panic_at: Option<(usize, When)>,
    stall_at: Option<(usize, When, Duration)>,
    poison_stage: Option<u8>,
    corrupt: Option<(u8, CorruptKind, u32)>,
}

static STATE: Mutex<State> = Mutex::new(State {
    panic_at: None,
    stall_at: None,
    poison_stage: None,
    corrupt: None,
});

fn state() -> MutexGuard<'static, State> {
    STATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Serialisation lock for fault tests: the armed fault is process-global,
/// so concurrently running tests would steal each other's faults.
pub fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Arm: panic on thread `tid` when it executes its job share at `when`.
pub fn arm_panic(tid: usize, when: When) {
    state().panic_at = Some((tid, when));
}

/// Arm: after finishing its job share at `when`, thread `tid` sleeps for
/// `dur` before reaching the end barrier (a stalled participant).
pub fn arm_stall(tid: usize, when: When, dur: Duration) {
    state().stall_at = Some((tid, when, dur));
}

/// Arm: the convolution stage numbered `stage` (1 = input transform,
/// 2 = multiply, 3 = inverse transform) overwrites one output value with
/// NaN on its next execution.
pub fn arm_poison_stage(stage: u8) {
    state().poison_stage = Some(stage);
}

/// Disarm everything (call between scenarios), the allocation injector
/// included.
pub fn reset() {
    *state() = State::default();
    wino_simd::fault::reset();
}

/// Pool hook: runs inside the `catch_unwind` envelope, immediately before
/// the job closure.
#[doc(hidden)]
pub fn before_job(tid: usize, epoch: u64) {
    let fire = {
        let mut s = state();
        match s.panic_at {
            Some((t, when)) if t == tid && when.matches(epoch) => {
                s.panic_at = None;
                true
            }
            _ => false,
        }
    };
    if fire {
        panic!("injected fault: panic on tid {tid} at fork-join {epoch}");
    }
}

/// Pool hook: runs after the job closure (outside `catch_unwind`), before
/// the end barrier.
#[doc(hidden)]
pub fn after_job(tid: usize, epoch: u64) {
    let dur = {
        let mut s = state();
        match s.stall_at {
            Some((t, when, d)) if t == tid && when.matches(epoch) => {
                s.stall_at = None;
                Some(d)
            }
            _ => None,
        }
    };
    if let Some(d) = dur {
        std::thread::sleep(d);
    }
}

/// Stage hook (consumed by `wino-conv`): returns `true` exactly once if a
/// poison fault is armed for `stage`.
pub fn take_poison_stage(stage: u8) -> bool {
    let mut s = state();
    if s.poison_stage == Some(stage) {
        s.poison_stage = None;
        true
    } else {
        false
    }
}

/// Arm: the convolution stage numbered `stage` silently corrupts its
/// output with `kind` on each of its next `shots` executions. Multiple
/// shots let a test corrupt both the original forward *and* the demoted
/// re-verification run.
pub fn arm_corrupt(stage: u8, kind: CorruptKind, shots: u32) {
    state().corrupt = if shots == 0 { None } else { Some((stage, kind, shots)) };
}

/// Stage hook (consumed by `wino-conv`): returns the armed corruption for
/// `stage`, decrementing its shot count; disarms when the shots run out.
pub fn take_corruption(stage: u8) -> Option<CorruptKind> {
    let mut s = state();
    match s.corrupt {
        Some((st, kind, shots)) if st == stage => {
            s.corrupt = if shots > 1 { Some((st, kind, shots - 1)) } else { None };
            Some(kind)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_are_one_shot() {
        let _g = test_lock();
        reset();
        arm_poison_stage(2);
        assert!(!take_poison_stage(1), "wrong stage must not consume");
        assert!(take_poison_stage(2));
        assert!(!take_poison_stage(2), "fault disarms after firing");
        reset();
    }

    #[test]
    fn corruption_shots_count_down() {
        let _g = test_lock();
        reset();
        arm_corrupt(2, CorruptKind::SilentBias, 2);
        assert_eq!(take_corruption(1), None, "wrong stage must not consume");
        assert_eq!(take_corruption(2), Some(CorruptKind::SilentBias));
        assert_eq!(take_corruption(2), Some(CorruptKind::SilentBias));
        assert_eq!(take_corruption(2), None, "disarms when shots run out");
        arm_corrupt(2, CorruptKind::BitFlip, 0);
        assert_eq!(take_corruption(2), None, "0 shots arms nothing");
        reset();
    }

    #[test]
    fn when_matching() {
        assert!(When::Next.matches(0));
        assert!(When::Next.matches(17));
        assert!(When::AtForkJoin(3).matches(3));
        assert!(!When::AtForkJoin(3).matches(4));
    }
}
