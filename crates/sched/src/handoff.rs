//! The job-exit hand-off: the small protocol that makes the pool's
//! type-erased job borrow sound on the watchdog path.
//!
//! Each fork–join publishes a *borrowed* closure to the workers through a
//! raw pointer ([`crate::ThreadPool::run`]). On the happy path the end
//! barrier proves every participant is done with it; on an end-barrier
//! *timeout* the publisher must not return (dropping the closure and
//! everything it captures) while a slow participant could still be inside
//! it — PR 1's use-after-free bug was exactly that. The fix is this latch:
//! every participant counts itself out immediately after leaving the
//! closure, and the publisher's error path blocks until the count proves
//! the borrow dead.
//!
//! Generic over [`Atomics`] so `wino-analyze`'s model checker can
//! exhaustively interleave the latch against the end barrier and re-derive
//! the PR-1 bug when the wait is removed.

use std::sync::atomic::Ordering;
use std::time::Duration;

use crate::atomics::{AtomicUsizeOps, Atomics, StdAtomics};

/// Counts participants out of a borrowed job closure (see module docs).
pub struct JobExitLatch<A: Atomics = StdAtomics> {
    /// Participants that have finished their job share this fork–join,
    /// i.e. can no longer dereference the borrowed job closure.
    done: A::AtomicUsize,
}

impl<A: Atomics> JobExitLatch<A> {
    pub fn new() -> JobExitLatch<A> {
        JobExitLatch { done: A::AtomicUsize::new(0) }
    }

    /// Record that the calling participant has exited the job closure and
    /// can no longer dereference the borrow.
    ///
    /// Release pairs with the Acquire in [`Self::exited`]/[`Self::await_all`],
    /// publishing the job's writes and making it sound for the publisher
    /// to drop the closure once every participant has counted in — even if
    /// this thread then stalls before the end barrier.
    pub fn record_exit(&self) {
        self.done.fetch_add(1, Ordering::Release);
    }

    /// Participants counted out so far.
    pub fn exited(&self) -> usize {
        self.done.load(Ordering::Acquire)
    }

    /// Reset for the next fork–join. Only sound while no participant is
    /// between closure entry and its `record_exit` (the pool calls this
    /// after a successful end-barrier crossing, when workers are parked at
    /// the start barrier again).
    pub fn reset(&self) {
        // ORDERING: Relaxed — the end-barrier crossing that precedes every
        // reset already ordered all `record_exit` increments before this
        // store, and the next fork–join's start barrier orders the store
        // before any new increment.
        self.done.store(0, Ordering::Relaxed);
    }

    /// Spin until all `n` participants have recorded their exit, or the
    /// grace budget expires. `Ok(())` proves the closure borrow is dead;
    /// `Err(exited)` means a participant is wedged inside the closure and
    /// reports how many had counted out.
    pub fn await_all(&self, n: usize, grace: Duration) -> Result<(), usize> {
        let mut spin = A::SpinState::default();
        loop {
            let exited = self.exited();
            if exited >= n {
                return Ok(());
            }
            if A::spin(&mut spin, Some(grace)).is_some() {
                return Err(exited);
            }
        }
    }
}

impl<A: Atomics> Default for JobExitLatch<A> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_counts_and_resets() {
        let latch: JobExitLatch = JobExitLatch::new();
        assert_eq!(latch.exited(), 0);
        latch.record_exit();
        latch.record_exit();
        assert_eq!(latch.exited(), 2);
        assert_eq!(latch.await_all(2, Duration::from_millis(1)), Ok(()));
        latch.reset();
        assert_eq!(latch.exited(), 0);
    }

    #[test]
    fn await_all_times_out_when_short() {
        let latch: JobExitLatch = JobExitLatch::new();
        latch.record_exit();
        assert_eq!(latch.await_all(2, Duration::from_millis(5)), Err(1));
    }

    #[test]
    fn await_all_observes_concurrent_exits() {
        let latch: std::sync::Arc<JobExitLatch> = std::sync::Arc::new(JobExitLatch::new());
        let l2 = std::sync::Arc::clone(&latch);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            l2.record_exit();
        });
        latch.record_exit();
        assert_eq!(latch.await_all(2, Duration::from_secs(10)), Ok(()));
        h.join().unwrap();
    }
}
