//! The paper's recursive static partitioner (§4.5).
//!
//! Work is modelled as a D-dimensional grid of equal tasks
//! `(P₁ × P₂ × … × P_D)`, most significant dimension first. The grid is
//! divided among `K` threads recursively:
//!
//! 1. `K = 1`: the whole (sub-)grid goes to that thread.
//! 2. Otherwise find the most significant dimension `d` with
//!    `x_d = gcd(P_d, K) > 1`, slice the grid along `d` into `x_d` equal
//!    sub-grids and recurse with `K / x_d` threads each.
//! 3. If every gcd is 1, slice along the dimension with the largest extent
//!    into `K` chunks as equally as possible (some threads get slightly
//!    more work — the paper accepts this).
//!
//! Because batch size, channel counts and thread counts are typically
//! powers of two, case 2 nearly always divides the work exactly. Each
//! thread receives one contiguous hyper-rectangle, so iteration order
//! within a thread walks the least significant dimensions first —
//! neighbouring tiles that share cache lines stay on the same core.

/// A half-open hyper-rectangle of task indices: thread-local work.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskBox {
    pub start: Vec<usize>,
    pub end: Vec<usize>,
}

impl TaskBox {
    /// Number of tasks in the box.
    pub fn len(&self) -> usize {
        self.start
            .iter()
            .zip(&self.end)
            .map(|(&s, &e)| e.saturating_sub(s))
            .product()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visit every task in the box in row-major order, passing the flat
    /// index of the task within the *full* grid `dims`.
    pub fn for_each_flat(&self, dims: &[usize], mut f: impl FnMut(usize)) {
        if self.is_empty() {
            return;
        }
        let d = dims.len();
        let mut coords = self.start.clone();
        loop {
            // Flat index (row-major).
            let mut idx = 0;
            for (c, dim) in coords.iter().zip(dims) {
                idx = idx * dim + c;
            }
            f(idx);
            // Increment within the box.
            let mut k = d;
            loop {
                if k == 0 {
                    return;
                }
                k -= 1;
                coords[k] += 1;
                if coords[k] < self.end[k] {
                    break;
                }
                coords[k] = self.start[k];
            }
        }
    }

    /// Collect flat indices (test helper).
    pub fn flat_indices(&self, dims: &[usize]) -> Vec<usize> {
        let mut v = Vec::with_capacity(self.len());
        self.for_each_flat(dims, |i| v.push(i));
        v
    }
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// A static assignment of a task grid to `K` threads.
#[derive(Clone, Debug)]
pub struct GridPartition {
    pub dims: Vec<usize>,
    pub boxes: Vec<TaskBox>,
}

impl GridPartition {
    /// Partition grid `dims` among `threads` threads.
    pub fn new(dims: &[usize], threads: usize) -> GridPartition {
        assert!(threads > 0, "need at least one thread");
        assert!(!dims.is_empty(), "grid must have at least one dimension");
        let mut boxes = Vec::with_capacity(threads);
        let root = TaskBox { start: vec![0; dims.len()], end: dims.to_vec() };
        split(root, threads, &mut boxes);
        debug_assert_eq!(boxes.len(), threads);
        GridPartition { dims: dims.to_vec(), boxes }
    }

    /// Total tasks in the grid.
    pub fn total(&self) -> usize {
        self.dims.iter().product()
    }

    /// Largest per-thread task count (load-balance metric).
    pub fn max_load(&self) -> usize {
        self.boxes.iter().map(TaskBox::len).max().unwrap_or(0)
    }

    /// Smallest per-thread task count.
    pub fn min_load(&self) -> usize {
        self.boxes.iter().map(TaskBox::len).min().unwrap_or(0)
    }
}

fn split(b: TaskBox, threads: usize, out: &mut Vec<TaskBox>) {
    if threads == 1 {
        out.push(b);
        return;
    }
    // Case 2: most significant dimension with gcd > 1.
    for d in 0..b.start.len() {
        let extent = b.end[d] - b.start[d];
        let x = gcd(extent, threads);
        if x > 1 {
            let chunk = extent / x;
            for i in 0..x {
                let mut sub = b.clone();
                sub.start[d] = b.start[d] + i * chunk;
                sub.end[d] = b.start[d] + (i + 1) * chunk;
                split(sub, threads / x, out);
            }
            return;
        }
    }
    // Case 3: no common divisor — slice the largest dimension as equally
    // as possible into `threads` chunks (some may be empty when the
    // extent is smaller than the thread count).
    let d = (0..b.start.len())
        .max_by_key(|&d| b.end[d] - b.start[d])
        .expect("non-empty dims");
    let extent = b.end[d] - b.start[d];
    let base = extent / threads;
    let rem = extent % threads;
    let mut pos = b.start[d];
    for i in 0..threads {
        let size = base + usize::from(i < rem);
        let mut sub = b.clone();
        sub.start[d] = pos;
        sub.end[d] = pos + size;
        pos += size;
        out.push(sub);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn check_exact_cover(dims: &[usize], threads: usize) -> GridPartition {
        let p = GridPartition::new(dims, threads);
        assert_eq!(p.boxes.len(), threads);
        let mut seen = HashSet::new();
        for b in &p.boxes {
            for idx in b.flat_indices(dims) {
                assert!(seen.insert(idx), "task {idx} assigned twice");
            }
        }
        assert_eq!(seen.len(), p.total(), "tasks dropped");
        p
    }

    #[test]
    fn power_of_two_grids_split_evenly() {
        // Stage-1 style grid: B × C/S × N_D × N_H × N_W.
        let p = check_exact_cover(&[64, 8, 4, 28, 28], 64);
        assert_eq!(p.max_load(), p.min_load(), "power-of-two split must be perfectly even");
        assert_eq!(p.max_load(), p.total() / 64);
    }

    #[test]
    fn most_significant_dimension_is_preferred() {
        // B = 8 divisible by 8 threads: split along B only; each thread's
        // box covers full trailing dims (cache-friendly contiguity).
        let p = GridPartition::new(&[8, 5, 7], 8);
        for (i, b) in p.boxes.iter().enumerate() {
            assert_eq!(b.start[0], i);
            assert_eq!(b.end[0], i + 1);
            assert_eq!(b.start[1..], [0, 0]);
            assert_eq!(b.end[1..], [5, 7]);
        }
    }

    #[test]
    fn coprime_fallback_is_nearly_even() {
        // dims 3×5, 4 threads: all gcds 1 → slice largest dim (5) into
        // 2,1,1,1 → loads 6,3,3,3.
        let p = check_exact_cover(&[3, 5], 4);
        assert!(p.max_load() - p.min_load() <= 3);
        assert_eq!(p.max_load(), 6);
    }

    #[test]
    fn single_thread_gets_everything() {
        let p = check_exact_cover(&[7, 11], 1);
        assert_eq!(p.boxes[0].len(), 77);
    }

    #[test]
    fn more_threads_than_tasks() {
        let p = check_exact_cover(&[2, 2], 16);
        // 4 tasks over 16 threads: 12 threads idle, never panics.
        assert_eq!(p.boxes.iter().filter(|b| !b.is_empty()).count(), 4);
    }

    #[test]
    fn mixed_factors() {
        // 6 threads, dims (4, 9): gcd(4,6)=2 → two halves with 3 threads;
        // then gcd(2,3)=1 but gcd(9,3)=3 → even split. Perfectly balanced.
        let p = check_exact_cover(&[4, 9], 6);
        assert_eq!(p.max_load(), 6);
        assert_eq!(p.min_load(), 6);
    }

    #[test]
    fn many_configurations_cover_exactly() {
        for dims in [vec![1], vec![13], vec![3, 4, 5], vec![2, 2, 2, 2, 2], vec![64, 4], vec![5, 5, 5]] {
            for threads in [1, 2, 3, 4, 5, 7, 8, 16, 61] {
                check_exact_cover(&dims, threads);
            }
        }
    }

    #[test]
    fn iteration_is_row_major_within_box() {
        let b = TaskBox { start: vec![1, 2], end: vec![3, 4] };
        let dims = [4, 5];
        assert_eq!(b.flat_indices(&dims), vec![7, 8, 12, 13]);
    }

    #[test]
    fn empty_box_yields_nothing() {
        let b = TaskBox { start: vec![2, 2], end: vec![2, 4] };
        assert!(b.is_empty());
        assert!(b.flat_indices(&[4, 4]).is_empty());
    }
}
