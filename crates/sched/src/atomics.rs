//! The `Atomics` seam: the synchronisation substrate (barrier, job-exit
//! latch) is written once, generically, against this trait, and
//! instantiated twice —
//!
//! * [`StdAtomics`]: real `std::sync::atomic` types plus a wall-clock
//!   watchdog. This is what ships; `SpinBarrier` is
//!   `SpinBarrierIn<StdAtomics>`.
//! * `ModelAtomics` (in `wino-analyze`): shim atomics that report every
//!   access to a deterministic scheduler so a loom-style model checker can
//!   enumerate interleavings of the *same source code* that runs in
//!   production.
//!
//! The seam is deliberately tiny: the ops the barrier/latch actually use,
//! plus one `spin` hook that owns all time-dependence (backoff, yield,
//! watchdog deadline). Keeping `Instant`/`yield_now` behind the trait is
//! what makes the algorithms checkable — virtual time in the model is a
//! bounded step counter, so every schedule terminates.

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// The subset of `std::sync::atomic::AtomicUsize`'s API the scheduling
/// substrate uses. Implementations must provide genuinely atomic
/// operations with at least the requested ordering.
pub trait AtomicUsizeOps: Send + Sync {
    fn new(v: usize) -> Self;
    fn load(&self, order: Ordering) -> usize;
    fn store(&self, v: usize, order: Ordering);
    fn fetch_add(&self, v: usize, order: Ordering) -> usize;
    fn fetch_or(&self, v: usize, order: Ordering) -> usize;
    fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize>;
}

impl AtomicUsizeOps for std::sync::atomic::AtomicUsize {
    #[inline]
    fn new(v: usize) -> Self {
        std::sync::atomic::AtomicUsize::new(v)
    }
    #[inline]
    fn load(&self, order: Ordering) -> usize {
        std::sync::atomic::AtomicUsize::load(self, order)
    }
    #[inline]
    fn store(&self, v: usize, order: Ordering) {
        std::sync::atomic::AtomicUsize::store(self, v, order)
    }
    #[inline]
    fn fetch_add(&self, v: usize, order: Ordering) -> usize {
        std::sync::atomic::AtomicUsize::fetch_add(self, v, order)
    }
    #[inline]
    fn fetch_or(&self, v: usize, order: Ordering) -> usize {
        std::sync::atomic::AtomicUsize::fetch_or(self, v, order)
    }
    #[inline]
    fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        std::sync::atomic::AtomicUsize::compare_exchange(self, current, new, success, failure)
    }
}

/// An execution environment for the busy-wait synchronisation code: atomic
/// word types plus the one backoff/watchdog hook.
///
/// The `deadline` passed to [`Atomics::spin`] is interpreted in the
/// implementation's own timebase: wall-clock for [`StdAtomics`], *virtual
/// time* (one nanosecond per spin step) for the model checker's
/// `ModelAtomics`. Algorithms must treat it as opaque.
pub trait Atomics: 'static {
    type AtomicUsize: AtomicUsizeOps;
    /// Per-wait-loop backoff state; fresh (`Default`) at the start of each
    /// blocking wait.
    type SpinState: Default;

    /// One iteration of a busy-wait loop: backoff (spin hint, OS yield, or
    /// model-scheduler yield point) and watchdog check. Returns
    /// `Some(waited)` once `deadline` has expired, `None` while the caller
    /// should keep waiting.
    fn spin(state: &mut Self::SpinState, deadline: Option<Duration>) -> Option<Duration>;
}

/// The clock seam: code that compares deadlines or measures queue ages
/// names its timebase through this trait instead of calling
/// `Instant::now()` directly, so the same source can run against the
/// wall clock in production ([`StdClock`]) and against *virtual time*
/// under the model checker (`ModelClock` in `wino-analyze`, where one
/// tick is one scheduler step and "has the deadline passed?" becomes an
/// explorable schedule choice rather than a wall-clock read).
///
/// The trait is deliberately minimal — an opaque, totally-ordered
/// instant plus saturating arithmetic. Durations keep their `std`
/// meaning; only the origin and rate of `now` are abstracted.
pub trait Clock: 'static {
    /// An opaque point in this clock's timebase.
    type Instant: Copy + PartialOrd + Send + Sync + std::fmt::Debug;

    /// The current instant.
    fn now() -> Self::Instant;

    /// `t + d` (saturating at the timebase's maximum).
    fn add(t: Self::Instant, d: Duration) -> Self::Instant;

    /// `later - earlier`, or `Duration::ZERO` if `later < earlier`.
    fn since(later: Self::Instant, earlier: Self::Instant) -> Duration;
}

/// The production timebase: `std::time::Instant`.
pub struct StdClock;

impl Clock for StdClock {
    type Instant = Instant;

    #[inline]
    fn now() -> Instant {
        Instant::now()
    }
    #[inline]
    fn add(t: Instant, d: Duration) -> Instant {
        t.checked_add(d).unwrap_or(t)
    }
    #[inline]
    fn since(later: Instant, earlier: Instant) -> Duration {
        later.saturating_duration_since(earlier)
    }
}

/// Pure spins before falling back to `yield_now` (tuned conservatively:
/// real barrier crossings complete within tens of spins when cores are
/// dedicated). Deadline checks also start only after this threshold, so
/// the fast path performs no clock reads at all.
const SPINS_BEFORE_YIELD: u32 = 1 << 14;

/// Backoff state for [`StdAtomics`]: spin counter plus the lazily-started
/// watchdog clock.
#[derive(Default)]
pub struct StdSpinState {
    spins: u32,
    yielding_since: Option<Instant>,
}

/// The production environment: real atomics, `spin_loop`/`yield_now`
/// backoff, wall-clock watchdog.
pub struct StdAtomics;

impl Atomics for StdAtomics {
    type AtomicUsize = std::sync::atomic::AtomicUsize;
    type SpinState = StdSpinState;

    #[inline]
    fn spin(state: &mut StdSpinState, deadline: Option<Duration>) -> Option<Duration> {
        std::hint::spin_loop();
        state.spins += 1;
        if state.spins >= SPINS_BEFORE_YIELD {
            std::thread::yield_now();
            if let Some(limit) = deadline {
                let t0 = *state.yielding_since.get_or_insert_with(Instant::now);
                let waited = t0.elapsed();
                if waited >= limit {
                    return Some(waited);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_spin_expires_deadline() {
        let mut st = StdSpinState::default();
        let limit = Duration::from_millis(5);
        let t0 = Instant::now();
        loop {
            if let Some(waited) = StdAtomics::spin(&mut st, Some(limit)) {
                assert!(waited >= limit);
                break;
            }
            assert!(t0.elapsed() < Duration::from_secs(30), "watchdog never fired");
        }
    }

    #[test]
    fn std_spin_without_deadline_never_expires_quickly() {
        let mut st = StdSpinState::default();
        for _ in 0..(SPINS_BEFORE_YIELD + 64) {
            assert!(StdAtomics::spin(&mut st, None).is_none());
        }
    }
}
