//! Fault battery for [`wino_sched::ShardedPool`]: the ISSUE-8 contract is
//! that a panic, stall or kill in one shard degrades *that shard only* —
//! the other shards keep executing and the pool as a whole recovers
//! through the same typed-error machinery as a single [`ThreadPool`].
//!
//! Armed faults are process-global one-shots keyed by shard-*local* tid
//! (every shard's participants run `before_job`/`after_job` with their own
//! pool's tids), so in a sharded run exactly ONE shard consumes the fault
//! — which one is a race. The assertions below therefore check counts
//! ("exactly one shard degraded", "exactly one slot panicked"), never
//! identities.

#![cfg(feature = "fault-inject")]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use wino_sched::fault;
use wino_sched::{Executor, PoolError, ShardedPool, Topology};

fn pool_2x2() -> ShardedPool {
    ShardedPool::with_options(
        &Topology::from_spec("2x2").unwrap(),
        Duration::from_millis(300),
        false,
    )
}

fn assert_covers(pool: &ShardedPool, dims: &[usize]) {
    let total: usize = dims.iter().product();
    let hits: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
    pool.run_grid(dims, &|_, i| {
        // ORDERING: Relaxed — test counter; run_grid's join orders it.
        hits[i].fetch_add(1, Ordering::Relaxed);
    })
    .unwrap();
    for (i, h) in hits.iter().enumerate() {
        // ORDERING: Relaxed — all writers joined inside run_grid.
        assert_eq!(h.load(Ordering::Relaxed), 1, "task {i}");
    }
}

#[test]
fn injected_panic_hits_one_shard_and_pool_stays_healthy() {
    let _g = fault::test_lock();
    fault::reset();
    let pool = pool_2x2();
    // Tid 1 exists in both shards; the one-shot fault fires in whichever
    // shard's tid 1 reaches `before_job` first.
    fault::arm_panic(1, fault::When::Next);
    let err = pool.run_grid(&[8, 8], &|_, _| {}).expect_err("injected panic");
    match &err {
        PoolError::Panicked { panics } => {
            assert_eq!(panics.len(), 1, "one-shot fault fires in exactly one shard: {panics:?}");
            assert!(panics[0].1.contains("injected fault"), "{}", panics[0].1);
        }
        other => panic!("expected Panicked, got {other:?}"),
    }
    // Panics never kill a shard — full capacity, full coverage after.
    assert!(!pool.degraded());
    assert_eq!(pool.live_shards(), 2);
    assert_covers(&pool, &[8, 8]);
    fault::reset();
}

#[test]
fn injected_stall_kills_one_shard_and_the_other_keeps_working() {
    let _g = fault::test_lock();
    fault::reset();
    let pool = pool_2x2();
    // A stall well past the 300 ms watchdog: the affected shard's end
    // barrier times out and that shard is poisoned.
    fault::arm_stall(1, fault::When::Next, Duration::from_millis(1500));
    let err = pool.run_grid(&[8, 8], &|_, _| {}).expect_err("watchdog must fire");
    assert!(matches!(err, PoolError::Barrier(_)), "{err:?}");
    // Exactly one shard died; the survivor carries all subsequent work.
    assert!(pool.degraded());
    assert_eq!(pool.live_shards(), 1);
    assert_covers(&pool, &[8, 8]);
    assert_covers(&pool, &[3, 5]);
    fault::reset();
}

#[test]
fn stalled_shard_rebuilds_to_full_capacity() {
    let _g = fault::test_lock();
    fault::reset();
    let mut pool = pool_2x2();
    // Tid 1, not tid 0: a stall on the driving participant delays its own
    // end-barrier wait rather than tripping it (same as a single pool).
    fault::arm_stall(1, fault::When::Next, Duration::from_millis(1500));
    let _ = pool.run_grid(&[4, 4], &|_, _| {}).expect_err("watchdog must fire");
    assert_eq!(pool.live_shards(), 1);
    assert_eq!(pool.rebuild(), 1);
    assert_eq!(pool.live_shards(), 2);
    assert!(pool.shard_health().into_iter().all(|r| r.is_ok()));
    assert_covers(&pool, &[8, 8]);
    fault::reset();
}

#[test]
fn killed_shard_then_panic_in_survivor_still_contained() {
    // Compound scenario: one shard already dead, then a panic fault lands
    // in the survivor — the error is Panicked (not Unusable) and the
    // survivor stays alive.
    let _g = fault::test_lock();
    fault::reset();
    let pool = pool_2x2();
    pool.kill_shard(0);
    fault::arm_panic(0, fault::When::Next);
    let err = pool.run_grid(&[8, 8], &|_, _| {}).expect_err("injected panic");
    assert_eq!(err.panicking_tids().len(), 1);
    assert_eq!(pool.live_shards(), 1);
    assert_covers(&pool, &[8, 8]);
    fault::reset();
}
