//! # wino-baseline
//!
//! Comparator implementations for the Fig. 5 evaluation:
//!
//! * [`direct::direct_conv`] — vectorised direct convolution on the
//!   blocked layout (the Zlateski & Seung \[58\] / MKL-DNN-direct stand-in),
//! * [`im2col::im2col_conv`] — lowering + one large GEMM (the stand-in for
//!   cuDNN's matrix-multiply based algorithm),
//! * [`reference::direct_f64`] — the extended-precision ground truth for
//!   the Table 3 accuracy study.

pub mod direct;
pub mod im2col;
pub mod reference;

pub use direct::direct_conv;
pub use im2col::im2col_conv;
pub use reference::{direct_f64, element_errors};

/// Maximum supported spatial rank (mirrors `wino_conv::MAX_RANK`).
pub const MAX_RANK: usize = 6;
