//! # wino-baseline
//!
//! Comparator implementations for the Fig. 5 evaluation:
//!
//! * [`direct::direct_conv`] — vectorised direct convolution on the
//!   blocked layout (the Zlateski & Seung \[58\] / MKL-DNN-direct stand-in),
//! * [`im2col::im2col_conv`] — lowering + one large GEMM (the stand-in for
//!   cuDNN's matrix-multiply based algorithm),
//! * [`reference::direct_f64`] — the extended-precision ground truth for
//!   the Table 3 accuracy study.

pub mod direct;
pub mod im2col;
pub mod reference;

pub use direct::direct_conv;
pub use im2col::{im2col_conv, im2col_conv_geo};
pub use reference::{direct_f64, direct_f64_geo, element_errors};

/// Maximum supported spatial rank (mirrors `wino_conv::MAX_RANK`).
pub const MAX_RANK: usize = 6;

/// Record a coordinator probe span of `cat` from `start` to now on
/// `exec`'s collector, if it carries one. Free when probing is disabled.
/// Must be called from the fork-issuing thread with no fork–join in
/// flight (the position of baseline code around its `run_grid` calls).
#[inline]
pub(crate) fn record_coord(
    exec: &dyn wino_sched::Executor,
    cat: wino_probe::SpanCategory,
    start: u64,
) {
    if !wino_probe::ENABLED {
        return;
    }
    if let Some(c) = exec.probe() {
        // SAFETY: coordinator thread between fork–joins per this
        // function's contract, so the coordinator buffer is exclusive.
        unsafe { c.record(wino_probe::COORDINATOR, cat, start, wino_probe::now_ns()) };
    }
}
