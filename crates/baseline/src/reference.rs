//! Ground-truth direct convolution with extended-precision accumulation.
//!
//! The paper estimates ground truth "using a direct convolution algorithm
//! that uses long doubles" (§5.3). Rust has no `long double`; we accumulate
//! in `f64`, whose 53-bit significand exceeds f32's 24 bits by a factor of
//! 2²⁹ — more than enough head-room to treat the result as exact when
//! measuring f32 errors in the 1e-8…1e0 range of Table 3 (substitution
//! documented in DESIGN.md).

// Index-based loops are the idiom throughout: most walk several
// arrays with derived offsets, where iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]
use wino_tensor::{unflatten, ConvGeometry, SimpleImage, SimpleKernels};

/// Direct N-D cross-correlation (the ConvNet "convolution" of Eqn. 6),
/// accumulating every output in `f64`, rounding once at the end.
pub fn direct_f64(img: &SimpleImage, ker: &SimpleKernels, padding: &[usize]) -> SimpleImage {
    direct_f64_geo(img, ker, padding, &ConvGeometry::identity(img.dims.len()))
}

/// [`direct_f64`] generalised over the full (stride, dilation, groups)
/// lattice — the ground truth every dispatch route is differentially
/// verified against. Kernels follow the grouped convention:
/// `ker.in_channels == img.channels / groups`, and output channel `co`
/// (group `g = co / (C'/G)`) reads input channels
/// `[g·C/G, (g+1)·C/G)`. With the identity geometry this is exactly the
/// stride-1 oracle.
pub fn direct_f64_geo(
    img: &SimpleImage,
    ker: &SimpleKernels,
    padding: &[usize],
    geo: &ConvGeometry,
) -> SimpleImage {
    let rank = img.dims.len();
    assert_eq!(rank, ker.dims.len(), "rank mismatch");
    assert_eq!(rank, padding.len(), "rank mismatch");
    assert_eq!(rank, geo.stride.len(), "rank mismatch");
    assert_eq!(rank, geo.dilation.len(), "rank mismatch");
    assert!(img.channels.is_multiple_of(geo.groups), "groups must divide C");
    assert!(ker.out_channels.is_multiple_of(geo.groups), "groups must divide C'");
    let c_per_group = img.channels / geo.groups;
    let k_per_group = ker.out_channels / geo.groups;
    assert_eq!(ker.in_channels, c_per_group, "grouped kernel channel mismatch");

    let out_dims: Vec<usize> = (0..rank)
        .map(|d| {
            let r_eff = (ker.dims[d] - 1) * geo.dilation[d] + 1;
            (img.dims[d] + 2 * padding[d] - r_eff) / geo.stride[d] + 1
        })
        .collect();
    let mut out = SimpleImage::zeros(img.batch, ker.out_channels, &out_dims);
    let out_vol: usize = out_dims.iter().product();
    let ker_vol: usize = ker.dims.iter().product();

    // Precompute kernel coordinate offsets once.
    let kcoords: Vec<Vec<usize>> = (0..ker_vol).map(|k| unflatten(k, &ker.dims)).collect();

    for b in 0..img.batch {
        for co in 0..ker.out_channels {
            let ci0 = (co / k_per_group) * c_per_group;
            for o in 0..out_vol {
                let ocoords = unflatten(o, &out_dims);
                let mut acc = 0.0f64;
                for cl in 0..c_per_group {
                    let kbase = ker.kernel(co, cl);
                    for (k, kc) in kcoords.iter().enumerate() {
                        let mut coords = [0isize; 8];
                        let mut inside = true;
                        for d in 0..rank {
                            let x = (ocoords[d] * geo.stride[d] + kc[d] * geo.dilation[d]) as isize
                                - padding[d] as isize;
                            if x < 0 || x >= img.dims[d] as isize {
                                inside = false;
                                break;
                            }
                            coords[d] = x;
                        }
                        if inside {
                            let mut flat = 0usize;
                            for d in 0..rank {
                                flat = flat * img.dims[d] + coords[d] as usize;
                            }
                            acc += img.channel(b, ci0 + cl)[flat] as f64 * kbase[k] as f64;
                        }
                    }
                }
                out.data[(b * ker.out_channels + co) * out_vol + o] = acc as f32;
            }
        }
    }
    out
}

/// Max and mean absolute element error between two equally shaped images
/// (the Table 3 statistics).
pub fn element_errors(got: &SimpleImage, truth: &SimpleImage) -> (f64, f64) {
    assert_eq!(got.dims, truth.dims);
    assert_eq!(got.data.len(), truth.data.len());
    let mut max = 0.0f64;
    let mut sum = 0.0f64;
    for (g, t) in got.data.iter().zip(&truth.data) {
        let e = (*g as f64 - *t as f64).abs();
        max = max.max(e);
        sum += e;
    }
    (max, sum / got.data.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel_is_identity() {
        // 1×1 kernel = per-channel scaling and summation.
        let img = SimpleImage::from_fn(1, 2, &[4, 4], |_, c, xy| (c * 16 + xy[0] * 4 + xy[1]) as f32);
        let mut ker = SimpleKernels::zeros(2, 2, &[1, 1]);
        ker.set(0, 0, &[0, 0], 1.0); // out0 = in0
        ker.set(1, 1, &[0, 0], 2.0); // out1 = 2·in1
        let out = direct_f64(&img, &ker, &[0, 0]);
        assert_eq!(out.get(0, 0, &[1, 2]), img.get(0, 0, &[1, 2]));
        assert_eq!(out.get(0, 1, &[3, 3]), 2.0 * img.get(0, 1, &[3, 3]));
    }

    #[test]
    fn hand_computed_3x3() {
        // Single channel, all-ones 3×3 kernel: each output is the sum of
        // the 3×3 neighbourhood (with zero padding at the borders).
        let img = SimpleImage::from_fn(1, 1, &[3, 3], |_, _, xy| (xy[0] * 3 + xy[1]) as f32);
        let ker = SimpleKernels::from_fn(1, 1, &[3, 3], |_, _, _| 1.0);
        let out = direct_f64(&img, &ker, &[1, 1]);
        assert_eq!(out.dims, vec![3, 3]);
        // Centre output = sum of all 9 pixels = 0+1+..+8 = 36.
        assert_eq!(out.get(0, 0, &[1, 1]), 36.0);
        // Corner (0,0) sees pixels (0,0),(0,1),(1,0),(1,1) = 0+1+3+4 = 8.
        assert_eq!(out.get(0, 0, &[0, 0]), 8.0);
    }

    #[test]
    fn correlation_not_flipped_convolution() {
        // An asymmetric kernel distinguishes correlation from convolution.
        let img = SimpleImage::from_fn(1, 1, &[1, 4], |_, _, xy| xy[1] as f32);
        let mut ker = SimpleKernels::zeros(1, 1, &[1, 2]);
        ker.set(0, 0, &[0, 0], 1.0);
        ker.set(0, 0, &[0, 1], 10.0);
        let out = direct_f64(&img, &ker, &[0, 0]);
        // y[o] = x[o] + 10·x[o+1]  (correlation semantics)
        assert_eq!(out.get(0, 0, &[0, 0]), 0.0 + 10.0);
        assert_eq!(out.get(0, 0, &[0, 1]), 1.0 + 20.0);
        assert_eq!(out.get(0, 0, &[0, 2]), 2.0 + 30.0);
    }

    #[test]
    fn errors_metric() {
        let a = SimpleImage::from_fn(1, 1, &[2, 2], |_, _, xy| (xy[0] * 2 + xy[1]) as f32);
        let mut b = a.clone();
        b.data[0] += 0.5;
        b.data[3] -= 0.25;
        let (max, avg) = element_errors(&b, &a);
        assert_eq!(max, 0.5);
        assert!((avg - 0.1875).abs() < 1e-12);
    }

    #[test]
    fn strided_oracle_samples_the_sublattice() {
        // Stride 2 must pick exactly every second stride-1 output.
        let img = SimpleImage::from_fn(1, 2, &[7, 7], |_, c, xy| {
            (c * 49 + xy[0] * 7 + xy[1]) as f32 * 0.1
        });
        let ker = SimpleKernels::from_fn(2, 2, &[3, 3], |co, ci, xy| {
            (co + ci + xy[0] + xy[1]) as f32 * 0.25 - 0.5
        });
        let dense = direct_f64(&img, &ker, &[1, 1]);
        let geo = ConvGeometry { stride: vec![2, 2], dilation: vec![1, 1], groups: 1 };
        let strided = direct_f64_geo(&img, &ker, &[1, 1], &geo);
        assert_eq!(strided.dims, vec![4, 4]);
        for co in 0..2 {
            for x in 0..4 {
                for y in 0..4 {
                    assert_eq!(strided.get(0, co, &[x, y]), dense.get(0, co, &[2 * x, 2 * y]));
                }
            }
        }
    }

    #[test]
    fn dilated_oracle_matches_spread_kernel() {
        // A dilation-2 3-tap kernel equals a 5-tap kernel with zeros at the
        // odd positions.
        let img = SimpleImage::from_fn(1, 1, &[9], |_, _, x| (x[0] * x[0]) as f32 * 0.01);
        let ker = SimpleKernels::from_fn(1, 1, &[3], |_, _, x| (x[0] + 1) as f32);
        let mut spread = SimpleKernels::zeros(1, 1, &[5]);
        spread.set(0, 0, &[0], 1.0);
        spread.set(0, 0, &[2], 2.0);
        spread.set(0, 0, &[4], 3.0);
        let geo = ConvGeometry { stride: vec![1], dilation: vec![2], groups: 1 };
        let dilated = direct_f64_geo(&img, &ker, &[1], &geo);
        let reference = direct_f64(&img, &spread, &[1]);
        assert_eq!(dilated.dims, reference.dims);
        assert_eq!(dilated.data, reference.data);
    }

    #[test]
    fn grouped_oracle_blocks_the_channels() {
        // Two groups: the output of group 1 must be completely insensitive
        // to group-0 input channels.
        let ker = SimpleKernels::from_fn(4, 2, &[3, 3], |co, ci, xy| {
            (co * 9 + ci * 3 + xy[0] + xy[1]) as f32 * 0.1
        });
        let geo = ConvGeometry { stride: vec![1, 1], dilation: vec![1, 1], groups: 2 };
        let base = SimpleImage::from_fn(1, 4, &[5, 5], |_, c, xy| (c * 25 + xy[0] * 5 + xy[1]) as f32);
        let mut poisoned = base.clone();
        for c in 0..2 {
            for x in 0..5 {
                for y in 0..5 {
                    poisoned.set(0, c, &[x, y], 999.0);
                }
            }
        }
        let a = direct_f64_geo(&base, &ker, &[1, 1], &geo);
        let b = direct_f64_geo(&poisoned, &ker, &[1, 1], &geo);
        let out_vol = 25;
        // Output channels 2, 3 (group 1) agree; 0, 1 (group 0) differ.
        for co in 2..4 {
            for o in 0..out_vol {
                assert_eq!(a.data[(co) * out_vol + o], b.data[(co) * out_vol + o]);
            }
        }
        assert_ne!(a.data[..2 * out_vol], b.data[..2 * out_vol]);

        // Depthwise (groups == C) equals C independent single-channel convs.
        let dk = SimpleKernels::from_fn(4, 1, &[3, 3], |co, _, xy| (co + xy[0] * 3 + xy[1]) as f32 * 0.2);
        let dgeo = ConvGeometry { stride: vec![1, 1], dilation: vec![1, 1], groups: 4 };
        let dw = direct_f64_geo(&base, &dk, &[1, 1], &dgeo);
        for c in 0..4 {
            let one_img = SimpleImage::from_fn(1, 1, &[5, 5], |_, _, xy| base.get(0, c, xy));
            let one_ker = SimpleKernels::from_fn(1, 1, &[3, 3], |_, _, xy| dk.get(c, 0, xy));
            let one = direct_f64(&one_img, &one_ker, &[1, 1]);
            for o in 0..out_vol {
                assert_eq!(dw.data[c * out_vol + o], one.data[o], "channel {c} elem {o}");
            }
        }
    }

    #[test]
    fn three_d_case() {
        let img = SimpleImage::from_fn(1, 1, &[2, 2, 2], |_, _, _| 1.0);
        let ker = SimpleKernels::from_fn(1, 1, &[2, 2, 2], |_, _, _| 1.0);
        let out = direct_f64(&img, &ker, &[0, 0, 0]);
        assert_eq!(out.dims, vec![1, 1, 1]);
        assert_eq!(out.get(0, 0, &[0, 0, 0]), 8.0);
    }
}
