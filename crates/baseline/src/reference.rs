//! Ground-truth direct convolution with extended-precision accumulation.
//!
//! The paper estimates ground truth "using a direct convolution algorithm
//! that uses long doubles" (§5.3). Rust has no `long double`; we accumulate
//! in `f64`, whose 53-bit significand exceeds f32's 24 bits by a factor of
//! 2²⁹ — more than enough head-room to treat the result as exact when
//! measuring f32 errors in the 1e-8…1e0 range of Table 3 (substitution
//! documented in DESIGN.md).

// Index-based loops are the idiom throughout: most walk several
// arrays with derived offsets, where iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]
use wino_tensor::{unflatten, SimpleImage, SimpleKernels};

/// Direct N-D cross-correlation (the ConvNet "convolution" of Eqn. 6),
/// accumulating every output in `f64`, rounding once at the end.
pub fn direct_f64(img: &SimpleImage, ker: &SimpleKernels, padding: &[usize]) -> SimpleImage {
    assert_eq!(img.channels, ker.in_channels, "channel mismatch");
    assert_eq!(img.dims.len(), ker.dims.len(), "rank mismatch");
    assert_eq!(img.dims.len(), padding.len(), "rank mismatch");
    let rank = img.dims.len();
    let out_dims: Vec<usize> = (0..rank)
        .map(|d| img.dims[d] + 2 * padding[d] - ker.dims[d] + 1)
        .collect();
    let mut out = SimpleImage::zeros(img.batch, ker.out_channels, &out_dims);
    let out_vol: usize = out_dims.iter().product();
    let ker_vol: usize = ker.dims.iter().product();

    // Precompute kernel coordinate offsets once.
    let kcoords: Vec<Vec<usize>> = (0..ker_vol).map(|k| unflatten(k, &ker.dims)).collect();

    for b in 0..img.batch {
        for co in 0..ker.out_channels {
            for o in 0..out_vol {
                let ocoords = unflatten(o, &out_dims);
                let mut acc = 0.0f64;
                for ci in 0..img.channels {
                    let kbase = ker.kernel(co, ci);
                    for (k, kc) in kcoords.iter().enumerate() {
                        let mut coords = [0isize; 8];
                        let mut inside = true;
                        for d in 0..rank {
                            let x = (ocoords[d] + kc[d]) as isize - padding[d] as isize;
                            if x < 0 || x >= img.dims[d] as isize {
                                inside = false;
                                break;
                            }
                            coords[d] = x;
                        }
                        if inside {
                            let mut flat = 0usize;
                            for d in 0..rank {
                                flat = flat * img.dims[d] + coords[d] as usize;
                            }
                            acc += img.channel(b, ci)[flat] as f64 * kbase[k] as f64;
                        }
                    }
                }
                out.data[(b * ker.out_channels + co) * out_vol + o] = acc as f32;
            }
        }
    }
    out
}

/// Max and mean absolute element error between two equally shaped images
/// (the Table 3 statistics).
pub fn element_errors(got: &SimpleImage, truth: &SimpleImage) -> (f64, f64) {
    assert_eq!(got.dims, truth.dims);
    assert_eq!(got.data.len(), truth.data.len());
    let mut max = 0.0f64;
    let mut sum = 0.0f64;
    for (g, t) in got.data.iter().zip(&truth.data) {
        let e = (*g as f64 - *t as f64).abs();
        max = max.max(e);
        sum += e;
    }
    (max, sum / got.data.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel_is_identity() {
        // 1×1 kernel = per-channel scaling and summation.
        let img = SimpleImage::from_fn(1, 2, &[4, 4], |_, c, xy| (c * 16 + xy[0] * 4 + xy[1]) as f32);
        let mut ker = SimpleKernels::zeros(2, 2, &[1, 1]);
        ker.set(0, 0, &[0, 0], 1.0); // out0 = in0
        ker.set(1, 1, &[0, 0], 2.0); // out1 = 2·in1
        let out = direct_f64(&img, &ker, &[0, 0]);
        assert_eq!(out.get(0, 0, &[1, 2]), img.get(0, 0, &[1, 2]));
        assert_eq!(out.get(0, 1, &[3, 3]), 2.0 * img.get(0, 1, &[3, 3]));
    }

    #[test]
    fn hand_computed_3x3() {
        // Single channel, all-ones 3×3 kernel: each output is the sum of
        // the 3×3 neighbourhood (with zero padding at the borders).
        let img = SimpleImage::from_fn(1, 1, &[3, 3], |_, _, xy| (xy[0] * 3 + xy[1]) as f32);
        let ker = SimpleKernels::from_fn(1, 1, &[3, 3], |_, _, _| 1.0);
        let out = direct_f64(&img, &ker, &[1, 1]);
        assert_eq!(out.dims, vec![3, 3]);
        // Centre output = sum of all 9 pixels = 0+1+..+8 = 36.
        assert_eq!(out.get(0, 0, &[1, 1]), 36.0);
        // Corner (0,0) sees pixels (0,0),(0,1),(1,0),(1,1) = 0+1+3+4 = 8.
        assert_eq!(out.get(0, 0, &[0, 0]), 8.0);
    }

    #[test]
    fn correlation_not_flipped_convolution() {
        // An asymmetric kernel distinguishes correlation from convolution.
        let img = SimpleImage::from_fn(1, 1, &[1, 4], |_, _, xy| xy[1] as f32);
        let mut ker = SimpleKernels::zeros(1, 1, &[1, 2]);
        ker.set(0, 0, &[0, 0], 1.0);
        ker.set(0, 0, &[0, 1], 10.0);
        let out = direct_f64(&img, &ker, &[0, 0]);
        // y[o] = x[o] + 10·x[o+1]  (correlation semantics)
        assert_eq!(out.get(0, 0, &[0, 0]), 0.0 + 10.0);
        assert_eq!(out.get(0, 0, &[0, 1]), 1.0 + 20.0);
        assert_eq!(out.get(0, 0, &[0, 2]), 2.0 + 30.0);
    }

    #[test]
    fn errors_metric() {
        let a = SimpleImage::from_fn(1, 1, &[2, 2], |_, _, xy| (xy[0] * 2 + xy[1]) as f32);
        let mut b = a.clone();
        b.data[0] += 0.5;
        b.data[3] -= 0.25;
        let (max, avg) = element_errors(&b, &a);
        assert_eq!(max, 0.5);
        assert!((avg - 0.1875).abs() < 1e-12);
    }

    #[test]
    fn three_d_case() {
        let img = SimpleImage::from_fn(1, 1, &[2, 2, 2], |_, _, _| 1.0);
        let ker = SimpleKernels::from_fn(1, 1, &[2, 2, 2], |_, _, _| 1.0);
        let out = direct_f64(&img, &ker, &[0, 0, 0]);
        assert_eq!(out.dims, vec![1, 1, 1]);
        assert_eq!(out.get(0, 0, &[0, 0, 0]), 8.0);
    }
}
