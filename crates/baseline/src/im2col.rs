//! im2col + GEMM convolution — the stand-in for cuDNN's "matrix-multiply
//! based convolution" rows of Fig. 5, and the engine's universal fallback
//! for conv geometries Winograd declines (dilation, narrow groups).
//!
//! The input is lowered into a `B·∏out × (C/G)·∏r` matrix per channel
//! group (one row per output position, one column per (input channel,
//! kernel element) pair, zeros where the receptive field covers padding),
//! the group's kernels into a `(C/G)·∏r × C'/G` matrix, and one product
//! per group produces all outputs. Stride and dilation live entirely in
//! the lowering's index arithmetic — the GEMM never sees them. Uses the
//! same block-panel GEMM engine as the Winograd path, so the comparison
//! isolates the *algorithm* (lowering + one big GEMM vs transform + many
//! small GEMMs), not the kernel quality.

use wino_sched::Executor;
use wino_simd::S;
use wino_tensor::{BlockedImage, BlockedKernels, BlockedMatrices, ConvGeometry};

use crate::MAX_RANK;

#[inline]
fn decompose(mut flat: usize, dims: &[usize], out: &mut [usize]) {
    for i in (0..dims.len()).rev() {
        out[i] = flat % dims[i];
        flat /= dims[i];
    }
}

/// Pick a column block: the largest divisor of `cols` that is a multiple
/// of 16 and at most 128.
fn pick_cb(cols: usize) -> usize {
    let mut best = 16;
    let mut cb = 16;
    while cb <= 128.min(cols) {
        if cols.is_multiple_of(cb) {
            best = cb;
        }
        cb += 16;
    }
    best
}

/// im2col + GEMM convolution with zero padding, stride 1.
pub fn im2col_conv(
    input: &BlockedImage,
    kernels: &BlockedKernels,
    padding: &[usize],
    output: &mut BlockedImage,
    exec: &dyn Executor,
) -> Result<(), wino_sched::PoolError> {
    let geo = ConvGeometry::identity(input.dims.len());
    im2col_conv_geo(input, kernels, padding, &geo, output, exec)
}

/// [`im2col_conv`] generalised over the full (stride, dilation, groups)
/// lattice. Kernels follow the grouped convention
/// (`kernels.in_channels == input.channels / groups`); `output` must be
/// pre-sized to the geometry's output extents. Per-group lowered columns
/// are zero-padded up to a multiple of the vector width so narrow groups
/// (depthwise included) still ride the blocked GEMM.
pub fn im2col_conv_geo(
    input: &BlockedImage,
    kernels: &BlockedKernels,
    padding: &[usize],
    geo: &ConvGeometry,
    output: &mut BlockedImage,
    exec: &dyn Executor,
) -> Result<(), wino_sched::PoolError> {
    let rank = input.dims.len();
    assert!(rank <= MAX_RANK);
    assert!(input.channels.is_multiple_of(geo.groups), "groups must divide C");
    assert!(output.channels.is_multiple_of(geo.groups), "groups must divide C'");
    let c_per_group = input.channels / geo.groups;
    let k_per_group = output.channels / geo.groups;
    assert_eq!(kernels.in_channels, c_per_group, "grouped kernel channel mismatch");
    assert_eq!(kernels.out_channels, output.channels);
    let out_dims = output.dims.clone();
    for d in 0..rank {
        let r_eff = (kernels.dims[d] - 1) * geo.dilation[d] + 1;
        assert_eq!(
            out_dims[d],
            (input.dims[d] + 2 * padding[d] - r_eff) / geo.stride[d] + 1,
            "output extent mismatch in dimension {d}"
        );
    }

    let c_in = input.channels;
    let ker_vol: usize = kernels.dims.iter().product();
    let out_vol: usize = out_dims.iter().product();
    let rows = input.batch * out_vol;
    // Lowered columns per group, zero-padded up to the vector width; the
    // padded tail is zero in both operands and multiplies harmlessly.
    let inner = (c_per_group * ker_vol).next_multiple_of(S);
    let cp = k_per_group.next_multiple_of(S);

    let n_blk = 8usize;
    let cb = pick_cb(inner);
    let cpb = pick_cb(cp);

    let in_dims = &input.dims;
    let mut in_stride = [1usize; MAX_RANK];
    for d in (0..rank.saturating_sub(1)).rev() {
        in_stride[d] = in_stride[d + 1] * in_dims[d + 1];
    }
    let in_spatial: usize = in_dims.iter().product();
    let in_cg = c_in / S;
    let out_cg = output.channels / S;

    for g in 0..geo.groups {
        // Lower the group's input slice. Column index = cl·ker_vol + k.
        let lower_start = wino_probe::now_ns();
        let mut a = BlockedMatrices::new(1, rows, inner, n_blk, cb);
        {
            let mut oc = [0usize; MAX_RANK];
            let mut kc = [0usize; MAX_RANK];
            for b in 0..input.batch {
                for o in 0..out_vol {
                    decompose(o, &out_dims, &mut oc[..rank]);
                    let row = b * out_vol + o;
                    for k in 0..ker_vol {
                        decompose(k, &kernels.dims, &mut kc[..rank]);
                        let mut inside = true;
                        let mut off = 0isize;
                        for d in 0..rank {
                            let x = (oc[d] * geo.stride[d] + kc[d] * geo.dilation[d]) as isize
                                - padding[d] as isize;
                            if x < 0 || x >= in_dims[d] as isize {
                                inside = false;
                                break;
                            }
                            off += x * in_stride[d] as isize;
                        }
                        if !inside {
                            continue; // matrix is zero-initialised
                        }
                        let spatial = off as usize;
                        for cl in 0..c_per_group {
                            let c = g * c_per_group + cl;
                            let v = input.as_slice()
                                [((b * in_cg + c / S) * in_spatial + spatial) * S + c % S];
                            a.set(0, row, cl * ker_vol + k, v);
                        }
                    }
                }
            }
        }

        // Lower the group's kernels: rows follow the same (cl, k) order.
        let mut w = BlockedMatrices::new(1, inner, cp, cb, cpb);
        for col in 0..k_per_group {
            let co = g * k_per_group + col;
            for cl in 0..c_per_group {
                for k in 0..ker_vol {
                    let v = kernels.as_slice()[kernels.vec_offset_flat(cl, co / S, k) + co % S];
                    w.set(0, cl * ker_vol + k, col, v);
                }
            }
        }

        crate::record_coord(exec, wino_probe::SpanCategory::Im2colLower, lower_start);

        // One GEMM per group.
        let gemm_start = wino_probe::now_ns();
        let mut x = BlockedMatrices::new(1, rows, cp, n_blk, cpb);
        wino_gemm::batched_gemm_parallel(&a, &w, &mut x, exec)?;
        crate::record_coord(exec, wino_probe::SpanCategory::ElementwiseGemm, gemm_start);

        // Scatter back into the blocked output image (accounted to the
        // lowering category: it is the same data-movement overhead, just on
        // the way out).
        let scatter_start = wino_probe::now_ns();
        for b in 0..input.batch {
            for o in 0..out_vol {
                let row = b * out_vol + o;
                for col in 0..k_per_group {
                    let co = g * k_per_group + col;
                    let v = x.get(0, row, col);
                    output.as_mut_slice()[((b * out_cg + co / S) * out_vol + o) * S + co % S] = v;
                }
            }
        }
        crate::record_coord(exec, wino_probe::SpanCategory::Im2colLower, scatter_start);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::direct_f64_geo;
    use wino_sched::SerialExecutor;
    use wino_tensor::{SimpleImage, SimpleKernels};

    fn check(batch: usize, c: usize, cp: usize, dims: &[usize], kd: &[usize], pad: &[usize]) {
        check_geo(batch, c, cp, dims, kd, pad, &ConvGeometry::identity(dims.len()));
    }

    fn check_geo(
        batch: usize,
        c: usize,
        cp: usize,
        dims: &[usize],
        kd: &[usize],
        pad: &[usize],
        geo: &ConvGeometry,
    ) {
        let si = SimpleImage::from_fn(batch, c, dims, |b, c, xy| {
            ((b * 31 + c * 7 + xy.iter().sum::<usize>() * 3) % 13) as f32 * 0.1 - 0.5
        });
        let sk = SimpleKernels::from_fn(cp, c / geo.groups, kd, |co, ci, xy| {
            ((co * 5 + ci * 11 + xy.iter().sum::<usize>()) % 7) as f32 * 0.3 - 0.9
        });
        let want = direct_f64_geo(&si, &sk, pad, geo);
        let bi = BlockedImage::from_simple(&si).unwrap();
        let bk = BlockedKernels::from_simple(&sk).unwrap();
        let mut out = BlockedImage::zeros(batch, cp, &want.dims).unwrap();
        im2col_conv_geo(&bi, &bk, pad, geo, &mut out, &SerialExecutor).unwrap();
        let got = out.to_simple();
        for i in 0..got.data.len() {
            assert!(
                (got.data[i] - want.data[i]).abs() <= 1e-3 * want.data[i].abs().max(1.0),
                "elem {i}: {} vs {}",
                got.data[i],
                want.data[i]
            );
        }
    }

    #[test]
    fn matches_reference_2d() {
        check(2, 16, 32, &[6, 6], &[3, 3], &[1, 1]);
    }

    #[test]
    fn matches_reference_3d() {
        check(1, 16, 16, &[4, 5, 5], &[3, 3, 3], &[1, 1, 1]);
    }

    #[test]
    fn no_padding_and_odd_sizes() {
        check(1, 16, 16, &[7, 9], &[3, 2], &[0, 0]);
    }

    #[test]
    fn strided_matches_oracle() {
        let geo = ConvGeometry { stride: vec![2, 2], dilation: vec![1, 1], groups: 1 };
        check_geo(2, 16, 32, &[9, 9], &[3, 3], &[1, 1], &geo);
        let geo3 = ConvGeometry { stride: vec![2, 1, 2], dilation: vec![1, 1, 1], groups: 1 };
        check_geo(1, 16, 16, &[5, 5, 7], &[3, 3, 3], &[1, 1, 1], &geo3);
    }

    #[test]
    fn dilated_matches_oracle() {
        let geo = ConvGeometry { stride: vec![1, 1], dilation: vec![2, 2], groups: 1 };
        check_geo(1, 16, 16, &[9, 9], &[3, 3], &[2, 2], &geo);
        // Dilation past the padding: receptive field reads zeros.
        let past = ConvGeometry { stride: vec![1, 1], dilation: vec![3, 3], groups: 1 };
        check_geo(1, 16, 16, &[8, 8], &[3, 3], &[1, 1], &past);
    }

    #[test]
    fn grouped_and_depthwise_match_oracle() {
        let g2 = ConvGeometry { stride: vec![1, 1], dilation: vec![1, 1], groups: 2 };
        check_geo(1, 32, 32, &[6, 6], &[3, 3], &[1, 1], &g2);
        // Depthwise: groups == C, one input channel per group.
        let dw = ConvGeometry { stride: vec![1, 1], dilation: vec![1, 1], groups: 32 };
        check_geo(1, 32, 32, &[6, 6], &[3, 3], &[1, 1], &dw);
    }

    #[test]
    fn combined_stride_dilation_groups() {
        let geo = ConvGeometry { stride: vec![2, 2], dilation: vec![2, 2], groups: 2 };
        check_geo(1, 32, 32, &[9, 9], &[3, 3], &[2, 2], &geo);
    }

    #[test]
    fn cb_picker() {
        assert_eq!(pick_cb(144), 48);
        assert_eq!(pick_cb(16), 16);
        assert_eq!(pick_cb(256), 128);
        assert_eq!(pick_cb(32), 32);
    }
}
