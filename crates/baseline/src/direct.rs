//! Vectorised direct convolution on the blocked layout — the optimised
//! "direct" comparator of Fig. 5 (the style of Zlateski & Seung \[58\] and
//! MKL-DNN's `nChw16c` direct kernels).
//!
//! For each output position, the vector of `S = 16` output channels is
//! accumulated as `Σ_{c,k} broadcast(I[b,c,o+k]) · W[c, og, k]` — one
//! scalar-broadcast FMA per (input channel, kernel element), exactly the
//! shape of computation KNL's scalar-vector FMA instruction was built for.
//! A register block of `WBLK` (8) adjacent outputs amortises each kernel
//! vector load across 8 FMAs.

// Index-based loops are the idiom throughout: most walk several
// arrays with derived offsets, where iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]
use wino_sched::Executor;
use wino_simd::{F32x16, S};
use wino_tensor::{BlockedImage, BlockedKernels};

use crate::MAX_RANK;

/// Output positions accumulated together in registers.
const WBLK: usize = 8;

struct MutPtr(*mut f32);
// SAFETY: tasks write disjoint output rows.
unsafe impl Sync for MutPtr {}
// SAFETY: the pointer targets the caller-owned output buffer, which
// outlives the fork–join that moves this handle between threads.
unsafe impl Send for MutPtr {}
impl MutPtr {
    fn get(&self) -> *mut f32 {
        self.0
    }
}

#[inline]
fn decompose(mut flat: usize, dims: &[usize], out: &mut [usize]) {
    for i in (0..dims.len()).rev() {
        out[i] = flat % dims[i];
        flat /= dims[i];
    }
}

/// Direct N-D convolution: `output[b,c'] = Σ_c input[b,c] ⋆ kernels[c,c']`
/// with zero padding, stride 1.
pub fn direct_conv(
    input: &BlockedImage,
    kernels: &BlockedKernels,
    padding: &[usize],
    output: &mut BlockedImage,
    exec: &dyn Executor,
) -> Result<(), wino_sched::PoolError> {
    let rank = input.dims.len();
    assert!(rank <= MAX_RANK);
    assert_eq!(kernels.in_channels, input.channels);
    assert_eq!(kernels.out_channels, output.channels);
    assert_eq!(padding.len(), rank);
    let out_dims = output.dims.clone();
    for d in 0..rank {
        assert_eq!(out_dims[d], input.dims[d] + 2 * padding[d] - kernels.dims[d] + 1);
    }

    let in_dims = &input.dims;
    let ker_dims = &kernels.dims;
    let ker_vol: usize = ker_dims.iter().product();
    let c_in = input.channels;

    // Row-major spatial strides.
    let mut in_stride = [1usize; MAX_RANK];
    for d in (0..rank.saturating_sub(1)).rev() {
        in_stride[d] = in_stride[d + 1] * in_dims[d + 1];
    }
    let mut out_stride = [1usize; MAX_RANK];
    for d in (0..rank.saturating_sub(1)).rev() {
        out_stride[d] = out_stride[d + 1] * out_dims[d + 1];
    }
    // Kernel coordinate table.
    let mut kcoords: Vec<[usize; MAX_RANK]> = Vec::with_capacity(ker_vol);
    for k in 0..ker_vol {
        let mut kc = [0usize; MAX_RANK];
        decompose(k, ker_dims, &mut kc[..rank]);
        kcoords.push(kc);
    }

    // Task grid: B × C'/S × (outer output rows) — the innermost output
    // dimension is handled inside the task in WBLK register blocks.
    let outer_dims: Vec<usize> = out_dims[..rank - 1].to_vec();
    let mut dims = Vec::with_capacity(2 + outer_dims.len());
    dims.push(input.batch);
    dims.push(output.channels / S);
    dims.extend_from_slice(&outer_dims);

    let out_ptr = MutPtr(output.as_mut_ptr());
    let out_w = out_dims[rank - 1];
    let in_w = in_dims[rank - 1] as isize;
    let out_spatial_vol: usize = out_dims.iter().product();
    let in_spatial_vol: usize = in_dims.iter().product();
    let in_cg = input.channels / S;
    let stage_start = wino_probe::now_ns();

    let result = exec.run_grid(&dims, &|_slot, flat| {
        let mut coords = [0usize; MAX_RANK + 2];
        decompose(flat, &dims, &mut coords[..dims.len()]);
        let (b, og) = (coords[0], coords[1]);
        let orow = &coords[2..2 + rank - 1];

        // Destination row base (vector units).
        let mut out_row_off = 0usize;
        for d in 0..rank - 1 {
            out_row_off += orow[d] * out_stride[d];
        }
        let dst_base = ((b * (dims[1])) + og) * out_spatial_vol + out_row_off;

        // SAFETY: each task owns one output row of one channel group.
        unsafe {
            let dst = out_ptr.get();
            let ker_ptr = kernels.as_ptr();
            let in_ptr = input.as_ptr();

            let mut w0 = 0usize;
            while w0 < out_w {
                let wn = WBLK.min(out_w - w0);
                let mut acc = [F32x16::zero(); WBLK];
                for c in 0..c_in {
                    let in_base_vec = ((b * in_cg + c / S) * in_spatial_vol) * S;
                    let lane = c % S;
                    for (k, kc) in kcoords.iter().enumerate() {
                        // Input row offset for this kernel element.
                        let mut ok = true;
                        let mut row_off = 0isize;
                        for d in 0..rank - 1 {
                            let x = (orow[d] + kc[d]) as isize - padding[d] as isize;
                            if x < 0 || x >= in_dims[d] as isize {
                                ok = false;
                                break;
                            }
                            row_off += x * in_stride[d] as isize;
                        }
                        if !ok {
                            continue;
                        }
                        let kv = F32x16::load(
                            ker_ptr.add(kernels.vec_offset_flat(c, og, k)),
                        );
                        let wk = kc[rank - 1] as isize - padding[rank - 1] as isize;
                        let first = w0 as isize + wk;
                        let last = (w0 + wn - 1) as isize + wk;
                        if first >= 0 && last < in_w {
                            // Interior fast path: the whole register block
                            // reads in bounds — no per-element branches.
                            let base = in_base_vec + (row_off + first) as usize * S + lane;
                            for u in 0..wn {
                                let s = F32x16::splat(*in_ptr.add(base + u * S));
                                acc[u] = s.mul_add(kv, acc[u]);
                            }
                        } else {
                            for u in 0..wn {
                                let x = (w0 + u) as isize + wk;
                                if x >= 0 && x < in_w {
                                    let off = in_base_vec + (row_off + x) as usize * S + lane;
                                    let s = F32x16::splat(*in_ptr.add(off));
                                    acc[u] = s.mul_add(kv, acc[u]);
                                }
                            }
                        }
                    }
                }
                for u in 0..wn {
                    acc[u].store(dst.add((dst_base + w0 + u) * S));
                }
                w0 += wn;
            }
        }
    });
    crate::record_coord(exec, wino_probe::SpanCategory::DirectKernel, stage_start);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::direct_f64;
    use wino_sched::{SerialExecutor, StaticExecutor};
    use wino_tensor::{SimpleImage, SimpleKernels};

    fn img(batch: usize, c: usize, dims: &[usize]) -> SimpleImage {
        SimpleImage::from_fn(batch, c, dims, |b, c, xy| {
            let mut h = b * 131 + c * 31;
            for &x in xy {
                h = h.wrapping_mul(17).wrapping_add(x);
            }
            (h % 23) as f32 * 0.1 - 1.0
        })
    }

    fn ker(cp: usize, c: usize, dims: &[usize]) -> SimpleKernels {
        SimpleKernels::from_fn(cp, c, dims, |co, ci, xy| {
            let mut h = co * 7 + ci * 3;
            for &x in xy {
                h = h.wrapping_mul(5).wrapping_add(x);
            }
            (h % 11) as f32 * 0.2 - 1.0
        })
    }

    fn check(batch: usize, c: usize, cp: usize, dims: &[usize], kd: &[usize], pad: &[usize]) {
        let si = img(batch, c, dims);
        let sk = ker(cp, c, kd);
        let want = direct_f64(&si, &sk, pad);

        let bi = BlockedImage::from_simple(&si).unwrap();
        let bk = BlockedKernels::from_simple(&sk).unwrap();
        let mut out = BlockedImage::zeros(batch, cp, &want.dims).unwrap();
        direct_conv(&bi, &bk, pad, &mut out, &SerialExecutor).unwrap();
        let got = out.to_simple();
        for i in 0..got.data.len() {
            assert!(
                (got.data[i] - want.data[i]).abs() <= 1e-4 * want.data[i].abs().max(1.0),
                "elem {i}: {} vs {}",
                got.data[i],
                want.data[i]
            );
        }
    }

    #[test]
    fn matches_reference_2d() {
        check(2, 32, 32, &[9, 9], &[3, 3], &[1, 1]);
        check(1, 16, 32, &[7, 12], &[3, 3], &[0, 0]);
    }

    #[test]
    fn matches_reference_3d() {
        check(1, 16, 16, &[4, 6, 6], &[3, 3, 3], &[1, 1, 1]);
    }

    #[test]
    fn matches_reference_1d() {
        check(2, 16, 16, &[20], &[5], &[2]);
    }

    #[test]
    fn arbitrary_kernels() {
        check(1, 16, 16, &[10, 10], &[4, 4], &[0, 0]);
        check(1, 16, 16, &[8, 8], &[1, 1], &[0, 0]);
        check(1, 16, 16, &[9, 9], &[5, 2], &[2, 0]);
    }

    #[test]
    fn wide_rows_exercise_wblk_remainder() {
        // out_w = 19 = 2·8 + 3 → full blocks plus remainder.
        check(1, 16, 16, &[4, 21], &[3, 3], &[0, 0]);
    }

    #[test]
    fn parallel_matches_serial() {
        let si = img(2, 32, &[8, 8]);
        let sk = ker(32, 32, &[3, 3]);
        let bi = BlockedImage::from_simple(&si).unwrap();
        let bk = BlockedKernels::from_simple(&sk).unwrap();
        let mut o1 = BlockedImage::zeros(2, 32, &[8, 8]).unwrap();
        let mut o2 = BlockedImage::zeros(2, 32, &[8, 8]).unwrap();
        direct_conv(&bi, &bk, &[1, 1], &mut o1, &SerialExecutor).unwrap();
        let pool = StaticExecutor::new(4);
        direct_conv(&bi, &bk, &[1, 1], &mut o2, &pool).unwrap();
        assert_eq!(o1.as_slice(), o2.as_slice());
    }
}
