//! The workspace lint rules: a declarative table ([`RULES`]) of
//! machine-enforced hygiene invariants for `unsafe` code and atomics,
//! with per-rule allowlists so exceptions are explicit, justified, and
//! reviewed in one place.
//!
//! New crates inherit every rule automatically (the driver lints
//! `crates/*/src/**/*.rs`); to add a rule, append an entry here and give
//! it a `check` function over the lexed token stream (see DESIGN.md
//! §"Static analysis & concurrency verification").

use crate::lexer::{lex, TokKind, Token};

/// Which files a rule applies to, as workspace-relative path prefixes.
pub enum Scope {
    /// Every linted file.
    All,
    /// Only files under these prefixes.
    Only(&'static [&'static str]),
    /// Every linted file except those under these prefixes.
    Except(&'static [&'static str]),
}

impl Scope {
    fn applies(&self, path: &str) -> bool {
        match self {
            Scope::All => true,
            Scope::Only(pre) => pre.iter().any(|p| path.starts_with(p)),
            Scope::Except(pre) => !pre.iter().any(|p| path.starts_with(p)),
        }
    }
}

/// A justified exception to a rule: the file it covers and why.
pub struct AllowEntry {
    pub path: &'static str,
    pub reason: &'static str,
}

/// One lint rule.
pub struct Rule {
    /// Stable kebab-case id, printed with every violation.
    pub id: &'static str,
    pub summary: &'static str,
    pub scope: Scope,
    /// Files exempt from this rule, each with a recorded reason.
    pub allow: &'static [AllowEntry],
    pub check: fn(&FileCtx) -> Vec<RawViolation>,
}

/// A violation before path/allowlist resolution: line + message.
pub struct RawViolation {
    pub line: u32,
    pub msg: String,
}

/// A resolved violation ready for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub path: String,
    pub line: u32,
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.msg)
    }
}

/// Lexed file handed to rule checks.
pub struct FileCtx<'a> {
    pub path: &'a str,
    pub src: &'a str,
    pub toks: Vec<Token>,
}

impl<'a> FileCtx<'a> {
    pub fn new(path: &'a str, src: &'a str) -> FileCtx<'a> {
        FileCtx { path, src, toks: lex(src) }
    }

    fn text(&self, i: usize) -> &str {
        self.toks[i].text(self.src)
    }

    fn is_comment(&self, i: usize) -> bool {
        matches!(self.toks[i].kind, TokKind::LineComment | TokKind::BlockComment)
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        self.toks[i].kind == TokKind::Punct && self.toks[i].punct(self.src) == c
    }

    fn is_boundary(&self, i: usize) -> bool {
        self.is_punct(i, ';') || self.is_punct(i, '{') || self.is_punct(i, '}')
    }

    /// Previous non-comment token index before `i`.
    fn prev_code(&self, i: usize) -> Option<usize> {
        (0..i).rev().find(|&j| !self.is_comment(j))
    }

    /// Next non-comment token index after `i`.
    fn next_code(&self, i: usize) -> Option<usize> {
        (i + 1..self.toks.len()).find(|&j| !self.is_comment(j))
    }

    /// Whether token `i` carries an adjacent justification comment
    /// containing any of `markers`.
    ///
    /// "Adjacent" means: a comment between the start of the enclosing
    /// statement (the previous `;`/`{`/`}`) and the token, or a trailing
    /// comment up to and on the line where the statement ends (the next
    /// `;`/`{`/`}`). This matches both styles in the workspace:
    ///
    /// ```text
    /// // SAFETY: …
    /// let x = unsafe { … };
    ///
    /// count.store(0, Ordering::Relaxed); // ORDERING: …
    /// ```
    pub fn annotated(&self, i: usize, markers: &[&str]) -> bool {
        let has = |j: usize| {
            let t = self.text(j);
            markers.iter().any(|m| t.contains(m))
        };
        // Backward to the statement start.
        for j in (0..i).rev() {
            if self.is_comment(j) {
                if has(j) {
                    return true;
                }
            } else if self.is_boundary(j) {
                break;
            }
        }
        // Forward to the statement end, then trailing comments on that line.
        let mut end_line: Option<u32> = None;
        for j in i + 1..self.toks.len() {
            let t = &self.toks[j];
            if let Some(line) = end_line {
                if t.line > line {
                    break;
                }
                if self.is_comment(j) && has(j) {
                    return true;
                }
            } else if self.is_comment(j) {
                if has(j) {
                    return true;
                }
            } else if self.is_boundary(j) {
                end_line = Some(t.line);
            }
        }
        false
    }
}

// ---- rule checks ----

fn check_unsafe_needs_safety(f: &FileCtx) -> Vec<RawViolation> {
    let mut out = Vec::new();
    for (i, t) in f.toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && f.text(i) == "unsafe"
            && !f.annotated(i, &["SAFETY:", "# Safety"])
        {
            out.push(RawViolation {
                line: t.line,
                msg: "`unsafe` without an adjacent `// SAFETY:` comment (or `# Safety` doc \
                      section) justifying it"
                    .to_string(),
            });
        }
    }
    out
}

fn check_relaxed_needs_ordering(f: &FileCtx) -> Vec<RawViolation> {
    let mut out = Vec::new();
    for (i, t) in f.toks.iter().enumerate() {
        if t.kind != TokKind::Ident || f.text(i) != "Relaxed" {
            continue;
        }
        // Must be `Ordering::Relaxed` (two `:` puncts then `Ordering`).
        let Some(c1) = f.prev_code(i) else { continue };
        let Some(c2) = f.prev_code(c1) else { continue };
        let Some(c3) = f.prev_code(c2) else { continue };
        if !(f.is_punct(c1, ':') && f.is_punct(c2, ':') && f.text(c3) == "Ordering") {
            continue;
        }
        if !f.annotated(i, &["ORDERING:"]) {
            out.push(RawViolation {
                line: t.line,
                msg: "`Ordering::Relaxed` without an adjacent `// ORDERING:` comment \
                      justifying why no synchronisation is needed"
                    .to_string(),
            });
        }
    }
    out
}

fn check_no_static_mut(f: &FileCtx) -> Vec<RawViolation> {
    let mut out = Vec::new();
    for (i, t) in f.toks.iter().enumerate() {
        if t.kind == TokKind::Ident && f.text(i) == "static" {
            if let Some(n) = f.next_code(i) {
                if f.toks[n].kind == TokKind::Ident && f.text(n) == "mut" {
                    out.push(RawViolation {
                        line: t.line,
                        msg: "`static mut` is forbidden: use an atomic, a lock, or \
                              interior mutability with a safety argument"
                            .to_string(),
                    });
                }
            }
        }
    }
    out
}

fn check_no_transmute(f: &FileCtx) -> Vec<RawViolation> {
    let mut out = Vec::new();
    for (i, t) in f.toks.iter().enumerate() {
        if t.kind == TokKind::Ident && f.text(i) == "transmute" {
            out.push(RawViolation {
                line: t.line,
                msg: "`mem::transmute` outside `crates/simd`/`crates/jit` — prefer safe \
                      conversions or pointer casts; if unavoidable, add this file to the \
                      rule's allowlist with a reason"
                    .to_string(),
            });
        }
    }
    out
}

fn check_allow_needs_rationale(f: &FileCtx) -> Vec<RawViolation> {
    let mut out = Vec::new();
    for i in 0..f.toks.len() {
        if !f.is_punct(i, '#') {
            continue;
        }
        // `#[allow(` or `#![allow(`
        let Some(mut j) = f.next_code(i) else { continue };
        if f.is_punct(j, '!') {
            let Some(j2) = f.next_code(j) else { continue };
            j = j2;
        }
        if !f.is_punct(j, '[') {
            continue;
        }
        let Some(k) = f.next_code(j) else { continue };
        if f.toks[k].kind != TokKind::Ident || f.text(k) != "allow" {
            continue;
        }
        // Find the attribute's closing `]` (bracket depth from `[`).
        let mut depth = 0i32;
        let mut close = None;
        for m in j..f.toks.len() {
            if f.is_punct(m, '[') {
                depth += 1;
            } else if f.is_punct(m, ']') {
                depth -= 1;
                if depth == 0 {
                    close = Some(m);
                    break;
                }
            }
        }
        let Some(close) = close else { continue };
        let close_line = f.toks[close].line;
        // Trailing rationale: a comment on the attribute's closing line,
        // or a comment line directly above the attribute.
        let trailing = (close + 1..f.toks.len())
            .take_while(|&m| f.toks[m].line == close_line)
            .any(|m| f.is_comment(m));
        let above = (0..i)
            .rev()
            .take_while(|&m| f.toks[m].line + 1 >= f.toks[i].line)
            .any(|m| f.is_comment(m) && f.toks[m].line + 1 == f.toks[i].line);
        if !trailing && !above {
            out.push(RawViolation {
                line: f.toks[i].line,
                msg: "`#[allow(…)]` without a rationale comment (same line or the line \
                      directly above)"
                    .to_string(),
            });
        }
    }
    out
}

/// State-word writes a drop guard may discharge its protocol with.
const GUARD_WRITES: &[&str] = &[
    "resolve",
    "store",
    "swap",
    "fetch_add",
    "fetch_or",
    "fetch_and",
    "fetch_sub",
    "compare_exchange",
];

/// Strip comment delimiters and leading whitespace so tag detection keys
/// on how the comment *starts*, not what it mentions in prose.
fn comment_body(text: &str) -> &str {
    text.trim_start_matches(['/', '*', '!']).trim_start()
}

/// Find the `impl … Drop for <name>` item in `f`, returning the token
/// range of the `fn drop` body (exclusive of its braces).
fn find_drop_body(f: &FileCtx, name: &str) -> Option<(usize, usize)> {
    let mut i = 0;
    while i < f.toks.len() {
        if f.toks[i].kind != TokKind::Ident || f.text(i) != "impl" {
            i += 1;
            continue;
        }
        // Scan the impl header (up to the body `{`) for `Drop`, `for`,
        // and the type name — tolerant of generics in between.
        let mut body_open = None;
        let (mut saw_drop, mut saw_for, mut saw_name) = (false, false, false);
        for j in i + 1..f.toks.len() {
            if f.is_punct(j, '{') {
                body_open = Some(j);
                break;
            }
            if f.toks[j].kind == TokKind::Ident {
                match f.text(j) {
                    "Drop" => saw_drop = true,
                    "for" => saw_for = true,
                    t if t == name => saw_name = saw_for,
                    _ => {}
                }
            }
        }
        let open = body_open?;
        if !(saw_drop && saw_for && saw_name) {
            i = open + 1;
            continue;
        }
        // Inside the impl body, find `fn drop` and its body braces.
        for j in open + 1..f.toks.len() {
            if f.toks[j].kind == TokKind::Ident
                && f.text(j) == "fn"
                && f.next_code(j).is_some_and(|k| f.text(k) == "drop")
            {
                let fn_open = (j + 1..f.toks.len()).find(|&k| f.is_punct(k, '{'))?;
                let mut depth = 0i32;
                for k in fn_open..f.toks.len() {
                    if f.is_punct(k, '{') {
                        depth += 1;
                    } else if f.is_punct(k, '}') {
                        depth -= 1;
                        if depth == 0 {
                            return Some((fn_open + 1, k));
                        }
                    }
                }
                return None;
            }
        }
        return None;
    }
    None
}

fn check_drop_guard_protocol(f: &FileCtx) -> Vec<RawViolation> {
    let mut out = Vec::new();
    for (i, t) in f.toks.iter().enumerate() {
        if !f.is_comment(i) || !comment_body(f.text(i)).starts_with("PROTOCOL: drop-guard") {
            continue;
        }
        // The tag annotates the next item: `struct X` (Drop impl located
        // by name) or the `impl … Drop for X` itself.
        let mut j = match f.next_code(i) {
            Some(j) => j,
            None => continue,
        };
        // Skip `pub`, `pub(crate)`, and attributes.
        loop {
            if f.toks[j].kind == TokKind::Ident && f.text(j) == "pub" {
                j = match f.next_code(j) {
                    Some(n) if f.is_punct(n, '(') => {
                        let close = (n..f.toks.len()).find(|&k| f.is_punct(k, ')'));
                        match close.and_then(|c| f.next_code(c)) {
                            Some(n2) => n2,
                            None => break,
                        }
                    }
                    Some(n) => n,
                    None => break,
                };
            } else if f.is_punct(j, '#') {
                let close = (j..f.toks.len()).find(|&k| f.is_punct(k, ']'));
                j = match close.and_then(|c| f.next_code(c)) {
                    Some(n) => n,
                    None => break,
                };
            } else {
                break;
            }
        }
        let name = if f.toks[j].kind == TokKind::Ident && f.text(j) == "struct" {
            f.next_code(j).map(|n| f.text(n).to_string())
        } else if f.toks[j].kind == TokKind::Ident && f.text(j) == "impl" {
            // Type name = first ident after `for` in the impl header.
            let mut name = None;
            for k in j + 1..f.toks.len() {
                if f.is_punct(k, '{') {
                    break;
                }
                if f.toks[k].kind == TokKind::Ident && f.text(k) == "for" {
                    name = f.next_code(k).map(|n| f.text(n).to_string());
                    break;
                }
            }
            name
        } else {
            out.push(RawViolation {
                line: t.line,
                msg: "`// PROTOCOL: drop-guard` tag must annotate a struct or its `impl Drop`"
                    .to_string(),
            });
            continue;
        };
        let Some(name) = name else { continue };
        let Some((body_start, body_end)) = find_drop_body(f, &name) else {
            out.push(RawViolation {
                line: t.line,
                msg: format!(
                    "type `{name}` is tagged `// PROTOCOL: drop-guard` but has no `impl Drop \
                     for {name}` in this file"
                ),
            });
            continue;
        };
        // The drop body must write the state word before any return path.
        let first_write = (body_start..body_end).find(|&k| {
            f.toks[k].kind == TokKind::Ident
                && GUARD_WRITES.contains(&f.text(k))
                && f.next_code(k).is_some_and(|n| f.is_punct(n, '('))
        });
        let Some(first_write) = first_write else {
            out.push(RawViolation {
                line: t.line,
                msg: format!(
                    "drop guard `{name}` never writes its state word (no \
                     resolve/store/CAS call in `fn drop`)"
                ),
            });
            continue;
        };
        for k in body_start..first_write {
            if f.toks[k].kind == TokKind::Ident && f.text(k) == "return" {
                out.push(RawViolation {
                    line: f.toks[k].line,
                    msg: format!(
                        "drop guard `{name}` can return before writing its state word — the \
                         protocol write must dominate every exit of `fn drop`"
                    ),
                });
            }
        }
    }
    out
}

/// Calls that can block (or spin unboundedly) and therefore must not run
/// while a spin-lock guard is live.
const BLOCKING_CALLS: &[&str] = &[
    "spin",
    "take_blocking",
    "take_timeout",
    "pop_batch",
    "wait",
    "join",
    "sleep",
    "recv",
    "park",
];

fn check_no_blocking_under_lock(f: &FileCtx) -> Vec<RawViolation> {
    let mut out = Vec::new();
    // (guard name, brace depth its binding lives at)
    let mut guards: Vec<(String, i32)> = Vec::new();
    let mut depth = 0i32;
    let mut i = 0;
    while i < f.toks.len() {
        if f.is_punct(i, '{') {
            depth += 1;
        } else if f.is_punct(i, '}') {
            depth -= 1;
            guards.retain(|(_, d)| *d <= depth);
        } else if f.toks[i].kind == TokKind::Ident {
            let t = f.text(i);
            if t == "let" {
                // Scan the statement (to its `;` at this depth) for a
                // lock acquisition; bind the guard to this block depth.
                let let_depth = depth;
                let mut name = None;
                let mut acquires = false;
                let mut j = i + 1;
                let mut d = depth;
                while j < f.toks.len() {
                    if f.is_punct(j, '{') {
                        d += 1;
                    } else if f.is_punct(j, '}') {
                        d -= 1;
                    } else if f.is_punct(j, ';') && d == let_depth {
                        break;
                    } else if f.toks[j].kind == TokKind::Ident {
                        let tj = f.text(j);
                        if name.is_none() && tj != "mut" {
                            name = Some(tj.to_string());
                        }
                        if (tj == "acquire" || tj == "lock")
                            && f.next_code(j).is_some_and(|n| f.is_punct(n, '('))
                        {
                            acquires = true;
                        }
                        // A blocking call in the initializer still runs
                        // under any guard already live.
                        if !guards.is_empty()
                            && BLOCKING_CALLS.contains(&tj)
                            && f.next_code(j).is_some_and(|n| f.is_punct(n, '('))
                            && !f.annotated(j, &["BLOCKING:"])
                        {
                            out.push(RawViolation {
                                line: f.toks[j].line,
                                msg: format!(
                                    "`{tj}(…)` while the lock guard `{}` is live — blocking \
                                     under a spin-lock can deadlock the substrate; release \
                                     the guard first (scope it or `drop` it) or justify with \
                                     `// BLOCKING:`",
                                    guards.last().map(|(g, _)| g.as_str()).unwrap_or("_")
                                ),
                            });
                        }
                    }
                    j += 1;
                }
                if acquires {
                    guards.push((name.unwrap_or_default(), let_depth));
                }
                i = j;
                continue;
            }
            if t == "drop" {
                // `drop(guard)` releases the named guard early.
                if let Some(n) = f.next_code(i) {
                    if f.is_punct(n, '(') {
                        if let Some(a) = f.next_code(n) {
                            let arg = f.text(a).to_string();
                            guards.retain(|(g, _)| *g != arg);
                        }
                    }
                }
            } else if !guards.is_empty()
                && BLOCKING_CALLS.contains(&t)
                && f.next_code(i).is_some_and(|n| f.is_punct(n, '('))
                && !f.annotated(i, &["BLOCKING:"])
            {
                out.push(RawViolation {
                    line: f.toks[i].line,
                    msg: format!(
                        "`{t}(…)` while the lock guard `{}` is live — blocking under a \
                         spin-lock can deadlock the substrate; release the guard first \
                         (scope it or `drop` it) or justify with `// BLOCKING:`",
                        guards.last().map(|(g, _)| g.as_str()).unwrap_or("_")
                    ),
                });
            }
        }
        i += 1;
    }
    out
}

/// The raw infallible [`AlignedVec`] constructors. Their `try_*`
/// siblings return a typed `AllocError` and are always clean; these
/// abort the process when the allocator refuses.
const RAW_ALLOC_CALLS: &[&str] = &["zeroed", "uninit", "from_slice"];

fn check_alloc_needs_accounting(f: &FileCtx) -> Vec<RawViolation> {
    let mut out = Vec::new();
    for (i, t) in f.toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = f.text(i);
        let raw = if name == "zeroed_first_touch" {
            // Free function: any call site counts, but not the `fn`
            // definition itself (the seam module is allowlisted anyway).
            f.prev_code(i).is_none_or(|p| f.text(p) != "fn")
        } else if RAW_ALLOC_CALLS.contains(&name) {
            // Must be `AlignedVec::<name>` — plain `zeroed`/`uninit`
            // methods on other types are not allocation seams.
            let Some(c1) = f.prev_code(i) else { continue };
            let Some(c2) = f.prev_code(c1) else { continue };
            let Some(c3) = f.prev_code(c2) else { continue };
            f.is_punct(c1, ':') && f.is_punct(c2, ':') && f.text(c3) == "AlignedVec"
        } else {
            continue;
        };
        if !raw || f.next_code(i).is_none_or(|n| !f.is_punct(n, '(')) {
            continue;
        }
        if !f.annotated(i, &["ALLOC:"]) {
            out.push(RawViolation {
                line: t.line,
                msg: format!(
                    "infallible allocation `{name}(…)` in a memory-accounted crate — use the \
                     `try_*` constructor (typed AllocError) or justify the abort-on-OOM path \
                     with an adjacent `// ALLOC:` comment"
                ),
            });
        }
    }
    out
}

/// The workspace rule table. Order is the reporting order.
pub static RULES: &[Rule] = &[
    Rule {
        id: "unsafe-needs-safety",
        summary: "every `unsafe` block/fn/impl carries an adjacent `// SAFETY:` justification",
        scope: Scope::All,
        allow: &[],
        check: check_unsafe_needs_safety,
    },
    Rule {
        id: "relaxed-needs-ordering",
        summary: "every `Ordering::Relaxed` in the concurrency substrate carries `// ORDERING:`",
        // The substrate crates where a missing happens-before is a
        // correctness bug rather than a style preference.
        scope: Scope::Only(&["crates/sched", "crates/simd", "crates/serve"]),
        allow: &[AllowEntry {
            path: "crates/simd/src/denormals.rs",
            reason: "the ENGAGED guard counter is observability-only (read by tests and \
                     wino-probe after the guarded region ends); it orders nothing, so every \
                     `Relaxed` in the file would carry the same vacuous justification — the \
                     MXCSR state it describes is per-thread and needs no happens-before",
        }],
        check: check_relaxed_needs_ordering,
    },
    Rule {
        id: "no-static-mut",
        summary: "`static mut` is forbidden workspace-wide",
        scope: Scope::All,
        allow: &[],
        check: check_no_static_mut,
    },
    Rule {
        id: "no-transmute-outside-simd-jit",
        summary: "`mem::transmute` is confined to the SIMD and JIT crates",
        scope: Scope::Except(&["crates/simd", "crates/jit"]),
        allow: &[AllowEntry {
            path: "crates/sched/src/pool.rs",
            reason: "erases the job closure's lifetime into the type-erased JobPtr; soundness \
                     is the fork–join protocol proven by the model checker (no participant \
                     can dereference the pointer after `run` returns)",
        }],
        check: check_no_transmute,
    },
    Rule {
        id: "allow-needs-rationale",
        summary: "`#[allow(…)]` requires a rationale comment",
        scope: Scope::All,
        allow: &[],
        check: check_allow_needs_rationale,
    },
    Rule {
        id: "drop-guard-protocol",
        summary: "`// PROTOCOL: drop-guard` types have a Drop whose state write dominates \
                  every exit",
        // Self-scoping: fires only where the tag appears, so it applies
        // everywhere a guard type might live.
        scope: Scope::All,
        allow: &[],
        check: check_drop_guard_protocol,
    },
    Rule {
        id: "alloc-needs-accounting",
        summary: "raw infallible allocations in the accounted crates use `try_*` or carry \
                  `// ALLOC:`",
        // The crates whose buffers the memory-footprint model accounts
        // for: an unannotated infallible allocation there can abort the
        // process under memory pressure, bypassing the degradation
        // ladder and the byte-budget admission that the serving layer
        // relies on.
        scope: Scope::Only(&["crates/core", "crates/serve", "crates/tensor"]),
        allow: &[AllowEntry {
            path: "crates/tensor/src/first_touch.rs",
            reason: "this module IS the first-touch allocation seam: its body wraps the raw \
                     constructors into the fallible/infallible pair every caller routes \
                     through, and its tests must drive the raw path directly",
        }],
        check: check_alloc_needs_accounting,
    },
    Rule {
        id: "no-blocking-under-lock",
        summary: "no blocking/spinning call while a spin-lock guard is live in serve/sched",
        scope: Scope::Only(&["crates/serve", "crates/sched"]),
        allow: &[],
        check: check_no_blocking_under_lock,
    },
];

/// Run every applicable rule over one file.
pub fn lint_file(path: &str, src: &str) -> Vec<Violation> {
    let ctx = FileCtx::new(path, src);
    let mut out = Vec::new();
    for rule in RULES {
        if !rule.scope.applies(path) {
            continue;
        }
        if rule.allow.iter().any(|a| a.path == path) {
            continue;
        }
        for rv in (rule.check)(&ctx) {
            out.push(Violation { path: path.to_string(), line: rv.line, rule: rule.id, msg: rv.msg });
        }
    }
    out.sort_by_key(|v| v.line);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(path: &str, src: &str) -> Vec<(&'static str, u32)> {
        lint_file(path, src).into_iter().map(|v| (v.rule, v.line)).collect()
    }

    #[test]
    fn annotated_unsafe_passes() {
        let src = "fn f() {\n    // SAFETY: index is bounds-checked above\n    let x = unsafe { *p.add(1) };\n}\n";
        assert_eq!(ids("crates/x/src/lib.rs", src), vec![]);
    }

    #[test]
    fn bare_unsafe_fails() {
        let src = "fn f() {\n    let x = unsafe { *p.add(1) };\n}\n";
        assert_eq!(ids("crates/x/src/lib.rs", src), vec![("unsafe-needs-safety", 2)]);
    }

    #[test]
    fn trailing_safety_comment_passes() {
        let src = "fn f() {\n    let x = unsafe { g() }; // SAFETY: g has no preconditions\n}\n";
        assert_eq!(ids("crates/x/src/lib.rs", src), vec![]);
    }

    #[test]
    fn safety_doc_section_passes() {
        let src = "/// Does things.\n///\n/// # Safety\n/// Caller must own the buffer.\npub unsafe fn f() {}\n";
        assert_eq!(ids("crates/x/src/lib.rs", src), vec![]);
    }

    #[test]
    fn unsafe_in_string_or_ident_is_ignored() {
        let src = "fn unsafe_fn() { let s = \"unsafe\"; let r = r#\"unsafe {}\"#; }\n";
        assert_eq!(ids("crates/x/src/lib.rs", src), vec![]);
    }

    #[test]
    fn safety_in_string_does_not_annotate() {
        let src = "fn f() {\n    let s = \"// SAFETY: fake\"; let x = unsafe { g() };\n}\n";
        assert_eq!(ids("crates/x/src/lib.rs", src), vec![("unsafe-needs-safety", 2)]);
    }

    #[test]
    fn previous_statement_boundary_blocks_stale_comment() {
        let src = "fn f() {\n    // SAFETY: for the first one only\n    unsafe { a() };\n    let _ = 1;\n    unsafe { b() };\n}\n";
        assert_eq!(ids("crates/x/src/lib.rs", src), vec![("unsafe-needs-safety", 5)]);
    }

    #[test]
    fn relaxed_rule_only_in_substrate_crates() {
        let src = "fn f(a: &AtomicUsize) { a.store(0, Ordering::Relaxed); }\n";
        assert_eq!(ids("crates/sched/src/x.rs", src), vec![("relaxed-needs-ordering", 1)]);
        assert_eq!(ids("crates/gemm/src/x.rs", src), vec![]);
    }

    #[test]
    fn relaxed_with_ordering_comment_passes() {
        let src = "fn f(a: &AtomicUsize) {\n    // ORDERING: counter is only read after join\n    a.store(0, Ordering::Relaxed);\n}\n";
        assert_eq!(ids("crates/sched/src/x.rs", src), vec![]);
    }

    #[test]
    fn non_ordering_relaxed_ident_is_ignored() {
        let src = "enum Mode { Relaxed } fn f() { let _ = Mode::Relaxed; }\n";
        assert_eq!(ids("crates/sched/src/x.rs", src), vec![]);
    }

    #[test]
    fn static_mut_forbidden_but_static_lifetime_fine() {
        let src = "static mut G: u32 = 0;\nfn f(s: &'static mut u32) {}\nstatic OK: u32 = 1;\n";
        assert_eq!(ids("crates/x/src/lib.rs", src), vec![("no-static-mut", 1)]);
    }

    #[test]
    fn transmute_scoped_and_allowlisted() {
        let src = "fn f() {\n    // SAFETY: same layout\n    let x = unsafe { std::mem::transmute::<u32, f32>(1) };\n}\n";
        assert_eq!(ids("crates/gemm/src/x.rs", src), vec![("no-transmute-outside-simd-jit", 3)]);
        assert_eq!(ids("crates/simd/src/x.rs", src), vec![]);
        assert_eq!(ids("crates/jit/src/x.rs", src), vec![]);
        // Allowlisted file: suppressed.
        assert_eq!(ids("crates/sched/src/pool.rs", src), vec![]);
    }

    #[test]
    fn relaxed_allowlist_covers_the_denormal_guard_file() {
        // Allowlist mechanics: the same bare `Relaxed` that fires in an
        // arbitrary simd file is suppressed in the allowlisted one — and
        // only the `relaxed-needs-ordering` rule is relaxed there; an
        // unannotated `unsafe` in that file must still fire.
        let src = "fn f(a: &AtomicU64) { a.store(0, Ordering::Relaxed); }\n";
        assert_eq!(ids("crates/simd/src/x.rs", src), vec![("relaxed-needs-ordering", 1)]);
        assert_eq!(ids("crates/simd/src/denormals.rs", src), vec![]);
        let src = "fn f() { unsafe { g() }; }\n";
        assert_eq!(
            ids("crates/simd/src/denormals.rs", src),
            vec![("unsafe-needs-safety", 1)]
        );
    }

    #[test]
    fn every_allow_entry_names_an_existing_file_with_a_reason() {
        // Allowlist hygiene: entries must not outlive the files they
        // exempt, and each must record a non-trivial reason.
        let root = crate::lint::default_root().expect("workspace root");
        for rule in RULES {
            for a in rule.allow {
                assert!(
                    root.join(a.path).is_file(),
                    "[{}] allowlist entry {} names a missing file",
                    rule.id,
                    a.path
                );
                assert!(
                    a.reason.len() > 20,
                    "[{}] allowlist entry {} needs a real reason",
                    rule.id,
                    a.path
                );
            }
        }
    }

    #[test]
    fn drop_guard_with_dominating_write_passes() {
        let src = "// PROTOCOL: drop-guard\nstruct G { s: AtomicUsize }\nimpl Drop for G {\n    fn drop(&mut self) {\n        self.s.store(1, Ordering::Release);\n        if self.s.load(Ordering::Acquire) > 9 { return; }\n    }\n}\n";
        assert_eq!(ids("crates/serve/src/x.rs", src), vec![]);
    }

    #[test]
    fn drop_guard_tag_on_impl_passes() {
        let src = "struct G { s: AtomicUsize }\n// PROTOCOL: drop-guard — resolve is the state write\nimpl<A: Atomics> Drop for G {\n    fn drop(&mut self) { self.s.resolve(1); }\n}\n";
        assert_eq!(ids("crates/serve/src/x.rs", src), vec![]);
    }

    #[test]
    fn drop_guard_early_return_fails() {
        let src = "// PROTOCOL: drop-guard\nstruct G { s: AtomicUsize, armed: bool }\nimpl Drop for G {\n    fn drop(&mut self) {\n        if !self.armed {\n            return;\n        }\n        self.s.store(1, Ordering::Release);\n    }\n}\n";
        assert_eq!(ids("crates/serve/src/x.rs", src), vec![("drop-guard-protocol", 6)]);
    }

    #[test]
    fn drop_guard_missing_drop_impl_fails() {
        let src = "// PROTOCOL: drop-guard\npub struct G { s: AtomicUsize }\n";
        assert_eq!(ids("crates/serve/src/x.rs", src), vec![("drop-guard-protocol", 1)]);
    }

    #[test]
    fn drop_guard_without_state_write_fails() {
        let src = "// PROTOCOL: drop-guard\nstruct G;\nimpl Drop for G {\n    fn drop(&mut self) { log(self); }\n}\n";
        assert_eq!(ids("crates/serve/src/x.rs", src), vec![("drop-guard-protocol", 1)]);
    }

    #[test]
    fn drop_guard_prose_mention_is_not_a_tag() {
        let src = "/// Mentions the PROTOCOL: drop-guard idiom in prose only.\nfn f() {}\n";
        assert_eq!(ids("crates/serve/src/x.rs", src), vec![]);
    }

    #[test]
    fn blocking_under_live_guard_fails() {
        let src = "fn f(q: &Q) {\n    let _g = q.acquire();\n    let _ = A::spin(&mut s, None);\n}\n";
        assert_eq!(ids("crates/serve/src/x.rs", src), vec![("no-blocking-under-lock", 3)]);
        // Out of scope: the same pattern elsewhere is not linted.
        assert_eq!(ids("crates/gemm/src/x.rs", src), vec![]);
    }

    #[test]
    fn blocking_after_guard_scope_closes_passes() {
        let src = "fn f(q: &Q) {\n    {\n        let _g = q.acquire();\n        q.len();\n    }\n    q.take_blocking();\n}\n";
        assert_eq!(ids("crates/serve/src/x.rs", src), vec![]);
    }

    #[test]
    fn explicit_drop_releases_the_guard() {
        let src = "fn f(q: &Q) {\n    let g = q.acquire();\n    drop(g);\n    q.take_blocking();\n}\n";
        assert_eq!(ids("crates/serve/src/x.rs", src), vec![]);
    }

    #[test]
    fn blocking_annotation_escape_is_honoured() {
        let src = "fn f(q: &Q) {\n    let _g = q.acquire();\n    // BLOCKING: bounded by the watchdog; holder is the only consumer\n    let _ = A::spin(&mut s, Some(age));\n}\n";
        assert_eq!(ids("crates/serve/src/x.rs", src), vec![]);
    }

    #[test]
    fn raw_alloc_in_accounted_crates_fails() {
        let src = "fn f(len: usize) -> AlignedVec { AlignedVec::zeroed(len) }\n";
        assert_eq!(ids("crates/core/src/x.rs", src), vec![("alloc-needs-accounting", 1)]);
        assert_eq!(ids("crates/tensor/src/x.rs", src), vec![("alloc-needs-accounting", 1)]);
        // Out of scope: the substrate and bench crates allocate freely.
        assert_eq!(ids("crates/simd/src/x.rs", src), vec![]);
        assert_eq!(ids("crates/bench/src/x.rs", src), vec![]);
    }

    #[test]
    fn try_constructors_and_alloc_annotations_pass() {
        let src = "fn f(len: usize) -> Result<AlignedVec, AllocError> {\n    AlignedVec::try_zeroed(len)\n}\n";
        assert_eq!(ids("crates/core/src/x.rs", src), vec![]);
        let src = "fn f(len: usize) -> AlignedVec {\n    // ALLOC: plan-time constructor; callers size-check against the budget first\n    AlignedVec::zeroed(len)\n}\n";
        assert_eq!(ids("crates/core/src/x.rs", src), vec![]);
        let src = "fn f(len: usize) -> AlignedVec { AlignedVec::zeroed(len) } // ALLOC: test helper\n";
        assert_eq!(ids("crates/core/src/x.rs", src), vec![]);
    }

    #[test]
    fn first_touch_calls_are_seams_too() {
        let src = "fn f(len: usize, e: &dyn Executor) {\n    let v = wino_tensor::zeroed_first_touch(len, e);\n}\n";
        assert_eq!(ids("crates/core/src/x.rs", src), vec![("alloc-needs-accounting", 2)]);
        // The definition site (`fn zeroed_first_touch(…)`) is not a call.
        let src = "pub fn zeroed_first_touch(len: usize) -> AlignedVec { loop {} }\n";
        assert_eq!(ids("crates/core/src/x.rs", src), vec![]);
        // The seam module itself is allowlisted.
        let src = "fn f(len: usize) -> AlignedVec { AlignedVec::zeroed(len) }\n";
        assert_eq!(ids("crates/tensor/src/first_touch.rs", src), vec![]);
    }

    #[test]
    fn unqualified_zeroed_methods_are_not_allocations() {
        // `.zeroed()` on some other type, `Mask::zeroed`, or prose in a
        // comment must not fire; only the AlignedVec seam counts.
        let src = "fn f(m: &Mask) { let _ = Mask::zeroed(3); let _ = m.uninit(); }\n// AlignedVec::zeroed in prose\nfn g() {}\n";
        assert_eq!(ids("crates/core/src/x.rs", src), vec![]);
    }

    #[test]
    fn allow_without_rationale_fails() {
        let src = "#[allow(clippy::type_complexity)]\nfn f() {}\n";
        assert_eq!(ids("crates/x/src/lib.rs", src), vec![("allow-needs-rationale", 1)]);
    }

    #[test]
    fn allow_with_trailing_or_above_rationale_passes() {
        let src = "#[allow(clippy::too_many_arguments)] // mirrors the table columns\nfn f() {}\n// the pairing search state is inherently nested\n#[allow(clippy::type_complexity)]\nfn g() {}\n";
        assert_eq!(ids("crates/x/src/lib.rs", src), vec![]);
    }
}
