//! Lint driver: locate the workspace, walk every `crates/*/src/**/*.rs`
//! (plus the root `src/`), and apply the [`crate::rules`] table.

use std::path::{Path, PathBuf};

use crate::rules::{lint_file, Violation, RULES};

/// Locate the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// The workspace root for this build (resolved from the crate's own
/// manifest dir, so it works from any cwd), falling back to a cwd search.
pub fn default_root() -> Option<PathBuf> {
    workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .or_else(|| std::env::current_dir().ok().and_then(|d| workspace_root(&d)))
}

/// All lintable sources: `crates/*/src/**/*.rs` and `src/**/*.rs`,
/// workspace-relative, sorted.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        for entry in entries.flatten() {
            let src = entry.path().join("src");
            if src.is_dir() {
                walk_rs(&src, &mut out)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk_rs(&root_src, &mut out)?;
    }
    out.sort();
    Ok(out)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)?.flatten() {
        let p = entry.path();
        if p.is_dir() {
            walk_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Coverage counters reported alongside violations.
#[derive(Debug, Default, Clone, Copy)]
pub struct LintStats {
    pub files: usize,
    pub unsafe_tokens: usize,
    pub relaxed_tokens: usize,
}

/// Lint the given files (absolute paths; `root` is used to relativise for
/// scope/allowlist matching and reporting).
pub fn lint_paths(root: &Path, paths: &[PathBuf]) -> std::io::Result<(Vec<Violation>, LintStats)> {
    let mut violations = Vec::new();
    let mut stats = LintStats::default();
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(p)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(p)?;
        stats.files += 1;
        for t in crate::lexer::lex(&src) {
            if t.kind == crate::lexer::TokKind::Ident {
                match t.text(&src) {
                    "unsafe" => stats.unsafe_tokens += 1,
                    "Relaxed" => stats.relaxed_tokens += 1,
                    _ => {}
                }
            }
        }
        violations.extend(lint_file(&rel, &src));
    }
    Ok((violations, stats))
}

/// Lint the whole workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<(Vec<Violation>, LintStats)> {
    let files = collect_sources(root)?;
    lint_paths(root, &files)
}

/// One-line-per-rule table, for `wino-lint --list-rules`.
pub fn describe_rules() -> String {
    let mut s = String::new();
    for r in RULES {
        s.push_str(&format!("{:32} {}\n", r.id, r.summary));
        for a in r.allow {
            s.push_str(&format!("{:32}   allow {}: {}\n", "", a.path, a.reason));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_is_found_and_has_crates() {
        let root = default_root().expect("workspace root");
        assert!(root.join("crates/sched/src/barrier.rs").is_file(), "{root:?}");
    }

    #[test]
    fn collect_sources_finds_this_file_but_not_fixtures() {
        let root = default_root().unwrap();
        let files = collect_sources(&root).unwrap();
        assert!(files.iter().any(|p| p.ends_with("crates/analyze/src/lint.rs")));
        assert!(!files.iter().any(|p| p.to_string_lossy().contains("fixtures")));
    }

    #[test]
    fn workspace_is_clean() {
        // The acceptance gate: the linter must pass on the entire
        // workspace. If this fails, run `cargo run -p wino-analyze --bin
        // wino-lint` for the full report.
        let root = default_root().unwrap();
        let (violations, stats) = lint_workspace(&root).unwrap();
        assert!(stats.files > 50, "suspiciously few files linted: {}", stats.files);
        assert!(stats.unsafe_tokens > 50, "unsafe sweep lost sites: {}", stats.unsafe_tokens);
        let report: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
        assert!(violations.is_empty(), "workspace lint violations:\n{}", report.join("\n"));
    }

    #[test]
    fn seeded_violation_fixture_trips_every_rule() {
        let root = default_root().unwrap();
        let fixture = root.join("crates/analyze/fixtures/violations.rs");
        let src = std::fs::read_to_string(&fixture).unwrap();
        // Lint it as if it lived in the substrate crate so every scoped
        // rule applies.
        let vs = crate::rules::lint_file("crates/sched/src/violations.rs", &src);
        let rules_hit: std::collections::BTreeSet<&str> = vs.iter().map(|v| v.rule).collect();
        for r in ["unsafe-needs-safety", "relaxed-needs-ordering", "no-static-mut",
                  "no-transmute-outside-simd-jit", "allow-needs-rationale",
                  "drop-guard-protocol", "no-blocking-under-lock"] {
            assert!(rules_hit.contains(r), "fixture did not trip {r}; hit: {rules_hit:?}");
        }
        // And the decoys (violating text inside strings/comments/idents)
        // must NOT fire: exactly one violation per seeded site. The two
        // allocation seeds are out of scope under the sched path and are
        // counted by the core-path lint below instead.
        assert_eq!(vs.len(), 10, "unexpected violation set:\n{}",
            vs.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n"));

        // The allocation-accounting rule is scoped to the accounted
        // crates; re-lint the fixture as one of them and check exactly
        // the two seeded allocation sites fire (decoys stay silent).
        let vs = crate::rules::lint_file("crates/core/src/violations.rs", &src);
        let alloc: Vec<_> = vs.iter().filter(|v| v.rule == "alloc-needs-accounting").collect();
        assert_eq!(alloc.len(), 2, "alloc-needs-accounting fixture sites:\n{}",
            vs.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n"));
    }
}
