//! `wino-analyze` — repo-native static analysis and concurrency
//! verification for the Winograd workspace. No external dependencies.
//!
//! Two halves:
//!
//! * **Linter** ([`lexer`], [`rules`], [`lint`], the `wino-lint` binary):
//!   a hand-written, comment/string-aware Rust lexer drives a table of
//!   safety-hygiene rules over every workspace source file — `unsafe`
//!   requires an adjacent `// SAFETY:`, `Ordering::Relaxed` in the
//!   synchronisation substrate requires `// ORDERING:`, `static mut` and
//!   stray `mem::transmute` are forbidden, `#[allow(...)]` requires a
//!   trailing rationale. Violations are errors (non-zero exit), with
//!   per-rule allowlists declared in [`rules::RULES`].
//!
//! * **Model checker** ([`model`], the `wino-model` binary): a loom-style
//!   deterministic scheduler that exhaustively (or randomly, seeded)
//!   enumerates bounded interleavings of the *shipped* barrier and
//!   job-exit-latch source, instantiated over [`model::ModelAtomics`]
//!   through the `wino_sched::Atomics` seam. Scenario checks live in
//!   [`model::scenarios`]; re-injections of the two historical PR-1
//!   concurrency bugs (proving the checker catches them) live in
//!   [`model::reinject`].

pub mod lexer;
pub mod lint;
pub mod model;
pub mod rules;
