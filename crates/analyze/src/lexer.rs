//! A small hand-written Rust lexer — just enough fidelity for the
//! workspace lint rules in [`crate::rules`].
//!
//! The rules only need to distinguish *code* from *trivia*: a `SAFETY:`
//! requirement must not be satisfied by the word `unsafe` inside a string,
//! nor missed because the keyword hides behind `r#"…"#` or a nested block
//! comment. The lexer therefore handles, precisely:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments,
//! * string, raw-string (`r"…"`, `r###"…"###`), byte-string and
//!   raw-byte-string literals with escapes,
//! * char literals vs. lifetimes (`'a'` vs `'a`),
//! * raw identifiers (`r#unsafe` is an identifier, **not** the keyword),
//! * identifiers/keywords, numbers, and single-char punctuation.
//!
//! Everything else in Rust's grammar is irrelevant to the rules and is
//! passed through as punctuation.

/// Token classes the lint rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// `// …` (including doc `///` and `//!`), text without the newline.
    LineComment,
    /// `/* … */`, possibly nested; text includes the delimiters.
    BlockComment,
    /// Any string-like literal: `"…"`, `r#"…"#`, `b"…"`, `br"…"`, `c"…"`.
    Str,
    /// Char or byte literal: `'x'`, `b'\n'`.
    Char,
    /// Lifetime: `'a` (no closing quote).
    Lifetime,
    /// Identifier or keyword (raw identifiers keep their `r#` prefix).
    Ident,
    /// Numeric literal (loose: digits plus trailing alphanumerics).
    Num,
    /// A single punctuation byte (`;`, `{`, `#`, `:` …).
    Punct,
}

/// One token: kind plus its byte span and 1-based start line.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    pub kind: TokKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
}

impl Token {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// The single punctuation character (only meaningful for `Punct`).
    pub fn punct(&self, src: &str) -> char {
        src[self.start..].chars().next().unwrap_or('\0')
    }
}

/// Lex `src` into tokens. Never fails: malformed input degenerates into
/// punctuation tokens rather than an error, which is the right behaviour
/// for a linter (the compiler owns syntax errors).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer { src: src.as_bytes(), pos: 0, line: 1, toks: Vec::new() }.run(src)
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    toks: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn run(mut self, src_str: &str) -> Vec<Token> {
        let _ = src_str;
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let c = self.src[self.pos];
            let kind = match c {
                b'/' if self.peek(1) == Some(b'/') => {
                    self.eat_line_comment();
                    TokKind::LineComment
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.eat_block_comment();
                    TokKind::BlockComment
                }
                b'"' => {
                    self.eat_string();
                    TokKind::Str
                }
                b'\'' => self.eat_char_or_lifetime(),
                b'b' if self.peek(1) == Some(b'\'') => {
                    // Byte literal `b'x'` / `b'\n'`.
                    self.pos += 1;
                    self.eat_char_or_lifetime();
                    TokKind::Char
                }
                b'r' | b'b' | b'c' if self.string_prefix_len().is_some() => {
                    // A prefix like `r#"`, `br##"`, `b"`, `c"` starts a
                    // (raw) string; `r#ident` is a raw identifier.
                    let plen = self.string_prefix_len().unwrap();
                    let prefix = &self.src[self.pos..self.pos + plen];
                    if self.src.get(self.pos + plen) == Some(&b'"') {
                        let is_raw = prefix.contains(&b'r');
                        let hashes = prefix.iter().filter(|&&b| b == b'#').count();
                        self.pos += plen + 1; // past prefix and opening quote
                        if is_raw {
                            self.eat_raw_string_body(hashes);
                        } else {
                            self.eat_string_body();
                        }
                        TokKind::Str
                    } else {
                        // Raw identifier: consume `r#` + ident chars.
                        self.pos += plen;
                        self.eat_ident_body();
                        TokKind::Ident
                    }
                }
                c if c == b'_' || c.is_ascii_alphabetic() => {
                    self.eat_ident_body();
                    TokKind::Ident
                }
                c if c.is_ascii_digit() => {
                    self.eat_number();
                    TokKind::Num
                }
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                    continue;
                }
                c if c.is_ascii_whitespace() => {
                    self.pos += 1;
                    continue;
                }
                _ => {
                    // Multi-byte UTF-8 or ASCII punctuation: one char.
                    let ch_len = utf8_len(c);
                    self.pos += ch_len;
                    TokKind::Punct
                }
            };
            self.toks.push(Token { kind, start, end: self.pos, line });
        }
        self.toks
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// If the bytes at `pos` look like a string prefix (`r`, `b`, `c`,
    /// `br`, `cr` plus optional `#`s), the prefix length in bytes.
    /// Returns `None` when the leading letter cannot start a literal.
    fn string_prefix_len(&self) -> Option<usize> {
        let mut i = self.pos;
        let c0 = self.src.get(i)?;
        if !matches!(c0, b'r' | b'b' | b'c') {
            return None;
        }
        i += 1;
        if matches!(self.src.get(i), Some(b'r')) && matches!(c0, b'b' | b'c') {
            i += 1;
        }
        let mut j = i;
        while matches!(self.src.get(j), Some(b'#')) {
            j += 1;
        }
        match self.src.get(j) {
            Some(b'"') => Some(j - self.pos),
            // `r#ident` (raw identifier): prefix is `r#`.
            Some(c) if (c.is_ascii_alphanumeric() || *c == b'_') && j > i && *c0 == b'r' => {
                Some(j - self.pos)
            }
            Some(b'\'') if i == self.pos + 1 && *c0 == b'b' => None, // b'x' handled as char
            _ => None,
        }
    }

    fn eat_line_comment(&mut self) {
        while let Some(c) = self.peek(0) {
            if c == b'\n' {
                break;
            }
            self.pos += 1;
        }
    }

    fn eat_block_comment(&mut self) {
        self.pos += 2; // `/*`
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == Some(b'/') && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.peek(0) == Some(b'*') && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                if self.src[self.pos] == b'\n' {
                    self.line += 1;
                }
                self.pos += 1;
            }
        }
    }

    fn eat_string(&mut self) {
        self.pos += 1; // opening quote
        self.eat_string_body();
    }

    fn eat_string_body(&mut self) {
        while let Some(c) = self.peek(0) {
            match c {
                b'\\' => self.pos += 2.min(self.src.len() - self.pos),
                b'"' => {
                    self.pos += 1;
                    return;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Body of a raw string already positioned past the opening quote;
    /// terminated by `"` followed by `hashes` `#`s. No escapes.
    fn eat_raw_string_body(&mut self, hashes: usize) {
        while self.pos < self.src.len() {
            if self.src[self.pos] == b'\n' {
                self.line += 1;
            }
            if self.src[self.pos] == b'"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.src.get(self.pos + 1 + k) != Some(&b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.pos += 1 + hashes;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    /// At a `'`: char literal or lifetime?
    fn eat_char_or_lifetime(&mut self) -> TokKind {
        // `'\…'` is always a char; `'x'` is a char; `'ident` (no closing
        // quote after the ident run) is a lifetime.
        if self.peek(1) == Some(b'\\') {
            self.pos += 2; // quote + backslash
            self.pos += 1; // escaped char (u{…} handled by the loop below)
            while let Some(c) = self.peek(0) {
                self.pos += 1;
                if c == b'\'' {
                    break;
                }
            }
            return TokKind::Char;
        }
        let mut j = self.pos + 1;
        while j < self.src.len()
            && (self.src[j].is_ascii_alphanumeric() || self.src[j] == b'_' || self.src[j] >= 0x80)
        {
            j += 1;
        }
        if self.src.get(j) == Some(&b'\'') && j > self.pos + 1 || {
            // single non-ident char like '(' … ')'
            j == self.pos + 1 && self.src.get(self.pos + 2) == Some(&b'\'')
        } {
            // Char literal (covers `'a'` and `'('`).
            if j == self.pos + 1 {
                self.pos += 3;
            } else {
                self.pos = j + 1;
            }
            TokKind::Char
        } else {
            // Lifetime: consume `'` + ident run.
            self.pos = j.max(self.pos + 1);
            TokKind::Lifetime
        }
    }

    fn eat_ident_body(&mut self) {
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80 {
                self.pos += utf8_len(c);
            } else {
                break;
            }
        }
    }

    fn eat_number(&mut self) {
        // Loose: digits, `_`, alphanumeric suffixes/radix letters, and a
        // fractional part when followed by a digit (so `1..2` stays two
        // tokens plus the range dots).
        while let Some(c) = self.peek(0) {
            let frac_dot =
                c == b'.' && self.peek(1).map(|d| d.is_ascii_digit()).unwrap_or(false);
            if c.is_ascii_alphanumeric() || c == b'_' || frac_dot {
                self.pos += 1;
            } else {
                break;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).iter().map(|t| (t.kind, t.text(src).to_string())).collect()
    }

    #[test]
    fn idents_vs_keywords_in_strings() {
        let ks = kinds(r#"let s = "unsafe { }"; unsafe {}"#);
        let unsafe_idents: Vec<_> =
            ks.iter().filter(|(k, t)| *k == TokKind::Ident && t == "unsafe").collect();
        assert_eq!(unsafe_idents.len(), 1, "{ks:?}");
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Str && t.contains("unsafe")));
    }

    #[test]
    fn unsafe_like_identifiers_are_not_the_keyword() {
        let ks = kinds("fn unsafe_fn() { not_unsafe(); }");
        assert!(ks.iter().all(|(_, t)| t != "unsafe"), "{ks:?}");
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Ident && t == "unsafe_fn"));
    }

    #[test]
    fn raw_identifier_is_not_keyword() {
        let ks = kinds("let r#unsafe = 1;");
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Ident && t == "r#unsafe"), "{ks:?}");
        assert!(!ks.iter().any(|(_, t)| t == "unsafe"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ unsafe";
        let ks = kinds(src);
        assert_eq!(ks[0].0, TokKind::BlockComment);
        assert!(ks[0].1.contains("inner") && ks[0].1.contains("still comment"));
        assert_eq!(ks[1], (TokKind::Ident, "unsafe".to_string()));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r####"let s = r#"a "quoted" unsafe"#; let t = r"plain"; x"####;
        let ks = kinds(src);
        let strs: Vec<_> = ks.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        assert_eq!(strs.len(), 2, "{ks:?}");
        assert!(strs[0].1.contains("quoted"));
        assert_eq!(strs[1].1, "r\"plain\"");
        assert!(ks.last().unwrap().1 == "x");
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let src = r##"let a = b"bytes"; let b = br#"raw bytes"#; y"##;
        let ks = kinds(src);
        let strs: Vec<_> = ks.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        assert_eq!(strs.len(), 2, "{ks:?}");
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let ks = kinds(r"fn f<'a>(x: &'a str) { let c = 'x'; let e = '\n'; let q = '\''; }");
        let lifetimes: Vec<_> = ks.iter().filter(|(k, _)| *k == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2, "{ks:?}");
        let chars: Vec<_> = ks.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(chars.len(), 3, "{ks:?}");
    }

    #[test]
    fn comment_in_string_is_not_a_comment() {
        let ks = kinds(r#"let s = "// SAFETY: not a comment";"#);
        assert!(ks.iter().all(|(k, _)| *k != TokKind::LineComment));
    }

    #[test]
    fn line_numbers_advance() {
        let src = "a\nb\n/* c\nd */\ne";
        let toks = lex(src);
        let by_text: Vec<(String, u32)> =
            toks.iter().map(|t| (t.text(src).to_string(), t.line)).collect();
        assert_eq!(by_text[0], ("a".to_string(), 1));
        assert_eq!(by_text[1], ("b".to_string(), 2));
        assert_eq!(by_text[2].1, 3); // block comment starts on line 3
        assert_eq!(by_text[3], ("e".to_string(), 5));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let ks = kinds("for i in 0..10 { let f = 1.5; }");
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Num && t == "0"));
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Num && t == "10"));
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Num && t == "1.5"));
    }

    #[test]
    fn lexer_is_lossless_over_code_bytes() {
        // Every non-whitespace byte of a tricky snippet lands in a token.
        let src = r##"impl X { fn f(&self) -> &'static str { r#"s"# } } // t"##;
        let toks = lex(src);
        let covered: usize = toks.iter().map(|t| t.end - t.start).sum();
        let nonws: usize = src.bytes().filter(|b| !b.is_ascii_whitespace()).count();
        // Comments/strings include interior spaces, so covered ≥ nonws.
        assert!(covered >= nonws, "covered {covered} < non-ws {nonws}");
    }
}
