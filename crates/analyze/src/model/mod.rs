//! A loom-style deterministic concurrency model checker for the
//! `wino-sched` synchronisation substrate.
//!
//! # How it works
//!
//! Scenario code runs on real OS threads, but **cooperatively**: a
//! controller holds a baton and exactly one virtual thread runs at a
//! time. Every access through the shim atomic types ([`MAtomicUsize`],
//! [`MAtomicU32`]) is a *yield point* that hands the baton back, so the
//! controller chooses the interleaving one step at a time. Enumerating
//! those choices — exhaustively (bounded DFS with replay) or randomly
//! (seeded via `wino-rng`) — explores the schedule space of the *same
//! barrier/latch source code that ships*, instantiated at
//! `SpinBarrierIn<ModelAtomics>` through the [`wino_sched::Atomics`] seam.
//!
//! Time is virtual: [`ModelAtomics::spin`] treats a watchdog deadline of
//! `n` nanoseconds as a budget of `n` spin steps, so every watchdog path
//! is explored deterministically and every schedule terminates. A spin
//! with **no** deadline parks the virtual thread until another thread
//! performs a write (pure stutter steps are pruned); if every live thread
//! is parked with no writer left, the controller reports a **deadlock**
//! for that schedule.
//!
//! The model checks *interleavings* under sequential consistency; it does
//! not model weak-memory reordering (`Relaxed` hygiene is instead
//! enforced textually by `wino-lint`'s `relaxed-needs-ordering` rule).
//!
//! Scenario checks live in [`scenarios`]; re-injected historical bugs
//! (the PR-1 end-barrier use-after-free and poison/generation race) live
//! in [`reinject`].

pub mod explore;
pub mod reinject;
pub mod scenarios;

pub use explore::{explore, Config, ExecResult, Mode, Outcome, Report, Violation};

use std::sync::atomic::Ordering;
use std::time::Duration;

use wino_sched::atomics::{AtomicUsizeOps, Atomics};

/// Shim `AtomicUsize`: every operation is a scheduler yield point, then a
/// sequentially-consistent access to the underlying word.
pub struct MAtomicUsize {
    v: std::sync::atomic::AtomicUsize,
}

impl AtomicUsizeOps for MAtomicUsize {
    fn new(v: usize) -> Self {
        MAtomicUsize { v: std::sync::atomic::AtomicUsize::new(v) }
    }
    fn load(&self, _order: Ordering) -> usize {
        explore::yield_access(false);
        // ORDERING: SeqCst — the model explores interleavings under
        // sequential consistency by construction.
        self.v.load(Ordering::SeqCst)
    }
    fn store(&self, v: usize, _order: Ordering) {
        explore::yield_access(true);
        self.v.store(v, Ordering::SeqCst)
    }
    fn fetch_add(&self, v: usize, _order: Ordering) -> usize {
        explore::yield_access(true);
        self.v.fetch_add(v, Ordering::SeqCst)
    }
    fn fetch_or(&self, v: usize, _order: Ordering) -> usize {
        explore::yield_access(true);
        self.v.fetch_or(v, Ordering::SeqCst)
    }
    fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<usize, usize> {
        explore::yield_access(true);
        self.v.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
    }
}

/// Shim `AtomicU32` for scenario-local state (flags, sentinel cells) that
/// should interleave like the substrate's own atomics.
pub struct MAtomicU32 {
    v: std::sync::atomic::AtomicU32,
}

impl MAtomicU32 {
    pub fn new(v: u32) -> Self {
        MAtomicU32 { v: std::sync::atomic::AtomicU32::new(v) }
    }
    pub fn load(&self) -> u32 {
        explore::yield_access(false);
        self.v.load(Ordering::SeqCst)
    }
    pub fn store(&self, v: u32) {
        explore::yield_access(true);
        self.v.store(v, Ordering::SeqCst)
    }
    pub fn fetch_add(&self, v: u32) -> u32 {
        explore::yield_access(true);
        self.v.fetch_add(v, Ordering::SeqCst)
    }
}

/// Spin state for the model: a virtual-time step counter.
#[derive(Default)]
pub struct ModelSpinState {
    spins: u64,
}

/// The model environment pluggable into the [`wino_sched::Atomics`] seam.
///
/// Deadlines are virtual: `Duration::from_nanos(n)` allows `n` spin steps
/// before the watchdog fires. A `None` deadline parks the virtual thread
/// until another thread writes (see module docs).
pub struct ModelAtomics;

impl Atomics for ModelAtomics {
    type AtomicUsize = MAtomicUsize;
    type SpinState = ModelSpinState;

    fn spin(state: &mut ModelSpinState, deadline: Option<Duration>) -> Option<Duration> {
        match deadline {
            Some(limit) => {
                let budget = (limit.as_nanos() as u64).max(1);
                if state.spins >= budget {
                    return Some(Duration::from_nanos(state.spins));
                }
                state.spins += 1;
                explore::yield_spin_step();
                None
            }
            None => {
                state.spins += 1;
                explore::yield_spin_park();
                None
            }
        }
    }
}
