//! A loom-style deterministic concurrency model checker for the
//! `wino-sched` synchronisation substrate.
//!
//! # How it works
//!
//! Scenario code runs on real OS threads, but **cooperatively**: a
//! controller holds a baton and exactly one virtual thread runs at a
//! time. Every access through the shim atomic types ([`MAtomicUsize`],
//! [`MAtomicU32`]) is a *yield point* that hands the baton back, so the
//! controller chooses the interleaving one step at a time. Enumerating
//! those choices — exhaustively (bounded DFS with replay), with dynamic
//! partial-order reduction ([`Mode::Dpor`]: same distinguishable states,
//! far fewer schedules), or randomly (seeded via `wino-rng`) — explores
//! the schedule space of the *same synchronisation source code that
//! ships*: `SpinBarrierIn<ModelAtomics>` through the
//! [`wino_sched::Atomics`] seam, and the serve-layer primitives
//! (`SlotIn`, `DeadlineQueueIn`, `CircuitBreakerIn`) through the same
//! seam plus the [`wino_sched::atomics::Clock`] seam ([`ModelClock`]).
//!
//! Time is virtual: [`ModelAtomics::spin`] treats a watchdog deadline of
//! `n` nanoseconds as a budget of `n` spin steps, so every watchdog path
//! is explored deterministically and every schedule terminates. A spin
//! with **no** deadline parks the virtual thread until another thread
//! performs a write (pure stutter steps are pruned); if every live thread
//! is parked with no writer left, the controller reports a **deadlock**
//! for that schedule.
//!
//! The model checks *interleavings* under sequential consistency; it does
//! not model weak-memory reordering (`Relaxed` hygiene is instead
//! enforced textually by `wino-lint`'s `relaxed-needs-ordering` rule).
//!
//! Scenario checks live in [`scenarios`]; re-injected historical bugs
//! (the PR-1 end-barrier use-after-free and poison/generation race) live
//! in [`reinject`].

pub mod explore;
pub mod reinject;
pub mod scenarios;
pub mod serve_scenarios;

pub use explore::{
    explore, explore_states, Config, ExecResult, Mode, Outcome, Report, Violation,
};

use std::sync::atomic::Ordering;
use std::time::Duration;

use wino_sched::atomics::{AtomicUsizeOps, Atomics, Clock};

/// Shim `AtomicUsize`: every operation is a scheduler yield point
/// (announcing the word's address and the access kind, which is what
/// DPOR's dependence relation keys on), then a sequentially-consistent
/// access to the underlying word.
pub struct MAtomicUsize {
    v: std::sync::atomic::AtomicUsize,
}

impl MAtomicUsize {
    /// Object identity for the DPOR dependence relation: the address of
    /// the underlying word. Stable within one execution (the explorer
    /// refreshes its snapshots across replays).
    fn obj(&self) -> usize {
        &self.v as *const _ as usize
    }
}

impl AtomicUsizeOps for MAtomicUsize {
    fn new(v: usize) -> Self {
        MAtomicUsize { v: std::sync::atomic::AtomicUsize::new(v) }
    }
    fn load(&self, _order: Ordering) -> usize {
        explore::yield_access(self.obj(), false);
        // ORDERING: SeqCst — the model explores interleavings under
        // sequential consistency by construction.
        self.v.load(Ordering::SeqCst)
    }
    fn store(&self, v: usize, _order: Ordering) {
        explore::yield_access(self.obj(), true);
        self.v.store(v, Ordering::SeqCst);
        explore::note_write();
    }
    fn fetch_add(&self, v: usize, _order: Ordering) -> usize {
        explore::yield_access(self.obj(), true);
        let prev = self.v.fetch_add(v, Ordering::SeqCst);
        explore::note_write();
        prev
    }
    fn fetch_or(&self, v: usize, _order: Ordering) -> usize {
        explore::yield_access(self.obj(), true);
        let prev = self.v.fetch_or(v, Ordering::SeqCst);
        explore::note_write();
        prev
    }
    fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<usize, usize> {
        // A failed CAS writes nothing, but announcing it as a write
        // keeps the dependence relation sound without peeking at the
        // outcome before the yield. Only a *successful* CAS reports a
        // materialised write (wakes parked threads).
        explore::yield_access(self.obj(), true);
        let r = self.v.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst);
        if r.is_ok() {
            explore::note_write();
        }
        r
    }
}

/// Shim `AtomicU32` for scenario-local state (flags, sentinel cells) that
/// should interleave like the substrate's own atomics.
pub struct MAtomicU32 {
    v: std::sync::atomic::AtomicU32,
}

impl MAtomicU32 {
    fn obj(&self) -> usize {
        &self.v as *const _ as usize
    }
    pub fn new(v: u32) -> Self {
        MAtomicU32 { v: std::sync::atomic::AtomicU32::new(v) }
    }
    pub fn load(&self) -> u32 {
        explore::yield_access(self.obj(), false);
        self.v.load(Ordering::SeqCst)
    }
    pub fn store(&self, v: u32) {
        explore::yield_access(self.obj(), true);
        self.v.store(v, Ordering::SeqCst);
        explore::note_write();
    }
    pub fn fetch_add(&self, v: u32) -> u32 {
        explore::yield_access(self.obj(), true);
        let prev = self.v.fetch_add(v, Ordering::SeqCst);
        explore::note_write();
        prev
    }
}

/// Spin state for the model: a virtual-time step counter.
#[derive(Default)]
pub struct ModelSpinState {
    spins: u64,
}

/// The model environment pluggable into the [`wino_sched::Atomics`] seam.
///
/// Deadlines are virtual: `Duration::from_nanos(n)` allows `n` spin steps
/// before the watchdog fires. A `None` deadline parks the virtual thread
/// until another thread writes (see module docs).
pub struct ModelAtomics;

impl Atomics for ModelAtomics {
    type AtomicUsize = MAtomicUsize;
    type SpinState = ModelSpinState;

    fn spin(state: &mut ModelSpinState, deadline: Option<Duration>) -> Option<Duration> {
        match deadline {
            Some(limit) => {
                let budget = (limit.as_nanos() as u64).max(1);
                if state.spins >= budget {
                    return Some(Duration::from_nanos(state.spins));
                }
                state.spins += 1;
                explore::yield_spin_step();
                None
            }
            None => {
                state.spins += 1;
                explore::yield_spin_park();
                None
            }
        }
    }
}

/// Virtual clock pluggable into the [`wino_sched::atomics::Clock`] seam:
/// an instant is the scheduler's step counter, and one step is one
/// nanosecond of model time — the same exchange rate
/// [`ModelAtomics::spin`] uses for deadline budgets, so "a deadline `n`
/// ns away" and "a spin watchdog of `n` ns" expire on consistent scales.
///
/// Reading the clock is a *local* step for DPOR (it commutes with every
/// other thread's accesses), so scenario invariants over clock-driven
/// code must be insensitive to the exact time *values* observed —
/// assert on protocol outcomes ("exactly one resolution"), not on which
/// side of a deadline a particular schedule landed.
pub struct ModelClock;

impl Clock for ModelClock {
    type Instant = u64;

    fn now() -> u64 {
        // Yield first so "read the clock" is a schedule point like any
        // other shim access (otherwise back-to-back now() calls would
        // observe frozen time).
        explore::yield_spin_step();
        explore::virtual_now()
    }
    fn add(t: u64, d: Duration) -> u64 {
        t.saturating_add(d.as_nanos() as u64)
    }
    fn since(later: u64, earlier: u64) -> Duration {
        Duration::from_nanos(later.saturating_sub(earlier))
    }
}
