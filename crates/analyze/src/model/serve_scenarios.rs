//! Model-checked scenarios over the **shipped** serving primitives:
//! `SlotIn<ModelAtomics>`, `DeadlineQueueIn<ModelAtomics, ModelClock>`
//! and `CircuitBreakerIn<ModelAtomics>` are the exact protocols
//! `wino-serve` runs in production, instantiated over the model shims
//! through the same [`wino_sched::Atomics`] / `Clock` seams.
//!
//! The five invariants here are the serve layer's whole concurrency
//! contract:
//!
//! 1. **No leaked waiter** ([`batcher_unwind`]): a batcher that unwinds
//!    after taking ownership of a request still terminates the waiter,
//!    because `PendingIn`'s drop guard resolves the slot.
//! 2. **First-write-wins** ([`slot_first_write_wins`]): concurrent slot
//!    resolutions — exactly one wins, and the waiter observes the
//!    winner's payload.
//! 3. **Exactly-one-outcome conservation** ([`exactly_one_outcome`]):
//!    across N producers, every request resolves exactly once and every
//!    resolution is observed by exactly one waiter.
//! 4. **Expired-vs-drained mutual exclusion** ([`expired_vs_drained`]):
//!    the deadline-shed path and the shutdown drain race for the same
//!    request; exactly one claims it, and the waiter sees that one.
//! 5. **Breaker monotonicity** ([`breaker_monotonic`]): under a
//!    concurrent reader, a failure streak moves the degradation ladder
//!    at most one rung per full streak, and a snapshot never observes a
//!    rung the writer has not published (no tearing, no regressions).
//!
//! Deadlines and batch ages are virtual (`from_nanos(n)` = `n` spin
//! steps); clock instants come from [`ModelClock`] and are
//! schedule-dependent, so every check here is insensitive to the exact
//! time *values* — they assert protocol outcomes only.

use std::sync::Arc;
use std::time::Duration;

use wino_sched::atomics::Clock;
use wino_serve::breaker::CircuitBreakerIn;
use wino_serve::{BreakerConfig, DeadlineQueueIn, DegradeLevel, PendingIn, SlotIn};

use super::scenarios::no_aborts;
use super::{explore_states, Config, ModelAtomics, ModelClock, Report};
use wino_serve::DropOutcome;

/// Toy response payload for the model queue (the production `Resp` is
/// `ServeResponse`; the protocol is payload-agnostic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestResp {
    /// Resolved by the consumer (carries the request id it served).
    Served(u64),
    /// Resolved by the deadline-shed path.
    Expired(u64),
    /// Resolved by the drop guard (unwind / shutdown drain / rejection).
    ShutDown(u64),
}

impl DropOutcome for TestResp {
    fn shutdown_outcome(id: u64) -> TestResp {
        TestResp::ShutDown(id)
    }
}

/// The serve primitives instantiated over the model shims.
pub type MSlot = SlotIn<ModelAtomics, TestResp>;
pub type MPending = PendingIn<ModelAtomics, ModelClock, u64, TestResp>;
pub type MQueue = DeadlineQueueIn<ModelAtomics, ModelClock, u64, TestResp>;

/// Build a model pending with a deadline `ttl_ns` virtual nanoseconds
/// out. Called from scenario `make` closures (outside the model
/// context), where `ModelClock::now()` reads 0.
fn mpending(id: u64, ttl_ns: u64) -> (MPending, Arc<MSlot>) {
    let slot = MSlot::new();
    let now = ModelClock::now();
    let p = MPending {
        id,
        input: id,
        enqueued: now,
        deadline: ModelClock::add(now, Duration::from_nanos(ttl_ns)),
        slot: Arc::clone(&slot),
    };
    (p, slot)
}

/// Events threads report back to the checker; one type shared by every
/// serve scenario so they compose into one suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ev {
    /// A waiter's terminal observation.
    Waited(TestResp),
    /// A resolver's verdict: did its write win, and what id it targeted.
    Won(bool, u64),
    /// The batcher's side: how many requests it took ownership of.
    BatcherDone(usize),
    /// Consumer accounting: (request id, resolution won) per entry.
    Consumer(Vec<(u64, bool)>),
    /// Shutdown drain: entries removed from the queue.
    Drained(usize),
    /// Breaker writer: `on_failure` trip verdicts, in order.
    Failures(Vec<bool>),
    /// Breaker reader: consecutive `level()` snapshots, in order.
    Levels(Vec<DegradeLevel>),
}

type Threads = Vec<Box<dyn FnOnce() -> Ev + Send>>;

/// Boxing helper: coerce a scenario thread closure to the trait object.
fn bx(f: impl FnOnce() -> Ev + Send + 'static) -> Box<dyn FnOnce() -> Ev + Send> {
    Box::new(f)
}

/// Scenario 1 + re-injection harness: one request is queued; the batcher
/// pops it and then unwinds without resolving. `unwind` is the code the
/// batcher runs with the owned batch — the shipped behaviour
/// ([`sound_unwind`]) lets the entries drop so the `PROTOCOL: drop-guard`
/// `Drop` fires; the re-injected bug (`reinject::leaky_unwind`) models
/// the guard ordered after the unwind path's early return, so it never
/// runs and the waiter is leaked (a detected deadlock).
pub fn batcher_unwind(cfg: &Config, unwind: fn(Vec<MPending>) -> usize) -> Report {
    explore_states(
        cfg,
        || {
            let q = Arc::new(MQueue::new(2));
            let (p, slot) = mpending(1, 10);
            q.push(p).ok().expect("capacity-2 queue accepts the seed request");
            let waiter = bx(move || Ev::Waited(slot.take_blocking()));
            let batcher = bx(move || {
                let batch = q.pop_batch(4, Duration::from_nanos(1)).expect("queue not shut down");
                Ev::BatcherDone(unwind(batch))
            });
            vec![waiter, batcher]
        },
        |r| {
            no_aborts(r)?;
            match r.outcomes[0].done() {
                Some(Ev::Waited(TestResp::ShutDown(1))) => {}
                other => {
                    return Err(format!(
                        "leaked or mis-resolved waiter: expected ShutDown(1), got {other:?}"
                    ))
                }
            }
            match r.outcomes[1].done() {
                Some(Ev::BatcherDone(1)) => Ok(()),
                other => Err(format!("batcher owned {other:?} requests, expected 1")),
            }
        },
    )
    .0
}

/// The shipped unwind behaviour: the owned entries drop, each drop guard
/// resolves its slot.
pub fn sound_unwind(batch: Vec<MPending>) -> usize {
    batch.len() // the Vec (and every entry's drop guard) drops here
}

/// Scenario 2: two resolvers race for one slot; exactly one write wins
/// and the waiter observes exactly the winner's payload.
pub fn slot_first_write_wins(cfg: &Config) -> Report {
    explore_states(
        cfg,
        || {
            let slot = MSlot::new();
            let mk_resolver = |val: u64| {
                let s = Arc::clone(&slot);
                bx(move || Ev::Won(s.resolve(TestResp::Served(val)), val))
            };
            let (r1, r2) = (mk_resolver(1), mk_resolver(2));
            let s = Arc::clone(&slot);
            let waiter = bx(move || Ev::Waited(s.take_blocking()));
            vec![r1, r2, waiter]
        },
        |r| {
            no_aborts(r)?;
            let mut winners = Vec::new();
            let mut got = None;
            for o in r.outcomes.iter().filter_map(|o| o.done()) {
                match o {
                    Ev::Won(true, v) => winners.push(*v),
                    Ev::Won(false, _) => {}
                    Ev::Waited(resp) => got = Some(*resp),
                    other => return Err(format!("unexpected event {other:?}")),
                }
            }
            if winners.len() != 1 {
                return Err(format!("first-write-wins violated: winners {winners:?}"));
            }
            if got != Some(TestResp::Served(winners[0])) {
                return Err(format!(
                    "waiter saw {got:?}, but the winning resolution was Served({})",
                    winners[0]
                ));
            }
            Ok(())
        },
    )
    .0
}

/// Scenario 3: `producers` threads each enqueue one request and wait on
/// its slot; a single consumer pops batches and resolves each entry.
/// Conservation: every producer observes `Served(its id)`, and the
/// consumer's resolution won for every id exactly once (the drop guard
/// never overwrites, the consumer never double-resolves).
pub fn exactly_one_outcome(cfg: &Config, producers: u64) -> Report {
    explore_states(
        cfg,
        || {
            let q = Arc::new(MQueue::new(producers as usize));
            let mut threads: Threads = (1..=producers)
                .map(|id| {
                    let q = Arc::clone(&q);
                    bx(move || {
                        let (p, slot) = mpending(id, 100);
                        // A rejected push drops the entry, whose guard
                        // resolves ShutDown — the capacity chosen here
                        // admits everyone, and the check enforces it.
                        let _ = q.push(p);
                        Ev::Waited(slot.take_blocking())
                    })
                })
                .collect();
            let n = producers as usize;
            threads.push(bx(move || {
                let mut outs = Vec::new();
                while outs.len() < n {
                    let batch =
                        q.pop_batch(n, Duration::from_nanos(1)).expect("queue not shut down");
                    for p in batch {
                        let won = p.resolve(TestResp::Served(p.id));
                        outs.push((p.id, won));
                    }
                }
                Ev::Consumer(outs)
            }));
            threads
        },
        move |r| {
            no_aborts(r)?;
            for (i, o) in r.outcomes.iter().take(producers as usize).enumerate() {
                let id = i as u64 + 1;
                match o.done() {
                    Some(Ev::Waited(TestResp::Served(got))) if *got == id => {}
                    other => {
                        return Err(format!(
                            "producer {id} observed {other:?}, expected Served({id})"
                        ))
                    }
                }
            }
            match r.outcomes[producers as usize].done() {
                Some(Ev::Consumer(outs)) => {
                    let mut ids: Vec<u64> = outs.iter().map(|&(id, _)| id).collect();
                    ids.sort_unstable();
                    if ids != (1..=producers).collect::<Vec<_>>() {
                        return Err(format!("consumer served ids {ids:?}"));
                    }
                    if let Some(&(id, _)) = outs.iter().find(|&&(_, won)| !won) {
                        return Err(format!(
                            "conservation violated: consumer's resolution of {id} lost \
                             (someone else resolved an admitted, unshed request)"
                        ));
                    }
                    Ok(())
                }
                other => Err(format!("unexpected consumer outcome {other:?}")),
            }
        },
    )
    .0
}

/// Scenario 4: a queued request with an already-tight deadline is raced
/// for by the shed path (resolve `Expired`) and the shutdown drain
/// (drop guard resolves `ShutDown`). Exactly one claims it; the waiter
/// observes whichever won and never hangs.
pub fn expired_vs_drained(cfg: &Config) -> Report {
    explore_states(
        cfg,
        || {
            let q = Arc::new(MQueue::new(2));
            let (p, slot) = mpending(9, 0); // deadline == enqueue instant
            let deadline = p.deadline;
            q.push(p).ok().expect("capacity-2 queue accepts the seed request");
            let shed_slot = Arc::clone(&slot);
            let shedder = bx(move || {
                // The server's shed path: observe expiry, then resolve.
                // Under ModelClock `now()` is the step counter, so the
                // deadline is always reachable; the *outcome* race with
                // the drain below is what the check pins down.
                let mut now = ModelClock::now();
                while now < deadline {
                    now = ModelClock::now();
                }
                Ev::Won(shed_slot.resolve(TestResp::Expired(9)), 9)
            });
            let drainer = bx(move || {
                q.begin_shutdown();
                let drained = q.drain_remaining();
                Ev::Drained(drained.len()) // entries (and guards) drop here
            });
            let waiter = bx(move || Ev::Waited(slot.take_blocking()));
            vec![shedder, drainer, waiter]
        },
        |r| {
            no_aborts(r)?;
            let (mut shed_won, mut waited, mut drained) = (None, None, None);
            for o in r.outcomes.iter().filter_map(|o| o.done()) {
                match o {
                    Ev::Won(w, 9) => shed_won = Some(*w),
                    Ev::Waited(resp) => waited = Some(*resp),
                    Ev::Drained(n) => drained = Some(*n),
                    other => return Err(format!("unexpected event {other:?}")),
                }
            }
            if drained != Some(1) {
                return Err(format!("drain removed {drained:?} entries, expected 1"));
            }
            match (shed_won, waited) {
                (Some(true), Some(TestResp::Expired(9))) => Ok(()),
                (Some(false), Some(TestResp::ShutDown(9))) => Ok(()),
                other => Err(format!(
                    "expired/drained mutual exclusion violated: (shed_won, waited) = {other:?}"
                )),
            }
        },
    )
    .0
}

/// Scenario 5: breaker trip monotonicity under a concurrent reader. A
/// single writer records two consecutive failures (trip threshold 2):
/// exactly the second one trips, and a reader's snapshots walk the
/// ladder monotonically downward — `Full` then possibly `Mono`, never a
/// rung skipped past `Mono`, never a spurious recovery.
pub fn breaker_monotonic(cfg: &Config) -> Report {
    explore_states(
        cfg,
        || {
            let b = Arc::new(CircuitBreakerIn::<ModelAtomics>::new(BreakerConfig {
                trip_threshold: 2,
                recovery_threshold: 16,
                ..BreakerConfig::default()
            }));
            let w = Arc::clone(&b);
            let writer = bx(move || Ev::Failures(vec![w.on_failure(), w.on_failure()]));
            let reader = bx(move || Ev::Levels(vec![b.level(), b.level()]));
            vec![writer, reader]
        },
        |r| {
            no_aborts(r)?;
            match r.outcomes[0].done() {
                Some(Ev::Failures(trips)) if trips == &[false, true] => {}
                other => {
                    return Err(format!(
                        "trip accounting broken: {other:?}, expected [false, true] \
                         (exactly the full streak trips, exactly once)"
                    ))
                }
            }
            match r.outcomes[1].done() {
                Some(Ev::Levels(levels)) => {
                    if levels.windows(2).any(|w| w[1] < w[0]) {
                        return Err(format!("reader observed a spurious recovery: {levels:?}"));
                    }
                    if levels.iter().any(|l| *l > DegradeLevel::Mono) {
                        return Err(format!(
                            "reader observed a rung below Mono after one trip: {levels:?}"
                        ));
                    }
                    Ok(())
                }
                other => Err(format!("unexpected reader outcome {other:?}")),
            }
        },
    )
    .0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batcher_unwind_never_leaks_the_waiter() {
        let r = batcher_unwind(&Config::dpor(50_000), sound_unwind);
        assert!(r.ok(), "{:?}", r.violation);
        assert!(r.complete, "2-thread unwind tree must be exhaustible under DPOR: {r:?}");
        assert_eq!(r.deadlocks, 0);
    }

    #[test]
    fn slot_race_is_first_write_wins_everywhere() {
        let r = slot_first_write_wins(&Config::dpor(100_000));
        assert!(r.ok(), "{:?}", r.violation);
        assert!(r.complete, "3-thread slot tree must be exhaustible under DPOR: {r:?}");
    }

    #[test]
    fn two_producer_conservation_holds() {
        // The full tree is too large to exhaust; bounded DPOR plus a
        // seeded-random sweep must both stay clean.
        let r = exactly_one_outcome(&Config::dpor(20_000), 2);
        assert!(r.ok(), "{:?}", r.violation);
        let r = exactly_one_outcome(&Config::random(0x5EED5, 3_000), 2);
        assert!(r.ok(), "{:?}", r.violation);
    }

    #[test]
    fn expired_and_drained_are_mutually_exclusive() {
        let r = expired_vs_drained(&Config::dpor(20_000));
        assert!(r.ok(), "{:?}", r.violation);
        assert_eq!(r.deadlocks, 0);
    }

    #[test]
    fn breaker_trips_monotonically_under_concurrent_reads() {
        let r = breaker_monotonic(&Config::dpor(50_000));
        assert!(r.ok(), "{:?}", r.violation);
        assert!(r.complete, "breaker tree must be exhaustible under DPOR: {r:?}");
    }

    #[test]
    fn seeded_random_sweep_over_serve_scenarios_is_clean() {
        // Mirrors the `WINO_SWEEP_SEED` convention of the workspace
        // differential sweeps: pinned default, overridable for CI
        // shuffling. Driven off the scenario table so a new serve
        // scenario is swept automatically.
        let seed = std::env::var("WINO_MODEL_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5EED_u64);
        let mut swept = 0;
        for sc in crate::model::scenarios::all() {
            if !sc.name.starts_with("serve-") {
                continue;
            }
            assert!(!sc.expect_violation, "{} should be a shipped-correct scenario", sc.name);
            let r = (sc.run)(&Config::random(seed, 1_500));
            assert!(r.ok(), "{} violated under WINO_MODEL_SEED={}: {:?}", sc.name, seed, r.violation);
            swept += 1;
        }
        assert_eq!(swept, 5, "expected to sweep the five serve scenarios");
    }
}
