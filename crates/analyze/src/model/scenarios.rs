//! Model-checked scenarios over the **shipped** synchronisation source:
//! `SpinBarrierIn<ModelAtomics>` and `JobExitLatch<ModelAtomics>` are the
//! exact algorithms the pool runs, instantiated over the model shims.
//!
//! Each scenario builds fresh shared state per execution, runs a small
//! fixed set of virtual threads, and checks an invariant over the
//! resulting [`ExecResult`]. Deadlines are *virtual*: `from_nanos(n)`
//! means `n` spin steps (see [`crate::model::ModelAtomics`]).

use std::sync::Arc;
use std::time::Duration;

use wino_sched::{BarrierError, JobExitLatch, SpinBarrierIn};

use std::collections::BTreeSet;

use super::{explore, explore_states, Config, ExecResult, MAtomicU32, ModelAtomics, Outcome, Report};

/// Outcome of one `wait_deadline` call, flattened for invariant checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitOutcome {
    Leader,
    Follower,
    Timeout,
    Poisoned,
}

pub fn wait_outcome(r: Result<bool, BarrierError>) -> WaitOutcome {
    match r {
        Ok(true) => WaitOutcome::Leader,
        Ok(false) => WaitOutcome::Follower,
        Err(BarrierError::Timeout { .. }) => WaitOutcome::Timeout,
        Err(BarrierError::Poisoned) => WaitOutcome::Poisoned,
    }
}

pub(crate) fn no_aborts<T: std::fmt::Debug>(r: &ExecResult<T>) -> Result<(), String> {
    if r.deadlocked {
        return Err("deadlock: all live threads parked with no writer".into());
    }
    if r.budget_exceeded {
        return Err("step budget exceeded (schedule did not terminate)".into());
    }
    for (i, o) in r.outcomes.iter().enumerate() {
        match o {
            Outcome::Done(_) => {}
            Outcome::Panicked(m) => return Err(format!("thread {i} panicked: {m}")),
            Outcome::Aborted => return Err(format!("thread {i} aborted")),
        }
    }
    Ok(())
}

/// The all-or-nothing invariant at the heart of the poison/generation
/// design: within one generation, either the crossing succeeded for
/// everyone (exactly one leader, rest followers) or it failed for
/// everyone (timeouts/poisoned). A mix means a watchdog killed a crossing
/// that completed — the PR-1 poison race.
pub fn check_all_or_nothing(outcomes: &[WaitOutcome]) -> Result<(), String> {
    let successes = outcomes
        .iter()
        .filter(|o| matches!(o, WaitOutcome::Leader | WaitOutcome::Follower))
        .count();
    let leaders = outcomes.iter().filter(|o| **o == WaitOutcome::Leader).count();
    if successes == outcomes.len() {
        if leaders != 1 {
            return Err(format!("{leaders} leaders in a successful generation: {outcomes:?}"));
        }
        Ok(())
    } else if successes == 0 {
        Ok(())
    } else {
        Err(format!(
            "mixed generation outcomes (watchdog killed a successful crossing): {outcomes:?}"
        ))
    }
}

/// No lost wakeups: every participant of an `n`-thread barrier crossing
/// returns, with exactly one leader. Uses the unbounded `wait()` path, so
/// spinners park and the deadlock detector guards against lost wakeups.
pub fn barrier_release(cfg: &Config, threads: usize) -> Report {
    barrier_release_states(cfg, threads).0
}

/// As [`barrier_release`], also returning the distinguishable-state
/// fingerprints — the DFS-vs-DPOR equivalence harness compares these.
pub fn barrier_release_states(cfg: &Config, threads: usize) -> (Report, BTreeSet<String>) {
    explore_states(
        cfg,
        || {
            let b = Arc::new(SpinBarrierIn::<ModelAtomics>::new(threads));
            (0..threads)
                .map(|_| {
                    let b = Arc::clone(&b);
                    Box::new(move || {
                        if b.wait() {
                            WaitOutcome::Leader
                        } else {
                            WaitOutcome::Follower
                        }
                    }) as Box<dyn FnOnce() -> WaitOutcome + Send>
                })
                .collect()
        },
        |r| {
            no_aborts(r)?;
            let outs: Vec<WaitOutcome> =
                r.outcomes.iter().filter_map(|o| o.done()).copied().collect();
            check_all_or_nothing(&outs)?;
            if outs.iter().any(|o| !matches!(o, WaitOutcome::Leader | WaitOutcome::Follower)) {
                return Err(format!("crossing failed without a watchdog: {outs:?}"));
            }
            Ok(())
        },
    )
}

/// As [`barrier_generations`], also returning state fingerprints.
pub fn barrier_generations_states(
    cfg: &Config,
    threads: usize,
    rounds: usize,
) -> (Report, BTreeSet<String>) {
    explore_states(
        cfg,
        move || {
            let b = Arc::new(SpinBarrierIn::<ModelAtomics>::new(threads));
            (0..threads)
                .map(|_| {
                    let b = Arc::clone(&b);
                    Box::new(move || (0..rounds).map(|_| b.wait()).collect::<Vec<bool>>())
                        as Box<dyn FnOnce() -> Vec<bool> + Send>
                })
                .collect()
        },
        move |r| {
            no_aborts(r)?;
            for round in 0..rounds {
                let leaders = r
                    .outcomes
                    .iter()
                    .filter_map(|o| o.done())
                    .filter(|v| v[round])
                    .count();
                if leaders != 1 {
                    return Err(format!("round {round}: {leaders} leaders"));
                }
            }
            Ok(())
        },
    )
}

/// Generation reuse: `rounds` consecutive crossings on one barrier, each
/// with exactly one leader and everyone released (sense reversal works).
pub fn barrier_generations(cfg: &Config, threads: usize, rounds: usize) -> Report {
    barrier_generations_states(cfg, threads, rounds).0
}

/// Poison-vs-generation mutual exclusion on the shipped barrier: two
/// participants, both with tight virtual watchdogs. Depending on the
/// schedule a crossing may complete or a watchdog may fire first — but
/// never both for the same generation.
pub fn barrier_consistency(cfg: &Config) -> Report {
    barrier_consistency_states(cfg).0
}

/// As [`barrier_consistency`], also returning state fingerprints.
pub fn barrier_consistency_states(cfg: &Config) -> (Report, BTreeSet<String>) {
    explore_states(
        cfg,
        || {
            let b = Arc::new(SpinBarrierIn::<ModelAtomics>::new(2));
            [2u64, 4]
                .into_iter()
                .map(|budget| {
                    let b = Arc::clone(&b);
                    Box::new(move || {
                        wait_outcome(b.wait_deadline(Some(Duration::from_nanos(budget))))
                    }) as Box<dyn FnOnce() -> WaitOutcome + Send>
                })
                .collect()
        },
        |r| {
            no_aborts(r)?;
            let outs: Vec<WaitOutcome> =
                r.outcomes.iter().filter_map(|o| o.done()).copied().collect();
            check_all_or_nothing(&outs)
        },
    )
}

/// Watchdog liveness: a participant is missing, so the arrived waiters
/// must time out / observe poison — never succeed, never deadlock.
pub fn barrier_missing_participant(cfg: &Config) -> Report {
    explore(
        cfg,
        || {
            // 3 expected participants; only 2 virtual threads ever arrive.
            let b = Arc::new(SpinBarrierIn::<ModelAtomics>::new(3));
            [2u64, 4]
                .into_iter()
                .map(|budget| {
                    let b = Arc::clone(&b);
                    Box::new(move || {
                        wait_outcome(b.wait_deadline(Some(Duration::from_nanos(budget))))
                    }) as Box<dyn FnOnce() -> WaitOutcome + Send>
                })
                .collect()
        },
        |r| {
            no_aborts(r)?;
            let outs: Vec<WaitOutcome> =
                r.outcomes.iter().filter_map(|o| o.done()).copied().collect();
            if outs.iter().any(|o| matches!(o, WaitOutcome::Leader | WaitOutcome::Follower)) {
                return Err(format!("crossing succeeded with a missing participant: {outs:?}"));
            }
            let timeouts = outs.iter().filter(|o| **o == WaitOutcome::Timeout).count();
            if timeouts == 0 {
                return Err(format!("no watchdog fired: {outs:?}"));
            }
            Ok(())
        },
    )
}

/// Sentinel value in the "closure memory" cell while the borrow is live.
pub const JOB_LIVE: u32 = 7;
/// Value stored when the publisher frees the closure.
pub const JOB_FREED: u32 = 0;

/// What the handoff worker observed: the two values it read from the
/// closure cell while inside the job.
pub type WorkerReads = (u32, u32);

/// The pool's job hand-off, modelled: a publisher lends a closure (the
/// [`MAtomicU32`] cell) to a worker across an end barrier with a watchdog.
///
/// `publisher(cell, latch, end)` is the variant under test; the shipped
/// protocol ([`sound_publisher`]) only frees the cell after the end
/// barrier succeeds **or** [`JobExitLatch::await_all`] proves every
/// participant has counted out. The check: the worker must never read
/// [`JOB_FREED`] while inside the job.
pub fn job_handoff(
    cfg: &Config,
    publisher: fn(
        &MAtomicU32,
        &JobExitLatch<ModelAtomics>,
        &SpinBarrierIn<ModelAtomics>,
    ) -> u32,
) -> Report {
    explore(
        cfg,
        || {
            let cell = Arc::new(MAtomicU32::new(JOB_LIVE));
            let latch = Arc::new(JobExitLatch::<ModelAtomics>::new());
            let end = Arc::new(SpinBarrierIn::<ModelAtomics>::new(2));

            let (c1, l1, e1) = (Arc::clone(&cell), Arc::clone(&latch), Arc::clone(&end));
            let worker = Box::new(move || {
                // Inside the borrowed job closure: the cell must stay live.
                let a = c1.load();
                let b = c1.load();
                l1.record_exit();
                let _ = e1.wait_deadline(Some(Duration::from_nanos(4)));
                (a, b)
            }) as Box<dyn FnOnce() -> WorkerReads + Send>;

            let publ = Box::new(move || {
                let code = publisher(&cell, &latch, &end);
                (code, code)
            }) as Box<dyn FnOnce() -> WorkerReads + Send>;

            vec![publ, worker]
        },
        |r| {
            no_aborts(r)?;
            if let Some(&(a, b)) = r.outcomes[1].done() {
                if a != JOB_LIVE || b != JOB_LIVE {
                    return Err(format!(
                        "worker read freed closure memory inside the job: ({a}, {b})"
                    ));
                }
            }
            Ok(())
        },
    )
}

/// The shipped publisher protocol (mirrors `ThreadPool::run` +
/// `await_job_exit`): count self out, cross the end barrier with a tight
/// watchdog; on success the barrier proves everyone left the closure — on
/// timeout, free only once the latch proves the borrow dead, else leak
/// (the pool aborts the process in that case rather than freeing).
pub fn sound_publisher(
    cell: &MAtomicU32,
    latch: &JobExitLatch<ModelAtomics>,
    end: &SpinBarrierIn<ModelAtomics>,
) -> u32 {
    latch.record_exit();
    match end.wait_deadline(Some(Duration::from_nanos(2))) {
        Ok(_) => {
            cell.store(JOB_FREED);
            1
        }
        Err(_) => {
            if latch.await_all(2, Duration::from_nanos(8)).is_ok() {
                cell.store(JOB_FREED);
                2
            } else {
                3 // wedged participant: never free (the real pool aborts)
            }
        }
    }
}

/// A named scenario for the `wino-model` binary.
pub struct Scenario {
    pub name: &'static str,
    /// What the checker is expected to conclude: `false` = the invariant
    /// must hold over the whole exploration; `true` = this is a
    /// re-injected bug and the checker MUST find a violating schedule.
    pub expect_violation: bool,
    pub run: fn(&Config) -> Report,
}

/// Every scenario, shipped-correct ones first, re-injected bugs last.
pub fn all() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "barrier-release-2",
            expect_violation: false,
            run: |cfg| barrier_release(cfg, 2),
        },
        Scenario {
            name: "barrier-release-3",
            expect_violation: false,
            run: |cfg| barrier_release(cfg, 3),
        },
        Scenario {
            name: "barrier-generations-2x2",
            expect_violation: false,
            run: |cfg| barrier_generations(cfg, 2, 2),
        },
        Scenario {
            name: "barrier-consistency",
            expect_violation: false,
            run: barrier_consistency,
        },
        Scenario {
            name: "barrier-missing-participant",
            expect_violation: false,
            run: barrier_missing_participant,
        },
        Scenario {
            name: "job-handoff",
            expect_violation: false,
            run: |cfg| job_handoff(cfg, sound_publisher),
        },
        Scenario {
            name: "serve-no-leaked-waiter",
            expect_violation: false,
            run: |cfg| {
                super::serve_scenarios::batcher_unwind(cfg, super::serve_scenarios::sound_unwind)
            },
        },
        Scenario {
            name: "serve-slot-first-write-wins",
            expect_violation: false,
            run: super::serve_scenarios::slot_first_write_wins,
        },
        Scenario {
            name: "serve-exactly-one-outcome",
            expect_violation: false,
            run: |cfg| super::serve_scenarios::exactly_one_outcome(cfg, 2),
        },
        Scenario {
            name: "serve-expired-vs-drained",
            expect_violation: false,
            run: super::serve_scenarios::expired_vs_drained,
        },
        Scenario {
            name: "serve-breaker-monotonic",
            expect_violation: false,
            run: super::serve_scenarios::breaker_monotonic,
        },
        Scenario {
            name: "reinject-poison-race",
            expect_violation: true,
            run: super::reinject::racy_poison_race,
        },
        Scenario {
            name: "reinject-use-after-free",
            expect_violation: true,
            run: super::reinject::leaky_handoff,
        },
        Scenario {
            name: "reinject-leaked-waiter",
            expect_violation: true,
            run: super::reinject::leaked_waiter,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn release_two_threads_exhaustive() {
        let r = barrier_release(&Config::exhaustive(50_000), 2);
        assert!(r.ok(), "{:?}", r.violation);
        assert!(r.complete, "2-thread release tree must be exhaustible: {r:?}");
    }

    #[test]
    fn consistency_exhaustive_is_clean() {
        let r = barrier_consistency(&Config::exhaustive(200_000));
        assert!(r.ok(), "shipped barrier violated all-or-nothing: {:?}", r.violation);
    }

    #[test]
    fn missing_participant_never_deadlocks() {
        let r = barrier_missing_participant(&Config::exhaustive(50_000));
        assert!(r.ok(), "{:?}", r.violation);
        assert_eq!(r.deadlocks, 0);
    }

    #[test]
    fn handoff_exhaustive_is_clean() {
        // The full tree is too large to exhaust; bounded DFS plus a
        // seeded-random sweep (different schedule shapes) must both pass.
        let r = job_handoff(&Config::exhaustive(20_000), sound_publisher);
        assert!(r.ok(), "shipped handoff leaked the borrow: {:?}", r.violation);
        let r = job_handoff(&Config::random(0xBA11AD, 5_000), sound_publisher);
        assert!(r.ok(), "shipped handoff leaked the borrow: {:?}", r.violation);
    }

    #[test]
    fn deadlock_detector_fires_on_genuine_deadlock() {
        // One thread waits (unbounded) on a 2-participant barrier; nobody
        // else ever arrives. Every schedule must be reported as deadlock.
        let r = explore(
            &Config::exhaustive(100),
            || {
                let b = Arc::new(SpinBarrierIn::<ModelAtomics>::new(2));
                vec![Box::new(move || b.wait()) as Box<dyn FnOnce() -> bool + Send>]
            },
            |r| {
                if r.deadlocked {
                    Ok(()) // expected
                } else {
                    Err("missing-participant wait terminated without deadlock".into())
                }
            },
        );
        assert!(r.ok(), "{:?}", r.violation);
        assert!(r.deadlocks > 0, "detector never fired: {r:?}");
    }

    #[test]
    fn dpor_matches_dfs_states_on_legacy_scenarios() {
        // The DPOR soundness harness over the legacy barrier suite:
        // full-tree DFS and DPOR must agree on the exact set of
        // distinguishable states, with DPOR exploring ≥5× fewer
        // interleavings (measured: 31×, 31×, 598×).
        type StatesRun = Box<dyn Fn(&Config) -> (Report, BTreeSet<String>)>;
        let cases: Vec<(&str, StatesRun)> = vec![
            ("barrier-release-2", Box::new(|c| barrier_release_states(c, 2))),
            ("barrier-generations-2x1", Box::new(|c| barrier_generations_states(c, 2, 1))),
            ("barrier-consistency", Box::new(barrier_consistency_states)),
        ];
        for (name, run) in cases {
            let (dfs, dfs_states) = run(&Config::exhaustive(50_000));
            assert!(dfs.complete, "{name}: DFS must exhaust the full tree: {dfs:?}");
            assert!(dfs.ok(), "{name}: {:?}", dfs.violation);
            let (dpor, dpor_states) = run(&Config::dpor(50_000));
            assert!(dpor.complete, "{name}: DPOR must exhaust the full tree: {dpor:?}");
            assert!(dpor.ok(), "{name}: {:?}", dpor.violation);
            assert_eq!(
                dfs_states, dpor_states,
                "{name}: DPOR visited a different set of distinguishable states"
            );
            assert!(
                dpor.executions * 5 <= dfs.executions,
                "{name}: reduction below 5x: dpor {} vs dfs {}",
                dpor.executions,
                dfs.executions
            );
        }
    }

    #[test]
    fn all_or_nothing_check_rejects_mixes() {
        use WaitOutcome::*;
        assert!(check_all_or_nothing(&[Leader, Follower]).is_ok());
        assert!(check_all_or_nothing(&[Timeout, Poisoned]).is_ok());
        assert!(check_all_or_nothing(&[Leader, Timeout]).is_err());
        assert!(check_all_or_nothing(&[Follower, Poisoned]).is_err());
        assert!(check_all_or_nothing(&[Leader, Leader]).is_err());
    }
}
