//! Re-injections of the two concurrency bugs fixed in PR 1, proving the
//! model checker actually finds them.
//!
//! 1. **Poison/generation race** ([`RacyBarrier`]): the pre-fix barrier
//!    completed a generation with a plain `store` and poisoned with an
//!    unconditional `fetch_or`. A watchdog that decided to poison could
//!    interleave with a leader completing the crossing, producing a
//!    generation where one participant succeeded and another reported
//!    Timeout — the "mixed outcomes" the CAS-from-current-generation
//!    design makes impossible.
//!
//! 2. **End-barrier use-after-free** ([`leaky_publisher`]): the pre-fix
//!    pool's publisher returned from `run` on an end-barrier timeout
//!    without waiting for workers to leave the borrowed job closure,
//!    freeing memory a straggler could still read. The fix gates the
//!    error path on [`wino_sched::JobExitLatch::await_all`].
//!
//! 3. **Leaked waiter under batcher unwind** ([`leaky_unwind`]): the
//!    serve layer's waiter guarantee relies on `PendingIn`'s drop guard
//!    resolving the slot when the batcher unwinds mid-batch. The seeded
//!    bug orders the guard *after* the unwind path's state store — the
//!    early return runs before the guard arms, so the entry is never
//!    dropped-with-resolution and the waiter parks forever. The model
//!    checker reports that as a deadlock on every schedule reaching the
//!    unwind.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use wino_sched::atomics::{AtomicUsizeOps, Atomics};
use wino_sched::{BarrierError, JobExitLatch, SpinBarrierIn};

use super::scenarios::{
    check_all_or_nothing, job_handoff, wait_outcome, JOB_FREED,
};
use super::{explore, Config, MAtomicU32, ModelAtomics, Outcome, Report};

const POISON: usize = 1 << (usize::BITS - 1);

/// The PR-1 barrier, bug included: identical sense-reversing algorithm to
/// the shipped [`SpinBarrierIn`], except generation completion is a plain
/// `store` and watchdog poisoning an unconditional `fetch_or` — the two
/// transitions are not mutually exclusive.
pub struct RacyBarrier<A: Atomics = ModelAtomics> {
    count: A::AtomicUsize,
    state: A::AtomicUsize,
    total: usize,
}

impl<A: Atomics> RacyBarrier<A> {
    pub fn new(total: usize) -> RacyBarrier<A> {
        assert!(total > 0);
        RacyBarrier {
            count: A::AtomicUsize::new(0),
            state: A::AtomicUsize::new(0),
            total,
        }
    }

    pub fn wait_deadline(&self, deadline: Option<Duration>) -> Result<bool, BarrierError> {
        let gen = self.state.load(Ordering::Acquire);
        if gen & POISON != 0 {
            return Err(BarrierError::Poisoned);
        }
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.total {
            self.count.store(0, Ordering::Relaxed);
            // BUG (PR 1): plain store ignores a watchdog that has already
            // decided to poison this same generation.
            self.state.store(gen.wrapping_add(1) & !POISON, Ordering::Release);
            return Ok(true);
        }
        let mut spin = A::SpinState::default();
        loop {
            let s = self.state.load(Ordering::Acquire);
            if s & POISON != 0 {
                return Err(BarrierError::Poisoned);
            }
            if s != gen {
                return Ok(false);
            }
            if let Some(waited) = A::spin(&mut spin, deadline) {
                let seen = self.count.load(Ordering::Relaxed).max(arrived);
                // BUG (PR 1): unconditional poison — can fire after the
                // leader completed the crossing, killing a generation that
                // succeeded (and poisoning the *next* one).
                self.state.fetch_or(POISON, Ordering::AcqRel);
                return Err(BarrierError::Timeout {
                    waited,
                    arrived: seen,
                    expected: self.total,
                });
            }
        }
    }
}

/// Scenario: two participants with tight virtual watchdogs on the racy
/// barrier, checked against the same all-or-nothing invariant the shipped
/// barrier satisfies. The checker MUST find a mixed-outcome schedule
/// (leader succeeds, straggler reports Timeout).
pub fn racy_poison_race(cfg: &Config) -> Report {
    explore(
        cfg,
        || {
            let b = Arc::new(RacyBarrier::<ModelAtomics>::new(2));
            [2u64, 4]
                .into_iter()
                .map(|budget| {
                    let b = Arc::clone(&b);
                    Box::new(move || {
                        wait_outcome(b.wait_deadline(Some(Duration::from_nanos(budget))))
                    }) as Box<dyn FnOnce() -> super::scenarios::WaitOutcome + Send>
                })
                .collect()
        },
        |r| {
            if r.deadlocked {
                return Err("deadlock".into());
            }
            for (i, o) in r.outcomes.iter().enumerate() {
                if let Outcome::Panicked(m) = o {
                    return Err(format!("thread {i} panicked: {m}"));
                }
            }
            let outs: Vec<_> = r.outcomes.iter().filter_map(|o| o.done()).copied().collect();
            check_all_or_nothing(&outs)
        },
    )
}

/// The PR-1 publisher, bug included: on an end-barrier timeout it frees
/// the borrowed closure immediately instead of draining the exit latch.
pub fn leaky_publisher(
    cell: &MAtomicU32,
    latch: &JobExitLatch<ModelAtomics>,
    end: &SpinBarrierIn<ModelAtomics>,
) -> u32 {
    latch.record_exit();
    match end.wait_deadline(Some(Duration::from_nanos(2))) {
        Ok(_) => {
            cell.store(JOB_FREED);
            1
        }
        Err(_) => {
            // BUG (PR 1): no `latch.await_all` — the straggler may still
            // be inside the closure this store "frees".
            cell.store(JOB_FREED);
            2
        }
    }
}

/// Scenario: the hand-off protocol with the leaky publisher. The checker
/// MUST find a schedule where the worker reads freed closure memory.
pub fn leaky_handoff(cfg: &Config) -> Report {
    job_handoff(cfg, leaky_publisher)
}

/// The seeded serve bug, batcher side: on the unwind path the "batch
/// abandoned" state store ran *before* the drop guard was ordered to —
/// so the early return leaks the owned entries without ever resolving
/// their slots. `mem::forget` models exactly that: ownership leaves the
/// unwind path with the guard never run.
pub fn leaky_unwind(batch: Vec<super::serve_scenarios::MPending>) -> usize {
    let n = batch.len();
    for p in batch {
        // BUG (seeded): guard ordered after the state store — the entry
        // escapes the unwind without its Drop running, so the waiter's
        // slot is never resolved.
        std::mem::forget(p);
    }
    n
}

/// Scenario: the batcher-unwind protocol with the leaky guard ordering.
/// The checker MUST find a schedule where the waiter is leaked (reported
/// as a deadlock: the waiter parks with no writer left).
pub fn leaked_waiter(cfg: &Config) -> Report {
    super::serve_scenarios::batcher_unwind(cfg, leaky_unwind)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poison_race_is_found_exhaustively() {
        let r = racy_poison_race(&Config::exhaustive(200_000));
        assert!(
            !r.ok(),
            "model checker failed to re-find the PR-1 poison/generation race \
             ({} executions explored)",
            r.executions
        );
        let v = r.violation.unwrap();
        assert!(v.message.contains("mixed"), "unexpected violation: {}", v.message);
    }

    #[test]
    fn use_after_free_is_found_exhaustively() {
        let r = leaky_handoff(&Config::exhaustive(20_000));
        assert!(
            !r.ok(),
            "model checker failed to re-find the PR-1 end-barrier use-after-free \
             ({} executions explored)",
            r.executions
        );
        let v = r.violation.unwrap();
        assert!(v.message.contains("freed"), "unexpected violation: {}", v.message);
        assert!(!v.schedule.is_empty());
    }

    #[test]
    fn poison_race_is_found_by_random_search_too() {
        let r = racy_poison_race(&Config::random(0xDEC0DE, 20_000));
        assert!(!r.ok(), "random search missed the race in {} executions", r.executions);
    }

    #[test]
    fn leaked_waiter_is_found_exhaustively() {
        let r = leaked_waiter(&Config::exhaustive(20_000));
        assert!(
            !r.ok(),
            "model checker failed to find the seeded leaked-waiter bug \
             ({} executions explored)",
            r.executions
        );
        let v = r.violation.unwrap();
        assert!(
            v.message.contains("deadlock") || v.message.contains("leaked"),
            "unexpected violation: {}",
            v.message
        );
        assert!(!v.schedule.is_empty(), "violating schedule must be replayable");
    }

    #[test]
    fn leaked_waiter_is_found_under_dpor_too() {
        // Reduction must not hide the leak: DPOR preserves deadlocks.
        let r = leaked_waiter(&Config::dpor(20_000));
        assert!(!r.ok(), "DPOR missed the leaked waiter in {} executions", r.executions);
    }
}
