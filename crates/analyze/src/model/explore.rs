//! The schedule explorer: cooperative execution of virtual threads with
//! one-at-a-time scheduling, plus bounded-exhaustive (DFS + replay) and
//! seeded-random enumeration of scheduling choices.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Exploration configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Cap on executions (schedules) explored.
    pub max_execs: u64,
    /// Per-execution step budget — a safety valve against runaway
    /// schedules; exceeding it aborts the execution and is reported.
    pub max_steps: u64,
    pub mode: Mode,
}

#[derive(Debug, Clone)]
pub enum Mode {
    /// Depth-first enumeration of every scheduling choice, replaying a
    /// forced prefix per execution. Complete when the tree is exhausted
    /// within `max_execs`.
    Exhaustive,
    /// `max_execs` schedules with choices drawn from `wino-rng` seeded
    /// with `seed` (one derived stream per execution: reproducible).
    Random { seed: u64 },
}

impl Config {
    pub fn exhaustive(max_execs: u64) -> Config {
        Config { max_execs, max_steps: 100_000, mode: Mode::Exhaustive }
    }
    pub fn random(seed: u64, execs: u64) -> Config {
        Config { max_execs: execs, max_steps: 100_000, mode: Mode::Random { seed } }
    }
}

/// How one virtual thread ended.
#[derive(Debug)]
pub enum Outcome<T> {
    Done(T),
    /// The thread panicked inside scenario/substrate code.
    Panicked(String),
    /// The execution was aborted (deadlock or step budget) while this
    /// thread was still running.
    Aborted,
}

impl<T> Outcome<T> {
    pub fn done(&self) -> Option<&T> {
        match self {
            Outcome::Done(v) => Some(v),
            _ => None,
        }
    }
}

/// The result of one execution (one explored schedule).
#[derive(Debug)]
pub struct ExecResult<T> {
    pub outcomes: Vec<Outcome<T>>,
    /// Every live thread was spin-parked with no writer left: the
    /// schedule can never progress.
    pub deadlocked: bool,
    /// The per-execution step budget was exhausted.
    pub budget_exceeded: bool,
    /// Scheduling decisions taken (yield points passed).
    pub steps: u64,
}

/// A schedule that violated a scenario check, with the decision list
/// needed to replay it.
#[derive(Debug, Clone)]
pub struct Violation {
    pub schedule: Vec<u32>,
    pub message: String,
}

/// Aggregate result of an exploration.
#[derive(Debug)]
pub struct Report {
    /// Interleavings (schedules) actually executed.
    pub executions: u64,
    /// Exhaustive mode: the whole bounded tree was covered.
    pub complete: bool,
    pub deadlocks: u64,
    pub budget_exceeded: u64,
    pub violation: Option<Violation>,
    /// Total scheduler steps across all executions (≈ atomic accesses).
    pub total_steps: u64,
}

impl Report {
    pub fn ok(&self) -> bool {
        self.violation.is_none()
    }
}

// ---- execution context ----

#[derive(Clone, Copy, PartialEq, Eq)]
enum TState {
    /// Schedulable: ready to run (or not yet started).
    Ready,
    /// Spin-parked with no deadline; schedulable once `writes` exceeds
    /// the recorded count (pure stutters are pruned).
    Parked { at_writes: u64 },
    Finished,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Who {
    Controller,
    Thread(usize),
}

struct ExecState {
    current: Who,
    threads: Vec<TState>,
    writes: u64,
    steps: u64,
    aborted: bool,
}

struct Exec {
    m: Mutex<ExecState>,
    cv: Condvar,
}

/// Payload used to unwind a virtual thread out of an aborted execution
/// without tripping the panic hook (delivered via `resume_unwind`).
struct AbortSignal;

impl Exec {
    fn new(n: usize) -> Exec {
        Exec {
            m: Mutex::new(ExecState {
                current: Who::Controller,
                threads: vec![TState::Ready; n],
                writes: 0,
                steps: 0,
                aborted: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, ExecState> {
        // Virtual threads unwind (AbortSignal) while holding the guard,
        // poisoning the mutex; the state itself stays consistent.
        self.m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Block until the controller schedules `tid` for the first time.
    /// Returns false if the execution was aborted before that.
    fn wait_for_start(&self, tid: usize) -> bool {
        let mut st = self.lock();
        loop {
            if st.aborted {
                return false;
            }
            if st.current == Who::Thread(tid) {
                return true;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// One yield point: hand the baton to the controller, wait to be
    /// rescheduled. `park` spin-parks until another thread writes;
    /// `is_write` bumps the write counter on resume (just before the
    /// caller performs its store/RMW).
    fn yield_point(&self, tid: usize, park: bool, is_write: bool) {
        let mut st = self.lock();
        st.threads[tid] = if park { TState::Parked { at_writes: st.writes } } else { TState::Ready };
        st.current = Who::Controller;
        self.cv.notify_all();
        loop {
            if st.aborted {
                drop(st);
                std::panic::resume_unwind(Box::new(AbortSignal));
            }
            if st.current == Who::Thread(tid) {
                break;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.threads[tid] = TState::Ready;
        if is_write {
            st.writes += 1;
        }
    }

    fn finish(&self, tid: usize) {
        let mut st = self.lock();
        st.threads[tid] = TState::Finished;
        if st.current == Who::Thread(tid) {
            st.current = Who::Controller;
        }
        self.cv.notify_all();
    }

    /// Drive one execution to completion, choosing runnable threads via
    /// `choose(decision_index, n_options)`. Returns the decision list and
    /// the (deadlocked, budget_exceeded) flags.
    fn drive(
        &self,
        max_steps: u64,
        mut choose: impl FnMut(usize, u32) -> u32,
    ) -> (Vec<(u32, u32)>, bool, bool) {
        let mut decisions: Vec<(u32, u32)> = Vec::new();
        let mut deadlocked = false;
        let mut budget_exceeded = false;
        let mut st = self.lock();
        loop {
            while st.current != Who::Controller {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            if st.threads.iter().all(|t| *t == TState::Finished) {
                break;
            }
            if st.aborted {
                // Wait for the remaining threads to unwind and finish.
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            if st.steps >= max_steps {
                budget_exceeded = true;
                st.aborted = true;
                self.cv.notify_all();
                continue;
            }
            let writes = st.writes;
            let runnable: Vec<usize> = st
                .threads
                .iter()
                .enumerate()
                .filter_map(|(tid, t)| match *t {
                    TState::Ready => Some(tid),
                    TState::Parked { at_writes } if writes > at_writes => Some(tid),
                    _ => None,
                })
                .collect();
            if runnable.is_empty() {
                deadlocked = true;
                st.aborted = true;
                self.cv.notify_all();
                continue;
            }
            let k = runnable.len() as u32;
            let choice = choose(decisions.len(), k).min(k - 1);
            decisions.push((choice, k));
            st.steps += 1;
            st.current = Who::Thread(runnable[choice as usize]);
            self.cv.notify_all();
        }
        (decisions, deadlocked, budget_exceeded)
    }
}

// ---- thread-local hook used by the shim atomics ----

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Exec>, usize)>> = const { std::cell::RefCell::new(None) };
}

fn with_ctx(f: impl FnOnce(&Exec, usize)) {
    CTX.with(|c| {
        // Clone the Arc out so the RefCell borrow is not held across the
        // (blocking) yield point.
        let ctx = c.borrow().clone();
        if let Some((exec, tid)) = ctx {
            f(&exec, tid);
        }
    });
}

/// Yield point for a shim atomic access (no-op outside an exploration).
pub(crate) fn yield_access(is_write: bool) {
    with_ctx(|e, tid| e.yield_point(tid, false, is_write));
}

/// Yield point for one deadline-bounded spin step.
pub(crate) fn yield_spin_step() {
    with_ctx(|e, tid| e.yield_point(tid, false, false));
}

/// Spin-park: deschedule until another thread performs a write.
pub(crate) fn yield_spin_park() {
    with_ctx(|e, tid| e.yield_point(tid, true, false));
}

// ---- exploration driver ----

/// A scenario: `make` builds fresh shared state and returns one closure
/// per virtual thread; `check` judges the outcomes of each execution.
///
/// Explore every schedule permitted by `cfg`; stop at the first violation
/// (including, unless the check accepts it, deadlock / budget overrun).
pub fn explore<T, M, C>(cfg: &Config, make: M, check: C) -> Report
where
    T: Send + 'static,
    M: Fn() -> Vec<Box<dyn FnOnce() -> T + Send>>,
    C: Fn(&ExecResult<T>) -> Result<(), String>,
{
    let mut report = Report {
        executions: 0,
        complete: false,
        deadlocks: 0,
        budget_exceeded: 0,
        violation: None,
        total_steps: 0,
    };
    match cfg.mode {
        Mode::Exhaustive => {
            let mut forced: Vec<u32> = Vec::new();
            loop {
                if report.executions >= cfg.max_execs {
                    break; // tree truncated: complete stays false
                }
                let f2 = forced.clone();
                let (result, decisions) = run_once(cfg, make(), move |i, _k| {
                    f2.get(i).copied().unwrap_or(0)
                });
                report.executions += 1;
                report.total_steps += result.steps;
                if result.deadlocked {
                    report.deadlocks += 1;
                }
                if result.budget_exceeded {
                    report.budget_exceeded += 1;
                }
                if let Err(msg) = check(&result) {
                    report.violation = Some(Violation {
                        schedule: decisions.iter().map(|&(c, _)| c).collect(),
                        message: msg,
                    });
                    break;
                }
                // Backtrack: bump the deepest decision with room.
                let mut next: Option<Vec<u32>> = None;
                for i in (0..decisions.len()).rev() {
                    let (c, k) = decisions[i];
                    if c + 1 < k {
                        let mut f: Vec<u32> =
                            decisions[..i].iter().map(|&(c, _)| c).collect();
                        f.push(c + 1);
                        next = Some(f);
                        break;
                    }
                }
                match next {
                    Some(f) => forced = f,
                    None => {
                        report.complete = true;
                        break;
                    }
                }
            }
        }
        Mode::Random { seed } => {
            for i in 0..cfg.max_execs {
                let mut rng = wino_rng::Rng::seed_from_u64(seed.wrapping_add(i));
                let (result, decisions) =
                    run_once(cfg, make(), move |_i, k| rng.below(k as usize) as u32);
                report.executions += 1;
                report.total_steps += result.steps;
                if result.deadlocked {
                    report.deadlocks += 1;
                }
                if result.budget_exceeded {
                    report.budget_exceeded += 1;
                }
                if let Err(msg) = check(&result) {
                    report.violation = Some(Violation {
                        schedule: decisions.iter().map(|&(c, _)| c).collect(),
                        message: format!("{msg} (random seed {})", seed.wrapping_add(i)),
                    });
                    break;
                }
            }
        }
    }
    report
}

fn run_once<T: Send + 'static>(
    cfg: &Config,
    closures: Vec<Box<dyn FnOnce() -> T + Send>>,
    choose: impl FnMut(usize, u32) -> u32,
) -> (ExecResult<T>, Vec<(u32, u32)>) {
    let n = closures.len();
    let exec = Arc::new(Exec::new(n));
    let mut handles = Vec::with_capacity(n);
    for (tid, f) in closures.into_iter().enumerate() {
        let exec2 = Arc::clone(&exec);
        handles.push(
            std::thread::Builder::new()
                .name(format!("wino-model-{tid}"))
                .spawn(move || {
                    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec2), tid)));
                    let outcome = if exec2.wait_for_start(tid) {
                        match catch_unwind(AssertUnwindSafe(f)) {
                            Ok(v) => Outcome::Done(v),
                            Err(p) if p.is::<AbortSignal>() => Outcome::Aborted,
                            Err(p) => Outcome::Panicked(panic_text(p)),
                        }
                    } else {
                        Outcome::Aborted
                    };
                    CTX.with(|c| *c.borrow_mut() = None);
                    exec2.finish(tid);
                    outcome
                })
                .expect("spawn model thread"),
        );
    }
    let (decisions, deadlocked, budget_exceeded) = exec.drive(cfg.max_steps, choose);
    let outcomes: Vec<Outcome<T>> = handles
        .into_iter()
        .map(|h| h.join().unwrap_or(Outcome::Panicked("model thread died".into())))
        .collect();
    let steps = exec.lock().steps;
    (ExecResult { outcomes, deadlocked, budget_exceeded, steps }, decisions)
}

fn panic_text(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MAtomicU32;

    /// Two threads increment a shared counter through the shim: every
    /// schedule must see both increments (fetch_add is atomic).
    #[test]
    fn exhaustive_counter_is_complete_and_correct() {
        let cfg = Config::exhaustive(10_000);
        let report = explore(
            &cfg,
            || {
                let c = Arc::new(MAtomicU32::new(0));
                (0..2)
                    .map(|_| {
                        let c = Arc::clone(&c);
                        Box::new(move || {
                            c.fetch_add(1);
                            c.load()
                        }) as Box<dyn FnOnce() -> u32 + Send>
                    })
                    .collect()
            },
            |r| {
                let max = r.outcomes.iter().filter_map(|o| o.done()).max().copied();
                if max == Some(2) {
                    Ok(())
                } else {
                    Err(format!("lost increment: outcomes {:?}", r.outcomes))
                }
            },
        );
        assert!(report.ok(), "{:?}", report.violation);
        assert!(report.complete, "tiny tree must be exhausted: {report:?}");
        assert!(report.executions >= 2, "must explore both orders: {report:?}");
    }

    /// A racy read-modify-write (load; store) through the shim MUST be
    /// caught: some schedule loses an update. This is the canary that the
    /// explorer actually interleaves at access granularity.
    #[test]
    fn exhaustive_finds_lost_update_race() {
        let cfg = Config::exhaustive(10_000);
        let report = explore(
            &cfg,
            || {
                let c = Arc::new(MAtomicU32::new(0));
                (0..2)
                    .map(|_| {
                        let c = Arc::clone(&c);
                        Box::new(move || {
                            let v = c.load(); // racy RMW, on purpose
                            c.store(v + 1);
                            c.load()
                        }) as Box<dyn FnOnce() -> u32 + Send>
                    })
                    .collect()
            },
            |r| {
                let max = r.outcomes.iter().filter_map(|o| o.done()).max().copied();
                if max == Some(2) {
                    Ok(())
                } else {
                    Err("lost update observed".to_string())
                }
            },
        );
        assert!(!report.ok(), "the explorer failed to find a textbook race: {report:?}");
        let v = report.violation.unwrap();
        assert!(!v.schedule.is_empty(), "violating schedule must be replayable");
    }

    /// Random mode is reproducible for a given seed.
    #[test]
    fn random_mode_is_deterministic_per_seed() {
        let run = || {
            let cfg = Config::random(42, 64);
            explore(
                &cfg,
                || {
                    let c = Arc::new(MAtomicU32::new(0));
                    (0..3)
                        .map(|_| {
                            let c = Arc::clone(&c);
                            Box::new(move || {
                                let v = c.load();
                                c.store(v + 1);
                                0u32
                            }) as Box<dyn FnOnce() -> u32 + Send>
                        })
                        .collect()
                },
                |_| Ok(()),
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.executions, b.executions);
        assert_eq!(a.total_steps, b.total_steps);
    }
}
