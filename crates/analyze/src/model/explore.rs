//! The schedule explorer: cooperative execution of virtual threads with
//! one-at-a-time scheduling, plus three enumeration strategies over the
//! scheduling choices —
//!
//! * **Exhaustive**: bounded-depth-first enumeration of every choice,
//!   replaying a forced prefix per execution;
//! * **Dpor**: the same DFS scaled by dynamic partial-order reduction
//!   (persistent/backtrack sets computed from observed access
//!   dependences, plus sleep sets to cut redundant branches) — visits at
//!   least one interleaving per Mazurkiewicz trace class, so every
//!   distinguishable final state, deadlock, and panic that plain DFS can
//!   reach is still reached (see `docs/analyze.md` for the soundness
//!   argument);
//! * **Random**: seeded schedule sampling via `wino-rng`.
//!
//! Every shim-atomic access announces *what it is about to do* — the
//! object (shim word address) and whether it writes — at its yield
//! point. Because a yield happens **before** the access executes, the
//! controller always knows the pending access of every runnable thread
//! at choice time, which is exactly the information DPOR's dependence
//! relation needs.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Exploration configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Cap on executions (schedules) explored.
    pub max_execs: u64,
    /// Per-execution step budget — a safety valve against runaway
    /// schedules; exceeding it aborts the execution and is reported.
    pub max_steps: u64,
    pub mode: Mode,
}

#[derive(Debug, Clone)]
pub enum Mode {
    /// Depth-first enumeration of every scheduling choice, replaying a
    /// forced prefix per execution. Complete when the tree is exhausted
    /// within `max_execs`.
    Exhaustive,
    /// DFS scaled by dynamic partial-order reduction: only schedules
    /// that can differ in some access ordering are explored. Complete
    /// coverage of distinguishable states with (usually far) fewer
    /// executions than [`Mode::Exhaustive`].
    Dpor,
    /// `max_execs` schedules with choices drawn from `wino-rng` seeded
    /// with `seed` (one derived stream per execution: reproducible).
    Random { seed: u64 },
}

impl Config {
    pub fn exhaustive(max_execs: u64) -> Config {
        Config { max_execs, max_steps: 100_000, mode: Mode::Exhaustive }
    }
    pub fn dpor(max_execs: u64) -> Config {
        Config { max_execs, max_steps: 100_000, mode: Mode::Dpor }
    }
    pub fn random(seed: u64, execs: u64) -> Config {
        Config { max_execs: execs, max_steps: 100_000, mode: Mode::Random { seed } }
    }
}

/// How one virtual thread ended.
#[derive(Debug)]
pub enum Outcome<T> {
    Done(T),
    /// The thread panicked inside scenario/substrate code.
    Panicked(String),
    /// The execution was aborted (deadlock, step budget, or DPOR
    /// redundancy prune) while this thread was still running.
    Aborted,
}

impl<T> Outcome<T> {
    pub fn done(&self) -> Option<&T> {
        match self {
            Outcome::Done(v) => Some(v),
            _ => None,
        }
    }
}

/// The result of one execution (one explored schedule).
#[derive(Debug)]
pub struct ExecResult<T> {
    pub outcomes: Vec<Outcome<T>>,
    /// Every live thread was spin-parked with no writer left: the
    /// schedule can never progress.
    pub deadlocked: bool,
    /// The per-execution step budget was exhausted.
    pub budget_exceeded: bool,
    /// DPOR cut this execution as redundant (its maximal extensions are
    /// covered by sibling branches); the scenario check is not applied.
    pub pruned: bool,
    /// Scheduling decisions taken (yield points passed).
    pub steps: u64,
}

/// A schedule that violated a scenario check, with the decision list
/// needed to replay it.
#[derive(Debug, Clone)]
pub struct Violation {
    pub schedule: Vec<u32>,
    pub message: String,
}

/// Aggregate result of an exploration.
#[derive(Debug)]
pub struct Report {
    /// Interleavings (schedules) actually executed — including, under
    /// DPOR, partial executions cut by the sleep-set prune.
    pub executions: u64,
    /// Exhaustive/DPOR mode: the whole bounded tree was covered.
    pub complete: bool,
    pub deadlocks: u64,
    pub budget_exceeded: u64,
    /// DPOR: executions cut as redundant by the sleep-set prune.
    pub pruned: u64,
    pub violation: Option<Violation>,
    /// Total scheduler steps across all executions (≈ atomic accesses).
    pub total_steps: u64,
}

impl Report {
    pub fn ok(&self) -> bool {
        self.violation.is_none()
    }
}

// ---- access announcements ----

/// What kind of shared access a thread announces at a yield point.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum AccessKind {
    /// No shared access: thread prelude, a deadline-bounded spin step,
    /// or the resumption code after a park. Commutes with everything.
    Local,
    /// Load of the object `obj`.
    Read,
    /// Store/RMW of the object `obj`.
    Write,
    /// Spin-park resume: the thread observes "some write happened".
    /// Dependent with every write (the wake order is schedule-visible).
    Park,
}

/// One announced access: the shim word's address plus the kind. The
/// address is only meaningful *within* one execution (allocations move
/// between executions), so the DPOR driver refreshes its per-depth
/// snapshots on every replay.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct Access {
    pub obj: usize,
    pub kind: AccessKind,
}

impl Access {
    pub(crate) const LOCAL: Access = Access { obj: 0, kind: AccessKind::Local };

    /// The DPOR dependence relation: can reordering two adjacent steps
    /// with these accesses change the execution?
    fn dependent(a: Access, b: Access) -> bool {
        use AccessKind::*;
        match (a.kind, b.kind) {
            (Local, _) | (_, Local) => false,
            // A park-resume races with every write: which write wakes
            // the sleeper is schedule-visible (two parks commute).
            (Park, Write) | (Write, Park) => true,
            (Park, _) | (_, Park) => false,
            // Two reads commute; anything involving a write conflicts
            // iff it is the same object.
            (Read, Read) => false,
            _ => a.obj == b.obj,
        }
    }
}

// ---- execution context ----

#[derive(Clone, Copy, PartialEq, Eq)]
enum TState {
    /// Schedulable: ready to run (or not yet started).
    Ready,
    /// Spin-parked with no deadline; schedulable once `writes` exceeds
    /// the recorded count (pure stutters are pruned).
    Parked { at_writes: u64 },
    Finished,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Who {
    Controller,
    Thread(usize),
}

struct ExecState {
    current: Who,
    threads: Vec<TState>,
    /// Per-thread announced access: what the thread will perform when it
    /// is next scheduled (its yield happens *before* the operation).
    pending: Vec<Access>,
    writes: u64,
    steps: u64,
    aborted: bool,
}

struct Exec {
    m: Mutex<ExecState>,
    cv: Condvar,
}

/// Payload used to unwind a virtual thread out of an aborted execution
/// without tripping the panic hook (delivered via `resume_unwind`).
struct AbortSignal;

/// One scheduling decision offered to a chooser: the runnable threads
/// and every thread's announced-but-not-yet-executed access.
pub(crate) struct ChoicePoint<'a> {
    pub depth: usize,
    /// Runnable thread ids, ascending.
    pub runnable: &'a [usize],
    /// Pending access per thread id (length = thread count).
    pub pending: &'a [Access],
}

/// A chooser's verdict at one decision point.
pub(crate) enum Pick {
    /// Run `runnable[i]`.
    Run(u32),
    /// DPOR: every runnable thread is in the sleep set — this branch is
    /// redundant; abort the execution without checking it.
    Prune,
}

impl Exec {
    fn new(n: usize) -> Exec {
        Exec {
            m: Mutex::new(ExecState {
                current: Who::Controller,
                threads: vec![TState::Ready; n],
                pending: vec![Access::LOCAL; n],
                writes: 0,
                steps: 0,
                aborted: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, ExecState> {
        // Virtual threads unwind (AbortSignal) while holding the guard,
        // poisoning the mutex; the state itself stays consistent.
        self.m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Block until the controller schedules `tid` for the first time.
    /// Returns false if the execution was aborted before that.
    fn wait_for_start(&self, tid: usize) -> bool {
        let mut st = self.lock();
        loop {
            if st.aborted {
                return false;
            }
            if st.current == Who::Thread(tid) {
                return true;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// One yield point: announce the access the caller is *about to*
    /// perform, hand the baton to the controller, wait to be
    /// rescheduled. `park` spin-parks until another thread writes; the
    /// write counter itself is bumped by [`note_write`] *after* the
    /// operation actually mutates (a failed CAS wakes nobody — counting
    /// announcements instead would let two spinning CAS loops wake each
    /// other forever and starve every other thread).
    fn yield_point(&self, tid: usize, park: bool, access: Access) {
        let mut st = self.lock();
        st.threads[tid] = if park { TState::Parked { at_writes: st.writes } } else { TState::Ready };
        st.pending[tid] = access;
        st.current = Who::Controller;
        self.cv.notify_all();
        loop {
            if st.aborted {
                drop(st);
                if std::thread::panicking() {
                    // Already unwinding (e.g. a drop guard resolving a
                    // slot on the way out): run to completion without
                    // rescheduling — a second panic here would abort the
                    // process ("panic in a destructor during cleanup").
                    return;
                }
                std::panic::resume_unwind(Box::new(AbortSignal));
            }
            if st.current == Who::Thread(tid) {
                break;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.threads[tid] = TState::Ready;
    }

    /// Record one materialised write (see [`Exec::yield_point`]).
    fn note_write(&self) {
        self.lock().writes += 1;
    }

    fn finish(&self, tid: usize) {
        let mut st = self.lock();
        st.threads[tid] = TState::Finished;
        if st.current == Who::Thread(tid) {
            st.current = Who::Controller;
        }
        self.cv.notify_all();
    }

    /// Drive one execution to completion, consulting `choose` at every
    /// decision point. Returns the decision list (choice, k) and the
    /// (deadlocked, budget_exceeded, pruned) flags.
    fn drive(
        &self,
        max_steps: u64,
        mut choose: impl FnMut(&ChoicePoint) -> Pick,
    ) -> (Vec<(u32, u32)>, bool, bool, bool) {
        let mut decisions: Vec<(u32, u32)> = Vec::new();
        let mut deadlocked = false;
        let mut budget_exceeded = false;
        let mut pruned = false;
        let mut st = self.lock();
        loop {
            while st.current != Who::Controller {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            if st.threads.iter().all(|t| *t == TState::Finished) {
                break;
            }
            if st.aborted {
                // Wait for the remaining threads to unwind and finish.
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            if st.steps >= max_steps {
                budget_exceeded = true;
                st.aborted = true;
                self.cv.notify_all();
                continue;
            }
            let writes = st.writes;
            let runnable: Vec<usize> = st
                .threads
                .iter()
                .enumerate()
                .filter_map(|(tid, t)| match *t {
                    TState::Ready => Some(tid),
                    TState::Parked { at_writes } if writes > at_writes => Some(tid),
                    _ => None,
                })
                .collect();
            if runnable.is_empty() {
                deadlocked = true;
                st.aborted = true;
                self.cv.notify_all();
                continue;
            }
            let k = runnable.len() as u32;
            let cp = ChoicePoint {
                depth: decisions.len(),
                runnable: &runnable,
                pending: &st.pending,
            };
            match choose(&cp) {
                Pick::Prune => {
                    pruned = true;
                    st.aborted = true;
                    self.cv.notify_all();
                    continue;
                }
                Pick::Run(choice) => {
                    let choice = choice.min(k - 1);
                    decisions.push((choice, k));
                    st.steps += 1;
                    st.current = Who::Thread(runnable[choice as usize]);
                    self.cv.notify_all();
                }
            }
        }
        (decisions, deadlocked, budget_exceeded, pruned)
    }
}

// ---- thread-local hook used by the shim atomics ----

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Exec>, usize)>> = const { std::cell::RefCell::new(None) };
}

fn with_ctx(f: impl FnOnce(&Exec, usize)) {
    CTX.with(|c| {
        // Clone the Arc out so the RefCell borrow is not held across the
        // (blocking) yield point.
        let ctx = c.borrow().clone();
        if let Some((exec, tid)) = ctx {
            f(&exec, tid);
        }
    });
}

/// Yield point for a shim atomic access (no-op outside an exploration).
/// `obj` identifies the accessed word (its address) for the DPOR
/// dependence relation.
pub(crate) fn yield_access(obj: usize, is_write: bool) {
    let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
    with_ctx(|e, tid| e.yield_point(tid, false, Access { obj, kind }));
}

/// Yield point for one deadline-bounded spin step (a local step: it
/// touches no shared state, so DPOR treats it as independent of
/// everything).
pub(crate) fn yield_spin_step() {
    with_ctx(|e, tid| e.yield_point(tid, false, Access::LOCAL));
}

/// Report that the access announced by the preceding [`yield_access`]
/// actually mutated its object (store/RMW, or a CAS that succeeded).
/// Parked threads are woken by materialised writes only.
pub(crate) fn note_write() {
    with_ctx(|e, _tid| e.note_write());
}

/// Spin-park: deschedule until another thread performs a write.
pub(crate) fn yield_spin_park() {
    with_ctx(|e, tid| {
        e.yield_point(tid, true, Access { obj: 0, kind: AccessKind::Park })
    });
}

/// The current virtual time in scheduler steps (0 outside an
/// exploration). One step = one nanosecond of model time, matching
/// `ModelAtomics::spin`'s deadline budget.
pub(crate) fn virtual_now() -> u64 {
    let mut now = 0;
    with_ctx(|e, _tid| now = e.lock().steps);
    now
}

// ---- exploration driver ----

/// A scenario: `make` builds fresh shared state and returns one closure
/// per virtual thread; `check` judges the outcomes of each execution.
///
/// Explore every schedule permitted by `cfg`; stop at the first violation
/// (including, unless the check accepts it, deadlock / budget overrun).
pub fn explore<T, M, C>(cfg: &Config, make: M, check: C) -> Report
where
    T: Send + std::fmt::Debug + 'static,
    M: Fn() -> Vec<Box<dyn FnOnce() -> T + Send>>,
    C: Fn(&ExecResult<T>) -> Result<(), String>,
{
    explore_states(cfg, make, check).0
}

/// As [`explore`], additionally returning the set of distinguishable
/// final states seen across all (non-pruned) executions. A state
/// fingerprint is the `Debug` rendering of the per-thread outcomes plus
/// the deadlock/budget flags — two executions with equal fingerprints
/// are indistinguishable to any scenario check. This is the evidence the
/// DFS-vs-DPOR equivalence harness compares.
pub fn explore_states<T, M, C>(
    cfg: &Config,
    make: M,
    check: C,
) -> (Report, BTreeSet<String>)
where
    T: Send + std::fmt::Debug + 'static,
    M: Fn() -> Vec<Box<dyn FnOnce() -> T + Send>>,
    C: Fn(&ExecResult<T>) -> Result<(), String>,
{
    let mut report = Report {
        executions: 0,
        complete: false,
        deadlocks: 0,
        budget_exceeded: 0,
        pruned: 0,
        violation: None,
        total_steps: 0,
    };
    let mut states: BTreeSet<String> = BTreeSet::new();
    let mut tally = |report: &mut Report, result: &ExecResult<T>| {
        report.executions += 1;
        report.total_steps += result.steps;
        if result.deadlocked {
            report.deadlocks += 1;
        }
        if result.budget_exceeded {
            report.budget_exceeded += 1;
        }
        if result.pruned {
            report.pruned += 1;
        } else {
            states.insert(fingerprint(result));
        }
    };
    match cfg.mode {
        Mode::Exhaustive => {
            let mut forced: Vec<u32> = Vec::new();
            loop {
                if report.executions >= cfg.max_execs {
                    break; // tree truncated: complete stays false
                }
                let f2 = forced.clone();
                let (result, decisions) = run_once(cfg, make(), move |cp| {
                    Pick::Run(f2.get(cp.depth).copied().unwrap_or(0))
                });
                tally(&mut report, &result);
                if let Err(msg) = check(&result) {
                    report.violation = Some(Violation {
                        schedule: decisions.iter().map(|&(c, _)| c).collect(),
                        message: msg,
                    });
                    break;
                }
                // Backtrack: bump the deepest decision with room.
                let mut next: Option<Vec<u32>> = None;
                for i in (0..decisions.len()).rev() {
                    let (c, k) = decisions[i];
                    if c + 1 < k {
                        let mut f: Vec<u32> =
                            decisions[..i].iter().map(|&(c, _)| c).collect();
                        f.push(c + 1);
                        next = Some(f);
                        break;
                    }
                }
                match next {
                    Some(f) => forced = f,
                    None => {
                        report.complete = true;
                        break;
                    }
                }
            }
        }
        Mode::Dpor => {
            explore_dpor(cfg, &make, &check, &mut report, &mut tally);
        }
        Mode::Random { seed } => {
            for i in 0..cfg.max_execs {
                let mut rng = wino_rng::Rng::seed_from_u64(seed.wrapping_add(i));
                let (result, decisions) = run_once(cfg, make(), move |cp| {
                    Pick::Run(rng.below(cp.runnable.len()) as u32)
                });
                tally(&mut report, &result);
                if let Err(msg) = check(&result) {
                    report.violation = Some(Violation {
                        schedule: decisions.iter().map(|&(c, _)| c).collect(),
                        message: format!("{msg} (random seed {})", seed.wrapping_add(i)),
                    });
                    break;
                }
            }
        }
    }
    (report, states)
}

fn fingerprint<T: std::fmt::Debug>(r: &ExecResult<T>) -> String {
    format!(
        "outcomes={:?} deadlocked={} budget_exceeded={}",
        r.outcomes, r.deadlocked, r.budget_exceeded
    )
}

// ---- DPOR ----

/// One node of the persistent DPOR stack: the state reached by the
/// current branch's prefix at this depth, the edge taken from it, and
/// the exploration bookkeeping (backtrack/done/sleep sets, all thread-id
/// sets — stable across replays, unlike the access snapshots which are
/// refreshed every run because shim addresses move between executions).
struct DNode {
    /// Thread executed from this node on the current branch.
    tid: usize,
    /// The access that edge performs (= `pending[tid]` at this node).
    access: Access,
    /// Runnable (enabled) threads at this node.
    runnable: Vec<usize>,
    /// Announced access per thread at this node.
    pending: Vec<Access>,
    /// Threads whose exploration from this node is (or became) required.
    backtrack: BTreeSet<usize>,
    /// Threads already fully explored from this node.
    done: BTreeSet<usize>,
    /// Sleep set entering this node: threads whose next step is covered
    /// by an already-explored sibling branch.
    sleep: BTreeSet<usize>,
}

/// Flanagan–Godefroid DPOR over the replay-based DFS driver, with sleep
/// sets. See `docs/analyze.md` for the design and soundness argument;
/// in brief:
///
/// * each executed step announces its access **before** running, so the
///   controller knows every runnable thread's next access at each node;
/// * after every execution, for each step `j` the latest step `i` by a
///   different thread with a dependent access marks a reversible race:
///   `thread(j)` is added to `backtrack(i)` (or, if it was not enabled
///   there, *all* threads enabled at `i` — the conservative fallback
///   that keeps wake-up races sound without vector clocks);
/// * sibling branches already explored from a node enter its sleep set;
///   a sleeping thread is only released by a dependent step, and a node
///   whose every runnable thread sleeps is pruned as redundant.
fn explore_dpor<T, M, C>(
    cfg: &Config,
    make: &M,
    check: &C,
    report: &mut Report,
    tally: &mut impl FnMut(&mut Report, &ExecResult<T>),
) where
    T: Send + std::fmt::Debug + 'static,
    M: Fn() -> Vec<Box<dyn FnOnce() -> T + Send>>,
    C: Fn(&ExecResult<T>) -> Result<(), String>,
{
    let mut stack: Vec<DNode> = Vec::new();
    // Depths `[0, replay_len)` are fixed for the next run (their `tid`
    // edges re-execute); deeper depths are chosen fresh.
    let mut replay_len = 0usize;
    loop {
        if report.executions >= cfg.max_execs {
            return; // tree truncated: complete stays false
        }
        let stack_cell = std::cell::RefCell::new(&mut stack);
        let (result, decisions) = run_once(cfg, make(), |cp| {
            let mut stack = stack_cell.borrow_mut();
            let d = cp.depth;
            if d < replay_len {
                // Replay a fixed edge; refresh the snapshots (shim
                // addresses differ between executions, and the race
                // analysis must compare addresses of *this* run).
                let tid = stack[d].tid;
                let idx = cp
                    .runnable
                    .iter()
                    .position(|&t| t == tid)
                    .expect("replay determinism: forced thread must be runnable");
                stack[d].runnable = cp.runnable.to_vec();
                stack[d].pending = cp.pending.to_vec();
                stack[d].access = cp.pending[tid];
                return Pick::Run(idx as u32);
            }
            // Frontier: compute this node's sleep set from the parent,
            // then pick the first runnable thread not asleep.
            let sleep: BTreeSet<usize> = if d == 0 {
                BTreeSet::new()
            } else {
                let p = &stack[d - 1];
                p.sleep
                    .iter()
                    .chain(p.done.iter())
                    .copied()
                    .filter(|&r| !Access::dependent(p.pending[r], p.access))
                    .collect()
            };
            let Some(&tid) = cp.runnable.iter().find(|t| !sleep.contains(t)) else {
                return Pick::Prune;
            };
            let idx = cp.runnable.iter().position(|&t| t == tid).unwrap() as u32;
            stack.push(DNode {
                tid,
                access: cp.pending[tid],
                runnable: cp.runnable.to_vec(),
                pending: cp.pending.to_vec(),
                backtrack: BTreeSet::from([tid]),
                done: BTreeSet::new(),
                sleep,
            });
            Pick::Run(idx)
        });
        tally(report, &result);
        if !result.pruned {
            if let Err(msg) = check(&result) {
                report.violation = Some(Violation {
                    schedule: decisions.iter().map(|&(c, _)| c).collect(),
                    message: msg,
                });
                return;
            }
        }

        // Race analysis: for each step j, the latest dependent step i by
        // another thread is a candidate reversal.
        let mut additions: Vec<(usize, Vec<usize>)> = Vec::new();
        for j in 1..stack.len() {
            let (tj, aj) = (stack[j].tid, stack[j].access);
            if aj.kind == AccessKind::Local {
                continue;
            }
            if let Some(i) =
                (0..j).rev().find(|&i| stack[i].tid != tj && Access::dependent(stack[i].access, aj))
            {
                if stack[i].runnable.contains(&tj) {
                    additions.push((i, vec![tj]));
                } else {
                    // Conservative fallback: `thread(j)` was disabled at
                    // `i` (e.g. still parked) — require every thread
                    // enabled at `i` instead.
                    additions.push((i, stack[i].runnable.clone()));
                }
            }
        }
        for (i, tids) in additions {
            stack[i].backtrack.extend(tids);
        }

        // Backtrack: deepest node with an unexplored required edge.
        let mut advanced = false;
        for d in (0..stack.len()).rev() {
            let finished_tid = stack[d].tid;
            stack[d].done.insert(finished_tid);
            let cand = stack[d]
                .backtrack
                .iter()
                .copied()
                .find(|t| {
                    !stack[d].done.contains(t)
                        && !stack[d].sleep.contains(t)
                        && stack[d].runnable.contains(t)
                });
            if let Some(t) = cand {
                stack[d].tid = t;
                stack.truncate(d + 1);
                replay_len = d + 1;
                advanced = true;
                break;
            }
            stack.truncate(d); // node exhausted: pop it
        }
        if !advanced {
            report.complete = true;
            return;
        }
    }
}

fn run_once<T: Send + 'static>(
    cfg: &Config,
    closures: Vec<Box<dyn FnOnce() -> T + Send>>,
    choose: impl FnMut(&ChoicePoint) -> Pick,
) -> (ExecResult<T>, Vec<(u32, u32)>) {
    let n = closures.len();
    let exec = Arc::new(Exec::new(n));
    let mut handles = Vec::with_capacity(n);
    for (tid, f) in closures.into_iter().enumerate() {
        let exec2 = Arc::clone(&exec);
        handles.push(
            std::thread::Builder::new()
                .name(format!("wino-model-{tid}"))
                .spawn(move || {
                    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec2), tid)));
                    let outcome = if exec2.wait_for_start(tid) {
                        match catch_unwind(AssertUnwindSafe(f)) {
                            Ok(v) => Outcome::Done(v),
                            Err(p) if p.is::<AbortSignal>() => Outcome::Aborted,
                            Err(p) => Outcome::Panicked(panic_text(p)),
                        }
                    } else {
                        Outcome::Aborted
                    };
                    CTX.with(|c| *c.borrow_mut() = None);
                    exec2.finish(tid);
                    outcome
                })
                .expect("spawn model thread"),
        );
    }
    let (decisions, deadlocked, budget_exceeded, pruned) = exec.drive(cfg.max_steps, choose);
    let outcomes: Vec<Outcome<T>> = handles
        .into_iter()
        .map(|h| h.join().unwrap_or(Outcome::Panicked("model thread died".into())))
        .collect();
    let steps = exec.lock().steps;
    (ExecResult { outcomes, deadlocked, budget_exceeded, pruned, steps }, decisions)
}

fn panic_text(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MAtomicU32;

    fn counter_scenario() -> Vec<Box<dyn FnOnce() -> u32 + Send>> {
        let c = Arc::new(MAtomicU32::new(0));
        (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                Box::new(move || {
                    c.fetch_add(1);
                    c.load()
                }) as Box<dyn FnOnce() -> u32 + Send>
            })
            .collect()
    }

    fn racy_rmw_scenario(threads: usize) -> Vec<Box<dyn FnOnce() -> u32 + Send>> {
        let c = Arc::new(MAtomicU32::new(0));
        (0..threads)
            .map(|_| {
                let c = Arc::clone(&c);
                Box::new(move || {
                    let v = c.load(); // racy RMW, on purpose
                    c.store(v + 1);
                    c.load()
                }) as Box<dyn FnOnce() -> u32 + Send>
            })
            .collect()
    }

    /// Two threads increment a shared counter through the shim: every
    /// schedule must see both increments (fetch_add is atomic).
    #[test]
    fn exhaustive_counter_is_complete_and_correct() {
        let cfg = Config::exhaustive(10_000);
        let report = explore(&cfg, counter_scenario, |r| {
            let max = r.outcomes.iter().filter_map(|o| o.done()).max().copied();
            if max == Some(2) {
                Ok(())
            } else {
                Err(format!("lost increment: outcomes {:?}", r.outcomes))
            }
        });
        assert!(report.ok(), "{:?}", report.violation);
        assert!(report.complete, "tiny tree must be exhausted: {report:?}");
        assert!(report.executions >= 2, "must explore both orders: {report:?}");
    }

    /// A racy read-modify-write (load; store) through the shim MUST be
    /// caught: some schedule loses an update. This is the canary that the
    /// explorer actually interleaves at access granularity.
    #[test]
    fn exhaustive_finds_lost_update_race() {
        let cfg = Config::exhaustive(10_000);
        let report = explore(&cfg, || racy_rmw_scenario(2), |r| {
            let max = r.outcomes.iter().filter_map(|o| o.done()).max().copied();
            if max == Some(2) {
                Ok(())
            } else {
                Err("lost update observed".to_string())
            }
        });
        assert!(!report.ok(), "the explorer failed to find a textbook race: {report:?}");
        let v = report.violation.unwrap();
        assert!(!v.schedule.is_empty(), "violating schedule must be replayable");
    }

    /// DPOR must also find the textbook race — reduction must never
    /// drop a distinguishable outcome.
    #[test]
    fn dpor_finds_lost_update_race() {
        let cfg = Config::dpor(10_000);
        let report = explore(&cfg, || racy_rmw_scenario(2), |r| {
            let max = r.outcomes.iter().filter_map(|o| o.done()).max().copied();
            if max == Some(2) {
                Ok(())
            } else {
                Err("lost update observed".to_string())
            }
        });
        assert!(!report.ok(), "DPOR failed to find a textbook race: {report:?}");
    }

    /// The core DPOR equivalence property, on a scenario small enough to
    /// brute-force: the set of distinguishable final states matches
    /// plain DFS exactly, with no more (and in practice far fewer)
    /// executions.
    #[test]
    fn dpor_matches_dfs_states_with_fewer_executions() {
        let pass = |_: &ExecResult<u32>| Ok(());
        let (dfs, dfs_states) =
            explore_states(&Config::exhaustive(1_000_000), || racy_rmw_scenario(3), pass);
        let (dpor, dpor_states) =
            explore_states(&Config::dpor(1_000_000), || racy_rmw_scenario(3), pass);
        assert!(dfs.complete && dpor.complete, "both trees must be exhausted");
        assert_eq!(dfs_states, dpor_states, "DPOR lost or invented a distinguishable state");
        assert!(
            dpor.executions <= dfs.executions,
            "DPOR explored more than DFS: {} > {}",
            dpor.executions,
            dfs.executions
        );
    }

    /// Random mode is reproducible for a given seed.
    #[test]
    fn random_mode_is_deterministic_per_seed() {
        let run = || {
            let cfg = Config::random(42, 64);
            explore(&cfg, || racy_rmw_scenario(3), |_| Ok(()))
        };
        let (a, b) = (run(), run());
        assert_eq!(a.executions, b.executions);
        assert_eq!(a.total_steps, b.total_steps);
    }
}
