//! `wino-lint` — workspace safety linter. Lints every
//! `crates/*/src/**/*.rs` (plus the root `src/`) against the rule table
//! in `wino_analyze::rules::RULES` and exits non-zero on any violation.
//!
//! Usage:
//!   wino-lint                     lint the whole workspace
//!   wino-lint FILE...             lint specific files (paths may be
//!                                 absolute or workspace-relative)
//!   wino-lint --as-path REL FILE  lint FILE as if it lived at REL
//!                                 (fixture testing: scoped rules apply)
//!   wino-lint --list-rules        print the rule table and exit
//!   wino-lint --root DIR          override workspace root discovery

use std::path::PathBuf;
use std::process::ExitCode;

use wino_analyze::lint;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut as_path: Option<String> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--list-rules" => {
                print!("{}", lint::describe_rules());
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => return usage("--root needs a directory"),
            },
            "--as-path" => match args.next() {
                Some(p) => as_path = Some(p),
                None => return usage("--as-path needs a workspace-relative path"),
            },
            "--help" | "-h" => return usage(""),
            _ if a.starts_with('-') => return usage(&format!("unknown flag {a}")),
            _ => files.push(PathBuf::from(a)),
        }
    }

    let Some(root) = root.or_else(lint::default_root) else {
        eprintln!("wino-lint: could not locate the workspace root");
        return ExitCode::from(2);
    };

    if let Some(rel) = as_path {
        // Fixture mode: lint each given file under an assumed
        // workspace-relative path so scoped rules and allowlists apply.
        if files.len() != 1 {
            return usage("--as-path takes exactly one file");
        }
        let src = match std::fs::read_to_string(&files[0]) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("wino-lint: {}: {e}", files[0].display());
                return ExitCode::from(2);
            }
        };
        let violations = wino_analyze::rules::lint_file(&rel, &src);
        for v in &violations {
            println!("{v}");
        }
        println!("wino-lint: 1 file as {rel}, {} violation(s)", violations.len());
        return if violations.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    let result = if files.is_empty() {
        lint::lint_workspace(&root)
    } else {
        let files: Vec<PathBuf> = files
            .into_iter()
            .map(|f| if f.is_absolute() { f } else { root.join(f) })
            .collect();
        lint::lint_paths(&root, &files)
    };
    match result {
        Ok((violations, stats)) => {
            for v in &violations {
                println!("{v}");
            }
            println!(
                "wino-lint: {} files, {} unsafe tokens, {} Relaxed tokens, {} violation(s)",
                stats.files,
                stats.unsafe_tokens,
                stats.relaxed_tokens,
                violations.len()
            );
            if violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("wino-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("wino-lint: {err}");
    }
    eprintln!(
        "usage: wino-lint [--root DIR] [--list-rules] [--as-path REL FILE] [FILE...]"
    );
    ExitCode::from(2)
}
