//! `wino-model` — deterministic model checker for the `wino-sched`
//! synchronisation substrate. Runs every scenario in
//! `wino_analyze::model::scenarios::all()` under bounded-exhaustive DFS
//! plus a seeded-random sweep, and verifies that (a) every shipped
//! algorithm holds its invariant across all explored interleavings and
//! (b) both re-injected PR-1 bugs are caught.
//!
//! Usage:
//!   wino-model [--execs N] [--random N] [--seed S] [--min-interleavings N]
//!
//! Exit status: 0 iff every expectation held.

use std::process::ExitCode;
use std::time::Instant;

use wino_analyze::model::{scenarios, Config};

fn main() -> ExitCode {
    let mut max_execs: u64 = 20_000;
    let mut random_execs: u64 = 2_000;
    let mut seed: u64 = 0x5EED;
    let mut min_interleavings: u64 = 0;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = |name: &str| -> Option<u64> {
            match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => Some(v),
                None => {
                    eprintln!("wino-model: {name} needs an integer");
                    None
                }
            }
        };
        match a.as_str() {
            "--execs" => match take("--execs") {
                Some(v) => max_execs = v,
                None => return ExitCode::from(2),
            },
            "--random" => match take("--random") {
                Some(v) => random_execs = v,
                None => return ExitCode::from(2),
            },
            "--seed" => match take("--seed") {
                Some(v) => seed = v,
                None => return ExitCode::from(2),
            },
            "--min-interleavings" => match take("--min-interleavings") {
                Some(v) => min_interleavings = v,
                None => return ExitCode::from(2),
            },
            _ => {
                eprintln!(
                    "usage: wino-model [--execs N] [--random N] [--seed S] \
                     [--min-interleavings N]"
                );
                return ExitCode::from(2);
            }
        }
    }

    let t0 = Instant::now();
    let mut failed = false;
    let mut total_execs: u64 = 0;
    for sc in scenarios::all() {
        let t = Instant::now();
        // Bounded-exhaustive first; for shipped-correct scenarios also do
        // a seeded-random sweep (different schedules once the DFS bound
        // truncates the tree).
        let ex = (sc.run)(&Config::exhaustive(max_execs));
        total_execs += ex.executions;
        let mut verdicts = vec![report_line("dfs", &ex)];
        let mut violated = !ex.ok();
        if !violated && !sc.expect_violation && random_execs > 0 {
            let rn = (sc.run)(&Config::random(seed, random_execs));
            total_execs += rn.executions;
            violated = !rn.ok();
            verdicts.push(report_line("rnd", &rn));
        }
        let ok = violated == sc.expect_violation;
        if !ok {
            failed = true;
        }
        println!(
            "{} {:28} {} ({:?})",
            if ok { "PASS" } else { "FAIL" },
            sc.name,
            verdicts.join("; "),
            t.elapsed()
        );
        if !ok {
            if sc.expect_violation {
                println!("     expected the checker to find the re-injected bug, but it did not");
            } else if let Some(v) = ex.violation.as_ref() {
                println!("     violation: {}", v.message);
                println!("     schedule: {:?}", v.schedule);
            }
        }
    }
    println!(
        "wino-model: {total_execs} interleavings explored in {:?}",
        t0.elapsed()
    );
    if min_interleavings > 0 && total_execs < min_interleavings {
        eprintln!(
            "wino-model: only {total_execs} interleavings explored \
             (required >= {min_interleavings})"
        );
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn report_line(tag: &str, r: &wino_analyze::model::Report) -> String {
    let mut s = format!("{tag}: {} execs", r.executions);
    if r.complete {
        s.push_str(" (complete)");
    }
    if r.deadlocks > 0 {
        s.push_str(&format!(", {} deadlocks", r.deadlocks));
    }
    if r.budget_exceeded > 0 {
        s.push_str(", budget exceeded");
    }
    if !r.ok() {
        s.push_str(", VIOLATION");
    }
    s
}
