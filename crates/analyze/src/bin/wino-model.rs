//! `wino-model` — deterministic model checker for the `wino-sched` and
//! `wino-serve` synchronisation substrate. Runs scenarios from
//! `wino_analyze::model::scenarios::all()` under bounded-exhaustive DFS,
//! DPOR, and a seeded-random sweep, and verifies that (a) every shipped
//! algorithm holds its invariant across all explored interleavings,
//! (b) every re-injected bug is caught, and (c) DPOR never explores more
//! interleavings than plain DFS.
//!
//! Usage:
//!   wino-model [--execs N] [--random N] [--seed S] [--min-interleavings N]
//!              [--scenario NAME]... [--list] [--json]
//!
//! `--scenario` may repeat; a scenario is selected if its name equals the
//! argument or starts with it (`--scenario serve-` selects the serve
//! suite). `--seed` defaults to `WINO_MODEL_SEED` (else 0x5EED), mirroring
//! the `WINO_SWEEP_SEED` convention. `--json` emits one machine-readable
//! verdict object per line (consumed by `scripts/analyze.sh`) instead of
//! the human report.
//!
//! Exit status: 0 iff every expectation held.

use std::process::ExitCode;
use std::time::Instant;

use wino_analyze::model::{scenarios, Config};

fn main() -> ExitCode {
    let mut max_execs: u64 = 20_000;
    let mut random_execs: u64 = 2_000;
    let mut seed: u64 = std::env::var("WINO_MODEL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED);
    let mut min_interleavings: u64 = 0;
    let mut filters: Vec<String> = Vec::new();
    let mut list = false;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = |name: &str| -> Option<u64> {
            match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => Some(v),
                None => {
                    eprintln!("wino-model: {name} needs an integer");
                    None
                }
            }
        };
        match a.as_str() {
            "--execs" => match take("--execs") {
                Some(v) => max_execs = v,
                None => return ExitCode::from(2),
            },
            "--random" => match take("--random") {
                Some(v) => random_execs = v,
                None => return ExitCode::from(2),
            },
            "--seed" => match take("--seed") {
                Some(v) => seed = v,
                None => return ExitCode::from(2),
            },
            "--min-interleavings" => match take("--min-interleavings") {
                Some(v) => min_interleavings = v,
                None => return ExitCode::from(2),
            },
            "--scenario" => match args.next() {
                Some(v) => filters.push(v),
                None => {
                    eprintln!("wino-model: --scenario needs a name");
                    return ExitCode::from(2);
                }
            },
            "--list" => list = true,
            "--json" => json = true,
            _ => {
                eprintln!(
                    "usage: wino-model [--execs N] [--random N] [--seed S] \
                     [--min-interleavings N] [--scenario NAME]... [--list] [--json]"
                );
                return ExitCode::from(2);
            }
        }
    }

    let selected: Vec<_> = scenarios::all()
        .into_iter()
        .filter(|sc| {
            filters.is_empty()
                || filters.iter().any(|f| sc.name == f.as_str() || sc.name.starts_with(f.as_str()))
        })
        .collect();
    if list {
        for sc in &selected {
            println!(
                "{:28} {}",
                sc.name,
                if sc.expect_violation { "expect-violation" } else { "expect-clean" }
            );
        }
        return ExitCode::SUCCESS;
    }
    if selected.is_empty() {
        eprintln!("wino-model: no scenario matches {filters:?} (try --list)");
        return ExitCode::from(2);
    }

    let t0 = Instant::now();
    let mut failed = false;
    let mut total_execs: u64 = 0;
    for sc in &selected {
        let t = Instant::now();
        // Bounded-exhaustive DFS, then DPOR under the same bound (the
        // reduction must agree on the verdict and never explore more);
        // for shipped-correct scenarios also a seeded-random sweep
        // (different schedules once the DFS bound truncates the tree).
        let dfs = (sc.run)(&Config::exhaustive(max_execs));
        let dpor = (sc.run)(&Config::dpor(max_execs));
        total_execs += dfs.executions + dpor.executions;
        let mut verdicts = vec![report_line("dfs", &dfs), report_line("dpor", &dpor)];
        let dfs_violated = !dfs.ok();
        let dpor_violated = !dpor.ok();
        let mut why = Vec::new();
        if dfs_violated != sc.expect_violation {
            why.push("dfs verdict");
        }
        if dpor_violated != sc.expect_violation {
            why.push("dpor verdict");
        }
        // DPOR ≤ DFS: only meaningful when both ran the invariant to the
        // end — a violation stops exploration at an order-dependent point.
        if !sc.expect_violation && dpor.executions > dfs.executions {
            why.push("dpor explored more than dfs");
        }
        let mut rnd_execs = 0;
        if !sc.expect_violation && !dfs_violated && random_execs > 0 {
            let rn = (sc.run)(&Config::random(seed, random_execs));
            total_execs += rn.executions;
            rnd_execs = rn.executions;
            if !rn.ok() {
                why.push("random sweep verdict");
            }
            verdicts.push(report_line("rnd", &rn));
        }
        let ok = why.is_empty();
        if !ok {
            failed = true;
        }
        if json {
            println!(
                "{{\"scenario\":\"{}\",\"ok\":{},\"expect_violation\":{},\"dfs_execs\":{},\
                 \"dfs_complete\":{},\"dpor_execs\":{},\"dpor_complete\":{},\
                 \"random_execs\":{},\"why\":\"{}\"}}",
                sc.name,
                ok,
                sc.expect_violation,
                dfs.executions,
                dfs.complete,
                dpor.executions,
                dpor.complete,
                rnd_execs,
                why.join("; "),
            );
            continue;
        }
        println!(
            "{} {:28} {} ({:?})",
            if ok { "PASS" } else { "FAIL" },
            sc.name,
            verdicts.join("; "),
            t.elapsed()
        );
        if !ok {
            println!("     failed checks: {}", why.join("; "));
            if sc.expect_violation {
                println!("     expected the checker to find the re-injected bug, but it did not");
            } else if let Some(v) = dfs.violation.as_ref().or(dpor.violation.as_ref()) {
                println!("     violation: {}", v.message);
                println!("     schedule: {:?}", v.schedule);
            }
        }
    }
    if min_interleavings > 0 && total_execs < min_interleavings {
        eprintln!(
            "wino-model: only {total_execs} interleavings explored \
             (required >= {min_interleavings})"
        );
        failed = true;
    }
    if json {
        println!(
            "{{\"summary\":true,\"scenarios\":{},\"failed\":{},\"total_interleavings\":{},\
             \"seed\":{}}}",
            selected.len(),
            failed,
            total_execs,
            seed,
        );
    } else {
        println!(
            "wino-model: {total_execs} interleavings explored in {:?}",
            t0.elapsed()
        );
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn report_line(tag: &str, r: &wino_analyze::model::Report) -> String {
    let mut s = format!("{tag}: {} execs", r.executions);
    if r.complete {
        s.push_str(" (complete)");
    }
    if r.deadlocks > 0 {
        s.push_str(&format!(", {} deadlocks", r.deadlocks));
    }
    if r.budget_exceeded > 0 {
        s.push_str(", budget exceeded");
    }
    if !r.ok() {
        s.push_str(", VIOLATION");
    }
    s
}
