//! Seeded violation fixture for `wino-lint` — NOT compiled into any
//! crate. Each block below seeds exactly one violation; the decoys at the
//! bottom must not fire. `crates/analyze/src/lint.rs` asserts the exact
//! violation count, and `scripts/analyze.sh` checks the binary exits
//! non-zero on this file.

// seed 1: bare unsafe block (unsafe-needs-safety)
fn seed_unsafe() {
    let p: *const u32 = std::ptr::null();
    let _ = unsafe { *p };
}

// seed 2: bare unsafe fn (unsafe-needs-safety)
unsafe fn seed_unsafe_fn() {}

// seed 3: bare Relaxed (relaxed-needs-ordering, when linted as crates/sched)
fn seed_relaxed(a: &std::sync::atomic::AtomicUsize) {
    use std::sync::atomic::Ordering;
    a.store(0, Ordering::Relaxed);
}

// seed 4: static mut (no-static-mut)
static mut SEED_GLOBAL: u32 = 0;

// seed 5: transmute outside simd/jit (no-transmute-outside-simd-jit)
fn seed_transmute() -> f32 {
    // SAFETY: same size and alignment (annotated so only the transmute rule fires)
    unsafe { std::mem::transmute::<u32, f32>(0x3f80_0000) }
}

// seed 6: allow without rationale (allow-needs-rationale)

#[allow(dead_code)]
fn seed_allow() {}

// seed 7: bare MXCSR inline asm (unsafe-needs-safety) — the FP-environment
// mutation idiom from `crates/simd/src/denormals.rs`, which must never
// appear without a SAFETY argument (it changes rounding/denormal behaviour
// for the whole calling thread).
fn seed_mxcsr(csr: u32) {
    unsafe { std::arch::asm!("ldmxcsr [{}]", in(reg) &csr) }
}

// seed 8: drop guard with an early return before the state write
// (drop-guard-protocol)

// PROTOCOL: drop-guard
struct SeedGuard {
    state: std::sync::atomic::AtomicUsize,
    armed: bool,
}
impl Drop for SeedGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        self.state.store(1, std::sync::atomic::Ordering::Release);
    }
}

// seed 9: tagged guard type with no Drop impl at all (drop-guard-protocol)

// PROTOCOL: drop-guard
struct SeedLeakyGuard {
    state: std::sync::atomic::AtomicUsize,
}

// seed 10: blocking call while a spin-lock guard is live
// (no-blocking-under-lock, when linted as crates/sched or crates/serve)
fn seed_block_under_lock(q: &SomeQueue) {
    let _g = q.acquire();
    let _ = q.take_blocking();
}

// seed 11: raw infallible allocation in a memory-accounted crate
// (alloc-needs-accounting, when linted as crates/core — out of scope under
// the crates/sched lint above, so it adds nothing to that count)
fn seed_raw_alloc(len: usize) -> AlignedVec {
    AlignedVec::zeroed(len)
}

// seed 12: first-touch seam call without accounting rationale
// (alloc-needs-accounting, when linted as crates/core)
fn seed_first_touch(len: usize, exec: &dyn Executor) -> AlignedVec {
    wino_tensor::zeroed_first_touch(len, exec)
}

// ---- decoys: none of these may fire ----

fn decoy_fallible_alloc(len: usize) -> Result<AlignedVec, AllocError> {
    AlignedVec::try_zeroed(len)
}

fn decoy_annotated_alloc(len: usize) -> AlignedVec {
    // ALLOC: fixture decoy — the rationale comment is the escape hatch.
    AlignedVec::zeroed(len)
}

fn decoy_other_zeroed(m: &Mask) -> Mask {
    // Unqualified or differently-typed `zeroed` is not an allocation seam.
    Mask::zeroed(3)
}

// PROTOCOL: drop-guard
struct DecoyGuard {
    state: std::sync::atomic::AtomicUsize,
}
impl Drop for DecoyGuard {
    fn drop(&mut self) {
        // The state write dominates every exit: straight-line, first.
        self.state.store(1, std::sync::atomic::Ordering::Release);
    }
}

/// Decoy: mentions the PROTOCOL: drop-guard idiom in prose — a comment
/// that does not *start* with the tag is not a tag.
fn decoy_drop_guard_prose() {}

fn decoy_lock_scoped(q: &SomeQueue) {
    {
        let _g = q.acquire();
        q.len();
    }
    // Guard released with its block: blocking here is fine.
    let _ = q.take_blocking();
}

fn decoy_blocking_justified(q: &SomeQueue) {
    let _g = q.acquire();
    // BLOCKING: bounded by the batch-age watchdog; single consumer.
    let _ = q.take_timeout(std::time::Duration::from_millis(1));
}

fn decoy_annotated() {
    let p: *const u32 = std::ptr::null();
    // SAFETY: annotated unsafe is fine (null deref never executed; decoy only)
    let _ = unsafe { *p };
}

fn decoy_strings_and_idents() {
    let _ = "unsafe { static mut } transmute Ordering::Relaxed";
    let _ = r#"more unsafe text"#;
    /* block comment mentioning unsafe and /* nested */ transmute */
    let unsafe_like_ident = 1; // mentions nothing
    let _ = unsafe_like_ident;
}

#[allow(clippy::needless_return)] // decoy: rationale present, must not fire
fn decoy_allow_with_reason() -> u32 {
    return 1;
}
