//! End-to-end regression gate: the model checker must (a) pass the
//! shipped synchronisation algorithms and (b) re-find both concurrency
//! bugs that PR 1 fixed, using only the public `wino_analyze` API.

use wino_analyze::model::{reinject, scenarios, Config};

/// PR-1 bug #1: unconditional poison vs. plain generation store. The
/// checker must produce a schedule where one participant succeeds while
/// another reports Timeout for the same generation.
#[test]
fn checker_refinds_pr1_poison_generation_race() {
    let report = reinject::racy_poison_race(&Config::exhaustive(100_000));
    let v = report
        .violation
        .expect("the re-injected poison/generation race went undetected");
    assert!(v.message.contains("mixed"), "wrong failure mode: {}", v.message);
    assert!(!v.schedule.is_empty(), "violating schedule must be replayable");
}

/// PR-1 bug #2: the publisher freeing the borrowed job closure on the
/// end-barrier timeout path without draining the exit latch. The checker
/// must produce a schedule where the worker reads freed memory.
#[test]
fn checker_refinds_pr1_end_barrier_use_after_free() {
    let report = reinject::leaky_handoff(&Config::exhaustive(100_000));
    let v = report
        .violation
        .expect("the re-injected end-barrier use-after-free went undetected");
    assert!(v.message.contains("freed"), "wrong failure mode: {}", v.message);
}

/// The same invariants hold on the *fixed* (shipped) algorithms across
/// bounded-exhaustive and seeded-random exploration.
#[test]
fn shipped_algorithms_pass_the_same_checks() {
    let report = scenarios::barrier_consistency(&Config::exhaustive(100_000));
    assert!(report.ok(), "shipped barrier: {:?}", report.violation);
    assert!(report.executions > 1_000, "exploration suspiciously small: {report:?}");

    let report = scenarios::job_handoff(&Config::random(7, 4_000), scenarios::sound_publisher);
    assert!(report.ok(), "shipped handoff: {:?}", report.violation);
}
