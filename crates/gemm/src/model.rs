//! The blocking-parameter model (§4.3.2, Eq. 11).
//!
//! Each micro-kernel invocation `X̂ = βX̂ + Û·V̂` performs
//! `2·n_blk·C_blk·C'_blk` FLOPs while moving `n_blk·C_blk` floats of `Û`,
//! `(β+1)·n_blk·C'_blk` floats of `X̂` (load + store when β = 1) — `V̂`
//! stays in L2. The compute-to-memory ratio is therefore
//!
//! ```text
//!   2·C_blk·C'_blk / ((β+1)·C'_blk + C_blk)     (Eq. 11)
//! ```
//!
//! and must exceed the machine's FLOP-to-float-bandwidth ratio (≈45 for the
//! Xeon Phi 7210: 4.5 TFLOPS / 100 GFloat/s) or the kernel is memory-bound.
//! The constraints on the search space come from §4.3.2 verbatim.

/// A choice of the three blocking parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BlockShape {
    /// Register rows of `Û`/`X̂` (6..=30).
    pub n_blk: usize,
    /// Reduction block (`C_blk`), multiple of 16.
    pub c_blk: usize,
    /// Output-column block (`C'_blk`), multiple of 16.
    pub cp_blk: usize,
}

/// The Xeon Phi 7210's compute-to-memory ratio from the paper:
/// ≈4.5 TFLOPS / (400 GB/s ÷ 4 B) = 45 FLOPs per float moved.
pub const KNL_MACHINE_RATIO: f64 = 45.0;

/// Hard bound on `C_blk · C'_blk` (L2 budget for `V̂`): `128²` floats.
pub const MAX_V_ELEMS: usize = 128 * 128;

/// Per-core L2 budget (bytes) for one *superblock* of the pipelined
/// schedule: the slice of `Û`, `X̂` and tile-major `I'` a single task
/// produces, consumes and scatters between two barriers. Half of the
/// paper's 1 MB-per-tile L2 (shared by 2 cores on KNL), matching the
/// budget that [`MAX_V_ELEMS`] reserves for `V̂`.
pub const SUPERBLOCK_L2_BYTES: usize = 512 * 1024;

impl BlockShape {
    /// Eq. 11: FLOPs per float moved for one micro-kernel call.
    pub fn compute_to_memory_ratio(&self, beta: bool) -> f64 {
        let b = if beta { 1.0 } else { 0.0 };
        let (cb, cpb) = (self.c_blk as f64, self.cp_blk as f64);
        2.0 * cb * cpb / ((b + 1.0) * cpb + cb)
    }

    /// Bytes of L2 occupied by one `V̂` block.
    pub fn v_bytes(&self) -> usize {
        self.c_blk * self.cp_blk * 4
    }

    /// Whether the shape is compute-bound on a machine with the given
    /// FLOP/float ratio (steady state: β = 1).
    pub fn is_compute_bound(&self, machine_ratio: f64) -> bool {
        self.compute_to_memory_ratio(true) >= machine_ratio
    }

    /// Rows of padding introduced when multiplying `rows` panel rows.
    pub fn row_padding(&self, rows: usize) -> usize {
        let rem = rows % self.n_blk;
        if rem == 0 {
            0
        } else {
            self.n_blk - rem
        }
    }

    /// Working-set bytes of one pipelined superblock spanning `row_blocks`
    /// consecutive `n_blk`-row panels: for every one of the `t_vol` tile
    /// matrices the superblock's rows of `Û` (`C` floats each), `X̂` and the
    /// tile-major `I'` (`C'` floats each), plus one L2-resident `V̂` block.
    pub fn superblock_bytes(&self, row_blocks: usize, t_vol: usize, c: usize, cp: usize) -> usize {
        let rows = row_blocks * self.n_blk;
        4 * (t_vol * rows * (c + 2 * cp) + self.c_blk * self.cp_blk)
    }

    /// Largest number of consecutive `n_blk`-row panels whose pipelined
    /// working set ([`BlockShape::superblock_bytes`]) fits in `budget`
    /// bytes — the superblock footprint constraint of the `Pipelined`
    /// schedule. Always at least 1: a layer whose single row-block
    /// overflows the budget still has to execute.
    pub fn superblock_row_blocks(&self, t_vol: usize, c: usize, cp: usize, budget: usize) -> usize {
        let per_block = 4 * t_vol * self.n_blk * (c + 2 * cp);
        let v = self.v_bytes();
        if per_block == 0 || v >= budget {
            return 1;
        }
        ((budget - v) / per_block).max(1)
    }
}

/// Enumerate every legal `(n_blk, C_blk, C'_blk)` for a layer with `c`
/// input channels, `cp` output channels and `rows` panel rows, applying
/// the paper's constraints:
///
/// * `6 ≤ n_blk ≤ 30` (FMA-latency floor, register ceiling) — relaxed to
///   `rows` when the panel is shorter than 6 rows;
/// * `C_blk | c`, `C'_blk | cp`, both multiples of 16, each in `[32, 512]`
///   (relaxed to 16 when the channel count itself is 16);
/// * `C_blk · C'_blk ≤ 128²`.
pub fn candidate_shapes(c: usize, cp: usize, rows: usize) -> Vec<BlockShape> {
    assert!(c.is_multiple_of(16) && cp.is_multiple_of(16), "channels must be multiples of 16");
    let channel_blocks = |n: usize| -> Vec<usize> {
        let lo = if n < 32 { 16 } else { 32 };
        (1..=n)
            .filter(|&b| n.is_multiple_of(b) && b % 16 == 0 && b >= lo && b <= 512)
            .collect()
    };
    let nb_lo = 6.min(rows.max(1));
    let nb_hi = 30.min(rows.max(1)).max(nb_lo);
    let mut out = Vec::new();
    for &cb in &channel_blocks(c) {
        for &cpb in &channel_blocks(cp) {
            if cb * cpb > MAX_V_ELEMS {
                continue;
            }
            for nb in nb_lo..=nb_hi {
                out.push(BlockShape { n_blk: nb, c_blk: cb, cp_blk: cpb });
            }
        }
    }
    out
}

/// Model-guided default (no timing): the candidate maximising the Eq. 11
/// ratio, tie-broken by squarer blocks (ratio ties are common — e.g.
/// 256×64 and 128×128 both score 85.33 — and square `V̂` blocks amortise
/// better across both panel directions), then least row padding, then
/// larger `n_blk`. The empirical autotuner (`crate::tune`) refines this.
pub fn default_shape(c: usize, cp: usize, rows: usize) -> BlockShape {
    let cands = candidate_shapes(c, cp, rows);
    assert!(!cands.is_empty(), "no legal blocking for C={c}, C'={cp}");
    let squareness = |s: &BlockShape| s.c_blk.abs_diff(s.cp_blk);
    *cands
        .iter()
        .max_by(|a, b| {
            let ra = a.compute_to_memory_ratio(true);
            let rb = b.compute_to_memory_ratio(true);
            ra.partial_cmp(&rb)
                .unwrap()
                .then(squareness(b).cmp(&squareness(a)))
                .then((b.row_padding(rows)).cmp(&a.row_padding(rows)))
                .then(a.n_blk.cmp(&b.n_blk))
        })
        .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq11_reproduces_paper_numbers() {
        // §4.3.2: C_blk = C'_blk = 128, β = 1 → 85.33; 64/64 → 42.67.
        let s = BlockShape { n_blk: 8, c_blk: 128, cp_blk: 128 };
        assert!((s.compute_to_memory_ratio(true) - 85.33).abs() < 0.01);
        let s = BlockShape { n_blk: 8, c_blk: 64, cp_blk: 64 };
        assert!((s.compute_to_memory_ratio(true) - 42.67).abs() < 0.01);
    }

    #[test]
    fn compute_bound_classification() {
        let big = BlockShape { n_blk: 8, c_blk: 128, cp_blk: 128 };
        assert!(big.is_compute_bound(KNL_MACHINE_RATIO));
        let small = BlockShape { n_blk: 8, c_blk: 64, cp_blk: 64 };
        assert!(!small.is_compute_bound(KNL_MACHINE_RATIO));
    }

    #[test]
    fn v_fits_l2_budget() {
        // 128×128 V̂ needs 64 KB, within the paper's 1 MB-per-2-cores L2.
        let s = BlockShape { n_blk: 8, c_blk: 128, cp_blk: 128 };
        assert_eq!(s.v_bytes(), 64 * 1024);
    }

    #[test]
    fn candidates_respect_constraints() {
        for (c, cp) in [(64, 64), (128, 256), (512, 512), (16, 32)] {
            let cands = candidate_shapes(c, cp, 1000);
            assert!(!cands.is_empty(), "C={c} C'={cp}");
            for s in cands {
                assert!(s.n_blk >= 6 && s.n_blk <= 30);
                assert_eq!(c % s.c_blk, 0);
                assert_eq!(cp % s.cp_blk, 0);
                assert_eq!(s.c_blk % 16, 0);
                assert_eq!(s.cp_blk % 16, 0);
                assert!(s.c_blk * s.cp_blk <= MAX_V_ELEMS);
                assert!(s.c_blk <= 512 && s.cp_blk <= 512);
            }
        }
    }

    #[test]
    fn small_channel_counts_relax_floor() {
        // C = 16 cannot reach the preferred 32 floor.
        let cands = candidate_shapes(16, 16, 100);
        assert!(cands.iter().all(|s| s.c_blk == 16 && s.cp_blk == 16));
        assert!(!cands.is_empty());
    }

    #[test]
    fn short_panels_relax_n_blk() {
        let cands = candidate_shapes(64, 64, 3);
        assert!(cands.iter().all(|s| s.n_blk <= 3));
        assert!(!cands.is_empty());
    }

    #[test]
    fn default_shape_prefers_high_ratio() {
        // With C = C' = 512, the ratio-maximal legal choice is 128×128.
        let s = default_shape(512, 512, 960);
        assert_eq!((s.c_blk, s.cp_blk), (128, 128));
        assert!(s.n_blk >= 6);
    }

    #[test]
    fn row_padding() {
        let s = BlockShape { n_blk: 8, c_blk: 64, cp_blk: 64 };
        assert_eq!(s.row_padding(64), 0);
        assert_eq!(s.row_padding(65), 7);
        assert_eq!(s.row_padding(63), 1);
    }

    #[test]
    fn superblock_bytes_grows_linearly_in_row_blocks() {
        let s = BlockShape { n_blk: 8, c_blk: 64, cp_blk: 64 };
        let (t_vol, c, cp) = (36, 64, 64);
        let one = s.superblock_bytes(1, t_vol, c, cp);
        let two = s.superblock_bytes(2, t_vol, c, cp);
        assert!(two > one);
        // Doubling the row blocks adds exactly one more panel slice; the
        // V̂ term is shared.
        assert_eq!(two - one, 4 * t_vol * s.n_blk * (c + 2 * cp));
    }

    #[test]
    fn superblock_row_blocks_respects_budget() {
        let s = BlockShape { n_blk: 8, c_blk: 64, cp_blk: 64 };
        let (t_vol, c, cp) = (36, 64, 64);
        let k = s.superblock_row_blocks(t_vol, c, cp, SUPERBLOCK_L2_BYTES);
        assert!(k >= 1);
        assert!(s.superblock_bytes(k, t_vol, c, cp) <= SUPERBLOCK_L2_BYTES);
        // One more row block would overflow the budget.
        assert!(s.superblock_bytes(k + 1, t_vol, c, cp) > SUPERBLOCK_L2_BYTES);
    }

    #[test]
    fn superblock_row_blocks_floors_at_one() {
        // A budget too small for even one row block (or the V̂ block
        // alone) still yields 1: the layer must execute regardless.
        let s = BlockShape { n_blk: 30, c_blk: 128, cp_blk: 128 };
        assert_eq!(s.superblock_row_blocks(216, 512, 512, 1024), 1);
        assert_eq!(s.superblock_row_blocks(216, 512, 512, s.v_bytes()), 1);
    }

    #[test]
    fn superblock_shrinks_with_larger_tiles() {
        // Bigger tile volume (F(4,3) 3-D vs 2-D) → fewer resident blocks.
        let s = BlockShape { n_blk: 8, c_blk: 64, cp_blk: 64 };
        let k2d = s.superblock_row_blocks(36, 64, 64, SUPERBLOCK_L2_BYTES);
        let k3d = s.superblock_row_blocks(216, 64, 64, SUPERBLOCK_L2_BYTES);
        assert!(k3d <= k2d);
    }
}
