//! Empirical block-size selection (§4.3.2).
//!
//! "Being so delicately inter-dependent, we take the strategy of FFTW and
//! determine the values of n_blk, C_blk and C'_blk … empirically for each
//! particular layer shape." — the tuner times the real batched GEMM for
//! candidate shapes (ranked by the Eq. 11 model so the search stays small)
//! and records the winner in the [`crate::Wisdom`] store.

use std::time::Instant;

use wino_sched::Executor;
use wino_tensor::BlockedMatrices;

use crate::blocked::batched_gemm_parallel;
use crate::model::{candidate_shapes, default_shape, BlockShape};
use crate::wisdom::Wisdom;

/// Search configuration.
#[derive(Clone, Copy, Debug)]
pub struct TuneConfig {
    /// Timed repetitions per candidate (best-of).
    pub reps: usize,
    /// Candidates tried (top of the model ranking).
    pub max_candidates: usize,
}

impl Default for TuneConfig {
    fn default() -> Self {
        TuneConfig { reps: 3, max_candidates: 12 }
    }
}

/// Result of a tuning run.
#[derive(Clone, Copy, Debug)]
pub struct TuneResult {
    pub shape: BlockShape,
    /// Best observed throughput for the winning shape.
    pub gflops: f64,
}

/// Time one shape: seconds for the full batched product (best of `reps`).
pub fn time_shape(
    t_count: usize,
    rows: usize,
    c: usize,
    cp: usize,
    shape: BlockShape,
    exec: &dyn Executor,
    reps: usize,
) -> f64 {
    let mut u = BlockedMatrices::new(t_count, rows, c, shape.n_blk, shape.c_blk);
    let mut v = BlockedMatrices::new(t_count, c, cp, shape.c_blk, shape.cp_blk);
    let mut x = BlockedMatrices::new(t_count, rows, cp, shape.n_blk, shape.cp_blk);
    // Deterministic non-trivial contents.
    for (i, f) in u.as_mut_slice().iter_mut().enumerate() {
        *f = ((i * 2654435761) >> 16 & 0xff) as f32 / 255.0 - 0.5;
    }
    for (i, f) in v.as_mut_slice().iter_mut().enumerate() {
        *f = ((i * 0x9E3779B9) >> 16 & 0xff) as f32 / 255.0 - 0.5;
    }
    // Warm-up. Timing a degraded pool would be meaningless, so execution
    // failures abort the tuning run.
    batched_gemm_parallel(&u, &v, &mut x, exec).expect("tuning GEMM failed");
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        batched_gemm_parallel(&u, &v, &mut x, exec).expect("tuning GEMM failed");
        best = best.min(t0.elapsed().as_secs_f64());
    }
    std::hint::black_box(x.as_slice()[0]);
    best
}

fn problem_flops(t_count: usize, rows: usize, c: usize, cp: usize) -> f64 {
    2.0 * t_count as f64 * rows as f64 * c as f64 * cp as f64
}

/// Pick the fastest blocking for a `T × (rows × c · c × cp)` batched
/// product on `exec`.
pub fn autotune(
    t_count: usize,
    rows: usize,
    c: usize,
    cp: usize,
    exec: &dyn Executor,
    cfg: TuneConfig,
) -> TuneResult {
    let mut cands = candidate_shapes(c, cp, rows);
    // Rank by the model (steady-state ratio), then by padding waste.
    cands.sort_by(|a, b| {
        b.compute_to_memory_ratio(true)
            .partial_cmp(&a.compute_to_memory_ratio(true))
            .unwrap()
            .then(a.row_padding(rows).cmp(&b.row_padding(rows)))
    });
    // Keep shape diversity: skip near-duplicate (c_blk, cp_blk) pairs with
    // adjacent n_blk so the budget covers distinct block geometries.
    let mut pruned: Vec<BlockShape> = Vec::new();
    for s in cands {
        if pruned.len() >= cfg.max_candidates {
            break;
        }
        if pruned
            .iter()
            .any(|p| p.c_blk == s.c_blk && p.cp_blk == s.cp_blk && p.n_blk.abs_diff(s.n_blk) < 4)
        {
            continue;
        }
        pruned.push(s);
    }
    let fallback = default_shape(c, cp, rows);
    if !pruned.contains(&fallback) {
        pruned.push(fallback);
    }

    let flops = problem_flops(t_count, rows, c, cp);
    let mut best = TuneResult { shape: fallback, gflops: 0.0 };
    for shape in pruned {
        let secs = time_shape(t_count, rows, c, cp, shape, exec, cfg.reps);
        let gflops = flops / secs / 1e9;
        if gflops > best.gflops {
            best = TuneResult { shape, gflops };
        }
    }
    best
}

/// [`autotune`] with wisdom caching: returns the remembered shape when the
/// problem was tuned before, otherwise tunes and records.
pub fn autotune_with_wisdom(
    wisdom: &Wisdom,
    t_count: usize,
    rows: usize,
    c: usize,
    cp: usize,
    exec: &dyn Executor,
    cfg: TuneConfig,
) -> BlockShape {
    let key = Wisdom::key(rows, c, cp, t_count, exec.threads());
    if let Some(shape) = wisdom.get(&key) {
        return shape;
    }
    let result = autotune(t_count, rows, c, cp, exec, cfg);
    wisdom.insert(key, result.shape);
    result.shape
}

/// Superblock extent (row blocks per superblock) for the pipelined
/// schedule: the wisdom hint when this problem was seen before, otherwise
/// the [`crate::model::SUPERBLOCK_L2_BYTES`] footprint model — whose
/// answer is recorded alongside the block shape so a saved wisdom file
/// pins the whole pipeline geometry, not just the GEMM blocking.
pub fn superblock_with_wisdom(
    wisdom: &Wisdom,
    t_count: usize,
    rows: usize,
    c: usize,
    cp: usize,
    threads: usize,
    shape: BlockShape,
) -> usize {
    let key = Wisdom::key(rows, c, cp, t_count, threads);
    if let Some(sb) = wisdom.superblock_hint(&key) {
        return sb;
    }
    let sb = shape.superblock_row_blocks(t_count, c, cp, crate::model::SUPERBLOCK_L2_BYTES);
    // Keep a previously tuned shape if the entry already exists.
    let shape = wisdom.get(&key).unwrap_or(shape);
    wisdom.insert_with_superblock(key, shape, sb);
    sb
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_sched::SerialExecutor;

    #[test]
    fn autotune_returns_legal_shape() {
        let cfg = TuneConfig { reps: 1, max_candidates: 4 };
        let r = autotune(4, 64, 64, 64, &SerialExecutor, cfg);
        assert!(r.shape.n_blk >= 1 && r.shape.n_blk <= 30);
        assert_eq!(64 % r.shape.c_blk, 0);
        assert_eq!(64 % r.shape.cp_blk, 0);
        assert!(r.gflops > 0.0);
    }

    #[test]
    fn wisdom_caches_result() {
        let w = Wisdom::new();
        let cfg = TuneConfig { reps: 1, max_candidates: 2 };
        let s1 = autotune_with_wisdom(&w, 2, 32, 32, 32, &SerialExecutor, cfg);
        assert_eq!(w.len(), 1);
        let s2 = autotune_with_wisdom(&w, 2, 32, 32, 32, &SerialExecutor, cfg);
        assert_eq!(s1, s2);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn superblock_hint_is_remembered_and_recorded() {
        let w = Wisdom::new();
        let shape = BlockShape { n_blk: 8, c_blk: 32, cp_blk: 32 };
        // First ask: model answer, recorded as a hint.
        let sb = superblock_with_wisdom(&w, 8, 100, 32, 32, 4, shape);
        assert!(sb >= 1);
        let key = Wisdom::key(100, 32, 32, 8, 4);
        assert_eq!(w.superblock_hint(&key), Some(sb));
        // A pre-seeded hint wins over the model.
        let key2 = Wisdom::key(50, 32, 32, 8, 4);
        w.insert_with_superblock(key2, shape, 7);
        assert_eq!(superblock_with_wisdom(&w, 8, 50, 32, 32, 4, shape), 7);
    }

    #[test]
    fn time_shape_is_positive() {
        let s = BlockShape { n_blk: 8, c_blk: 16, cp_blk: 16 };
        let secs = time_shape(1, 16, 16, 16, s, &SerialExecutor, 1);
        assert!(secs > 0.0 && secs.is_finite());
    }
}
