//! A deliberately *generic* batched GEMM — the stand-in for the library
//! kernels (MKL / LIBXSMM) the paper benchmarks against in Fig. 6.
//!
//! It is competent — cache-blocked over the same block-panel layout, inner
//! loops written so LLVM auto-vectorises the AXPY — but it is not
//! specialised for the problem: no per-size monomorphisation, no register
//! tiling of `n_blk` accumulator rows (partial sums round-trip through the
//! `X̂` block), no software prefetch, no streaming scatter. The gap between
//! this and `crate::blocked` is the quantity Fig. 6 measures.

use wino_tensor::BlockedMatrices;

/// Batched product `X_t = U_t · V_t` using generic (non-specialised)
/// kernels. Same shape contract as [`crate::batched_gemm`].
pub fn batched_gemm_generic(u: &BlockedMatrices, v: &BlockedMatrices, x: &mut BlockedMatrices) {
    assert_eq!(u.t_count(), v.t_count());
    assert_eq!(u.t_count(), x.t_count());
    assert_eq!(u.cols(), v.rows());
    assert_eq!(u.rows(), x.rows());
    assert_eq!(v.cols(), x.cols());
    assert_eq!(u.cb(), v.rb());
    assert_eq!(u.rb(), x.rb());
    assert_eq!(v.cb(), x.cb());

    let (n_blk, c_blk, cp_blk) = (u.rb(), u.cb(), v.cb());
    let k_blocks = v.rows() / v.rb();
    let x_base = x.as_mut_ptr();
    for t in 0..u.t_count() {
        for j in 0..v.col_blocks() {
            for k in 0..k_blocks {
                for i in 0..u.row_blocks() {
                    let ub = u.block(i, k, t);
                    let vb = v.block(k, j, t);
                    let xo = x.block_offset(i, j, t);
                    // SAFETY: exclusive &mut x; block is rb·cb in bounds.
                    let xb = unsafe {
                        std::slice::from_raw_parts_mut(x_base.add(xo), n_blk * cp_blk)
                    };
                    if k == 0 {
                        xb.fill(0.0);
                    }
                    // Row-at-a-time AXPY: accumulators live in memory (the
                    // "generic" inefficiency Fig. 6 exposes).
                    for r in 0..n_blk {
                        let urow = &ub[r * c_blk..(r + 1) * c_blk];
                        let xrow = &mut xb[r * cp_blk..(r + 1) * cp_blk];
                        for (kk, &a) in urow.iter().enumerate() {
                            let vrow = &vb[kk * cp_blk..(kk + 1) * cp_blk];
                            for (xv, &vv) in xrow.iter_mut().zip(vrow) {
                                *xv += a * vv;
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocked::{batched_gemm, dense_reference};

    fn fill(m: &mut BlockedMatrices, seed: usize) {
        for t in 0..m.t_count() {
            for r in 0..m.rows() {
                for c in 0..m.cols() {
                    let h = (t * 131 + r * 31 + c * 7 + seed).wrapping_mul(0x9E3779B9);
                    m.set(t, r, c, ((h >> 20) % 512) as f32 / 256.0 - 1.0);
                }
            }
        }
    }

    #[test]
    fn generic_matches_dense_reference() {
        let (t, rows, c, cp) = (2, 20, 32, 48);
        let mut u = BlockedMatrices::new(t, rows, c, 6, 16);
        let mut v = BlockedMatrices::new(t, c, cp, 16, 16);
        let mut x = BlockedMatrices::new(t, rows, cp, 6, 16);
        fill(&mut u, 0);
        fill(&mut v, 9);
        batched_gemm_generic(&u, &v, &mut x);
        for tt in 0..t {
            let want = dense_reference(&u.to_dense(tt), &v.to_dense(tt), rows, c, cp);
            let got = x.to_dense(tt);
            for i in 0..want.len() {
                assert!((got[i] - want[i]).abs() <= 1e-3 * want[i].abs().max(1.0));
            }
        }
    }

    #[test]
    fn generic_matches_specialised() {
        let (t, rows, c, cp) = (3, 33, 64, 64);
        let mut u = BlockedMatrices::new(t, rows, c, 8, 32);
        let mut v = BlockedMatrices::new(t, c, cp, 32, 32);
        fill(&mut u, 5);
        fill(&mut v, 6);
        let mut xa = BlockedMatrices::new(t, rows, cp, 8, 32);
        let mut xb = BlockedMatrices::new(t, rows, cp, 8, 32);
        batched_gemm_generic(&u, &v, &mut xa);
        batched_gemm(&u, &v, &mut xb);
        for tt in 0..t {
            let a = xa.to_dense(tt);
            let b = xb.to_dense(tt);
            for i in 0..a.len() {
                assert!(
                    (a[i] - b[i]).abs() <= 1e-3 * b[i].abs().max(1.0),
                    "t={tt} elem {i}: {} vs {}",
                    a[i],
                    b[i]
                );
            }
        }
    }
}
