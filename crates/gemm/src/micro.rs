//! The register-blocked micro-kernel (§4.3.1).
//!
//! Computes `X̂ = β·X̂ + Û·V̂` on contiguous row-major blocks:
//!
//! * `Û`: `n_blk × C_blk` (tall-skinny panel of transformed inputs),
//! * `V̂`: `C_blk × C'_blk` (resident in L2 across many Û panels),
//! * `X̂`: `n_blk × C'_blk`.
//!
//! Register blocking follows the paper exactly: sub-matrices of `X̂` of
//! size `n_blk × S` are held in `n_blk` vector registers; the loop over the
//! `C_blk` columns of `Û` performs one scalar-broadcast FMA per register
//! with the matching row-slice of `V̂` (1 auxiliary register) plus one
//! look-ahead `V̂` load — hence `n_blk ≤ 30` with 32 architectural
//! registers. Software prefetch of upcoming `Û`/`V̂` lines is interleaved
//! with the FMAs, and the *next* panel is prefetched to L2 while storing.
//!
//! `n_blk` is a compile-time constant of each monomorphised kernel; the
//! runtime dispatcher [`microkernel`] selects among the 30 instantiations —
//! the Rust analogue of the paper's generate-on-demand JIT (the true
//! machine-code JIT lives in `wino-jit` and is verified against this).
//!
//! The `scatter` variant implements operation ⑥: on the *last* `k`-block
//! the result bypasses `X̂` and is written directly to per-row
//! destinations (the tile-major `I'` layout) — with non-temporal
//! streaming stores in the monolithic schedules (the paper credits this
//! with >20 % overall speedup), or with regular stores when the
//! superblock-pipelined schedule wants the scattered tiles to stay
//! cache-hot for the immediately following inverse transform.

// Index-based loops are the idiom throughout: most walk several
// arrays with derived offsets, where iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]
use wino_simd::{prefetch_t0, prefetch_t1, F32x16, S};

/// Maximum register rows: 32 AVX-512 registers minus 2 auxiliaries.
pub const MAX_N_BLK: usize = 30;

/// Where the kernel writes its result.
#[derive(Clone, Copy)]
pub enum Output {
    /// Store back into the contiguous `X̂` block (intermediate k-blocks).
    Block,
    /// Scatter rows: row `j` of `X̂` goes to
    /// `row_ptrs[j] + q·group_stride` for each S-wide column group `q`.
    /// A null `row_ptrs[j]` skips the row (padding rows of the final,
    /// partially filled `n_blk` panel). With `streaming` the rows are
    /// written with non-temporal stores (the monolithic ⑥ write, which
    /// bypasses the caches on its way to `I'`); without it they use
    /// regular stores so the scattered tiles stay cache-resident for an
    /// immediately following pipelined stage 3.
    Scatter {
        row_ptrs: *const *mut f32,
        group_stride: usize,
        streaming: bool,
    },
}

/// Parameters of one micro-kernel invocation.
#[derive(Clone, Copy)]
pub struct MicroArgs {
    /// `Û` block pointer (`n_blk × c_blk`, row-major).
    pub u: *const f32,
    /// `V̂` block pointer (`c_blk × cp_blk`, row-major).
    pub v: *const f32,
    /// `X̂` block pointer (`n_blk × cp_blk`, row-major). With
    /// `Output::Scatter` it is only *read* (when `beta` is set).
    pub x: *mut f32,
    /// Reduction extent (`C_blk`).
    pub c_blk: usize,
    /// Output width (`C'_blk`), a multiple of `S`.
    pub cp_blk: usize,
    /// `β`: accumulate into existing `X̂` (true) or overwrite (false).
    pub beta: bool,
    /// `Û` panel of the *next* micro-kernel call, prefetched to L2 during
    /// stores (null to disable).
    pub next_u: *const f32,
    /// `X̂` panel of the next call, prefetched to L2 (null to disable).
    pub next_x: *const f32,
    pub output: Output,
}

/// Look-ahead distance (in `V̂` rows) for L1 prefetches.
const PF_DIST: usize = 4;

// SAFETY: callers uphold the pointer-validity contract documented on
// `microkernel` (the only caller), with `NB` as `n_blk`.
#[inline(always)]
unsafe fn kernel_impl<const NB: usize>(a: &MicroArgs) {
    let qn = a.cp_blk / S;
    for q in 0..qn {
        let xq = a.x.add(q * S);
        let vq = a.v.add(q * S);
        let mut acc = [F32x16::zero(); NB];
        if a.beta {
            for j in 0..NB {
                acc[j] = F32x16::load(xq.add(j * a.cp_blk));
            }
        }
        let mut vk = F32x16::load(vq);
        for k in 0..a.c_blk {
            // Look-ahead load of the next V̂ row slice (the paper's "one
            // additional vector load to register ... for in-register
            // operations in the next iteration").
            let v_next = if k + 1 < a.c_blk {
                F32x16::load(vq.add((k + 1) * a.cp_blk))
            } else {
                vk
            };
            // Prefetch upcoming V̂ and Û lines to L1, interleaved with FMAs.
            if k + PF_DIST < a.c_blk {
                prefetch_t0(vq.add((k + PF_DIST) * a.cp_blk) as *const u8);
            }
            let uk = a.u.add(k);
            prefetch_t0(uk.add(PF_DIST) as *const u8);
            for j in 0..NB {
                acc[j] = F32x16::splat(*uk.add(j * a.c_blk)).mul_add(vk, acc[j]);
            }
            vk = v_next;
        }
        match a.output {
            Output::Block => {
                for j in 0..NB {
                    acc[j].store(xq.add(j * a.cp_blk));
                    // While storing each row, prefetch the same locations of
                    // the next panels to L2 (paper: "next two matrices to be
                    // multiplied by V̂").
                    if !a.next_u.is_null() {
                        prefetch_t1(a.next_u.add(j * a.c_blk) as *const u8);
                    }
                    if !a.next_x.is_null() {
                        prefetch_t1(a.next_x.add(j * a.cp_blk + q * S) as *const u8);
                    }
                }
            }
            Output::Scatter { row_ptrs, group_stride, streaming } => {
                for j in 0..NB {
                    let dst = *row_ptrs.add(j);
                    if !dst.is_null() {
                        if streaming {
                            acc[j].store_nt(dst.add(q * group_stride));
                        } else {
                            acc[j].store(dst.add(q * group_stride));
                        }
                    }
                    if !a.next_u.is_null() {
                        prefetch_t1(a.next_u.add(j * a.c_blk) as *const u8);
                    }
                }
            }
        }
    }
}

macro_rules! dispatch_nb {
    ($nb:expr, $args:expr, [$($n:literal),*]) => {
        match $nb {
            $( $n => kernel_impl::<$n>($args), )*
            other => panic!("n_blk = {other} out of range 1..={}", MAX_N_BLK),
        }
    };
}

/// Run the micro-kernel for `n_blk` rows (1..=30).
///
/// # Safety
/// * `a.u` must be valid for `n_blk · c_blk` reads,
/// * `a.v` for `c_blk · cp_blk` reads,
/// * `a.x` for `n_blk · cp_blk` reads/writes,
/// * `cp_blk` must be a multiple of `S` and non-zero, `c_blk ≥ 1`,
/// * with `Output::Scatter`, `row_ptrs` must hold `n_blk` pointers, each
///   null or valid for `(cp_blk/S)·group_stride` writes and 64-byte
///   aligned (streaming stores), and the scatter targets must not overlap
///   `u`/`v`/`x`.
pub unsafe fn microkernel(n_blk: usize, a: &MicroArgs) {
    debug_assert!(a.cp_blk.is_multiple_of(S) && a.cp_blk > 0);
    debug_assert!(a.c_blk >= 1);
    dispatch_nb!(
        n_blk,
        a,
        [
            1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23,
            24, 25, 26, 27, 28, 29, 30
        ]
    )
}

/// Reference implementation of the same contract (plain scalar loops) —
/// the oracle for unit, property and JIT-equivalence tests.
pub fn microkernel_reference(
    n_blk: usize,
    u: &[f32],
    v: &[f32],
    x: &mut [f32],
    c_blk: usize,
    cp_blk: usize,
    beta: bool,
) {
    assert!(u.len() >= n_blk * c_blk);
    assert!(v.len() >= c_blk * cp_blk);
    assert!(x.len() >= n_blk * cp_blk);
    for j in 0..n_blk {
        for p in 0..cp_blk {
            let mut acc = if beta { x[j * cp_blk + p] } else { 0.0 };
            for k in 0..c_blk {
                acc = u[j * c_blk + k].mul_add(v[k * cp_blk + p], acc);
            }
            x[j * cp_blk + p] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_simd::AlignedVec;

    fn filled(n: usize, seed: u32) -> AlignedVec {
        let mut v = AlignedVec::zeroed(n);
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        for x in v.iter_mut() {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            *x = ((state >> 9) as f32 / (1 << 23) as f32) - 1.0;
        }
        v
    }

    fn run_and_compare(n_blk: usize, c_blk: usize, cp_blk: usize, beta: bool) {
        let u = filled(n_blk * c_blk, 1);
        let v = filled(c_blk * cp_blk, 2);
        let x0 = filled(n_blk * cp_blk, 3);
        let mut x_simd = x0.clone();
        let mut x_ref: Vec<f32> = x0.as_slice().to_vec();

        let args = MicroArgs {
            u: u.as_ptr(),
            v: v.as_ptr(),
            x: x_simd.as_mut_ptr(),
            c_blk,
            cp_blk,
            beta,
            next_u: std::ptr::null(),
            next_x: std::ptr::null(),
            output: Output::Block,
        };
        // SAFETY: all buffers are sized to the block shape above.
        unsafe { microkernel(n_blk, &args) };
        microkernel_reference(n_blk, &u, &v, &mut x_ref, c_blk, cp_blk, beta);

        for i in 0..n_blk * cp_blk {
            let (a, b) = (x_simd[i], x_ref[i]);
            assert!(
                (a - b).abs() <= 1e-4 * b.abs().max(1.0),
                "n_blk={n_blk} c_blk={c_blk} cp_blk={cp_blk} beta={beta} elem {i}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn all_n_blk_values_match_reference() {
        for n_blk in 1..=MAX_N_BLK {
            run_and_compare(n_blk, 32, 32, false);
        }
    }

    #[test]
    fn beta_accumulates() {
        for n_blk in [1, 7, 16, 30] {
            run_and_compare(n_blk, 48, 32, true);
        }
    }

    #[test]
    fn paper_blocking_sizes() {
        // The compute-to-memory sweet spot from §4.3.2.
        run_and_compare(8, 128, 128, false);
        run_and_compare(8, 128, 128, true);
        run_and_compare(30, 64, 64, true);
        run_and_compare(6, 512, 32, false);
    }

    #[test]
    fn minimal_sizes() {
        run_and_compare(1, 1, 16, false);
        run_and_compare(1, 1, 16, true);
        run_and_compare(2, 2, 16, false);
    }

    #[test]
    fn prefetch_pointers_do_not_corrupt() {
        let n_blk = 4;
        let (c_blk, cp_blk) = (32, 32);
        let u = filled(n_blk * c_blk, 4);
        let v = filled(c_blk * cp_blk, 5);
        let next_u = filled(n_blk * c_blk, 6);
        let mut x = AlignedVec::zeroed(n_blk * cp_blk);
        let next_x = AlignedVec::zeroed(n_blk * cp_blk);
        let mut x_ref = vec![0.0f32; n_blk * cp_blk];
        let args = MicroArgs {
            u: u.as_ptr(),
            v: v.as_ptr(),
            x: x.as_mut_ptr(),
            c_blk,
            cp_blk,
            beta: false,
            next_u: next_u.as_ptr(),
            next_x: next_x.as_ptr(),
            output: Output::Block,
        };
        // SAFETY: all buffers (including the prefetch-only next panels)
        // are sized to the block shape above.
        unsafe { microkernel(n_blk, &args) };
        microkernel_reference(n_blk, &u, &v, &mut x_ref, c_blk, cp_blk, false);
        for i in 0..n_blk * cp_blk {
            assert!((x[i] - x_ref[i]).abs() <= 1e-4 * x_ref[i].abs().max(1.0));
        }
        // Prefetch must not modify the next panels.
        assert!(next_x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn scatter_writes_rows_to_destinations() {
        let n_blk = 3;
        let (c_blk, cp_blk) = (16, 32);
        let u = filled(n_blk * c_blk, 7);
        let v = filled(c_blk * cp_blk, 8);
        let mut x = AlignedVec::zeroed(n_blk * cp_blk);
        let mut x_ref = vec![0.0f32; n_blk * cp_blk];

        // Destination arena: rows land at separated, 64-byte aligned spots;
        // group stride of 64 floats separates the q=0 and q=1 groups.
        let mut arena = AlignedVec::zeroed(4096);
        let base = arena.as_mut_ptr();
        // SAFETY: offsets stay within the 4096-float arena.
        let row_ptrs: Vec<*mut f32> =
            (0..n_blk).map(|j| unsafe { base.add(j * 256) }).collect();

        let args = MicroArgs {
            u: u.as_ptr(),
            v: v.as_ptr(),
            x: x.as_mut_ptr(),
            c_blk,
            cp_blk,
            beta: false,
            next_u: std::ptr::null(),
            next_x: std::ptr::null(),
            output: Output::Scatter {
                row_ptrs: row_ptrs.as_ptr(),
                group_stride: 64,
                streaming: true,
            },
        };
        microkernel_reference(n_blk, &u, &v, &mut x_ref, c_blk, cp_blk, false);

        // Both store flavours must land identical values.
        for streaming in [true, false] {
            arena.iter_mut().for_each(|v| *v = 0.0);
            let args = MicroArgs {
                output: Output::Scatter {
                    row_ptrs: row_ptrs.as_ptr(),
                    group_stride: 64,
                    streaming,
                },
                ..args
            };
            // SAFETY: row pointers land in the arena with room for both
            // column groups; scatter targets are 64-byte aligned.
            unsafe { microkernel(n_blk, &args) };
            wino_simd::sfence();

            for j in 0..n_blk {
                for q in 0..cp_blk / 16 {
                    for lane in 0..16 {
                        let got = arena[j * 256 + q * 64 + lane];
                        let want = x_ref[j * cp_blk + q * 16 + lane];
                        assert!(
                            (got - want).abs() <= 1e-4 * want.abs().max(1.0),
                            "streaming={streaming} row {j} group {q} lane {lane}: {got} vs {want}"
                        );
                    }
                }
            }
        }
        // X̂ itself must be untouched in scatter mode (beta = false).
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn scatter_skips_null_rows() {
        let n_blk = 4;
        let (c_blk, cp_blk) = (16, 16);
        let u = filled(n_blk * c_blk, 9);
        let v = filled(c_blk * cp_blk, 10);
        let mut x = AlignedVec::zeroed(n_blk * cp_blk);
        let mut arena = AlignedVec::zeroed(1024);
        let base = arena.as_mut_ptr();
        // Rows 1 and 3 are padding.
        // SAFETY: offsets stay within the 1024-float arena.
        let row_ptrs: Vec<*mut f32> = vec![
            unsafe { base.add(0) },
            std::ptr::null_mut(),
            // SAFETY: offset stays within the 1024-float arena.
            unsafe { base.add(128) },
            std::ptr::null_mut(),
        ];
        let args = MicroArgs {
            u: u.as_ptr(),
            v: v.as_ptr(),
            x: x.as_mut_ptr(),
            c_blk,
            cp_blk,
            beta: false,
            next_u: std::ptr::null(),
            next_x: std::ptr::null(),
            output: Output::Scatter {
                row_ptrs: row_ptrs.as_ptr(),
                group_stride: 16,
                streaming: true,
            },
        };
        // SAFETY: non-null row pointers are aligned arena slots with room
        // for one 16-float group each.
        unsafe { microkernel(n_blk, &args) };
        wino_simd::sfence();
        // Only the two targeted rows were written.
        assert!(arena[..16].iter().any(|&v| v != 0.0));
        assert!(arena[128..144].iter().any(|&v| v != 0.0));
        assert!(arena[16..128].iter().all(|&v| v == 0.0));
        assert!(arena[144..].iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_n_blk_panics() {
        let u = AlignedVec::zeroed(31 * 16);
        let v = AlignedVec::zeroed(16 * 16);
        let mut x = AlignedVec::zeroed(31 * 16);
        let args = MicroArgs {
            u: u.as_ptr(),
            v: v.as_ptr(),
            x: x.as_mut_ptr(),
            c_blk: 16,
            cp_blk: 16,
            beta: false,
            next_u: std::ptr::null(),
            next_x: std::ptr::null(),
            output: Output::Block,
        };
        // SAFETY: buffers sized for 31 rows; the dispatcher must panic
        // before any of them is read.
        unsafe { microkernel(31, &args) };
    }
}
