//! # wino-gemm
//!
//! The paper's stage-2 engine (§4.3): batched multiplication of tall-skinny
//! transformed-input panels against small, L2-resident kernel blocks.
//!
//! * [`micro`] — the register-blocked micro-kernel, monomorphised for every
//!   `n_blk ∈ 1..=30` (the Rust analogue of the paper's JIT-per-size
//!   codegen), with interleaved prefetch and a fused streaming-scatter
//!   output mode (operation ⑥).
//! * [`blocked`] — the cache-blocked loop order keeping `V̂` in L2.
//! * [`generic`] — a non-specialised stand-in for library GEMMs (Fig. 6's
//!   comparison point).
//! * [`model`] — Eq. 11 compute-to-memory analysis and the §4.3.2
//!   constraint system for legal blockings.
//! * [`tune`] / [`wisdom`] — FFTW-style empirical parameter search with a
//!   persistent wisdom file.

pub mod blocked;
pub mod generic;
pub mod micro;
pub mod model;
pub mod tune;
pub mod wisdom;

pub use blocked::{batched_gemm, batched_gemm_parallel, dense_reference};
pub use generic::batched_gemm_generic;
pub use micro::{microkernel, microkernel_reference, MicroArgs, Output, MAX_N_BLK};
pub use model::{
    candidate_shapes, default_shape, BlockShape, KNL_MACHINE_RATIO, MAX_V_ELEMS,
    SUPERBLOCK_L2_BYTES,
};
pub use tune::{
    autotune, autotune_with_wisdom, superblock_with_wisdom, time_shape, TuneConfig, TuneResult,
};
pub use wisdom::Wisdom;
