//! The FFTW-style wisdom store (§4.3.2).
//!
//! Empirically determined blocking parameters are remembered per problem
//! shape so the (relatively slow) search runs once per layer shape and
//! machine. The on-disk format is a trivially greppable text file:
//!
//! ```text
//! # wino-gemm wisdom v1
//! r784_c256_cp256_t36_th64 = 14 128 128
//! ```

use std::collections::HashMap;
use std::io::{self, BufRead, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::model::BlockShape;

/// Thread-safe wisdom map: problem key → best blocking.
#[derive(Debug, Default)]
pub struct Wisdom {
    map: Mutex<HashMap<String, BlockShape>>,
}

impl Wisdom {
    pub fn new() -> Wisdom {
        Wisdom::default()
    }

    /// Canonical key for a batched-GEMM problem: `rows × c → cp`, `t`
    /// matrices, `threads` threads.
    pub fn key(rows: usize, c: usize, cp: usize, t: usize, threads: usize) -> String {
        format!("r{rows}_c{c}_cp{cp}_t{t}_th{threads}")
    }

    pub fn get(&self, key: &str) -> Option<BlockShape> {
        self.map.lock().unwrap().get(key).copied()
    }

    pub fn insert(&self, key: String, shape: BlockShape) {
        self.map.lock().unwrap().insert(key, shape);
    }

    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Load wisdom from a text file. Unknown or malformed lines are
    /// ignored (forward compatibility), comments start with `#`.
    pub fn load(path: &Path) -> io::Result<Wisdom> {
        let file = std::fs::File::open(path)?;
        let reader = io::BufReader::new(file);
        let w = Wisdom::new();
        for line in reader.lines() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, rest)) = line.split_once('=') else { continue };
            let nums: Vec<usize> =
                rest.split_whitespace().filter_map(|s| s.parse().ok()).collect();
            if nums.len() == 3 {
                w.insert(
                    key.trim().to_string(),
                    BlockShape { n_blk: nums[0], c_blk: nums[1], cp_blk: nums[2] },
                );
            }
        }
        Ok(w)
    }

    /// Persist to a text file (sorted keys, stable diffs).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let map = self.map.lock().unwrap();
        let mut keys: Vec<&String> = map.keys().collect();
        keys.sort();
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "# wino-gemm wisdom v1")?;
        for k in keys {
            let s = map[k];
            writeln!(f, "{k} = {} {} {}", s.n_blk, s.c_blk, s.cp_blk)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_file() {
        let dir = std::env::temp_dir().join(format!("wino-wisdom-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wisdom.txt");

        let w = Wisdom::new();
        w.insert(Wisdom::key(784, 256, 256, 36, 64), BlockShape { n_blk: 14, c_blk: 128, cp_blk: 128 });
        w.insert(Wisdom::key(100, 64, 64, 16, 4), BlockShape { n_blk: 8, c_blk: 64, cp_blk: 64 });
        w.save(&path).unwrap();

        let loaded = Wisdom::load(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(
            loaded.get(&Wisdom::key(784, 256, 256, 36, 64)),
            Some(BlockShape { n_blk: 14, c_blk: 128, cp_blk: 128 })
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let dir = std::env::temp_dir().join(format!("wino-wisdom-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wisdom.txt");
        std::fs::write(&path, "# comment\n\ngarbage\nkey = 1 2\nok = 8 64 64\n").unwrap();
        let w = Wisdom::load(&path).unwrap();
        assert_eq!(w.len(), 1);
        assert_eq!(w.get("ok"), Some(BlockShape { n_blk: 8, c_blk: 64, cp_blk: 64 }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(Wisdom::load(Path::new("/nonexistent/wisdom.txt")).is_err());
    }

    #[test]
    fn keys_distinguish_problems() {
        assert_ne!(Wisdom::key(1, 2, 3, 4, 5), Wisdom::key(1, 2, 3, 4, 6));
        assert_ne!(Wisdom::key(10, 2, 3, 4, 5), Wisdom::key(1, 2, 3, 4, 5));
    }
}
