//! The FFTW-style wisdom store (§4.3.2).
//!
//! Empirically determined blocking parameters are remembered per problem
//! shape so the (relatively slow) search runs once per layer shape and
//! machine. The on-disk format is a trivially greppable text file:
//!
//! ```text
//! # wino-gemm wisdom v1
//! r784_c256_cp256_t36_th64 = 14 128 128
//! r784_c256_cp256_t36_th64 = 14 128 128 4
//! ```
//!
//! The optional fourth number is the tuned *superblock* extent (row
//! blocks per superblock) of the pipelined schedule; three-number lines
//! from older wisdom files load fine and fall back to the analytic
//! footprint model ([`crate::model::BlockShape::superblock_row_blocks`]).

use std::collections::HashMap;
use std::io::{self, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::model::BlockShape;

/// One remembered tuning result: the blocking plus (optionally) the
/// pipelined superblock extent in row blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Entry {
    shape: BlockShape,
    superblock: Option<usize>,
}

/// Thread-safe wisdom map: problem key → best blocking.
#[derive(Debug, Default)]
pub struct Wisdom {
    map: Mutex<HashMap<String, Entry>>,
}

impl Wisdom {
    pub fn new() -> Wisdom {
        Wisdom::default()
    }

    /// Canonical key for a batched-GEMM problem: `rows × c → cp`, `t`
    /// matrices, `threads` threads.
    pub fn key(rows: usize, c: usize, cp: usize, t: usize, threads: usize) -> String {
        format!("r{rows}_c{c}_cp{cp}_t{t}_th{threads}")
    }

    /// As [`Wisdom::key`], extended with a conv-geometry scenario suffix
    /// (`_s2x2_d1x1_g4`). The identity geometry (all strides and
    /// dilations 1, one group) produces exactly [`Wisdom::key`]'s output,
    /// so wisdom files written before the dispatch layer existed keep
    /// resolving, and files written now load under old readers (the
    /// suffix only ever changes the key, never the value-line format). A
    /// corrupted suffix degrades to a lookup miss — the analytic model
    /// fallback — never an error.
    #[allow(clippy::too_many_arguments)] // one argument per key component
    pub fn scenario_key(
        rows: usize,
        c: usize,
        cp: usize,
        t: usize,
        threads: usize,
        stride: &[usize],
        dilation: &[usize],
        groups: usize,
    ) -> String {
        let mut key = Self::key(rows, c, cp, t, threads);
        let identity =
            stride.iter().all(|&s| s == 1) && dilation.iter().all(|&d| d == 1) && groups == 1;
        if !identity {
            let join = |v: &[usize]| {
                v.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("x")
            };
            key.push_str(&format!("_s{}_d{}_g{}", join(stride), join(dilation), groups));
        }
        key
    }

    pub fn get(&self, key: &str) -> Option<BlockShape> {
        self.map.lock().unwrap().get(key).map(|e| e.shape)
    }

    /// Tuned superblock extent (row blocks) for the pipelined schedule,
    /// if this entry carries one. `None` means "use the analytic model".
    pub fn superblock_hint(&self, key: &str) -> Option<usize> {
        self.map.lock().unwrap().get(key).and_then(|e| e.superblock)
    }

    pub fn insert(&self, key: String, shape: BlockShape) {
        self.map.lock().unwrap().insert(key, Entry { shape, superblock: None });
    }

    /// Insert a blocking together with a tuned superblock extent.
    pub fn insert_with_superblock(&self, key: String, shape: BlockShape, superblock: usize) {
        self.map
            .lock()
            .unwrap()
            .insert(key, Entry { shape, superblock: Some(superblock) });
    }

    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Load wisdom from a text file. Unknown or malformed lines are
    /// ignored (forward compatibility), comments start with `#`; even
    /// binary garbage only yields an empty store, never an error — the
    /// caller's analytic-model fallback must always be reachable.
    pub fn load(path: &Path) -> io::Result<Wisdom> {
        let bytes = std::fs::read(path)?;
        let text = String::from_utf8_lossy(&bytes);
        let w = Wisdom::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, rest)) = line.split_once('=') else { continue };
            let nums: Vec<usize> =
                rest.split_whitespace().filter_map(|s| s.parse().ok()).collect();
            if nums.len() == 3 || nums.len() == 4 {
                // A zero superblock would be meaningless — treat it as
                // absent rather than propagating a degenerate extent.
                let superblock = nums.get(3).copied().filter(|&sb| sb > 0);
                w.map.lock().unwrap().insert(
                    key.trim().to_string(),
                    Entry {
                        shape: BlockShape { n_blk: nums[0], c_blk: nums[1], cp_blk: nums[2] },
                        superblock,
                    },
                );
            }
        }
        Ok(w)
    }

    /// Persist to a text file (sorted keys, stable diffs).
    ///
    /// The write is atomic: the document is staged in a sibling temp file
    /// and renamed over `path` only once fully flushed, so a process
    /// killed mid-save (OOM killer, rlimit abort, plain SIGKILL) leaves
    /// either the previous wisdom intact or the complete new file — never
    /// a truncated one that would silently shed entries on the next load.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let map = self.map.lock().unwrap();
        let mut keys: Vec<&String> = map.keys().collect();
        keys.sort();
        let mut text = String::from("# wino-gemm wisdom v1\n");
        for k in keys {
            let e = map[k];
            let s = e.shape;
            match e.superblock {
                Some(sb) => {
                    text.push_str(&format!("{k} = {} {} {} {sb}\n", s.n_blk, s.c_blk, s.cp_blk));
                }
                None => text.push_str(&format!("{k} = {} {} {}\n", s.n_blk, s.c_blk, s.cp_blk)),
            }
        }
        // Same directory as the target so the rename cannot cross a
        // filesystem boundary (rename(2) is only atomic within one).
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let result = (|| {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            // Data must be durable before the rename publishes the name,
            // or a crash could expose a complete-looking empty file.
            f.sync_all()?;
            std::fs::rename(&tmp, path)
        })();
        if result.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{default_shape, SUPERBLOCK_L2_BYTES};

    #[test]
    fn roundtrip_through_file() {
        let dir = std::env::temp_dir().join(format!("wino-wisdom-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wisdom.txt");

        let w = Wisdom::new();
        w.insert(Wisdom::key(784, 256, 256, 36, 64), BlockShape { n_blk: 14, c_blk: 128, cp_blk: 128 });
        w.insert(Wisdom::key(100, 64, 64, 16, 4), BlockShape { n_blk: 8, c_blk: 64, cp_blk: 64 });
        w.save(&path).unwrap();

        let loaded = Wisdom::load(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(
            loaded.get(&Wisdom::key(784, 256, 256, 36, 64)),
            Some(BlockShape { n_blk: 14, c_blk: 128, cp_blk: 128 })
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn superblock_entries_roundtrip() {
        let dir =
            std::env::temp_dir().join(format!("wino-wisdom-sb-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wisdom.txt");

        let w = Wisdom::new();
        let key_sb = Wisdom::key(784, 256, 256, 36, 64);
        let key_plain = Wisdom::key(100, 64, 64, 16, 4);
        w.insert_with_superblock(
            key_sb.clone(),
            BlockShape { n_blk: 14, c_blk: 128, cp_blk: 128 },
            4,
        );
        w.insert(key_plain.clone(), BlockShape { n_blk: 8, c_blk: 64, cp_blk: 64 });
        w.save(&path).unwrap();

        let loaded = Wisdom::load(&path).unwrap();
        assert_eq!(loaded.superblock_hint(&key_sb), Some(4));
        assert_eq!(
            loaded.get(&key_sb),
            Some(BlockShape { n_blk: 14, c_blk: 128, cp_blk: 128 })
        );
        // Plain entries stay hint-free — the planner falls back to the
        // analytic footprint model.
        assert_eq!(loaded.superblock_hint(&key_plain), None);
        assert!(loaded.get(&key_plain).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let dir = std::env::temp_dir().join(format!("wino-wisdom-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wisdom.txt");
        std::fs::write(&path, "# comment\n\ngarbage\nkey = 1 2\nok = 8 64 64\n").unwrap();
        let w = Wisdom::load(&path).unwrap();
        assert_eq!(w.len(), 1);
        assert_eq!(w.get("ok"), Some(BlockShape { n_blk: 8, c_blk: 64, cp_blk: 64 }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_or_truncated_files_load_without_panicking() {
        let dir =
            std::env::temp_dir().join(format!("wino-wisdom-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // A grab bag of damage: binary noise, truncated mid-line, too
        // many fields, negative and overflowing numbers, a zero
        // superblock. None may panic; none may produce a usable entry
        // except the intact ones.
        let cases: &[(&str, &[u8])] = &[
            ("binary", b"\x00\xff\xfe wino \x01\x02 = 8 64"),
            ("truncated", b"r784_c256_cp256_t36_th64 = 14 12"),
            ("too_many", b"k = 1 2 3 4 5\n"),
            ("negative", b"k = -8 64 64\n"),
            ("overflow", b"k = 99999999999999999999999999 64 64\n"),
            ("zero_sb", b"k = 8 64 64 0\n"),
        ];
        for (name, bytes) in cases {
            let path = dir.join(format!("{name}.txt"));
            std::fs::write(&path, bytes).unwrap();
            let w = Wisdom::load(&path).unwrap();
            match *name {
                // A zero superblock hint degrades to "no hint" — the
                // blocking itself is intact, the planner uses the model.
                "zero_sb" => {
                    assert_eq!(w.get("k"), Some(BlockShape { n_blk: 8, c_blk: 64, cp_blk: 64 }));
                    assert_eq!(w.superblock_hint("k"), None);
                }
                _ => assert!(w.is_empty(), "case {name} produced entries"),
            }
        }

        // After any of these failures the caller's fallback — the
        // analytic model — must still produce a legal plan.
        let shape = default_shape(64, 64, 784);
        assert!(shape.superblock_row_blocks(36, 64, 64, SUPERBLOCK_L2_BYTES) >= 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interrupted_save_never_corrupts_existing_wisdom() {
        // Simulate a process killed mid-save: the victim's staging file
        // sits in the directory with partial content (exactly what a
        // SIGKILL between create and rename leaves behind). The published
        // wisdom must be untouched, and a later save must still succeed.
        let dir = std::env::temp_dir().join(format!("wino-wisdom-kill-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wisdom.txt");

        let w = Wisdom::new();
        let key = Wisdom::key(784, 256, 256, 36, 64);
        w.insert(key.clone(), BlockShape { n_blk: 14, c_blk: 128, cp_blk: 128 });
        w.save(&path).unwrap();

        // The dead process's half-written staging file (note: a *different*
        // pid than ours, as it would be in practice).
        std::fs::write(dir.join("wisdom.tmp.99999"), "# wino-gemm wisdom v1\nr784_c2").unwrap();

        let loaded = Wisdom::load(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded.get(&key), Some(BlockShape { n_blk: 14, c_blk: 128, cp_blk: 128 }));

        // A survivor process saving over the same path is unaffected.
        w.insert(Wisdom::key(1, 2, 3, 4, 5), BlockShape { n_blk: 1, c_blk: 16, cp_blk: 16 });
        w.save(&path).unwrap();
        assert_eq!(Wisdom::load(&path).unwrap().len(), 2);
        // Our own staging file must not survive a successful save.
        assert!(!path.with_extension(format!("tmp.{}", std::process::id())).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_loads_see_whole_files_only() {
        // The atomicity claim, exercised live: one thread rewrites the
        // file in a loop alternating between a 1-entry and a 30-entry
        // store while readers hammer `load`. Every load must observe one
        // of the two complete documents — any other entry count means a
        // torn write was published.
        let dir = std::env::temp_dir().join(format!("wino-wisdom-race-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wisdom.txt");

        let small = Wisdom::new();
        small.insert(Wisdom::key(1, 2, 3, 4, 5), BlockShape { n_blk: 1, c_blk: 16, cp_blk: 16 });
        let big = Wisdom::new();
        for i in 0..30 {
            big.insert(
                Wisdom::key(i, 2, 3, 4, 5),
                BlockShape { n_blk: 8, c_blk: 64, cp_blk: 64 },
            );
        }
        small.save(&path).unwrap();

        std::thread::scope(|s| {
            let writer_path = path.clone();
            let small = &small;
            let big = &big;
            s.spawn(move || {
                for i in 0..40 {
                    if i % 2 == 0 { big } else { small }.save(&writer_path).unwrap();
                }
            });
            for _ in 0..3 {
                let reader_path = path.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        let n = Wisdom::load(&reader_path).unwrap().len();
                        assert!(n == 1 || n == 30, "torn wisdom file observed: {n} entries");
                    }
                });
            }
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(Wisdom::load(Path::new("/nonexistent/wisdom.txt")).is_err());
    }

    #[test]
    fn keys_distinguish_problems() {
        assert_ne!(Wisdom::key(1, 2, 3, 4, 5), Wisdom::key(1, 2, 3, 4, 6));
        assert_ne!(Wisdom::key(10, 2, 3, 4, 5), Wisdom::key(1, 2, 3, 4, 5));
    }

    #[test]
    fn identity_scenario_key_is_the_v1_key() {
        // Lossless backward compatibility: a stride-1, dense layer keys
        // exactly as it did before the dispatch layer existed, so old
        // wisdom files keep resolving for the layers they were tuned on.
        assert_eq!(
            Wisdom::scenario_key(784, 256, 256, 36, 64, &[1, 1], &[1, 1], 1),
            Wisdom::key(784, 256, 256, 36, 64)
        );
        assert_eq!(
            Wisdom::scenario_key(100, 64, 64, 16, 4, &[1, 1, 1], &[1, 1, 1], 1),
            Wisdom::key(100, 64, 64, 16, 4)
        );
    }

    #[test]
    fn scenario_keys_distinguish_geometries() {
        let base = Wisdom::scenario_key(784, 256, 256, 36, 64, &[1, 1], &[1, 1], 1);
        let strided = Wisdom::scenario_key(784, 256, 256, 36, 64, &[2, 2], &[1, 1], 1);
        let dilated = Wisdom::scenario_key(784, 256, 256, 36, 64, &[1, 1], &[2, 2], 1);
        let grouped = Wisdom::scenario_key(784, 256, 256, 36, 64, &[1, 1], &[1, 1], 4);
        assert_eq!(strided, format!("{base}_s2x2_d1x1_g1"));
        assert_eq!(dilated, format!("{base}_s1x1_d2x2_g1"));
        assert_eq!(grouped, format!("{base}_s1x1_d1x1_g4"));
        let all = [&base, &strided, &dilated, &grouped];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn v1_files_resolve_scenario_lookups_and_vice_versa() {
        let dir =
            std::env::temp_dir().join(format!("wino-wisdom-scen-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wisdom.txt");

        // A pre-dispatch ("v1") file knows nothing of geometry suffixes.
        std::fs::write(&path, "# wino-gemm wisdom v1\nr784_c256_cp256_t36_th64 = 14 128 128\n")
            .unwrap();
        let w = Wisdom::load(&path).unwrap();
        // Identity-geometry lookups hit the old entry losslessly…
        assert_eq!(
            w.get(&Wisdom::scenario_key(784, 256, 256, 36, 64, &[1, 1], &[1, 1], 1)),
            Some(BlockShape { n_blk: 14, c_blk: 128, cp_blk: 128 })
        );
        // …while strided/grouped lookups miss (analytic-model fallback),
        // rather than silently reusing a blocking tuned for a different
        // effective problem.
        assert_eq!(
            w.get(&Wisdom::scenario_key(784, 256, 256, 36, 64, &[2, 2], &[1, 1], 1)),
            None
        );

        // The converse: a store holding both identity and scenario
        // entries round-trips through the unchanged v1 line format, and
        // an old reader (same loader) sees every entry.
        w.insert(
            Wisdom::scenario_key(784, 256, 256, 36, 64, &[2, 2], &[1, 1], 4),
            BlockShape { n_blk: 7, c_blk: 64, cp_blk: 64 },
        );
        w.save(&path).unwrap();
        let reloaded = Wisdom::load(&path).unwrap();
        assert_eq!(reloaded.len(), 2);
        assert_eq!(
            reloaded.get(&Wisdom::scenario_key(784, 256, 256, 36, 64, &[2, 2], &[1, 1], 4)),
            Some(BlockShape { n_blk: 7, c_blk: 64, cp_blk: 64 })
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_scenario_suffixes_degrade_to_misses() {
        let dir =
            std::env::temp_dir().join(format!("wino-wisdom-scor-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wisdom.txt");

        // Mangled geometry suffixes: the loader keeps the lines (the key
        // is opaque to it, the values are well-formed), but no canonical
        // scenario_key ever reproduces them, so lookups miss and the
        // planner falls back to the analytic model. Nothing panics.
        std::fs::write(
            &path,
            "r784_c256_cp256_t36_th64_s2xbogus_d1x1_g4 = 14 128 128\n\
             r784_c256_cp256_t36_th64_sNaN_dNaN_g-1 = 14 128 128\n\
             r784_c256_cp256_t36_th64_s2x2 = 14 128 128\n",
        )
        .unwrap();
        let w = Wisdom::load(&path).unwrap();
        for stride in [&[1usize, 1][..], &[2, 2]] {
            for groups in [1usize, 4] {
                let key = Wisdom::scenario_key(784, 256, 256, 36, 64, stride, &[1, 1], groups);
                assert_eq!(w.get(&key), None, "corrupt suffix resolved for {key}");
                assert_eq!(w.superblock_hint(&key), None);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
