//! Stage-2 style batched matrix multiplication (§4.3).
//!
//! `T` independent products `X_t = U_t · V_t` on block-panel
//! [`BlockedMatrices`], using the paper's loop order: for each `V̂`
//! sub-matrix `(k, j)`, sweep all row panels `i` so `V̂` stays in L2, with
//! `β = 0` on the first `k` block and `β = 1` afterwards. Panels of the
//! *next* `i` iteration are prefetched to L2 by the micro-kernel while it
//! stores.

use wino_sched::Executor;
use wino_tensor::BlockedMatrices;

use crate::micro::{microkernel, MicroArgs, Output};

/// Validate that `(u, v, x)` form a legal batched product.
fn check_shapes(u: &BlockedMatrices, v: &BlockedMatrices, x: &BlockedMatrices) {
    assert_eq!(u.t_count(), v.t_count(), "t mismatch");
    assert_eq!(u.t_count(), x.t_count(), "t mismatch");
    assert_eq!(u.cols(), v.rows(), "inner dimension mismatch");
    assert_eq!(u.rows(), x.rows(), "row mismatch");
    assert_eq!(v.cols(), x.cols(), "column mismatch");
    assert_eq!(u.cb(), v.rb(), "U col-block must equal V row-block (C_blk)");
    assert_eq!(u.rb(), x.rb(), "U and X row-blocks must match (n_blk)");
    assert_eq!(v.cb(), x.cb(), "V and X col-blocks must match (C'_blk)");
    assert_eq!(v.rows() % v.rb(), 0, "C must be divisible by C_blk");
}

/// One (t, j, i) task: the full reduction over `k` for one `X̂` panel.
///
/// # Safety
/// The `(t, i, j)` triples of concurrent calls must be distinct (each task
/// owns its `X̂` block exclusively).
unsafe fn panel_task(
    u: &BlockedMatrices,
    v: &BlockedMatrices,
    x_ptr: *mut f32,
    x_meta: &BlockedMatrices,
    t: usize,
    j: usize,
    i: usize,
) {
    let n_blk = u.rb();
    let k_blocks = v.rows() / v.rb();
    let last_i = u.row_blocks() - 1;
    for k in 0..k_blocks {
        let next = if i < last_i {
            (
                u.as_ptr().wrapping_add(u.block_offset(i + 1, k, t)),
                x_ptr.wrapping_add(x_meta.block_offset(i + 1, j, t)) as *const f32,
            )
        } else {
            (std::ptr::null(), std::ptr::null())
        };
        let args = MicroArgs {
            u: u.as_ptr().add(u.block_offset(i, k, t)),
            v: v.as_ptr().add(v.block_offset(k, j, t)),
            x: x_ptr.add(x_meta.block_offset(i, j, t)),
            c_blk: u.cb(),
            cp_blk: v.cb(),
            beta: k > 0,
            next_u: next.0,
            next_x: next.1,
            output: Output::Block,
        };
        microkernel(n_blk, &args);
    }
}

/// Serial batched product `X_t = U_t · V_t` for all `t`.
pub fn batched_gemm(u: &BlockedMatrices, v: &BlockedMatrices, x: &mut BlockedMatrices) {
    check_shapes(u, v, x);
    let x_ptr = x.as_mut_ptr();
    for t in 0..u.t_count() {
        for j in 0..v.col_blocks() {
            for i in 0..u.row_blocks() {
                // SAFETY: serial execution — exclusive access to each panel.
                unsafe { panel_task(u, v, x_ptr, x, t, j, i) };
            }
        }
    }
}

struct SendPtr(*mut f32);
// SAFETY: raw pointer shared across the pool; disjointness of writes is
// guaranteed by the task grid (each (t, j, i) owns one X̂ panel).
unsafe impl Sync for SendPtr {}
// SAFETY: the pointer targets the caller-owned X̂ buffer, which outlives
// the fork–join moving this handle between threads.
unsafe impl Send for SendPtr {}

impl SendPtr {
    fn get(&self) -> *mut f32 {
        self.0
    }
}

/// Parallel batched product over the paper's stage-2 task grid
/// `T × (C'/C'_blk) × (NB/n_blk)` — row panels least significant so a
/// thread keeps multiplying against the same `V̂` (§4.5).
pub fn batched_gemm_parallel(
    u: &BlockedMatrices,
    v: &BlockedMatrices,
    x: &mut BlockedMatrices,
    exec: &dyn Executor,
) -> Result<(), wino_sched::PoolError> {
    check_shapes(u, v, x);
    let dims = [u.t_count(), v.col_blocks(), u.row_blocks()];
    let x_ptr = SendPtr(x.as_mut_ptr());
    let x_meta: &BlockedMatrices = x;
    exec.run_grid(&dims, &|_slot, flat| {
        let i = flat % dims[2];
        let j = (flat / dims[2]) % dims[1];
        let t = flat / (dims[1] * dims[2]);
        // SAFETY: the grid enumerates each (t, j, i) exactly once.
        unsafe { panel_task(u, v, x_ptr.get(), x_meta, t, j, i) };
    })
}

/// Dense row-major reference product for one `t` (test oracle).
pub fn dense_reference(
    u_dense: &[f32],
    v_dense: &[f32],
    rows: usize,
    inner: usize,
    cols: usize,
) -> Vec<f32> {
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        for k in 0..inner {
            let a = u_dense[r * inner + k];
            for c in 0..cols {
                out[r * cols + c] += a * v_dense[k * cols + c];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_sched::{SerialExecutor, StaticExecutor};

    fn fill(m: &mut BlockedMatrices, seed: usize) {
        for t in 0..m.t_count() {
            for r in 0..m.rows() {
                for c in 0..m.cols() {
                    let h = (t * 7919 + r * 131 + c * 17 + seed).wrapping_mul(2654435761);
                    m.set(t, r, c, ((h >> 16) % 1000) as f32 / 500.0 - 1.0);
                }
            }
        }
    }

    fn check_case(t: usize, rows: usize, c: usize, cp: usize, nb: usize, cb: usize, cpb: usize) {
        let mut u = BlockedMatrices::new(t, rows, c, nb, cb);
        let mut v = BlockedMatrices::new(t, c, cp, cb, cpb);
        let mut x = BlockedMatrices::new(t, rows, cp, nb, cpb);
        fill(&mut u, 1);
        fill(&mut v, 2);
        batched_gemm(&u, &v, &mut x);
        for tt in 0..t {
            let want = dense_reference(&u.to_dense(tt), &v.to_dense(tt), rows, c, cp);
            let got = x.to_dense(tt);
            for i in 0..rows * cp {
                assert!(
                    (got[i] - want[i]).abs() <= 1e-3 * want[i].abs().max(1.0),
                    "t={tt} elem {i}: {} vs {}",
                    got[i],
                    want[i]
                );
            }
        }
    }

    #[test]
    fn exact_blocking() {
        check_case(2, 24, 32, 32, 8, 16, 16);
    }

    #[test]
    fn padded_rows() {
        // rows = 21 with n_blk = 8 → 3 panels, last one 5 real rows.
        check_case(1, 21, 32, 48, 8, 32, 16);
    }

    #[test]
    fn multiple_k_blocks_accumulate() {
        check_case(1, 16, 128, 32, 8, 32, 32);
    }

    #[test]
    fn paper_sized_blocks() {
        check_case(1, 32, 128, 128, 8, 128, 128);
    }

    #[test]
    fn parallel_matches_serial() {
        let (t, rows, c, cp, nb, cb, cpb) = (4, 40, 64, 64, 7, 32, 32);
        let mut u = BlockedMatrices::new(t, rows, c, nb, cb);
        let mut v = BlockedMatrices::new(t, c, cp, cb, cpb);
        fill(&mut u, 3);
        fill(&mut v, 4);
        let mut x_serial = BlockedMatrices::new(t, rows, cp, nb, cpb);
        let mut x_par = BlockedMatrices::new(t, rows, cp, nb, cpb);
        let mut x_static = BlockedMatrices::new(t, rows, cp, nb, cpb);
        batched_gemm(&u, &v, &mut x_serial);
        batched_gemm_parallel(&u, &v, &mut x_par, &SerialExecutor).unwrap();
        let pool = StaticExecutor::new(4);
        batched_gemm_parallel(&u, &v, &mut x_static, &pool).unwrap();
        assert_eq!(x_serial.as_slice(), x_par.as_slice());
        assert_eq!(x_serial.as_slice(), x_static.as_slice());
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn shape_mismatch_panics() {
        let u = BlockedMatrices::new(1, 8, 32, 8, 16);
        let v = BlockedMatrices::new(1, 48, 16, 16, 16);
        let mut x = BlockedMatrices::new(1, 8, 16, 8, 16);
        batched_gemm(&u, &v, &mut x);
    }
}
