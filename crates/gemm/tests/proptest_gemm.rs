//! Property-style differential testing of the batched GEMM engines,
//! driven by the seeded `wino-rng` generator (no registry access, so no
//! `proptest`): for arbitrary legal shapes, the specialised engine, the
//! generic engine and the dense reference must agree; padded rows must
//! never leak into results.

use wino_gemm::{batched_gemm, batched_gemm_generic, dense_reference};
use wino_rng::Rng;
use wino_tensor::BlockedMatrices;

fn fill(m: &mut BlockedMatrices, seed: u64) {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(7);
    for t in 0..m.t_count() {
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                m.set(t, r, c, ((s >> 40) as f32 / (1u64 << 23) as f32) - 1.0);
            }
        }
    }
}

#[test]
fn specialised_equals_generic_equals_dense() {
    let mut rng = Rng::seed_from_u64(0x9e44);
    for _ in 0..24 {
        let t = rng.range_usize(1, 3);
        let rows = rng.range_usize(1, 49);
        let kq = rng.range_usize(1, 3); // C = 16·kq
        let cq = rng.range_usize(1, 3); // C' = 16·cq
        let n_blk = rng.range_usize(1, 30);
        let seed = rng.next_u64() % 1000;
        let c = kq * 16;
        let cp = cq * 16;
        // Pick legal blockings dividing the channel counts.
        let cb = 16 * (1 + seed as usize % kq);
        let cb = (1..=kq).map(|x| x * 16).rfind(|b| c.is_multiple_of(*b)).unwrap_or(16).min(cb.max(16));
        let cb = if c.is_multiple_of(cb) { cb } else { 16 };
        let cpb = 16;

        let mut u = BlockedMatrices::new(t, rows, c, n_blk, cb);
        let mut v = BlockedMatrices::new(t, c, cp, cb, cpb);
        fill(&mut u, seed);
        fill(&mut v, seed ^ 0xABCD);

        let mut x_spec = BlockedMatrices::new(t, rows, cp, n_blk, cpb);
        let mut x_gen = BlockedMatrices::new(t, rows, cp, n_blk, cpb);
        batched_gemm(&u, &v, &mut x_spec);
        batched_gemm_generic(&u, &v, &mut x_gen);

        for tt in 0..t {
            let want = dense_reference(&u.to_dense(tt), &v.to_dense(tt), rows, c, cp);
            let got_s = x_spec.to_dense(tt);
            let got_g = x_gen.to_dense(tt);
            for i in 0..want.len() {
                assert!(
                    (got_s[i] - want[i]).abs() <= 1e-3 * want[i].abs().max(1.0),
                    "specialised t={} elem {}: {} vs {}",
                    tt,
                    i,
                    got_s[i],
                    want[i]
                );
                assert!(
                    (got_g[i] - want[i]).abs() <= 1e-3 * want[i].abs().max(1.0),
                    "generic t={} elem {}: {} vs {}",
                    tt,
                    i,
                    got_g[i],
                    want[i]
                );
            }
        }
    }
}

#[test]
fn eq11_model_is_scale_invariant() {
    // Doubling both blocks doubles the Eq. 11 ratio (homogeneity of
    // degree 1) — a structural property of the model.
    use wino_gemm::BlockShape;
    let mut rng = Rng::seed_from_u64(0xe911);
    for _ in 0..64 {
        let cb_q = rng.range_usize(2, 31);
        let cpb_q = rng.range_usize(2, 31);
        let s1 = BlockShape { n_blk: 8, c_blk: cb_q * 16, cp_blk: cpb_q * 16 };
        let s2 = BlockShape { n_blk: 8, c_blk: cb_q * 32, cp_blk: cpb_q * 32 };
        let r1 = s1.compute_to_memory_ratio(true);
        let r2 = s2.compute_to_memory_ratio(true);
        assert!((r2 / r1 - 2.0).abs() < 1e-9, "{r1} vs {r2}");
        // And β = 0 always has a (weakly) higher ratio than β = 1.
        assert!(s1.compute_to_memory_ratio(false) >= r1);
    }
}
