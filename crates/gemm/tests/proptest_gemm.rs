//! Property-based testing of the batched GEMM engines: for arbitrary
//! legal shapes, the specialised engine, the generic engine and the dense
//! reference must agree; padded rows must never leak into results.

use proptest::prelude::*;
use wino_gemm::{batched_gemm, batched_gemm_generic, dense_reference};
use wino_tensor::BlockedMatrices;

fn fill(m: &mut BlockedMatrices, seed: u64) {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(7);
    for t in 0..m.t_count() {
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                m.set(t, r, c, ((s >> 40) as f32 / (1u64 << 23) as f32) - 1.0);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn specialised_equals_generic_equals_dense(
        t in 1usize..4,
        rows in 1usize..50,
        kq in 1usize..4,     // C = 16·kq
        cq in 1usize..4,     // C' = 16·cq
        n_blk in 1usize..=30,
        seed in 0u64..1000,
    ) {
        let c = kq * 16;
        let cp = cq * 16;
        // Pick legal blockings dividing the channel counts.
        let cb = 16 * (1 + seed as usize % kq);
        let cb = (1..=kq).map(|x| x * 16).filter(|b| c % b == 0).last().unwrap_or(16).min(cb.max(16));
        let cb = if c % cb == 0 { cb } else { 16 };
        let cpb = 16;

        let mut u = BlockedMatrices::new(t, rows, c, n_blk, cb);
        let mut v = BlockedMatrices::new(t, c, cp, cb, cpb);
        fill(&mut u, seed);
        fill(&mut v, seed ^ 0xABCD);

        let mut x_spec = BlockedMatrices::new(t, rows, cp, n_blk, cpb);
        let mut x_gen = BlockedMatrices::new(t, rows, cp, n_blk, cpb);
        batched_gemm(&u, &v, &mut x_spec);
        batched_gemm_generic(&u, &v, &mut x_gen);

        for tt in 0..t {
            let want = dense_reference(&u.to_dense(tt), &v.to_dense(tt), rows, c, cp);
            let got_s = x_spec.to_dense(tt);
            let got_g = x_gen.to_dense(tt);
            for i in 0..want.len() {
                prop_assert!(
                    (got_s[i] - want[i]).abs() <= 1e-3 * want[i].abs().max(1.0),
                    "specialised t={} elem {}: {} vs {}", tt, i, got_s[i], want[i]
                );
                prop_assert!(
                    (got_g[i] - want[i]).abs() <= 1e-3 * want[i].abs().max(1.0),
                    "generic t={} elem {}: {} vs {}", tt, i, got_g[i], want[i]
                );
            }
        }
    }

    #[test]
    fn eq11_model_is_scale_invariant(
        cb_q in 2usize..32,
        cpb_q in 2usize..32,
    ) {
        // Doubling both blocks doubles the Eq. 11 ratio (homogeneity of
        // degree 1) — a structural property of the model.
        use wino_gemm::BlockShape;
        let s1 = BlockShape { n_blk: 8, c_blk: cb_q * 16, cp_blk: cpb_q * 16 };
        let s2 = BlockShape { n_blk: 8, c_blk: cb_q * 32, cp_blk: cpb_q * 32 };
        let r1 = s1.compute_to_memory_ratio(true);
        let r2 = s2.compute_to_memory_ratio(true);
        prop_assert!((r2 / r1 - 2.0).abs() < 1e-9, "{} vs {}", r1, r2);
        // And β = 0 always has a (weakly) higher ratio than β = 1.
        prop_assert!(s1.compute_to_memory_ratio(false) >= r1);
    }
}
