//! # wino-rng
//!
//! A tiny, dependency-free, seeded pseudo-random number generator used by
//! the data generators and the property-style tests. The workspace builds
//! in network-isolated environments where no external registry crate is
//! available, so this replaces `rand`'s `StdRng` for our purposes:
//! deterministic, splittable, and good enough statistically for test-data
//! generation (it is *not* cryptographic).
//!
//! The core is xoshiro256++ (Blackman & Vigna), seeded through SplitMix64
//! exactly as its authors recommend, so a single `u64` seed expands to a
//! well-mixed 256-bit state.

/// SplitMix64 step — used for seeding and as a cheap standalone mixer.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// xoshiro256++ PRNG with a `u64` seed.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Deterministic generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `u32`.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        // 128-bit multiply keeps the modulo bias negligible (< 2^-64).
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as usize
    }

    /// Uniform integer in `[lo, hi]` (inclusive). Requires `lo <= hi`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` with 24 bits of precision.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + self.next_f32() * (hi - lo)
    }

    /// Uniform `bool`.
    #[inline]
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fill a slice with uniform `[lo, hi)` floats.
    pub fn fill_f32(&mut self, out: &mut [f32], lo: f32, hi: f32) {
        for v in out {
            *v = self.range_f32(lo, hi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::seed_from_u64(42);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::seed_from_u64(42);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::seed_from_u64(43);
            (0..64).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn floats_in_range() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.range_f32(-0.1, 0.1);
            assert!((-0.1..0.1).contains(&x), "{x}");
            let y = r.next_f64();
            assert!((0.0..1.0).contains(&y), "{y}");
        }
    }

    #[test]
    fn integer_ranges_cover_bounds() {
        let mut r = Rng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = r.range_usize(2, 7);
            assert!((2..=7).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    fn mean_is_roughly_centred() {
        let mut r = Rng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
