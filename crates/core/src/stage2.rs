//! Stage 2 — batched matrix multiplication with fused scatter (§4.3,
//! operations ⑤⑥).
//!
//! `T` products `X_t = U_t · V_t` over the task grid
//! `T × (C'/C'_blk) × (NB/n_blk)` (row panels least significant so each
//! thread reuses its L2-resident `V̂`, §4.5). On the final reduction block
//! the result bypasses `X̂` and is scattered by the micro-kernel itself —
//! with non-temporal streaming stores — into the tile-major layout
//! [`crate::layout::TileMajor`] that stage 3 reads contiguously. The paper
//! measured >20 % end-to-end gain from this fusion; the
//! [`crate::Schedule::Unfused`] schedule reverts to plain GEMM + a
//! separate copy pass (the ablation baseline).

// Index-based loops are the idiom throughout: most walk several
// arrays with derived offsets, where iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]

use wino_gemm::{microkernel, MicroArgs, Output};
use wino_sched::Executor;
use wino_simd::{F32x16, S};
use wino_tensor::BlockedMatrices;

use crate::error::{ensure_eq, WinoError};
use crate::layout::TileMajor;
use crate::plan::{CompBufCell, Scratch, WinogradLayer};
use crate::stage1::MutPtr;

/// The per-panel body of operations ⑤⑥ — one `(t, j, i)` panel's full
/// reduction over the `k` blocks, with the optional fused scatter —
/// factored out so the monolithic stage-2 fork–join and the superblock
/// pipeline share one implementation.
pub(crate) struct Stage2Ctx<'a> {
    layer: &'a WinogradLayer,
    u: &'a BlockedMatrices,
    v: &'a BlockedMatrices,
    x: MutPtr,
    y: MutPtr,
    x_meta: &'a BlockedMatrices,
    y_meta: &'a TileMajor,
    group_stride: usize,
    n_tiles: usize,
    rows: usize,
    n_blk: usize,
    row_blocks: usize,
    k_blocks: usize,
    c_blk: usize,
    cp_blk: usize,
    fused: bool,
    /// NT stores for the fused ⑥ scatter. The monolithic schedules tie
    /// this to [`crate::ConvOptions::streaming_stores`]; the pipeline
    /// passes `false` so `y` stays cache-resident for its own stage 3.
    scatter_streaming: bool,
    /// Per-slot buffers for the compensated reduction, present exactly
    /// when the plan opted into [`crate::ConvOptions::compensated`].
    cbufs: Option<&'a [CompBufCell]>,
}

impl<'a> Stage2Ctx<'a> {
    #[allow(clippy::too_many_arguments)] // one argument per pipeline-shared buffer
    pub(crate) fn new(
        layer: &'a WinogradLayer,
        u: &'a BlockedMatrices,
        v: &'a BlockedMatrices,
        x: *mut f32,
        x_meta: &'a BlockedMatrices,
        y: *mut f32,
        y_meta: &'a TileMajor,
        scatter_streaming: bool,
        cbufs: Option<&'a [CompBufCell]>,
    ) -> Stage2Ctx<'a> {
        Stage2Ctx {
            layer,
            u,
            v,
            x: MutPtr(x),
            y: MutPtr(y),
            x_meta,
            y_meta,
            group_stride: y_meta.group_stride(),
            n_tiles: layer.n_tiles(),
            rows: layer.rows(),
            n_blk: layer.block.n_blk,
            row_blocks: layer.row_blocks(),
            k_blocks: layer.shape.in_channels / layer.block.c_blk,
            c_blk: layer.block.c_blk,
            cp_blk: layer.block.cp_blk,
            fused: layer.opts.schedule.fuses_scatter(),
            scatter_streaming,
            cbufs,
        }
    }

    /// Multiply panel `(t, j, i)`: the full `k`-block reduction, with the
    /// fused ⑥ scatter on the last block when the schedule fuses.
    ///
    /// # Safety
    /// The caller must own panel `(t, j, i)` of `x` and the corresponding
    /// tile rows of `y` — tasks of one fork–join must cover disjoint
    /// `(t, j, i)` triples — and must hold thread slot `slot` (the
    /// Executor slot contract; only the compensated path touches the
    /// per-slot buffers).
    pub(crate) unsafe fn panel(&self, slot: usize, t: usize, j: usize, i: usize) {
        // Per-row scatter destinations for the fused final block.
        let mut row_ptrs = [std::ptr::null_mut::<f32>(); wino_gemm::MAX_N_BLK];
        if self.fused {
            let og0 = (j * self.cp_blk) / S;
            for jj in 0..self.n_blk {
                let n_prime = i * self.n_blk + jj;
                if n_prime < self.rows {
                    let (b, n) = (n_prime / self.n_tiles, n_prime % self.n_tiles);
                    // SAFETY: offset within y by construction.
                    row_ptrs[jj] = self.y.get().add(self.y_meta.vec_offset(b, og0, n, t));
                }
            }
        }

        // High-accuracy plans reduce with Kahan compensation instead of
        // the plain β-accumulating micro-kernel chain.
        if let Some(cbufs) = self.cbufs {
            // SAFETY: same panel ownership as below; slot exclusivity is
            // the caller's contract.
            self.compensated_panel(cbufs, slot, t, j, i, &row_ptrs);
            return;
        }

        // The paper's JIT backend: dispatch to pre-compiled machine code.
        if let Some(jk) = &self.layer.jit {
            let is_tail_panel = jk.tail != 0 && i + 1 == self.row_blocks;
            for k in 0..self.k_blocks {
                let is_last_k = k + 1 == self.k_blocks;
                // SAFETY: identical pointer contract as the mono path
                // below; scatter row_ptrs[..n_blk or ..tail] are non-null
                // by construction (padding rows only exist in the tail
                // panel, which uses the tail kernel).
                let u_ptr = self.u.as_ptr().add(self.u.block_offset(i, k, t));
                let v_p = self.v.as_ptr().add(self.v.block_offset(k, j, t));
                let x_p = self.x.get().add(self.x_meta.block_offset(i, j, t));
                if self.fused && is_last_k {
                    let kern = if is_tail_panel {
                        jk.scatter_tail.as_ref().expect("tail kernel compiled")
                    } else {
                        jk.scatter_full.as_ref().expect("scatter kernel compiled")
                    };
                    kern.call_scatter(u_ptr, v_p, x_p, row_ptrs.as_ptr());
                } else if k == 0 {
                    jk.block0.as_ref().expect("block0 compiled").call(u_ptr, v_p, x_p);
                } else {
                    jk.block1.as_ref().expect("block1 compiled").call(u_ptr, v_p, x_p);
                }
            }
            return;
        }

        let last_i = self.row_blocks - 1;
        for k in 0..self.k_blocks {
            let is_last_k = k + 1 == self.k_blocks;
            let next = if i < last_i {
                (
                    self.u.as_ptr().wrapping_add(self.u.block_offset(i + 1, k, t)),
                    self.x.get().wrapping_add(self.x_meta.block_offset(i + 1, j, t))
                        as *const f32,
                )
            } else {
                (std::ptr::null(), std::ptr::null())
            };
            let output = if self.fused && is_last_k {
                Output::Scatter {
                    row_ptrs: row_ptrs.as_ptr(),
                    group_stride: self.group_stride,
                    streaming: self.scatter_streaming,
                }
            } else {
                Output::Block
            };
            // SAFETY: block offsets for (t, i, j, k) are in bounds of
            // their panel allocations by construction of the panel
            // metadata; panel (t, j, i) is owned by this task.
            let (u_blk, v_blk, x_blk) = (
                self.u.as_ptr().add(self.u.block_offset(i, k, t)),
                self.v.as_ptr().add(self.v.block_offset(k, j, t)),
                self.x.get().add(self.x_meta.block_offset(i, j, t)),
            );
            let args = MicroArgs {
                u: u_blk,
                v: v_blk,
                x: x_blk,
                c_blk: self.c_blk,
                cp_blk: self.cp_blk,
                beta: k > 0,
                next_u: next.0,
                next_x: next.1,
                output,
            };
            // SAFETY: panel (t, j, i) is owned by this task; pointers are
            // in bounds; scatter targets are 64-byte aligned (all offsets
            // are multiples of S) and disjoint from u/v/x.
            microkernel(self.n_blk, &args);
        }
    }

    /// The [`crate::ConvOptions::compensated`] reduction for panel
    /// `(t, j, i)`: each `C_blk` reduction block is multiplied into a
    /// per-slot product buffer (β = 0) and folded into the `x` panel with
    /// a Kahan–Neumaier compensation term, so the channel reduction's
    /// rounding error stays O(ε) instead of O(K·ε). The fused ⑥ scatter
    /// is done scalar from the compensated panel (the micro-kernel's
    /// in-register scatter would bypass the compensation).
    ///
    /// # Safety
    /// Same panel-ownership contract as [`Stage2Ctx::panel`], plus
    /// exclusive use of `cbufs[slot]` (the Executor slot contract).
    unsafe fn compensated_panel(
        &self,
        cbufs: &[CompBufCell],
        slot: usize,
        t: usize,
        j: usize,
        i: usize,
        row_ptrs: &[*mut f32],
    ) {
        // SAFETY: the caller holds `slot`, making this buffer exclusive.
        let buf = &mut *cbufs[slot].get();
        let panel_len = self.n_blk * self.cp_blk;
        let tmp = buf.tmp.as_mut_ptr();
        let comp = &mut buf.comp.as_mut_slice()[..panel_len];
        // SAFETY: panel (t, j, i) of x is owned by this task.
        let x_p = self.x.get().add(self.x_meta.block_offset(i, j, t));

        for k in 0..self.k_blocks {
            let args = MicroArgs {
                // SAFETY: block offsets in bounds by panel metadata.
                u: self.u.as_ptr().add(self.u.block_offset(i, k, t)),
                v: self.v.as_ptr().add(self.v.block_offset(k, j, t)),
                x: tmp,
                c_blk: self.c_blk,
                cp_blk: self.cp_blk,
                beta: false,
                next_u: std::ptr::null(),
                next_x: std::ptr::null(),
                output: Output::Block,
            };
            // SAFETY: tmp is an exclusive panel-sized aligned buffer.
            microkernel(self.n_blk, &args);
            if k == 0 {
                // SAFETY: tmp and the x panel are panel_len floats each.
                std::ptr::copy_nonoverlapping(tmp as *const f32, x_p, panel_len);
                comp.fill(0.0);
            } else {
                for e in 0..panel_len {
                    // Kahan: fold the block product into the accumulator,
                    // carrying the rounding remainder in `comp`.
                    // SAFETY: e < panel_len, in bounds of tmp and x panel.
                    let y = *tmp.add(e) - comp[e];
                    let s = *x_p.add(e);
                    let sum = s + y;
                    comp[e] = (sum - s) - y;
                    *x_p.add(e) = sum;
                }
            }
        }

        if self.fused {
            // Scalar operation ⑥ for the compensated panel: each panel
            // row scatters as cp_blk/S channel-group vectors with
            // `group_stride` between groups (same addressing as the
            // micro-kernel's fused scatter, minus the NT stores).
            for (jj, &rp) in row_ptrs.iter().enumerate().take(self.n_blk) {
                if rp.is_null() {
                    continue;
                }
                for c in 0..self.cp_blk {
                    // SAFETY: same destination addressing as the fused
                    // micro-kernel scatter; rp spans cp_blk/S groups.
                    *rp.add((c / S) * self.group_stride + c % S) =
                        *x_p.add(jj * self.cp_blk + c);
                }
            }
        }
    }
}

/// Operation ⑤(+⑥): multiply transformed inputs by transformed kernels.
/// Reads `scratch.u` / `scratch.v`, produces the tile-major `scratch.y`
/// (via fused scatter, or via `scratch.x` plus a copy pass when the fusion
/// is disabled).
pub fn multiply(
    layer: &WinogradLayer,
    scratch: &mut Scratch,
    exec: &dyn Executor,
) -> Result<(), WinoError> {
    // Zero-sized placeholder: swapping `v` out must not allocate — the
    // serving hot path counts on repeat forwards being allocation-free.
    let v = std::mem::replace(&mut scratch.v, wino_tensor::BlockedMatrices::placeholder());
    let result = multiply_with(layer, scratch, &v, exec);
    scratch.v = v;
    result
}

/// As [`multiply`], but against externally stored kernel transforms — the
/// inference-only "FX" mode (§4.2 "Inference only"): `V` is memoised once
/// per network and `scratch.v` is never touched.
pub fn multiply_with(
    layer: &WinogradLayer,
    scratch: &mut Scratch,
    v_ext: &wino_tensor::BlockedMatrices,
    exec: &dyn Executor,
) -> Result<(), WinoError> {
    ensure_eq("kernel-transform tile count", layer.t_vol(), v_ext.t_count())?;
    ensure_eq("kernel-transform rows", layer.shape.in_channels, v_ext.rows())?;
    ensure_eq("kernel-transform cols", layer.shape.out_channels, v_ext.cols())?;
    ensure_eq("kernel-transform C_blk", layer.block.c_blk, v_ext.rb())?;
    ensure_eq("kernel-transform C'_blk", layer.block.cp_blk, v_ext.cb())?;
    let t_vol = layer.t_vol();
    let row_blocks = scratch.u.row_blocks();
    let col_blocks = v_ext.col_blocks();
    let fused = layer.opts.schedule.fuses_scatter();

    let dims = [t_vol, col_blocks, row_blocks];
    let x_ptr = scratch.x.as_mut_ptr();
    let y_ptr = scratch.y.as_mut_ptr();
    let ctx = Stage2Ctx::new(
        layer,
        &scratch.u,
        v_ext,
        x_ptr,
        &scratch.x,
        y_ptr,
        &scratch.y,
        layer.opts.streaming_stores,
        scratch.comp_bufs(),
    );
    let stage_start = crate::spans::span_start();

    exec.run_grid(&dims, &|slot, flat| {
        let i = flat % row_blocks;
        let j = (flat / row_blocks) % col_blocks;
        let t = flat / (row_blocks * col_blocks);
        // SAFETY: the grid enumerates each (t, j, i) exactly once, so
        // tasks own disjoint panels, and `slot` is held by this task.
        unsafe { ctx.panel(slot, t, j, i) };
    })?;
    // The unfused copy pass is still operation ⑥ — part of this stage's
    // coordinator span, so fused/unfused ablations compare like for like.
    if !fused {
        scatter_pass(layer, scratch, exec)?;
    }
    crate::spans::record_coord(exec, wino_probe::SpanCategory::ElementwiseGemm, stage_start);
    #[cfg(feature = "fault-inject")]
    if wino_sched::fault::take_poison_stage(2) {
        scratch.y.as_mut_slice()[0] = f32::NAN;
    }
    #[cfg(feature = "fault-inject")]
    if let Some(kind) = wino_sched::fault::take_corruption(2) {
        corrupt_y(scratch.y.as_mut_slice(), kind);
    }
    Ok(())
}

/// Apply one armed corruption to the transformed-output tensor `y` —
/// the deterministic fault model for the accuracy-sentinel tests. All
/// three kinds keep the data *finite*, so `check_finite` cannot see
/// them: only output verification can.
#[cfg(feature = "fault-inject")]
fn corrupt_y(y: &mut [f32], kind: wino_sched::fault::CorruptKind) {
    use wino_sched::fault::CorruptKind;
    match kind {
        // Flip a high mantissa/exponent bit of one element: a large but
        // finite single-element excursion (bit 27 keeps the exponent
        // below the infinity threshold for tensor-scale values).
        CorruptKind::BitFlip => {
            let i = y.len() / 3;
            y[i] = f32::from_bits(y[i].to_bits() ^ (1 << 27));
        }
        // Overwrite a stretch with subnormals: numerically near-zero
        // (silently wrong results) and a throughput hazard on cores
        // that microcode-assist denormal arithmetic.
        CorruptKind::DenormalStorm => {
            let n = y.len();
            for v in y[n / 4..n / 2].iter_mut() {
                *v = 1.0e-40;
            }
        }
        // Add a finite bias to a block of elements: the classic silent
        // data corruption — no NaN, no Inf, plausible magnitudes
        // elsewhere, wrong answer.
        CorruptKind::SilentBias => {
            let n = y.len();
            for v in y[0..n / 8].iter_mut() {
                *v += 64.0;
            }
        }
    }
}

/// The unfused alternative to operation ⑥: copy `scratch.x` into the
/// tile-major `scratch.y` in a separate parallel pass.
fn scatter_pass(
    layer: &WinogradLayer,
    scratch: &mut Scratch,
    exec: &dyn Executor,
) -> Result<(), WinoError> {
    let t_vol = layer.t_vol();
    let n_tiles = layer.n_tiles();
    let (n_blk, cp_blk) = (layer.block.n_blk, layer.block.cp_blk);
    let col_blocks = scratch.x.col_blocks();
    let t_stride = n_blk * cp_blk;
    let streaming = layer.opts.streaming_stores;

    let dims = [layer.shape.batch, layer.shape.out_channels / S, n_tiles];
    let y_ptr = MutPtr(scratch.y.as_mut_ptr());
    let x = &scratch.x;
    let y_meta = &scratch.y;

    exec.run_grid(&dims, &|_slot, flat| {
        let n = flat % n_tiles;
        let og = (flat / n_tiles) % dims[1];
        let b = flat / (n_tiles * dims[1]);
        let n_prime = b * n_tiles + n;
        let (rb_i, r_in) = (n_prime / n_blk, n_prime % n_blk);
        let col = og * S;
        let (cb_i, c_in) = (col / cp_blk, col % cp_blk);
        let src_base = ((rb_i * col_blocks + cb_i) * t_vol) * t_stride + r_in * cp_blk + c_in;
        let dst_base = y_meta.vec_offset(b, og, n, 0);
        // SAFETY: disjoint (b, og, n) per task; offsets in bounds.
        unsafe {
            let src = x.as_ptr();
            let dst = y_ptr.get();
            for t in 0..t_vol {
                let v = F32x16::load(src.add(src_base + t * t_stride));
                if streaming {
                    v.store_nt(dst.add(dst_base + t * S));
                } else {
                    v.store(dst.add(dst_base + t * S));
                }
            }
        }
    })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ConvOptions, Schedule, WinogradLayer};
    use wino_sched::{SerialExecutor, StaticExecutor};
    use wino_tensor::ConvShape;

    fn make(fused: bool, c: usize, cp: usize) -> (WinogradLayer, Scratch) {
        let s = ConvShape::new(2, c, cp, &[10, 10], &[3, 3], &[1, 1]).unwrap();
        let schedule = if fused { Schedule::FusedScatter } else { Schedule::Unfused };
        let opts = ConvOptions { schedule, ..Default::default() };
        let layer = WinogradLayer::new(s, &[4, 4], opts).unwrap();
        let scratch = Scratch::new(&layer, 4);
        (layer, scratch)
    }

    fn fill_uv(scratch: &mut Scratch) {
        for (i, f) in scratch.u.as_mut_slice().iter_mut().enumerate() {
            *f = ((i.wrapping_mul(2654435761) >> 18) & 0x3f) as f32 / 32.0 - 1.0;
        }
        for (i, f) in scratch.v.as_mut_slice().iter_mut().enumerate() {
            *f = ((i.wrapping_mul(0x9E3779B9) >> 18) & 0x3f) as f32 / 32.0 - 1.0;
        }
    }

    /// Oracle: y(b, c', n, t) = Σ_c U_t[n', c] · V_t[c, c'].
    fn oracle(layer: &WinogradLayer, scratch: &Scratch, b: usize, cp: usize, n: usize, t: usize) -> f32 {
        let n_prime = b * layer.n_tiles() + n;
        let mut acc = 0.0f64;
        for c in 0..layer.shape.in_channels {
            acc += scratch.u.get(t, n_prime, c) as f64 * scratch.v.get(t, c, cp) as f64;
        }
        acc as f32
    }

    fn check_y(layer: &WinogradLayer, scratch: &Scratch) {
        for b in 0..layer.shape.batch {
            for cp in [0, 15, 17, layer.shape.out_channels - 1] {
                for n in [0, layer.n_tiles() - 1] {
                    for t in [0, layer.t_vol() / 2, layer.t_vol() - 1] {
                        let got = scratch.y.tile(b, cp / S, n)[t * S + cp % S];
                        let want = oracle(layer, scratch, b, cp, n, t);
                        assert!(
                            (got - want).abs() <= 1e-3 * want.abs().max(1.0),
                            "b={b} c'={cp} n={n} t={t}: {got} vs {want}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fused_scatter_produces_correct_y() {
        let (layer, mut scratch) = make(true, 32, 32);
        fill_uv(&mut scratch);
        multiply(&layer, &mut scratch, &SerialExecutor).unwrap();
        check_y(&layer, &scratch);
    }

    #[test]
    fn unfused_matches_fused() {
        let (layer_f, mut sf) = make(true, 32, 48);
        let (layer_u, mut su) = make(false, 32, 48);
        fill_uv(&mut sf);
        fill_uv(&mut su);
        assert_eq!(sf.u.as_slice(), su.u.as_slice());
        multiply(&layer_f, &mut sf, &SerialExecutor).unwrap();
        multiply(&layer_u, &mut su, &SerialExecutor).unwrap();
        assert_eq!(sf.y.as_slice(), su.y.as_slice());
    }

    #[test]
    fn parallel_matches_serial() {
        let (layer, mut s1) = make(true, 32, 32);
        let (_, mut s2) = make(true, 32, 32);
        fill_uv(&mut s1);
        fill_uv(&mut s2);
        multiply(&layer, &mut s1, &SerialExecutor).unwrap();
        let pool = StaticExecutor::new(4);
        multiply(&layer, &mut s2, &pool).unwrap();
        assert_eq!(s1.y.as_slice(), s2.y.as_slice());
    }

    #[test]
    fn multi_k_block_reduction() {
        // Force C > C_blk so beta-accumulation + fused scatter interact.
        let s = ConvShape::new(1, 64, 32, &[6, 6], &[3, 3], &[1, 1]).unwrap();
        let opts = ConvOptions {
            block: Some(wino_gemm::BlockShape { n_blk: 5, c_blk: 32, cp_blk: 16 }),
            ..Default::default()
        };
        let layer = WinogradLayer::new(s, &[2, 2], opts).unwrap();
        let mut scratch = Scratch::new(&layer, 1);
        fill_uv(&mut scratch);
        multiply(&layer, &mut scratch, &SerialExecutor).unwrap();
        check_y(&layer, &scratch);
    }
}
