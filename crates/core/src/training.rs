//! Training-mode gradients through the Winograd engine.
//!
//! The paper benchmarks the *training configuration* (kernels transformed
//! every invocation, batch > 1) but, like most convolution-kernel papers,
//! only times the forward pass. Completing the training story costs
//! nothing extra algorithmically, because both gradients *are*
//! convolutions:
//!
//! * **data gradient** — `∂L/∂input` is the correlation of `∂L/∂output`
//!   with the *spatially flipped, channel-transposed* kernels under
//!   "full" padding `r − 1 − p`; it runs through the very same
//!   N-dimensional Winograd pipeline (this is also how frameworks
//!   implement `conv_backward_data`);
//! * **filter gradient** — `∂L/∂W` is a batch-reduced correlation of the
//!   input with `∂L/∂output`; provided here as a direct reference
//!   implementation (its matrix shapes — tiny spatial extent, huge
//!   reduction — do not fit the tall-skinny Winograd profile).

use wino_tensor::{ConvShape, SimpleImage, SimpleKernels};

use crate::conv::convolve_simple;
use crate::error::WinoError;

/// Spatially flip a kernel bank along every dimension and swap its
/// input/output channel roles: the kernel bank of the data-gradient
/// convolution.
pub fn flip_transpose_kernels(k: &SimpleKernels) -> SimpleKernels {
    let mut out = SimpleKernels::zeros(k.in_channels, k.out_channels, &k.dims);
    let vol = k.spatial_volume();
    for co in 0..k.out_channels {
        for ci in 0..k.in_channels {
            for s in 0..vol {
                let coords = wino_tensor::unflatten(s, &k.dims);
                let flipped: Vec<usize> =
                    coords.iter().zip(&k.dims).map(|(&c, &d)| d - 1 - c).collect();
                let v = k.get(co, ci, &coords);
                out.set(ci, co, &flipped, v);
            }
        }
    }
    out
}

/// `∂L/∂input` for a stride-1 convolution layer, computed with the
/// Winograd engine (`m` is the output-tile size of the *gradient*
/// convolution). `grad_output` must have the layer's output shape.
pub fn backward_data(
    shape: &ConvShape,
    grad_output: &SimpleImage,
    kernels: &SimpleKernels,
    m: &[usize],
) -> Result<SimpleImage, WinoError> {
    assert_eq!(grad_output.dims, shape.out_dims(), "grad_output has wrong shape");
    assert_eq!(grad_output.channels, shape.out_channels);
    assert_eq!(kernels.out_channels, shape.out_channels);
    assert_eq!(kernels.in_channels, shape.in_channels);
    let full_pad: Vec<usize> = (0..shape.rank())
        .map(|d| shape.kernel_dims[d] - 1 - shape.padding[d])
        .collect();
    let flipped = flip_transpose_kernels(kernels);
    convolve_simple(grad_output, &flipped, &full_pad, m)
}

/// `∂L/∂W` for a stride-1 convolution layer (direct reference
/// implementation, `f64` accumulation).
pub fn backward_filter(
    shape: &ConvShape,
    input: &SimpleImage,
    grad_output: &SimpleImage,
) -> SimpleKernels {
    assert_eq!(input.dims, shape.image_dims);
    assert_eq!(grad_output.dims, shape.out_dims());
    let rank = shape.rank();
    let mut gw = SimpleKernels::zeros(shape.out_channels, shape.in_channels, &shape.kernel_dims);
    let out_dims = shape.out_dims();
    let out_vol: usize = out_dims.iter().product();
    let ker_vol: usize = shape.kernel_dims.iter().product();
    for co in 0..shape.out_channels {
        for ci in 0..shape.in_channels {
            for k in 0..ker_vol {
                let kc = wino_tensor::unflatten(k, &shape.kernel_dims);
                let mut acc = 0.0f64;
                for b in 0..shape.batch {
                    for o in 0..out_vol {
                        let oc = wino_tensor::unflatten(o, &out_dims);
                        let coords: Vec<isize> = (0..rank)
                            .map(|d| (oc[d] + kc[d]) as isize - shape.padding[d] as isize)
                            .collect();
                        let x = input.get_padded(b, ci, &coords);
                        if x != 0.0 {
                            acc += x as f64 * grad_output.get(b, co, &oc) as f64;
                        }
                    }
                }
                gw.set(co, ci, &kc, acc as f32);
            }
        }
    }
    gw
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dot_img(a: &SimpleImage, b: &SimpleImage) -> f64 {
        a.data.iter().zip(&b.data).map(|(&x, &y)| x as f64 * y as f64).sum()
    }

    fn dot_ker(a: &SimpleKernels, b: &SimpleKernels) -> f64 {
        a.data.iter().zip(&b.data).map(|(&x, &y)| x as f64 * y as f64).sum()
    }

    fn setup(pad: usize) -> (ConvShape, SimpleImage, SimpleKernels, SimpleImage) {
        let shape = ConvShape::new(1, 16, 16, &[10, 10], &[3, 3], &[pad, pad]).unwrap();
        let x = SimpleImage::from_fn(1, 16, &[10, 10], |_, c, xy| {
            ((c * 7 + xy[0] * 3 + xy[1]) % 11) as f32 * 0.1 - 0.5
        });
        let w = SimpleKernels::from_fn(16, 16, &[3, 3], |co, ci, xy| {
            ((co + ci * 5 + xy[0] + xy[1] * 2) % 7) as f32 * 0.2 - 0.6
        });
        let out_dims = shape.out_dims();
        let gy = SimpleImage::from_fn(1, 16, &out_dims, |_, c, xy| {
            ((c * 3 + xy[0] + xy[1] * 5) % 13) as f32 * 0.07 - 0.4
        });
        (shape, x, w, gy)
    }

    #[test]
    fn flip_transpose_involution() {
        let (_, _, w, _) = setup(1);
        let ft = flip_transpose_kernels(&w);
        assert_eq!(ft.out_channels, w.in_channels);
        assert_eq!(ft.in_channels, w.out_channels);
        assert_eq!(flip_transpose_kernels(&ft), w);
    }

    /// The adjoint (dot-product) test: ⟨conv(x, w), gy⟩ = ⟨x, convᵀ(gy, w)⟩
    /// for the bilinear forward map — the canonical correctness check for
    /// a backward pass.
    #[test]
    fn backward_data_is_the_adjoint_of_forward() {
        for pad in [0usize, 1] {
            let (shape, x, w, gy) = setup(pad);
            let y = convolve_simple(&x, &w, &shape.padding, &[2, 2]).unwrap();
            let gx = backward_data(&shape, &gy, &w, &[2, 2]).unwrap();
            assert_eq!(gx.dims, shape.image_dims);
            let lhs = dot_img(&y, &gy);
            let rhs = dot_img(&x, &gx);
            assert!(
                (lhs - rhs).abs() <= 1e-3 * lhs.abs().max(1.0),
                "pad={pad}: ⟨y,gy⟩={lhs} vs ⟨x,gx⟩={rhs}"
            );
        }
    }

    #[test]
    fn backward_filter_is_the_adjoint_in_w() {
        let (shape, x, w, gy) = setup(1);
        let y = convolve_simple(&x, &w, &shape.padding, &[4, 4]).unwrap();
        let gw = backward_filter(&shape, &x, &gy);
        let lhs = dot_img(&y, &gy);
        let rhs = dot_ker(&w, &gw);
        assert!(
            (lhs - rhs).abs() <= 1e-3 * lhs.abs().max(1.0),
            "⟨y,gy⟩={lhs} vs ⟨w,gw⟩={rhs}"
        );
    }

    #[test]
    fn backward_data_3d() {
        let shape = ConvShape::new(1, 16, 16, &[4, 6, 6], &[3, 3, 3], &[1, 1, 1]).unwrap();
        let x = SimpleImage::from_fn(1, 16, &[4, 6, 6], |_, c, xyz| {
            ((c + xyz.iter().sum::<usize>()) % 9) as f32 * 0.1
        });
        let w = SimpleKernels::from_fn(16, 16, &[3, 3, 3], |co, ci, xyz| {
            ((co * 2 + ci + xyz.iter().sum::<usize>()) % 5) as f32 * 0.2 - 0.4
        });
        let gy = SimpleImage::from_fn(1, 16, &shape.out_dims(), |_, c, xyz| {
            ((c * 3 + xyz.iter().sum::<usize>() * 2) % 7) as f32 * 0.1 - 0.3
        });
        let y = convolve_simple(&x, &w, &shape.padding, &[2, 2, 2]).unwrap();
        let gx = backward_data(&shape, &gy, &w, &[2, 2, 2]).unwrap();
        let lhs = dot_img(&y, &gy);
        let rhs = dot_img(&x, &gx);
        assert!((lhs - rhs).abs() <= 1e-3 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }
}
