//! Training-mode gradients through the Winograd engine.
//!
//! The paper benchmarks the *training configuration* (kernels transformed
//! every invocation, batch > 1) but, like most convolution-kernel papers,
//! only times the forward pass. Completing the training story costs
//! nothing extra algorithmically, because both gradients *are*
//! convolutions:
//!
//! * **data gradient** — `∂L/∂input` is the correlation of `∂L/∂output`
//!   with the *spatially flipped, channel-transposed* kernels under
//!   "full" padding `r − 1 − p`; it runs through the very same
//!   N-dimensional Winograd pipeline (this is also how frameworks
//!   implement `conv_backward_data`);
//! * **filter gradient** — `∂L/∂W` is a batch-reduced correlation of the
//!   input with `∂L/∂output`; provided here as a direct reference
//!   implementation (its matrix shapes — tiny spatial extent, huge
//!   reduction — do not fit the tall-skinny Winograd profile).
//!
//! Both gradients are **numerically guarded**: a NaN or Inf anywhere in
//! the incoming `∂L/∂output` (the classic exploding-loss signature) or in
//! a produced gradient is a typed [`WinoError::Numeric`] instead of a
//! silent poison that corrupts every parameter on the next optimiser
//! step. [`backward_data_with_sentinel`] additionally re-verifies a
//! seeded sample of gradient tiles against the f64 oracle — the training
//! half of the accuracy-sentinel subsystem (`crate::sentinel`), where a
//! trip is [`WinoError::Sentinel`] because a gradient, unlike an
//! activation, has no im2col rescue ladder to hide in.

use wino_tensor::{BlockedImage, BlockedKernels, ConvShape, SimpleImage, SimpleKernels};

use crate::conv::convolve_simple;
use crate::error::{check_finite, WinoError};
use crate::plan::{ConvOptions, WinogradLayer};
use crate::sentinel::{verify_sample, SentinelConfig};

/// Spatially flip a kernel bank along every dimension and swap its
/// input/output channel roles: the kernel bank of the data-gradient
/// convolution.
pub fn flip_transpose_kernels(k: &SimpleKernels) -> SimpleKernels {
    let mut out = SimpleKernels::zeros(k.in_channels, k.out_channels, &k.dims);
    let vol = k.spatial_volume();
    for co in 0..k.out_channels {
        for ci in 0..k.in_channels {
            for s in 0..vol {
                let coords = wino_tensor::unflatten(s, &k.dims);
                let flipped: Vec<usize> =
                    coords.iter().zip(&k.dims).map(|(&c, &d)| d - 1 - c).collect();
                let v = k.get(co, ci, &coords);
                out.set(ci, co, &flipped, v);
            }
        }
    }
    out
}

/// `∂L/∂input` for a stride-1 convolution layer, computed with the
/// Winograd engine (`m` is the output-tile size of the *gradient*
/// convolution). `grad_output` must have the layer's output shape.
pub fn backward_data(
    shape: &ConvShape,
    grad_output: &SimpleImage,
    kernels: &SimpleKernels,
    m: &[usize],
) -> Result<SimpleImage, WinoError> {
    assert_eq!(grad_output.dims, shape.out_dims(), "grad_output has wrong shape");
    assert_eq!(grad_output.channels, shape.out_channels);
    assert_eq!(kernels.out_channels, shape.out_channels);
    assert_eq!(kernels.in_channels, shape.in_channels);
    // Guard the *incoming* gradient first: mid-training NaN (exploding
    // loss, poisoned optimiser state) would otherwise spread through the
    // transforms into every grad_input element with no attribution.
    check_finite("grad_output", &grad_output.data)?;
    check_finite("kernels", &kernels.data)?;
    let full_pad: Vec<usize> = (0..shape.rank())
        .map(|d| shape.kernel_dims[d] - 1 - shape.padding[d])
        .collect();
    let flipped = flip_transpose_kernels(kernels);
    let gx = convolve_simple(grad_output, &flipped, &full_pad, m)?;
    check_finite("grad_input", &gx.data)?;
    Ok(gx)
}

/// The [`ConvShape`] of the data-gradient convolution itself (the layer
/// the gradient pass *is*): out-channels correlate back to in-channels
/// over the output grid under "full" padding.
pub fn gradient_shape(shape: &ConvShape) -> Result<ConvShape, WinoError> {
    let full_pad: Vec<usize> = (0..shape.rank())
        .map(|d| shape.kernel_dims[d] - 1 - shape.padding[d])
        .collect();
    Ok(ConvShape::new(
        shape.batch,
        shape.out_channels,
        shape.in_channels,
        &shape.out_dims(),
        &shape.kernel_dims,
        &full_pad,
    )?)
}

/// [`backward_data`] plus the accuracy sentinels: after the guarded
/// gradient convolution, a seeded sample of `∂L/∂input` tiles is
/// re-verified against the f64 direct oracle (see [`crate::sentinel`]).
/// A trip is a hard [`WinoError::Sentinel`] — training has no im2col
/// degradation ladder, and silently corrupt gradients are precisely what
/// the sentinels exist to catch. `cfg.samples == 0` makes this exactly
/// [`backward_data`].
pub fn backward_data_with_sentinel(
    shape: &ConvShape,
    grad_output: &SimpleImage,
    kernels: &SimpleKernels,
    m: &[usize],
    cfg: &SentinelConfig,
    layer_index: usize,
) -> Result<SimpleImage, WinoError> {
    let gx = backward_data(shape, grad_output, kernels, m)?;
    if cfg.samples == 0 {
        return Ok(gx);
    }
    // Re-plan the gradient convolution to verify against: same plan
    // `convolve_simple` built inside `backward_data`.
    let gshape = gradient_shape(shape)?;
    let plan = WinogradLayer::new(gshape, m, ConvOptions::default())?;
    let input = BlockedImage::from_simple(grad_output)?;
    let bkernels = BlockedKernels::from_simple(&flip_transpose_kernels(kernels))?;
    let output = BlockedImage::from_simple(&gx)?;
    match verify_sample(&plan, &input, &bkernels, &output, cfg, layer_index) {
        Ok(checked) => {
            wino_probe::Counter::SentinelTilesChecked.add(checked as u64);
            Ok(gx)
        }
        Err(trip) => {
            wino_probe::Counter::SentinelTrips.add(1);
            Err(trip.into())
        }
    }
}

/// `∂L/∂W` for a stride-1 convolution layer (direct reference
/// implementation, `f64` accumulation), guarded like [`backward_data`]:
/// non-finite inputs or outputs are a typed error, never a silently
/// poisoned weight update.
pub fn backward_filter(
    shape: &ConvShape,
    input: &SimpleImage,
    grad_output: &SimpleImage,
) -> Result<SimpleKernels, WinoError> {
    assert_eq!(input.dims, shape.image_dims);
    assert_eq!(grad_output.dims, shape.out_dims());
    check_finite("input", &input.data)?;
    check_finite("grad_output", &grad_output.data)?;
    let rank = shape.rank();
    let mut gw = SimpleKernels::zeros(shape.out_channels, shape.in_channels, &shape.kernel_dims);
    let out_dims = shape.out_dims();
    let out_vol: usize = out_dims.iter().product();
    let ker_vol: usize = shape.kernel_dims.iter().product();
    for co in 0..shape.out_channels {
        for ci in 0..shape.in_channels {
            for k in 0..ker_vol {
                let kc = wino_tensor::unflatten(k, &shape.kernel_dims);
                let mut acc = 0.0f64;
                for b in 0..shape.batch {
                    for o in 0..out_vol {
                        let oc = wino_tensor::unflatten(o, &out_dims);
                        let coords: Vec<isize> = (0..rank)
                            .map(|d| (oc[d] + kc[d]) as isize - shape.padding[d] as isize)
                            .collect();
                        let x = input.get_padded(b, ci, &coords);
                        if x != 0.0 {
                            acc += x as f64 * grad_output.get(b, co, &oc) as f64;
                        }
                    }
                }
                gw.set(co, ci, &kc, acc as f32);
            }
        }
    }
    check_finite("grad_filter", &gw.data)?;
    Ok(gw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dot_img(a: &SimpleImage, b: &SimpleImage) -> f64 {
        a.data.iter().zip(&b.data).map(|(&x, &y)| x as f64 * y as f64).sum()
    }

    fn dot_ker(a: &SimpleKernels, b: &SimpleKernels) -> f64 {
        a.data.iter().zip(&b.data).map(|(&x, &y)| x as f64 * y as f64).sum()
    }

    fn setup(pad: usize) -> (ConvShape, SimpleImage, SimpleKernels, SimpleImage) {
        let shape = ConvShape::new(1, 16, 16, &[10, 10], &[3, 3], &[pad, pad]).unwrap();
        let x = SimpleImage::from_fn(1, 16, &[10, 10], |_, c, xy| {
            ((c * 7 + xy[0] * 3 + xy[1]) % 11) as f32 * 0.1 - 0.5
        });
        let w = SimpleKernels::from_fn(16, 16, &[3, 3], |co, ci, xy| {
            ((co + ci * 5 + xy[0] + xy[1] * 2) % 7) as f32 * 0.2 - 0.6
        });
        let out_dims = shape.out_dims();
        let gy = SimpleImage::from_fn(1, 16, &out_dims, |_, c, xy| {
            ((c * 3 + xy[0] + xy[1] * 5) % 13) as f32 * 0.07 - 0.4
        });
        (shape, x, w, gy)
    }

    #[test]
    fn flip_transpose_involution() {
        let (_, _, w, _) = setup(1);
        let ft = flip_transpose_kernels(&w);
        assert_eq!(ft.out_channels, w.in_channels);
        assert_eq!(ft.in_channels, w.out_channels);
        assert_eq!(flip_transpose_kernels(&ft), w);
    }

    /// The adjoint (dot-product) test: ⟨conv(x, w), gy⟩ = ⟨x, convᵀ(gy, w)⟩
    /// for the bilinear forward map — the canonical correctness check for
    /// a backward pass.
    #[test]
    fn backward_data_is_the_adjoint_of_forward() {
        for pad in [0usize, 1] {
            let (shape, x, w, gy) = setup(pad);
            let y = convolve_simple(&x, &w, &shape.padding, &[2, 2]).unwrap();
            let gx = backward_data(&shape, &gy, &w, &[2, 2]).unwrap();
            assert_eq!(gx.dims, shape.image_dims);
            let lhs = dot_img(&y, &gy);
            let rhs = dot_img(&x, &gx);
            assert!(
                (lhs - rhs).abs() <= 1e-3 * lhs.abs().max(1.0),
                "pad={pad}: ⟨y,gy⟩={lhs} vs ⟨x,gx⟩={rhs}"
            );
        }
    }

    #[test]
    fn backward_filter_is_the_adjoint_in_w() {
        let (shape, x, w, gy) = setup(1);
        let y = convolve_simple(&x, &w, &shape.padding, &[4, 4]).unwrap();
        let gw = backward_filter(&shape, &x, &gy).unwrap();
        let lhs = dot_img(&y, &gy);
        let rhs = dot_ker(&w, &gw);
        assert!(
            (lhs - rhs).abs() <= 1e-3 * lhs.abs().max(1.0),
            "⟨y,gy⟩={lhs} vs ⟨w,gw⟩={rhs}"
        );
    }

    #[test]
    fn backward_data_3d() {
        let shape = ConvShape::new(1, 16, 16, &[4, 6, 6], &[3, 3, 3], &[1, 1, 1]).unwrap();
        let x = SimpleImage::from_fn(1, 16, &[4, 6, 6], |_, c, xyz| {
            ((c + xyz.iter().sum::<usize>()) % 9) as f32 * 0.1
        });
        let w = SimpleKernels::from_fn(16, 16, &[3, 3, 3], |co, ci, xyz| {
            ((co * 2 + ci + xyz.iter().sum::<usize>()) % 5) as f32 * 0.2 - 0.4
        });
        let gy = SimpleImage::from_fn(1, 16, &shape.out_dims(), |_, c, xyz| {
            ((c * 3 + xyz.iter().sum::<usize>() * 2) % 7) as f32 * 0.1 - 0.3
        });
        let y = convolve_simple(&x, &w, &shape.padding, &[2, 2, 2]).unwrap();
        let gx = backward_data(&shape, &gy, &w, &[2, 2, 2]).unwrap();
        let lhs = dot_img(&y, &gy);
        let rhs = dot_img(&x, &gx);
        assert!((lhs - rhs).abs() <= 1e-3 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    /// Regression: a NaN appearing mid-training (the exploding-loss
    /// signature) must surface as a typed error from every gradient
    /// entry point — attributed to the buffer it arrived in — instead of
    /// silently poisoning the next parameter update.
    #[test]
    fn nan_mid_training_is_a_typed_error_not_a_poisoned_update() {
        let (shape, x, w, mut gy) = setup(1);
        gy.data[7] = f32::NAN;

        let err = backward_data(&shape, &gy, &w, &[2, 2]).unwrap_err();
        match err {
            WinoError::Numeric(e) => assert_eq!(e.stage, "grad_output"),
            other => panic!("expected Numeric(grad_output), got {other:?}"),
        }
        let err = backward_filter(&shape, &x, &gy).unwrap_err();
        assert!(matches!(err, WinoError::Numeric(e) if e.stage == "grad_output"));

        // Non-finite *kernels* (e.g. a diverged weight) are caught too.
        let (_, _, mut w_bad, gy_ok) = setup(1);
        w_bad.data[0] = f32::INFINITY;
        let err = backward_data(&shape, &gy_ok, &w_bad, &[2, 2]).unwrap_err();
        assert!(matches!(err, WinoError::Numeric(e) if e.stage == "kernels"));
    }

    /// The sentinel hook: a clean gradient passes the sampled f64
    /// re-verification; a corrupted gradient result would trip it. Here
    /// the clean path is exercised end-to-end (the corrupt path is
    /// covered by the fault-injection battery), plus `samples == 0`
    /// reduces to plain `backward_data`.
    #[test]
    fn backward_data_sentinel_verifies_the_gradient() {
        let (shape, _, w, gy) = setup(1);
        let cfg = SentinelConfig::sampled(4, 11);
        let gx = backward_data_with_sentinel(&shape, &gy, &w, &[2, 2], &cfg, 0).unwrap();
        let plain = backward_data(&shape, &gy, &w, &[2, 2]).unwrap();
        assert_eq!(gx.data, plain.data, "sentinel must not change the gradient");

        let off = SentinelConfig::off();
        let gx2 = backward_data_with_sentinel(&shape, &gy, &w, &[2, 2], &off, 0).unwrap();
        assert_eq!(gx2.data, plain.data);
    }

    /// The gradient-conv shape round-trips: its output grid is the
    /// layer's input grid (that is what `∂L/∂input` means).
    #[test]
    fn gradient_shape_maps_output_back_to_input() {
        for pad in [0usize, 1] {
            let (shape, ..) = setup(pad);
            let g = gradient_shape(&shape).unwrap();
            assert_eq!(g.out_dims(), shape.image_dims);
            assert_eq!(g.in_channels, shape.out_channels);
            assert_eq!(g.out_channels, shape.in_channels);
        }
    }
}
