//! Automatic `F(m, r)` tile-size selection and plan-time fallback.
//!
//! §5.1 shows that the best tile size depends on the layer: large `m`
//! saves multiplications but pads the output grid (ceil-division
//! overhang) and grows the transform cost quadratically. The paper picks
//! `m` per layer empirically (the Fig. 5 sweep); this module packages
//! that workflow: enumerate candidate tile vectors, time a real forward
//! pass for each, return the fastest plan. Numerical limits from Table 3
//! (f32: `m ≤ 6` per dimension for training, `m ≤ 8` for inference) bound
//! the search space.
//!
//! The module also hosts the *plan-time* half of the graceful-degradation
//! chain (`Jit → Mono → im2col`): [`FallbackPolicy`] says which downgrades
//! are allowed and [`plan_with_fallback`] applies the first link — retrying
//! a failed JIT plan with the monomorphised stage-2 backend. The remaining
//! links (im2col on plan failure or on a numeric-guard trip) live in
//! [`crate::net`], which owns layer execution.

use wino_sched::Executor;
use wino_tensor::{BlockedImage, BlockedKernels, ConvShape};
use wino_transforms::Conditioning;

use crate::error::WinoError;
use crate::plan::{AccuracyBudget, ConvOptions, PlanError, Scratch, Stage2Backend, WinogradLayer};
use crate::sentinel::SentinelConfig;

/// Which degradations the execution layer may apply instead of failing.
///
/// The full chain, applied in order: a JIT plan failure retries with the
/// Mono backend; a plan failure of any backend falls back to im2col; a
/// numeric-guard trip re-executes the layer with im2col. Disable links to
/// make the corresponding failure a hard error instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FallbackPolicy {
    /// On [`PlanError::Jit`], replan with [`Stage2Backend::Mono`].
    pub jit_to_mono: bool,
    /// If no Winograd plan exists at all, run the layer via the
    /// `wino-baseline` im2col convolution.
    pub im2col_on_plan_failure: bool,
    /// On [`PlanError::MemoryBudget`], re-plan with a smaller-footprint
    /// tile. Note the direction: memory re-tiling *grows* `m` (the
    /// transformed-data inflation `∏((m_d+r_d−1)/m_d)` shrinks as the
    /// tile grows), the opposite of the accuracy ladder. If no supported
    /// tile fits the budget the error stands (and, under
    /// `im2col_on_plan_failure`, the layer falls back to im2col, whose
    /// footprint is not scratch-bound).
    pub retile_on_memory: bool,
    /// Scan each layer's output for NaN/Inf after execution.
    pub check_numerics: bool,
    /// If the numeric guard trips, re-execute the layer via im2col
    /// (requires `check_numerics`; without this, a trip is an error).
    pub im2col_on_numeric: bool,
    /// Accuracy-sentinel sampling: re-verify a seeded random sample of
    /// output tiles against the f64 oracle after each layer forward. A
    /// trip (error above the a-priori bound) enters the degradation
    /// ladder: tile demotion first (if `sentinel.demote_tile`), then
    /// im2col. Disabled (`samples == 0`) by default — the spot check
    /// costs an f64 direct convolution per sampled tile.
    pub sentinel: SentinelConfig,
}

impl Default for FallbackPolicy {
    /// Everything enabled: maximum graceful degradation.
    fn default() -> Self {
        FallbackPolicy {
            jit_to_mono: true,
            im2col_on_plan_failure: true,
            retile_on_memory: true,
            check_numerics: true,
            im2col_on_numeric: true,
            sentinel: SentinelConfig::off(),
        }
    }
}

impl FallbackPolicy {
    /// No degradation: every failure is a hard error (the behaviour of the
    /// plain [`WinogradLayer::new`] / [`crate::Network::new`] APIs).
    pub fn strict() -> Self {
        FallbackPolicy {
            jit_to_mono: false,
            im2col_on_plan_failure: false,
            retile_on_memory: false,
            check_numerics: false,
            im2col_on_numeric: false,
            sentinel: SentinelConfig::off(),
        }
    }

    /// Default degradations plus sentinel sampling of `samples` tiles per
    /// layer under `seed`.
    pub fn with_sentinel(samples: u32, seed: u64) -> Self {
        FallbackPolicy { sentinel: SentinelConfig::sampled(samples, seed), ..Default::default() }
    }
}

/// Plan a layer, applying the policy's plan-time degradations.
///
/// `Ok((plan, Some(e)))` means the requested plan failed with `e` and the
/// returned plan carries a downgrade: [`Stage2Backend::Mono`] after a JIT
/// failure, or a re-tiled `m` after a [`PlanError::MemoryBudget`]
/// rejection. Failures the policy does not cover (or a retry that also
/// fails) are returned as `Err` — the caller decides whether im2col
/// absorbs them.
pub fn plan_with_fallback(
    shape: &ConvShape,
    m: &[usize],
    opts: ConvOptions,
    policy: &FallbackPolicy,
) -> Result<(WinogradLayer, Option<PlanError>), PlanError> {
    match WinogradLayer::new(shape.clone(), m, opts) {
        Ok(plan) => Ok((plan, None)),
        Err(e @ PlanError::Jit { .. }) if policy.jit_to_mono && opts.stage2 == Stage2Backend::Jit => {
            let mono = ConvOptions { stage2: Stage2Backend::Mono, ..opts };
            let plan = WinogradLayer::new(shape.clone(), m, mono)?;
            Ok((plan, Some(e)))
        }
        Err(e @ PlanError::MemoryBudget { .. }) if policy.retile_on_memory => {
            match fit_tile_to_memory(shape, m, &opts) {
                Some(mm) => {
                    let plan = WinogradLayer::new(shape.clone(), &mm, opts)?;
                    Ok((plan, Some(e)))
                }
                None => Err(e),
            }
        }
        Err(e) => Err(e),
    }
}

/// Find a tile that fits `opts.memory` by growing `m` from the rejected
/// tile (steps of 2 per dimension, capped by `SEARCH_MAX_M` and the
/// output extent). Growing is the memory-cheap direction: the
/// transformed-data scratch scales with `∏((m_d+r_d−1)/m_d)`, which
/// shrinks as the tile grows. Candidates that fail to plan for other
/// reasons (no codelet, accuracy budget) are skipped. `None` when
/// `opts.memory` is unset or no supported tile fits.
pub fn fit_tile_to_memory(
    shape: &ConvShape,
    m: &[usize],
    opts: &ConvOptions,
) -> Option<Vec<usize>> {
    let mb = opts.memory?;
    // Probe plans without the budget so the footprint can be evaluated.
    let probe = ConvOptions { memory: None, ..*opts };
    let out = shape.out_dims();
    let mut mm: Vec<usize> = m.to_vec();
    loop {
        let mut grew = false;
        for (d, v) in mm.iter_mut().enumerate() {
            if *v + 2 <= SEARCH_MAX_M.min(out[d]) {
                *v += 2;
                grew = true;
            }
        }
        if !grew {
            return None;
        }
        if let Ok(layer) = WinogradLayer::new(shape.clone(), &mm, probe) {
            if mb.admits(layer.footprint(mb.threads).total()) {
                return Some(mm);
            }
        }
    }
}

/// What the selected plan will be used for — a preset over
/// [`AccuracyBudget`]s. The largest admissible tile per dimension is no
/// longer a hard-coded table: it is *derived* from the exact transform
/// conditioning (`γ(m, r) · ε ≤ budget`, see
/// [`wino_transforms::Conditioning`]), which reproduces Table 3's f32
/// limits (`m ≤ 6` for training, `m ≤ 8` for inference, at `r = 3`) and
/// generalises them to every kernel size instead of assuming 3×3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Purpose {
    /// Error feeds back through gradients, so amplification must stay
    /// near rounding level: budget 1e-5 (admits `γ·ε` up to 1e-5, i.e.
    /// `m ≤ 6` for `r = 3` under the mixed point schedule).
    Training,
    /// A forward-only pass tolerates an order of magnitude more: budget
    /// 2e-4 (`m ≤ 8` for `r = 3`).
    Inference,
}

/// The largest tile the search may try per dimension, whatever the
/// budget admits — beyond `m = 8` the f32 transforms are useless even
/// for inference (Table 3).
pub(crate) const SEARCH_MAX_M: usize = 8;

impl Purpose {
    /// The accuracy budget this preset stands for.
    pub fn budget(self) -> AccuracyBudget {
        match self {
            Purpose::Training => AccuracyBudget::new(1e-5),
            Purpose::Inference => AccuracyBudget::new(2e-4),
        }
    }

    /// Largest `m ≤` [`SEARCH_MAX_M`] whose `F(m, r)` conditioning fits
    /// the budget under `opts.points` (0 if even `m = 2` does not fit).
    fn max_m(self, r: usize, opts: &ConvOptions) -> usize {
        let budget = self.budget();
        (2..=SEARCH_MAX_M)
            .rev()
            .find(|&m| budget.admits_gamma(Conditioning::for_schedule(m, r, opts.points).gamma))
            .unwrap_or(0)
    }
}

/// Candidate tile vectors for a layer: uniform tiles `2..=8` per
/// dimension, clipped so no dimension's tile exceeds its output extent
/// (larger would be pure padding) nor the purpose's budget-derived
/// conditioning cap for that dimension's kernel size.
pub fn candidate_tiles(shape: &ConvShape, purpose: Purpose, opts: &ConvOptions) -> Vec<Vec<usize>> {
    let out = shape.out_dims();
    let rank = shape.rank();
    let caps: Vec<usize> =
        shape.kernel_dims.iter().map(|&r| purpose.max_m(r, opts)).collect();
    let mut cands = Vec::new();
    for m in 2..=SEARCH_MAX_M {
        let tile: Vec<usize> = (0..rank).map(|d| m.min(out[d]).min(caps[d])).collect();
        if tile.contains(&0) {
            // A conditioning cap of 0: no tile fits the budget at all.
            continue;
        }
        if !cands.contains(&tile) {
            cands.push(tile);
        }
    }
    cands
}

/// Demote a tile vector per dimension (steps of 2, floor 2) until every
/// dimension's `F(m, r)` conditioning fits `budget`. Returns the fitted
/// tile, which may equal `m`; a dimension already at 2 stays at 2 even
/// when the budget is unreachable (the caller decides whether to plan it
/// anyway or fall back to a different backend).
pub fn fit_tile_to_budget(
    shape: &ConvShape,
    m: &[usize],
    budget: AccuracyBudget,
    opts: &ConvOptions,
) -> Vec<usize> {
    m.iter()
        .zip(&shape.kernel_dims)
        .map(|(&m0, &r)| {
            let mut mm = m0;
            while mm > 2
                && !budget.admits_gamma(Conditioning::for_schedule(mm, r, opts.points).gamma)
            {
                mm -= 2.min(mm - 2);
            }
            mm
        })
        .collect()
}

/// Result of a tile-size search.
pub struct Selection {
    pub plan: WinogradLayer,
    pub m: Vec<usize>,
    pub best_ms: f64,
    /// All timed candidates `(m, ms)`, fastest first.
    pub trials: Vec<(Vec<usize>, f64)>,
}

/// Empirically select the fastest `F(m, r)` for a layer by timing one
/// warm-up plus `reps` forward passes per candidate on synthetic data.
///
/// Unplannable candidates are skipped; an execution failure (worker panic,
/// watchdog timeout) aborts the search, since later timings on a degraded
/// pool would be meaningless. Returns an error only if *no* candidate is
/// plannable or execution failed.
pub fn select_tile(
    shape: &ConvShape,
    opts: ConvOptions,
    purpose: Purpose,
    exec: &dyn Executor,
    reps: usize,
) -> Result<Selection, WinoError> {
    // The purpose's budget becomes a plan-time invariant: even if the
    // candidate enumeration and the planner ever disagree, the planner's
    // own conditioning check rejects an over-budget tile. An explicit
    // (tighter or looser) budget in `opts` wins.
    let opts = ConvOptions { budget: opts.budget.or(Some(purpose.budget())), ..opts };
    let mut input = BlockedImage::zeros(shape.batch, shape.in_channels, &shape.image_dims)?;
    for (i, v) in input.as_mut_slice().iter_mut().enumerate() {
        *v = ((i * 2654435761) >> 22 & 0xff) as f32 / 1275.0 - 0.1;
    }
    let mut kernels =
        BlockedKernels::zeros(shape.in_channels, shape.out_channels, &shape.kernel_dims)?;
    for (i, v) in kernels.as_mut_slice().iter_mut().enumerate() {
        *v = ((i * 0x9E3779B9) >> 22 & 0xff) as f32 / 2550.0 - 0.05;
    }

    let mut trials: Vec<(Vec<usize>, f64)> = Vec::new();
    let mut last_err = None;
    for m in candidate_tiles(shape, purpose, &opts) {
        let plan = match WinogradLayer::new(shape.clone(), &m, opts) {
            Ok(p) => p,
            Err(e) => {
                last_err = Some(e);
                continue;
            }
        };
        let mut scratch = Scratch::new(&plan, exec.threads());
        let mut out = plan.new_output()?;
        plan.forward(&input, &kernels, &mut out, &mut scratch, exec)?; // warm-up
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let t0 = std::time::Instant::now();
            plan.forward(&input, &kernels, &mut out, &mut scratch, exec)?;
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        std::hint::black_box(out.as_slice().first());
        trials.push((m, best));
    }
    trials.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    match trials.first().cloned() {
        Some((m, best_ms)) => {
            let plan = WinogradLayer::new(shape.clone(), &m, opts)?;
            Ok(Selection { plan, m, best_ms, trials })
        }
        None => Err(last_err.unwrap_or(PlanError::BadTileSize { dim: 0, m: 0 }).into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_sched::SerialExecutor;

    #[test]
    fn candidates_respect_purpose_and_extent() {
        // The budget-derived caps must reproduce Table 3's hard-coded
        // limits for r = 3: training m ≤ 6, inference m ≤ 8.
        let opts = ConvOptions::default();
        let s = ConvShape::new(1, 16, 16, &[20, 20], &[3, 3], &[1, 1]).unwrap();
        let train = candidate_tiles(&s, Purpose::Training, &opts);
        assert!(train.iter().all(|m| m.iter().all(|&x| x <= 6)));
        assert_eq!(train.len(), 5); // m = 2..=6
        let infer = candidate_tiles(&s, Purpose::Inference, &opts);
        assert_eq!(infer.len(), 7); // m = 2..=8

        // Tiny output: tiles clipped to the output extent, deduplicated.
        let tiny = ConvShape::new(1, 16, 16, &[5, 5], &[3, 3], &[0, 0]).unwrap();
        let c = candidate_tiles(&tiny, Purpose::Inference, &opts);
        assert!(c.iter().all(|m| m.iter().all(|&x| x <= 3)));
        assert_eq!(c.len(), 2); // [2,2] and [3,3]
    }

    #[test]
    fn budget_caps_follow_conditioning_not_a_table() {
        let opts = ConvOptions::default();
        // r = 5 transforms are much worse conditioned: the training
        // budget that allows m = 6 at r = 3 only admits m = 3 at r = 5
        // (γ(4,5)·ε ≈ 1.03e-5 > 1e-5). A hard-coded "m ≤ 6" table would
        // get this wrong.
        let s5 = ConvShape::new(1, 16, 16, &[20, 20], &[5, 5], &[2, 2]).unwrap();
        let train5 = candidate_tiles(&s5, Purpose::Training, &opts);
        assert!(
            train5.iter().all(|m| m.iter().all(|&x| x <= 3)),
            "r=5 training candidates exceed the conditioning cap: {train5:?}"
        );
        assert!(!train5.is_empty());

        // The integer point schedule conditions worse than the mixed one,
        // so its caps are at most as large.
        let int_opts = ConvOptions { points: wino_transforms::PointSchedule::Integer, ..opts };
        let s3 = ConvShape::new(1, 16, 16, &[20, 20], &[3, 3], &[1, 1]).unwrap();
        let mixed = candidate_tiles(&s3, Purpose::Inference, &opts);
        let integer = candidate_tiles(&s3, Purpose::Inference, &int_opts);
        let max_of = |c: &[Vec<usize>]| c.iter().flat_map(|m| m.iter().copied()).max().unwrap();
        assert!(max_of(&integer) <= max_of(&mixed));
    }

    #[test]
    fn tight_budget_demotes_m8_to_m4() {
        // γ(4,3)·ε ≈ 5.7e-6 fits a 6e-6 budget; γ(6,3)·ε ≈ 8.1e-6 does
        // not — so a planned F(8×8, 3×3) must demote two steps to 4.
        let s = ConvShape::new(1, 16, 16, &[20, 20], &[3, 3], &[1, 1]).unwrap();
        let opts = ConvOptions::default();
        let tight = AccuracyBudget::new(6e-6);
        assert_eq!(fit_tile_to_budget(&s, &[8, 8], tight, &opts), vec![4, 4]);
        // Already-fitting tiles pass through unchanged.
        assert_eq!(fit_tile_to_budget(&s, &[4, 2], tight, &opts), vec![4, 2]);
        // An unreachable budget floors at 2 instead of looping.
        let impossible = AccuracyBudget::new(1e-12);
        assert_eq!(fit_tile_to_budget(&s, &[8, 8], impossible, &opts), vec![2, 2]);

        // And the planner agrees end-to-end: m = 8 is rejected under the
        // tight budget, the demoted tile plans cleanly.
        let tight_opts = ConvOptions { budget: Some(tight), ..opts };
        assert!(matches!(
            WinogradLayer::new(s.clone(), &[8, 8], tight_opts),
            Err(PlanError::AccuracyBudget { dim: 0, m: 8 })
        ));
        assert!(WinogradLayer::new(s, &[4, 4], tight_opts).is_ok());
    }

    #[test]
    fn selection_returns_fastest_plannable_tile() {
        let s = ConvShape::new(1, 16, 16, &[14, 14], &[3, 3], &[1, 1]).unwrap();
        let sel =
            select_tile(&s, ConvOptions::default(), Purpose::Training, &SerialExecutor, 1).unwrap();
        assert_eq!(sel.m.len(), 2);
        assert!(sel.best_ms > 0.0);
        assert!(!sel.trials.is_empty());
        // Trials are sorted fastest-first and the plan matches the winner.
        for w in sel.trials.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(sel.plan.grid.m, sel.m);
    }

    #[test]
    fn selection_works_for_3d() {
        let s = ConvShape::new(1, 16, 16, &[6, 8, 8], &[3, 3, 3], &[1, 1, 1]).unwrap();
        let sel =
            select_tile(&s, ConvOptions::default(), Purpose::Training, &SerialExecutor, 1).unwrap();
        assert_eq!(sel.m.len(), 3);
    }

    #[test]
    fn policy_defaults_and_strict() {
        let p = FallbackPolicy::default();
        assert!(p.jit_to_mono && p.im2col_on_plan_failure && p.check_numerics && p.im2col_on_numeric);
        assert!(p.retile_on_memory);
        let s = FallbackPolicy::strict();
        assert!(!s.jit_to_mono && !s.im2col_on_plan_failure && !s.check_numerics && !s.im2col_on_numeric);
        assert!(!s.retile_on_memory);
    }

    #[test]
    fn memory_budget_retiles_to_a_smaller_footprint() {
        use crate::plan::MemoryBudget;
        let s = ConvShape::new(1, 16, 16, &[20, 20], &[3, 3], &[1, 1]).unwrap();
        let base = ConvOptions::default();
        let need2 = WinogradLayer::new(s.clone(), &[2, 2], base).unwrap().footprint(1).total();
        let need4 = WinogradLayer::new(s.clone(), &[4, 4], base).unwrap().footprint(1).total();
        assert!(need4 < need2, "larger tiles must be the memory-cheap direction");

        // A budget that admits F(4,3) but not F(2,3): planning [2,2] is
        // rejected, the fallback re-tiles to [4,4].
        let opts = ConvOptions { memory: Some(MemoryBudget::new(need4)), ..base };
        assert!(matches!(
            WinogradLayer::new(s.clone(), &[2, 2], opts),
            Err(PlanError::MemoryBudget { budget_bytes, .. }) if budget_bytes == need4
        ));
        let (plan, fb) =
            plan_with_fallback(&s, &[2, 2], opts, &FallbackPolicy::default()).unwrap();
        assert_eq!(plan.grid.m, vec![4, 4]);
        assert!(matches!(fb, Some(PlanError::MemoryBudget { .. })));
        assert!(plan.footprint(1).total() <= need4);

        // The strict policy surfaces the rejection instead.
        assert!(matches!(
            plan_with_fallback(&s, &[2, 2], opts, &FallbackPolicy::strict()),
            Err(PlanError::MemoryBudget { .. })
        ));

        // An unreachable budget exhausts the ladder: the original error
        // stands (net-level code then decides whether im2col absorbs it).
        let tiny = ConvOptions { memory: Some(MemoryBudget::new(1024)), ..base };
        assert!(matches!(
            plan_with_fallback(&s, &[2, 2], tiny, &FallbackPolicy::default()),
            Err(PlanError::MemoryBudget { .. })
        ));
        assert_eq!(fit_tile_to_memory(&s, &[2, 2], &tiny), None);

        // No memory budget configured: nothing to fit against.
        assert_eq!(fit_tile_to_memory(&s, &[2, 2], &base), None);
    }

    #[test]
    fn plan_fallback_passes_through_clean_plans() {
        let s = ConvShape::new(1, 16, 16, &[10, 10], &[3, 3], &[1, 1]).unwrap();
        let (plan, fb) =
            plan_with_fallback(&s, &[2, 2], ConvOptions::default(), &FallbackPolicy::default())
                .unwrap();
        assert!(fb.is_none());
        assert_eq!(plan.opts.stage2, Stage2Backend::Mono);
    }

    #[test]
    fn plan_fallback_downgrades_jit_to_mono() {
        if wino_simd::cpu_has_avx512f() {
            // The JIT plan would succeed here; the downgrade path is
            // covered on non-AVX-512 hosts and by the net-level tests.
            return;
        }
        let s = ConvShape::new(1, 16, 16, &[10, 10], &[3, 3], &[1, 1]).unwrap();
        let opts = ConvOptions { stage2: Stage2Backend::Jit, ..Default::default() };
        let (plan, fb) =
            plan_with_fallback(&s, &[2, 2], opts, &FallbackPolicy::default()).unwrap();
        assert_eq!(plan.opts.stage2, Stage2Backend::Mono);
        assert!(matches!(fb, Some(PlanError::Jit { .. })));

        // Strict policy: the JIT failure surfaces.
        assert!(matches!(
            plan_with_fallback(&s, &[2, 2], opts, &FallbackPolicy::strict()),
            Err(PlanError::Jit { .. })
        ));
    }

    #[test]
    fn plan_fallback_does_not_mask_other_errors() {
        let s = ConvShape::new(1, 16, 16, &[10, 10], &[3, 3], &[1, 1]).unwrap();
        // Tile too large: not a JIT failure, must propagate unchanged.
        assert!(matches!(
            plan_with_fallback(&s, &[40, 4], ConvOptions::default(), &FallbackPolicy::default()),
            Err(PlanError::BadTileSize { .. })
        ));
    }
}
