//! Automatic `F(m, r)` tile-size selection.
//!
//! §5.1 shows that the best tile size depends on the layer: large `m`
//! saves multiplications but pads the output grid (ceil-division
//! overhang) and grows the transform cost quadratically. The paper picks
//! `m` per layer empirically (the Fig. 5 sweep); this module packages
//! that workflow: enumerate candidate tile vectors, time a real forward
//! pass for each, return the fastest plan. Numerical limits from Table 3
//! (f32: `m ≤ 6` per dimension for training, `m ≤ 8` for inference) bound
//! the search space.

use wino_sched::Executor;
use wino_tensor::{BlockedImage, BlockedKernels, ConvShape};

use crate::plan::{ConvOptions, PlanError, Scratch, WinogradLayer};

/// What the selected plan will be used for — bounds the largest tile per
/// Table 3's accuracy limits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Purpose {
    /// Errors must stay training-safe (≲1e-2): `m ≤ 6`.
    Training,
    /// Inference tolerates an order of magnitude more: `m ≤ 8`.
    Inference,
}

impl Purpose {
    fn max_m(self) -> usize {
        match self {
            Purpose::Training => 6,
            Purpose::Inference => 8,
        }
    }
}

/// Candidate tile vectors for a layer: uniform tiles `2..=max_m` per
/// dimension, clipped so no dimension's tile exceeds its output extent
/// (larger would be pure padding).
pub fn candidate_tiles(shape: &ConvShape, purpose: Purpose) -> Vec<Vec<usize>> {
    let out = shape.out_dims();
    let rank = shape.rank();
    let mut cands = Vec::new();
    for m in 2..=purpose.max_m() {
        let tile: Vec<usize> = (0..rank).map(|d| m.min(out[d])).collect();
        if !cands.contains(&tile) {
            cands.push(tile);
        }
    }
    cands
}

/// Result of a tile-size search.
pub struct Selection {
    pub plan: WinogradLayer,
    pub m: Vec<usize>,
    pub best_ms: f64,
    /// All timed candidates `(m, ms)`, fastest first.
    pub trials: Vec<(Vec<usize>, f64)>,
}

/// Empirically select the fastest `F(m, r)` for a layer by timing one
/// warm-up plus `reps` forward passes per candidate on synthetic data.
///
/// Returns `PlanError` only if *no* candidate is plannable.
pub fn select_tile(
    shape: &ConvShape,
    opts: ConvOptions,
    purpose: Purpose,
    exec: &dyn Executor,
    reps: usize,
) -> Result<Selection, PlanError> {
    let mut input = BlockedImage::zeros(shape.batch, shape.in_channels, &shape.image_dims)?;
    for (i, v) in input.as_mut_slice().iter_mut().enumerate() {
        *v = ((i * 2654435761) >> 22 & 0xff) as f32 / 1275.0 - 0.1;
    }
    let mut kernels =
        BlockedKernels::zeros(shape.in_channels, shape.out_channels, &shape.kernel_dims)?;
    for (i, v) in kernels.as_mut_slice().iter_mut().enumerate() {
        *v = ((i * 0x9E3779B9) >> 22 & 0xff) as f32 / 2550.0 - 0.05;
    }

    let mut trials: Vec<(Vec<usize>, f64)> = Vec::new();
    let mut last_err = None;
    for m in candidate_tiles(shape, purpose) {
        let plan = match WinogradLayer::new(shape.clone(), &m, opts) {
            Ok(p) => p,
            Err(e) => {
                last_err = Some(e);
                continue;
            }
        };
        let mut scratch = Scratch::new(&plan, exec.threads());
        let mut out = plan.new_output()?;
        plan.forward(&input, &kernels, &mut out, &mut scratch, exec); // warm-up
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let t0 = std::time::Instant::now();
            plan.forward(&input, &kernels, &mut out, &mut scratch, exec);
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        std::hint::black_box(out.as_slice().first());
        trials.push((m, best));
    }
    trials.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    match trials.first().cloned() {
        Some((m, best_ms)) => {
            let plan = WinogradLayer::new(shape.clone(), &m, opts)?;
            Ok(Selection { plan, m, best_ms, trials })
        }
        None => Err(last_err.unwrap_or(PlanError::BadTileSize { dim: 0, m: 0 })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_sched::SerialExecutor;

    #[test]
    fn candidates_respect_purpose_and_extent() {
        let s = ConvShape::new(1, 16, 16, &[20, 20], &[3, 3], &[1, 1]).unwrap();
        let train = candidate_tiles(&s, Purpose::Training);
        assert!(train.iter().all(|m| m.iter().all(|&x| x <= 6)));
        assert_eq!(train.len(), 5); // m = 2..=6
        let infer = candidate_tiles(&s, Purpose::Inference);
        assert_eq!(infer.len(), 7); // m = 2..=8

        // Tiny output: tiles clipped to the output extent, deduplicated.
        let tiny = ConvShape::new(1, 16, 16, &[5, 5], &[3, 3], &[0, 0]).unwrap();
        let c = candidate_tiles(&tiny, Purpose::Inference);
        assert!(c.iter().all(|m| m.iter().all(|&x| x <= 3)));
        assert_eq!(c.len(), 2); // [2,2] and [3,3]
    }

    #[test]
    fn selection_returns_fastest_plannable_tile() {
        let s = ConvShape::new(1, 16, 16, &[14, 14], &[3, 3], &[1, 1]).unwrap();
        let sel =
            select_tile(&s, ConvOptions::default(), Purpose::Training, &SerialExecutor, 1).unwrap();
        assert_eq!(sel.m.len(), 2);
        assert!(sel.best_ms > 0.0);
        assert!(!sel.trials.is_empty());
        // Trials are sorted fastest-first and the plan matches the winner.
        for w in sel.trials.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(sel.plan.grid.m, sel.m);
    }

    #[test]
    fn selection_works_for_3d() {
        let s = ConvShape::new(1, 16, 16, &[6, 8, 8], &[3, 3, 3], &[1, 1, 1]).unwrap();
        let sel =
            select_tile(&s, ConvOptions::default(), Purpose::Training, &SerialExecutor, 1).unwrap();
        assert_eq!(sel.m.len(), 3);
    }
}
