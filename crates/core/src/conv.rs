//! The public convolution entry points: training mode (transform kernels
//! every call) and inference "FX" mode (memoised kernel transforms).

use wino_sched::Executor;
use wino_tensor::{BlockedImage, BlockedKernels, BlockedMatrices, ConvShape, SimpleImage, SimpleKernels};

use crate::error::WinoError;
use crate::plan::{ConvOptions, Schedule, Scratch, WinogradLayer};
use crate::{pipeline, stage1, stage2, stage3};

/// Memoised kernel transforms (`W` of Table 1) for inference-only use —
/// the paper's "FX" columns in Fig. 5. Bound to the layer plan that
/// produced them (same tile size and blocking).
#[derive(Debug)]
pub struct TransformedKernels {
    pub(crate) v: BlockedMatrices,
}

impl TransformedKernels {
    /// Bytes held by the memoised transforms.
    pub fn bytes(&self) -> usize {
        self.v.bytes()
    }
}

impl WinogradLayer {
    /// Full convolution, training mode: transforms inputs *and* kernels,
    /// multiplies, inverse-transforms into `output`.
    ///
    /// `scratch` must come from [`Scratch::new`] for this layer (or an
    /// identically shaped one) with at least `exec.threads()` slots.
    pub fn forward(
        &self,
        input: &BlockedImage,
        kernels: &BlockedKernels,
        output: &mut BlockedImage,
        scratch: &mut Scratch,
        exec: &dyn Executor,
    ) -> Result<(), WinoError> {
        if self.opts.schedule == Schedule::Pipelined {
            stage1::transform_kernels(self, kernels, scratch, exec)?;
            // Move `v` out so the pipeline can borrow the rest of the
            // scratch mutably; restored below.
            let v = std::mem::replace(&mut scratch.v, BlockedMatrices::placeholder());
            let r = pipeline::forward_pipelined(self, input, &v, output, scratch, exec);
            scratch.v = v;
            return r;
        }
        stage1::transform_inputs(self, input, scratch, exec)?;
        stage1::transform_kernels(self, kernels, scratch, exec)?;
        stage2::multiply(self, scratch, exec)?;
        stage3::inverse_transform(self, scratch, output, exec)
    }

    /// Transform kernels once for repeated inference (§4.2 "Inference
    /// only").
    pub fn prepare_kernels(
        &self,
        kernels: &BlockedKernels,
        scratch: &mut Scratch,
        exec: &dyn Executor,
    ) -> Result<TransformedKernels, WinoError> {
        stage1::transform_kernels(self, kernels, scratch, exec)?;
        Ok(TransformedKernels { v: scratch.v.clone() })
    }

    /// Inference-mode convolution using memoised kernel transforms — the
    /// kernel-transform stage is skipped entirely.
    pub fn forward_fx(
        &self,
        input: &BlockedImage,
        kernels: &TransformedKernels,
        output: &mut BlockedImage,
        scratch: &mut Scratch,
        exec: &dyn Executor,
    ) -> Result<(), WinoError> {
        if self.opts.schedule == Schedule::Pipelined {
            return pipeline::forward_pipelined(self, input, &kernels.v, output, scratch, exec);
        }
        stage1::transform_inputs(self, input, scratch, exec)?;
        stage2::multiply_with(self, scratch, &kernels.v, exec)?;
        stage3::inverse_transform(self, scratch, output, exec)
    }
}

/// One-shot convenience API on interchange-format tensors: plans the
/// layer, runs serially, returns the output image. Intended for tests,
/// examples and small problems — production code should plan once and
/// reuse [`Scratch`] across invocations.
pub fn convolve_simple(
    img: &SimpleImage,
    ker: &SimpleKernels,
    padding: &[usize],
    m: &[usize],
) -> Result<SimpleImage, WinoError> {
    let shape = ConvShape::new(
        img.batch,
        img.channels,
        ker.out_channels,
        &img.dims,
        &ker.dims,
        padding,
    )?;
    let layer = WinogradLayer::new(shape, m, ConvOptions::default())?;
    let input = BlockedImage::from_simple(img)?;
    let kernels = BlockedKernels::from_simple(ker)?;
    let mut output = layer.new_output()?;
    let mut scratch = Scratch::new(&layer, 1);
    layer.forward(&input, &kernels, &mut output, &mut scratch, &wino_sched::SerialExecutor)?;
    Ok(output.to_simple())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_sched::{DynamicExecutor, SerialExecutor, StaticExecutor};

    /// f64 direct cross-correlation oracle on simple tensors.
    pub fn direct_reference(img: &SimpleImage, ker: &SimpleKernels, padding: &[usize]) -> SimpleImage {
        let rank = img.dims.len();
        let out_dims: Vec<usize> = (0..rank)
            .map(|d| img.dims[d] + 2 * padding[d] - ker.dims[d] + 1)
            .collect();
        let mut out = SimpleImage::zeros(img.batch, ker.out_channels, &out_dims);
        let out_vol: usize = out_dims.iter().product();
        let ker_vol: usize = ker.dims.iter().product();
        for b in 0..img.batch {
            for co in 0..ker.out_channels {
                for o in 0..out_vol {
                    let oc = wino_tensor::unflatten(o, &out_dims);
                    let mut acc = 0.0f64;
                    for ci in 0..img.channels {
                        for k in 0..ker_vol {
                            let kc = wino_tensor::unflatten(k, &ker.dims);
                            let coords: Vec<isize> = (0..rank)
                                .map(|d| (oc[d] + kc[d]) as isize - padding[d] as isize)
                                .collect();
                            acc += img.get_padded(b, ci, &coords) as f64
                                * ker.get(co, ci, &kc) as f64;
                        }
                    }
                    out.data[(b * ker.out_channels + co) * out_vol + o] = acc as f32;
                }
            }
        }
        out
    }

    fn test_img(batch: usize, c: usize, dims: &[usize]) -> SimpleImage {
        SimpleImage::from_fn(batch, c, dims, |b, c, xy| {
            let mut h = b.wrapping_mul(31).wrapping_add(c.wrapping_mul(7));
            for (i, &x) in xy.iter().enumerate() {
                h = h.wrapping_mul(131).wrapping_add(x * (i + 3));
            }
            ((h % 1000) as f32 / 500.0 - 1.0) * 0.1
        })
    }

    fn test_ker(cp: usize, c: usize, dims: &[usize]) -> SimpleKernels {
        SimpleKernels::from_fn(cp, c, dims, |co, ci, xy| {
            let mut h = co.wrapping_mul(17).wrapping_add(ci.wrapping_mul(3));
            for &x in xy {
                h = h.wrapping_mul(37).wrapping_add(x);
            }
            ((h % 100) as f32 / 50.0 - 1.0) * 0.2
        })
    }

    fn assert_close(got: &SimpleImage, want: &SimpleImage, tol: f32, ctx: &str) {
        assert_eq!(got.dims, want.dims, "{ctx}: dims");
        assert_eq!(got.data.len(), want.data.len());
        let mut max_err = 0.0f32;
        for i in 0..got.data.len() {
            let e = (got.data[i] - want.data[i]).abs() / want.data[i].abs().max(1.0);
            max_err = max_err.max(e);
        }
        assert!(max_err <= tol, "{ctx}: max rel err {max_err} > {tol}");
    }

    #[test]
    fn f2x2_matches_direct_2d() {
        let img = test_img(2, 32, &[10, 10]);
        let ker = test_ker(32, 32, &[3, 3]);
        let got = convolve_simple(&img, &ker, &[1, 1], &[2, 2]).unwrap();
        let want = direct_reference(&img, &ker, &[1, 1]);
        assert_close(&got, &want, 1e-4, "F(2,3) 2D");
    }

    #[test]
    fn f4x4_matches_direct_2d_no_padding() {
        let img = test_img(1, 16, &[14, 14]);
        let ker = test_ker(32, 16, &[3, 3]);
        let got = convolve_simple(&img, &ker, &[0, 0], &[4, 4]).unwrap();
        let want = direct_reference(&img, &ker, &[0, 0]);
        assert_close(&got, &want, 1e-4, "F(4,3) 2D valid");
    }

    #[test]
    fn f6x6_larger_tile() {
        let img = test_img(1, 16, &[13, 13]);
        let ker = test_ker(16, 16, &[3, 3]);
        let got = convolve_simple(&img, &ker, &[1, 1], &[6, 6]).unwrap();
        let want = direct_reference(&img, &ker, &[1, 1]);
        assert_close(&got, &want, 1e-3, "F(6,3) 2D");
    }

    #[test]
    fn three_d_convolution() {
        let img = test_img(1, 16, &[5, 8, 8]);
        let ker = test_ker(16, 16, &[3, 3, 3]);
        let got = convolve_simple(&img, &ker, &[1, 1, 1], &[2, 2, 2]).unwrap();
        let want = direct_reference(&img, &ker, &[1, 1, 1]);
        assert_close(&got, &want, 1e-4, "F(2³,3³) 3D");
    }

    #[test]
    fn one_d_convolution() {
        let img = test_img(2, 16, &[33]);
        let ker = test_ker(16, 16, &[3]);
        let got = convolve_simple(&img, &ker, &[1], &[4]).unwrap();
        let want = direct_reference(&img, &ker, &[1]);
        assert_close(&got, &want, 1e-4, "F(4,3) 1D");
    }

    #[test]
    fn arbitrary_kernel_sizes() {
        // The headline novelty: not just 3×3.
        for (kd, m) in [(vec![5, 5], vec![2, 2]), (vec![2, 2], vec![3, 3]), (vec![4, 4], vec![3, 3]), (vec![1, 3], vec![2, 4])] {
            let img = test_img(1, 16, &[12, 12]);
            let ker = test_ker(16, 16, &kd);
            let got = convolve_simple(&img, &ker, &[0, 0], &m).unwrap();
            let want = direct_reference(&img, &ker, &[0, 0]);
            assert_close(&got, &want, 1e-3, &format!("kernel {kd:?} m {m:?}"));
        }
    }

    #[test]
    fn asymmetric_tiles() {
        // F(6×8, 3×3)-style asymmetric tile from Table 3.
        let img = test_img(1, 16, &[12, 16]);
        let ker = test_ker(16, 16, &[3, 3]);
        let got = convolve_simple(&img, &ker, &[1, 1], &[2, 4]).unwrap();
        let want = direct_reference(&img, &ker, &[1, 1]);
        assert_close(&got, &want, 1e-4, "asymmetric m");
    }

    #[test]
    fn rectangular_images_with_overhang() {
        let img = test_img(1, 16, &[11, 17]);
        let ker = test_ker(16, 16, &[3, 3]);
        let got = convolve_simple(&img, &ker, &[1, 1], &[4, 4]).unwrap();
        let want = direct_reference(&img, &ker, &[1, 1]);
        assert_close(&got, &want, 1e-4, "overhang");
    }

    #[test]
    fn fx_mode_matches_training_mode() {
        let img = test_img(2, 32, &[10, 10]);
        let ker = test_ker(32, 32, &[3, 3]);
        let shape = ConvShape::new(2, 32, 32, &[10, 10], &[3, 3], &[1, 1]).unwrap();
        let layer = WinogradLayer::new(shape, &[4, 4], ConvOptions::default()).unwrap();
        let input = BlockedImage::from_simple(&img).unwrap();
        let kernels = BlockedKernels::from_simple(&ker).unwrap();
        let mut scratch = Scratch::new(&layer, 1);

        let mut out_train = layer.new_output().unwrap();
        layer.forward(&input, &kernels, &mut out_train, &mut scratch, &SerialExecutor).unwrap();

        let tk = layer.prepare_kernels(&kernels, &mut scratch, &SerialExecutor).unwrap();
        let mut out_fx = layer.new_output().unwrap();
        layer.forward_fx(&input, &tk, &mut out_fx, &mut scratch, &SerialExecutor).unwrap();

        assert_eq!(out_train.as_slice(), out_fx.as_slice());
    }

    #[test]
    fn executors_agree() {
        let img = test_img(2, 32, &[9, 9]);
        let ker = test_ker(32, 32, &[3, 3]);
        let shape = ConvShape::new(2, 32, 32, &[9, 9], &[3, 3], &[1, 1]).unwrap();
        let layer = WinogradLayer::new(shape, &[2, 2], ConvOptions::default()).unwrap();
        let input = BlockedImage::from_simple(&img).unwrap();
        let kernels = BlockedKernels::from_simple(&ker).unwrap();

        let run = |exec: &dyn Executor| {
            let mut scratch = Scratch::new(&layer, exec.threads());
            let mut out = layer.new_output().unwrap();
            layer.forward(&input, &kernels, &mut out, &mut scratch, exec).unwrap();
            out.to_simple()
        };
        let serial = run(&SerialExecutor);
        let stat = StaticExecutor::new(4);
        assert_eq!(run(&stat).data, serial.data);
        assert_eq!(run(&DynamicExecutor::new(4)).data, serial.data);
    }

    #[test]
    fn scratch_reuse_across_calls_is_clean() {
        // A second forward with different data must not see stale state.
        let shape = ConvShape::new(1, 16, 16, &[8, 8], &[3, 3], &[1, 1]).unwrap();
        let layer = WinogradLayer::new(shape, &[2, 2], ConvOptions::default()).unwrap();
        let mut scratch = Scratch::new(&layer, 1);
        let img1 = test_img(1, 16, &[8, 8]);
        let img2 = SimpleImage::from_fn(1, 16, &[8, 8], |_, c, xy| (c + xy[0]) as f32 * 0.03);
        let ker = test_ker(16, 16, &[3, 3]);
        let kernels = BlockedKernels::from_simple(&ker).unwrap();

        let mut out = layer.new_output().unwrap();
        layer.forward(
            &BlockedImage::from_simple(&img1).unwrap(),
            &kernels,
            &mut out,
            &mut scratch,
            &SerialExecutor,
        )
        .unwrap();
        layer.forward(
            &BlockedImage::from_simple(&img2).unwrap(),
            &kernels,
            &mut out,
            &mut scratch,
            &SerialExecutor,
        )
        .unwrap();
        let want = direct_reference(&img2, &ker, &[1, 1]);
        assert_close(&out.to_simple(), &want, 1e-4, "scratch reuse");
    }

    #[test]
    fn jit_backend_matches_mono_backend() {
        if !wino_simd::cpu_has_avx512f() {
            eprintln!("skipping: no AVX-512F");
            return;
        }
        use crate::plan::Stage2Backend;
        // Shapes chosen to cover: single k-block + tail panel, multiple
        // k-blocks, 3-D, and the unfused path.
        #[allow(clippy::type_complexity)] // (out dims, tile dims, C, C', fused) case table
        let cases: Vec<(Vec<usize>, Vec<usize>, usize, usize, bool)> = vec![
            (vec![10, 10], vec![4, 4], 32, 32, true),   // tail panel likely
            (vec![10, 10], vec![2, 2], 64, 32, true),   // k_blocks > 1 possible
            (vec![6, 8, 8], vec![2, 2, 2], 16, 16, true),
            (vec![9, 9], vec![4, 4], 32, 48, false),    // unfused + jit blocks
        ];
        for (dims, m, c, cp, fused) in cases {
            let pad = vec![1usize; dims.len()];
            let kd = vec![3usize; dims.len()];
            let shape = ConvShape::new(1, c, cp, &dims, &kd, &pad).unwrap();
            let img = test_img(1, c, &dims);
            let ker = test_ker(cp, c, &kd);
            let input = BlockedImage::from_simple(&img).unwrap();
            let kernels = BlockedKernels::from_simple(&ker).unwrap();

            let run = |backend| {
                let schedule = if fused { Schedule::FusedScatter } else { Schedule::Unfused };
                let opts = ConvOptions { stage2: backend, schedule, ..Default::default() };
                let layer = WinogradLayer::new(shape.clone(), &m, opts).unwrap();
                let mut scratch = Scratch::new(&layer, 1);
                let mut out = layer.new_output().unwrap();
                layer.forward(&input, &kernels, &mut out, &mut scratch, &SerialExecutor).unwrap();
                out.as_slice().to_vec()
            };
            let mono = run(Stage2Backend::Mono);
            let jit = run(Stage2Backend::Jit);
            // The JIT and mono kernels schedule their FMAs differently, so
            // outputs may differ in the last bit — compare to 1e-5
            // relative, not bitwise.
            assert_eq!(mono.len(), jit.len());
            for (i, (a, b)) in mono.iter().zip(&jit).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-5 * b.abs().max(1.0),
                    "dims {dims:?} m {m:?} C={c} C'={cp} fused={fused} index {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn jit_backend_parallel_and_fx() {
        if !wino_simd::cpu_has_avx512f() {
            return;
        }
        use crate::plan::Stage2Backend;
        let shape = ConvShape::new(2, 32, 32, &[11, 11], &[3, 3], &[1, 1]).unwrap();
        let img = test_img(2, 32, &[11, 11]);
        let ker = test_ker(32, 32, &[3, 3]);
        let input = BlockedImage::from_simple(&img).unwrap();
        let kernels = BlockedKernels::from_simple(&ker).unwrap();
        let opts = ConvOptions { stage2: Stage2Backend::Jit, ..Default::default() };
        let layer = WinogradLayer::new(shape, &[4, 4], opts).unwrap();

        let pool = StaticExecutor::new(4);
        let mut s_par = Scratch::new(&layer, 4);
        let mut out_par = layer.new_output().unwrap();
        layer.forward(&input, &kernels, &mut out_par, &mut s_par, &pool).unwrap();

        let mut s_ser = Scratch::new(&layer, 1);
        let mut out_ser = layer.new_output().unwrap();
        layer.forward(&input, &kernels, &mut out_ser, &mut s_ser, &SerialExecutor).unwrap();
        assert_eq!(out_par.as_slice(), out_ser.as_slice());

        let tk = layer.prepare_kernels(&kernels, &mut s_ser, &SerialExecutor).unwrap();
        let mut out_fx = layer.new_output().unwrap();
        layer.forward_fx(&input, &tk, &mut out_fx, &mut s_ser, &SerialExecutor).unwrap();
        assert_eq!(out_fx.as_slice(), out_ser.as_slice());
    }

    #[test]
    fn ablation_toggles_do_not_change_results() {
        let img = test_img(1, 32, &[10, 10]);
        let ker = test_ker(32, 32, &[3, 3]);
        let shape = ConvShape::new(1, 32, 32, &[10, 10], &[3, 3], &[1, 1]).unwrap();
        let mut results = Vec::new();
        for streaming in [true, false] {
            for schedule in crate::plan::Schedule::ALL {
                let opts = ConvOptions {
                    streaming_stores: streaming,
                    schedule,
                    ..Default::default()
                };
                let layer = WinogradLayer::new(shape.clone(), &[4, 4], opts).unwrap();
                let input = BlockedImage::from_simple(&img).unwrap();
                let kernels = BlockedKernels::from_simple(&ker).unwrap();
                let mut out = layer.new_output().unwrap();
                let mut scratch = Scratch::new(&layer, 1);
                layer.forward(&input, &kernels, &mut out, &mut scratch, &SerialExecutor).unwrap();
                results.push(out.to_simple().data);
            }
        }
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
    }

    #[test]
    fn compensated_reduction_is_no_less_accurate() {
        // Deep channel reduction (C = 256 ⇒ many k blocks) with the
        // smallest tile, so the channel-accumulation error dominates the
        // transform error and the Kahan fold has something to win.
        let dims = [10usize, 10];
        let img = test_img(1, 256, &dims);
        let ker = test_ker(16, 256, &[3, 3]);
        let shape = ConvShape::new(1, 256, 16, &dims, &[3, 3], &[1, 1]).unwrap();
        let want = direct_reference(&img, &ker, &[1, 1]);

        let run = |compensated: bool| {
            let opts = ConvOptions { compensated, ..Default::default() };
            let layer = WinogradLayer::new(shape.clone(), &[2, 2], opts).unwrap();
            let input = BlockedImage::from_simple(&img).unwrap();
            let kernels = BlockedKernels::from_simple(&ker).unwrap();
            let mut out = layer.new_output().unwrap();
            let mut scratch = Scratch::new(&layer, 1);
            layer.forward(&input, &kernels, &mut out, &mut scratch, &SerialExecutor).unwrap();
            out.to_simple()
        };
        let max_err = |got: &SimpleImage| {
            got.data
                .iter()
                .zip(&want.data)
                .map(|(&g, &w)| (g - w).abs() / w.abs().max(1.0))
                .fold(0.0f32, f32::max)
        };
        let plain = max_err(&run(false));
        let comp = max_err(&run(true));
        assert!(comp <= 1e-4, "compensated err {comp} too large");
        assert!(
            comp <= plain,
            "Kahan reduction lost accuracy: compensated {comp} > plain {plain}"
        );
    }

    #[test]
    fn compensated_agrees_across_schedules_and_executors() {
        // The compensated fold is order-deterministic, so every schedule
        // and executor must produce bitwise-identical output.
        let img = test_img(1, 64, &[10, 10]);
        let ker = test_ker(32, 64, &[3, 3]);
        let shape = ConvShape::new(1, 64, 32, &[10, 10], &[3, 3], &[1, 1]).unwrap();
        let input = BlockedImage::from_simple(&img).unwrap();
        let kernels = BlockedKernels::from_simple(&ker).unwrap();
        let mut results = Vec::new();
        for schedule in crate::plan::Schedule::ALL {
            let opts = ConvOptions { compensated: true, schedule, ..Default::default() };
            let layer = WinogradLayer::new(shape.clone(), &[4, 4], opts).unwrap();
            for threads in [1usize, 4] {
                let mut scratch = Scratch::new(&layer, threads);
                let mut out = layer.new_output().unwrap();
                if threads == 1 {
                    layer.forward(&input, &kernels, &mut out, &mut scratch, &SerialExecutor).unwrap();
                } else {
                    let pool = StaticExecutor::new(threads);
                    layer.forward(&input, &kernels, &mut out, &mut scratch, &pool).unwrap();
                }
                results.push(out.to_simple().data);
            }
        }
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
    }
}
