//! Layer plans and scratch buffers.
//!
//! A [`WinogradLayer`] fixes everything known at "instantiation time" in
//! the paper's C++ artifact: the layer shape, the `F(m, r)` transform
//! programs per dimension, and the stage-2 blocking parameters. A
//! [`Scratch`] is the paper's auxiliary buffer (§4.4 "Memory overhead"):
//! it holds `I` (transformed inputs), `W` (transformed kernels), `I'_tmp`
//! and tile-major `I'`, and is reused across layers.

// Index-based loops are the idiom throughout: most walk several
// arrays with derived offsets, where iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]
use std::cell::UnsafeCell;

use wino_gemm::{default_shape, BlockShape};
use wino_simd::{AlignedVec, S};
use wino_tensor::{BlockedMatrices, ConvShape, ShapeError, TileGrid};
use wino_transforms::{FmrPlan, PointSchedule};

use crate::layout::TileMajor;

/// Maximum supported spatial rank (the stages use fixed-size index
/// buffers; 6 covers any practical ConvNet with room to spare).
pub const MAX_RANK: usize = 6;

/// A target on the numerical quality of a plan: the worst relative
/// error the caller is willing to accept from the Winograd evaluation,
/// enforced a priori from the exact-rational conditioning of the
/// transforms ([`wino_transforms::Conditioning`]).
///
/// The check is per dimension: a plan is admitted only if every
/// dimension's amplification factor satisfies `γ(m_d, r_d) · ε ≤
/// max_rel_error` (ε = [`f32::EPSILON`]). Because γ is strictly
/// increasing over the practical even tile sizes, a budget induces a
/// per-(r, point-schedule) *derived* maximum tile size — this is what
/// replaced the old hard-coded `Purpose::max_m` table (the presets in
/// [`crate::select::Purpose::budget`] reproduce it exactly for r = 3).
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct AccuracyBudget {
    /// Target worst-case relative error (> 0).
    pub max_rel_error: f64,
}

impl AccuracyBudget {
    /// Budget admitting tiles whose per-dimension amplification fits
    /// `max_rel_error`.
    pub fn new(max_rel_error: f64) -> AccuracyBudget {
        AccuracyBudget { max_rel_error }
    }

    /// Whether a 1-D transform with amplification factor `gamma`
    /// fits this budget.
    pub fn admits_gamma(self, gamma: f64) -> bool {
        gamma * f64::from(f32::EPSILON) <= self.max_rel_error
    }
}

/// A ceiling on the bytes a plan may allocate — the memory twin of
/// [`AccuracyBudget`]. Enforced at plan time from the analytic
/// [`crate::MemoryFootprint`]: a plan whose footprint (scratch,
/// tile-major, per-thread and output buffers, at [`MemoryBudget::threads`]
/// thread slots) exceeds `max_bytes` fails with
/// [`PlanError::MemoryBudget`]; [`crate::select::plan_with_fallback`]
/// then re-tiles towards *larger* `m` until the plan fits — the
/// transformed-data inflation factor `∏((m_d+r_d−1)/m_d)` shrinks as the
/// tile grows, so larger tiles are the memory-cheap direction (the
/// opposite of the accuracy ladder).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryBudget {
    /// Largest admissible plan footprint in bytes.
    pub max_bytes: usize,
    /// Thread-slot count the footprint is evaluated at (per-thread
    /// codelet buffers scale with it). Defaults to 1.
    pub threads: usize,
}

impl MemoryBudget {
    /// A budget of `max_bytes`, evaluated at one thread slot.
    pub fn new(max_bytes: usize) -> MemoryBudget {
        MemoryBudget { max_bytes, threads: 1 }
    }

    /// The same budget evaluated at `threads` thread slots.
    pub fn with_threads(mut self, threads: usize) -> MemoryBudget {
        self.threads = threads.max(1);
        self
    }

    /// Whether a plan needing `bytes` fits this budget.
    pub fn admits(self, bytes: usize) -> bool {
        bytes <= self.max_bytes
    }
}

/// Which engine executes stage 2's micro-kernels.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Stage2Backend {
    /// Const-generic monomorphised Rust kernels (`wino-gemm`). Default.
    #[default]
    Mono,
    /// Run-time generated machine code (`wino-jit`) — the paper's JIT,
    /// including the in-kernel streaming scatter. Requires AVX-512F at
    /// runtime; planning fails with [`PlanError::Jit`] otherwise.
    Jit,
}

/// How the three pipeline stages are scheduled across fork–joins.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Schedule {
    /// One fork–join per stage plus a separate ⑥ scatter pass: stage 2
    /// writes the blocked `I'_tmp`, a fourth fork–join copies it into the
    /// tile-major layout. The ablation baseline.
    Unfused,
    /// One fork–join per stage, with operation ⑥ fused into the last
    /// reduction block of the stage-2 micro-kernel (>20 % overall in the
    /// paper). Default.
    #[default]
    FusedScatter,
    /// Stages 1→2→3 executed per L2-resident superblock inside a single
    /// fork–join: each task transforms, multiplies and inverse-transforms
    /// its own slice of panel rows while the data is still cache-hot,
    /// instead of streaming `Î`/`X̂` through DRAM between barriers.
    Pipelined,
}

impl Schedule {
    /// Every schedule, in ablation order.
    pub const ALL: [Schedule; 3] = [Schedule::Unfused, Schedule::FusedScatter, Schedule::Pipelined];

    /// Stable kebab-case name for reports and CSV columns.
    pub fn name(self) -> &'static str {
        match self {
            Schedule::Unfused => "unfused",
            Schedule::FusedScatter => "fused-scatter",
            Schedule::Pipelined => "pipelined",
        }
    }

    /// Whether operation ⑥ (the tile-major scatter) runs inside the
    /// stage-2 micro-kernel rather than as a separate copy pass.
    pub fn fuses_scatter(self) -> bool {
        !matches!(self, Schedule::Unfused)
    }
}

/// Tuning and ablation switches.
#[derive(Clone, Copy, Debug)]
pub struct ConvOptions {
    /// Use non-temporal streaming stores in the transform stages
    /// (§4.2.1; the paper credits them with ~25 % on those stages).
    pub streaming_stores: bool,
    /// Stage scheduling: how many fork–joins per layer and where
    /// operation ⑥ runs. See [`Schedule`].
    pub schedule: Schedule,
    /// Explicit blocking parameters; `None` uses the Eq. 11 model default
    /// (or wisdom, via the higher-level API).
    pub block: Option<BlockShape>,
    /// Explicit superblock extent (row blocks per superblock) for the
    /// pipelined schedule; `None` uses the L2 footprint model
    /// ([`wino_gemm::SUPERBLOCK_L2_BYTES`]) or a wisdom hint.
    pub superblock: Option<usize>,
    /// Interpolation-point schedule for the transform generation (the
    /// Table 3 conditioning ablation).
    pub points: PointSchedule,
    /// Stage-2 kernel engine.
    pub stage2: Stage2Backend,
    /// A-priori accuracy budget. `None` (the default) admits any tile;
    /// `Some(b)` makes planning fail with [`PlanError::AccuracyBudget`]
    /// when a dimension's predicted amplification exceeds the budget.
    pub budget: Option<AccuracyBudget>,
    /// Memory budget. `None` (the default) admits any footprint;
    /// `Some(b)` makes planning fail with [`PlanError::MemoryBudget`]
    /// when the plan's analytic [`crate::MemoryFootprint`] exceeds it
    /// (`plan_with_fallback` re-tiles until the plan fits).
    pub memory: Option<MemoryBudget>,
    /// Opt-in compensated (Kahan–Neumaier) channel reduction in stage 2
    /// for high-accuracy plans: each `C_blk` reduction block is computed
    /// separately and folded into the accumulator with an error-
    /// compensation term instead of the plain β-accumulating
    /// micro-kernel. Mono backend only.
    pub compensated: bool,
    /// Barrier watchdog deadline for fork–join pools built on behalf of
    /// this configuration (e.g. by the serving layer's worker executor).
    /// `None` (the default) defers to [`wino_sched::default_deadline`] —
    /// the `WINO_WATCHDOG_MS` environment override, or the built-in
    /// 30 s default — so soak tests on contended CI machines can widen
    /// the watchdog without spurious timeouts. Plans themselves never
    /// build pools; executors constructed by callers keep whatever
    /// deadline they were given.
    pub watchdog: Option<std::time::Duration>,
    /// Output sampling step per spatial dimension (entries beyond the
    /// layer's rank are ignored; all 1s by default). Stride-2 layers
    /// still run Winograd, via the sub-lattice (polyphase) decomposition
    /// in [`crate::dispatch`]; [`WinogradLayer::new`] itself only accepts
    /// the identity geometry.
    ///
    /// ```
    /// use wino_conv::ConvOptions;
    /// let opts = ConvOptions::default().with_stride(&[2, 2]);
    /// assert_eq!(opts.stride[..2], [2, 2]);
    /// assert_eq!(opts.stride[2..], [1, 1, 1, 1]); // beyond-rank entries stay 1
    /// assert!(!opts.geometry(2).is_identity());
    /// ```
    pub stride: [usize; MAX_RANK],
    /// Kernel tap spacing per spatial dimension (entries beyond the
    /// layer's rank are ignored; all 1s by default). Dilation is outside
    /// what the Winograd transform stencils can express, so dilated
    /// layers dispatch to the im2col baseline with typed provenance.
    ///
    /// ```
    /// use wino_conv::ConvOptions;
    /// let opts = ConvOptions::default().with_dilation(&[2]);
    /// assert_eq!(opts.geometry(1).dilation, vec![2]);
    /// ```
    pub dilation: [usize; MAX_RANK],
    /// Channel group count (1 = dense). Input channels `[g·C/G, (g+1)·C/G)`
    /// feed only output channels `[g·C'/G, (g+1)·C'/G)`; `groups == C` is
    /// depthwise. Groups whose per-group channel width is a multiple of
    /// the vector width still run Winograd (blocked C/C' loops); narrower
    /// groups dispatch to im2col.
    ///
    /// ```
    /// use wino_conv::ConvOptions;
    /// let opts = ConvOptions::default().with_groups(4);
    /// assert_eq!(opts.geometry(2).groups, 4);
    /// assert!(ConvOptions::default().geometry(3).is_identity());
    /// ```
    pub groups: usize,
}

impl ConvOptions {
    /// Builder-style stride override (remaining dimensions keep 1).
    pub fn with_stride(mut self, stride: &[usize]) -> ConvOptions {
        self.stride[..stride.len()].copy_from_slice(stride);
        self
    }

    /// Builder-style dilation override (remaining dimensions keep 1).
    pub fn with_dilation(mut self, dilation: &[usize]) -> ConvOptions {
        self.dilation[..dilation.len()].copy_from_slice(dilation);
        self
    }

    /// Builder-style group-count override.
    pub fn with_groups(mut self, groups: usize) -> ConvOptions {
        self.groups = groups;
        self
    }

    /// The geometry these options describe for a layer of the given rank.
    pub fn geometry(&self, rank: usize) -> wino_tensor::ConvGeometry {
        let rank = rank.min(MAX_RANK);
        wino_tensor::ConvGeometry {
            stride: self.stride[..rank].to_vec(),
            dilation: self.dilation[..rank].to_vec(),
            groups: self.groups,
        }
    }

    /// True when stride/dilation/groups are all 1 over the first `rank`
    /// dimensions — the only geometry the monolithic planner accepts.
    pub fn has_identity_geometry(&self, rank: usize) -> bool {
        self.geometry(rank).is_identity()
    }

    /// These options with the geometry fields reset to the identity — the
    /// form the dispatch layer hands to stride-1 sub-plans.
    pub fn with_identity_geometry(mut self) -> ConvOptions {
        self.stride = [1; MAX_RANK];
        self.dilation = [1; MAX_RANK];
        self.groups = 1;
        self
    }
}

impl Default for ConvOptions {
    fn default() -> Self {
        ConvOptions {
            streaming_stores: true,
            schedule: Schedule::default(),
            block: None,
            superblock: None,
            points: PointSchedule::default(),
            stage2: Stage2Backend::default(),
            budget: None,
            memory: None,
            compensated: false,
            watchdog: None,
            stride: [1; MAX_RANK],
            dilation: [1; MAX_RANK],
            groups: 1,
        }
    }
}

/// Errors from plan construction.
///
/// `Copy` by design: fallback decisions record the original error in an
/// [`crate::net::ExecutionReport`] while also propagating it, so the type
/// must be freely duplicable. The `reason` fields are static reason codes,
/// not formatted strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    Shape(ShapeError),
    /// Rank exceeds [`MAX_RANK`].
    RankTooHigh { rank: usize },
    /// Requested tile size is numerically or structurally unusable.
    BadTileSize { dim: usize, m: usize },
    /// Blocking parameters incompatible with the channel counts.
    BadBlocking { reason: &'static str },
    /// JIT stage-2 backend requested but unavailable (no AVX-512F, or
    /// code emission failed).
    Jit { reason: &'static str },
    /// The requested tile's a-priori error bound exceeds the plan's
    /// [`AccuracyBudget`] in dimension `dim` — demote `m` (the planner's
    /// `candidate_tiles` does this automatically).
    AccuracyBudget { dim: usize, m: usize },
    /// The plan's analytic footprint exceeds its [`MemoryBudget`] —
    /// demote `m` ([`crate::select::plan_with_fallback`] does this
    /// automatically).
    MemoryBudget { need_bytes: usize, budget_bytes: usize },
    /// The options carry a non-identity stride/dilation/groups geometry,
    /// which the monolithic planner does not execute — route the layer
    /// through [`crate::dispatch`] instead.
    Geometry { reason: &'static str },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Shape(e) => write!(f, "{e}"),
            PlanError::RankTooHigh { rank } => {
                write!(f, "rank {rank} exceeds supported maximum {MAX_RANK}")
            }
            PlanError::BadTileSize { dim, m } => {
                write!(f, "output tile size m={m} for dimension {dim} is unusable")
            }
            PlanError::BadBlocking { reason } => write!(f, "bad blocking: {reason}"),
            PlanError::Jit { reason } => write!(f, "jit backend unavailable: {reason}"),
            PlanError::AccuracyBudget { dim, m } => write!(
                f,
                "tile size m={m} for dimension {dim} exceeds the accuracy budget"
            ),
            PlanError::MemoryBudget { need_bytes, budget_bytes } => write!(
                f,
                "plan footprint {need_bytes} B exceeds the memory budget {budget_bytes} B"
            ),
            PlanError::Geometry { reason } => {
                write!(f, "non-identity conv geometry: {reason}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

impl From<ShapeError> for PlanError {
    fn from(e: ShapeError) -> Self {
        PlanError::Shape(e)
    }
}

/// Pre-compiled machine-code kernels for the JIT stage-2 backend: the
/// β = 0/1 block kernels for intermediate reduction blocks and the
/// streaming-scatter kernels (full-height and tail panels) for the final
/// one.
pub(crate) struct JitStage2 {
    pub block0: Option<wino_jit::JitKernel>,
    pub block1: Option<wino_jit::JitKernel>,
    pub scatter_full: Option<wino_jit::JitKernel>,
    pub scatter_tail: Option<wino_jit::JitKernel>,
    /// Rows of the final, partially filled panel (0 = all panels full).
    pub tail: usize,
}

impl std::fmt::Debug for JitStage2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JitStage2 {{ tail: {} }}", self.tail)
    }
}

/// A fully planned N-D Winograd convolution for one layer shape and one
/// choice of `F(m, r)`.
#[derive(Debug)]
pub struct WinogradLayer {
    pub shape: ConvShape,
    pub grid: TileGrid,
    /// Per-dimension transform plans `F(m_d, r_d)`.
    pub plans: Vec<FmrPlan>,
    /// Stage-2 blocking `(n_blk, C_blk, C'_blk)`.
    pub block: BlockShape,
    /// Row blocks per superblock of the pipelined schedule (≥ 1), from
    /// the L2 footprint model unless overridden via
    /// [`ConvOptions::superblock`]. Unused by the monolithic schedules.
    pub superblock: usize,
    pub opts: ConvOptions,
    pub(crate) jit: Option<JitStage2>,
}

impl WinogradLayer {
    /// Plan `F(m₁×…×m_n, r₁×…×r_n)` for the given layer.
    pub fn new(shape: ConvShape, m: &[usize], opts: ConvOptions) -> Result<WinogradLayer, PlanError> {
        let rank = shape.rank();
        if rank > MAX_RANK {
            return Err(PlanError::RankTooHigh { rank });
        }
        if !opts.has_identity_geometry(rank) {
            // Stride/dilation/groups are the dispatch layer's job: the
            // monolithic three-stage pipeline is a stride-1 algorithm.
            return Err(PlanError::Geometry {
                reason: "WinogradLayer is stride-1/dense; use dispatch::plan_dispatch",
            });
        }
        if !shape.in_channels.is_multiple_of(S) {
            return Err(ShapeError::ChannelsNotVectorMultiple { channels: shape.in_channels }.into());
        }
        if !shape.out_channels.is_multiple_of(S) {
            return Err(
                ShapeError::ChannelsNotVectorMultiple { channels: shape.out_channels }.into()
            );
        }
        let grid = TileGrid::new(&shape, m)?;
        let mut plans = Vec::with_capacity(rank);
        for d in 0..rank {
            if m[d] == 0 || m[d] + shape.kernel_dims[d] - 1 > wino_transforms::points::MAX_FINITE_POINTS + 1 {
                return Err(PlanError::BadTileSize { dim: d, m: m[d] });
            }
            let plan = FmrPlan::with_schedule(m[d], shape.kernel_dims[d], opts.points);
            if let Some(budget) = opts.budget {
                if !budget.admits_gamma(plan.conditioning().gamma) {
                    return Err(PlanError::AccuracyBudget { dim: d, m: m[d] });
                }
            }
            plans.push(plan);
        }
        if opts.compensated && opts.stage2 == Stage2Backend::Jit {
            return Err(PlanError::Jit {
                reason: "compensated accumulation requires the mono stage-2 backend",
            });
        }
        let rows = grid.total_tiles() * shape.batch;
        let block = match opts.block {
            Some(b) => {
                if !shape.in_channels.is_multiple_of(b.c_blk) {
                    return Err(PlanError::BadBlocking {
                        reason: "C not divisible by C_blk",
                    });
                }
                if !shape.out_channels.is_multiple_of(b.cp_blk) {
                    return Err(PlanError::BadBlocking {
                        reason: "C' not divisible by C'_blk",
                    });
                }
                if b.n_blk == 0 || b.n_blk > wino_gemm::MAX_N_BLK {
                    return Err(PlanError::BadBlocking { reason: "n_blk out of range" });
                }
                if b.c_blk % S != 0 || b.cp_blk % S != 0 {
                    return Err(PlanError::BadBlocking {
                        reason: "C_blk and C'_blk must be multiples of 16",
                    });
                }
                b
            }
            None => default_shape(shape.in_channels, shape.out_channels, rows),
        };
        let jit = match opts.stage2 {
            Stage2Backend::Mono => None,
            Stage2Backend::Jit => {
                if opts.schedule == Schedule::Pipelined {
                    // The JIT kernels hard-code the streaming scatter;
                    // rejecting here lets `plan_with_fallback` degrade to
                    // the mono backend instead of silently changing the
                    // store policy mid-pipeline.
                    return Err(PlanError::Jit {
                        reason: "pipelined schedule requires the mono stage-2 backend",
                    });
                }
                Some(Self::build_jit(&shape, &grid, block, rows, opts)?)
            }
        };
        let t_vol = grid.tile_volume();
        let superblock = match opts.superblock {
            Some(sb) => {
                if sb == 0 {
                    return Err(PlanError::BadBlocking { reason: "superblock must be ≥ 1" });
                }
                sb
            }
            None => block.superblock_row_blocks(
                t_vol,
                shape.in_channels,
                shape.out_channels,
                wino_gemm::SUPERBLOCK_L2_BYTES,
            ),
        };
        let layer = WinogradLayer { shape, grid, plans, block, superblock, opts, jit };
        if let Some(mb) = opts.memory {
            let need_bytes = layer.footprint(mb.threads).total();
            if !mb.admits(need_bytes) {
                return Err(PlanError::MemoryBudget { need_bytes, budget_bytes: mb.max_bytes });
            }
        }
        Ok(layer)
    }

    /// Compile the stage-2 machine-code kernels (the paper generates them
    /// "on demand, … compiled to a shared library, and loaded" — here they
    /// are emitted straight into executable pages at plan time).
    fn build_jit(
        shape: &ConvShape,
        grid: &TileGrid,
        block: BlockShape,
        rows: usize,
        opts: ConvOptions,
    ) -> Result<JitStage2, PlanError> {
        use wino_jit::{JitError, JitKernel, JitOutput};
        let jit_err = |e: JitError| PlanError::Jit {
            reason: match e {
                JitError::Avx512Unavailable => "AVX-512F not available on this CPU",
                JitError::BadParams(reason) => reason,
                JitError::Os(_) => "executable mapping failed",
            },
        };
        let k_blocks = shape.in_channels / block.c_blk;
        let tail = rows % block.n_blk;
        let t_vol = grid.tile_volume();
        let n_tiles: usize = grid.counts.iter().product();
        // Tile-major group stride (floats): see `TileMajor::group_stride`.
        let group_stride = n_tiles * t_vol * S;
        let (nb, cb, cpb) = (block.n_blk, block.c_blk, block.cp_blk);

        let fused = opts.schedule.fuses_scatter();
        let need_block0 = !fused || k_blocks > 1;
        let need_block1 = k_blocks > 1 && (!fused || k_blocks > 2);
        let scatter_beta = k_blocks > 1;
        let block0 = if need_block0 {
            Some(JitKernel::compile(nb, cb, cpb, false).map_err(jit_err)?)
        } else {
            None
        };
        let block1 = if need_block1 {
            Some(JitKernel::compile(nb, cb, cpb, true).map_err(jit_err)?)
        } else {
            None
        };
        let (scatter_full, scatter_tail) = if fused {
            let full = JitKernel::compile_with_output(
                nb,
                cb,
                cpb,
                scatter_beta,
                JitOutput::Scatter { group_stride },
            )
            .map_err(jit_err)?;
            let tail_kernel = if tail != 0 {
                Some(
                    JitKernel::compile_with_output(
                        tail,
                        cb,
                        cpb,
                        scatter_beta,
                        JitOutput::Scatter { group_stride },
                    )
                    .map_err(jit_err)?,
                )
            } else {
                None
            };
            (Some(full), tail_kernel)
        } else {
            (None, None)
        };
        Ok(JitStage2 { block0, block1, scatter_full, scatter_tail, tail })
    }

    /// Number of spatial dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Tile volume `T = ∏(m_d + r_d − 1)` — the number of batched matrix
    /// multiplications in stage 2.
    pub fn t_vol(&self) -> usize {
        self.grid.tile_volume()
    }

    /// Tiles per image `N`.
    pub fn n_tiles(&self) -> usize {
        self.grid.total_tiles()
    }

    /// Panel rows of the transformed matrices: `N·B`.
    pub fn rows(&self) -> usize {
        self.n_tiles() * self.shape.batch
    }

    /// `n_blk`-row panels per transformed matrix (the unit the pipelined
    /// schedule groups into superblocks).
    pub fn row_blocks(&self) -> usize {
        self.rows().div_ceil(self.block.n_blk)
    }

    /// Superblocks the pipelined schedule partitions this layer into —
    /// the task-grid extent of its single fork–join.
    pub fn num_superblocks(&self) -> usize {
        self.row_blocks().div_ceil(self.superblock)
    }

    /// Allocate the output image for this layer.
    pub fn new_output(&self) -> Result<wino_tensor::BlockedImage, ShapeError> {
        wino_tensor::BlockedImage::zeros(self.shape.batch, self.shape.out_channels, &self.shape.out_dims())
    }

    /// Fallible [`Self::new_output`]: a typed allocation failure instead
    /// of an abort when the allocator refuses the buffer.
    pub fn try_new_output(&self) -> Result<wino_tensor::BlockedImage, wino_tensor::TensorError> {
        wino_tensor::BlockedImage::try_zeros(
            self.shape.batch,
            self.shape.out_channels,
            &self.shape.out_dims(),
        )
    }

    /// The plan's analytic memory footprint at `threads` thread slots —
    /// exactly the bytes [`Scratch::new`], [`Self::new_output`] and the
    /// memoised kernel transform would allocate, computed without
    /// allocating anything. See [`crate::MemoryFootprint`].
    pub fn footprint(&self, threads: usize) -> crate::MemoryFootprint {
        crate::MemoryFootprint::of_layer(self, threads)
    }

    /// FLOPs the equivalent direct convolution would perform (the
    /// normaliser for effective-GFLOP/s reporting, as in Fig. 5).
    pub fn direct_flops(&self) -> u128 {
        self.shape.direct_flops()
    }

    /// A-priori worst-case bound on this layer's relative output error
    /// against an exact evaluation:
    ///
    /// ```text
    /// bound = ε · (∏_d γ(m_d, r_d)) · C · ∏_d r_d
    /// ```
    ///
    /// where γ is the exact-rational amplification factor of each
    /// dimension's transforms ([`wino_transforms::Conditioning`]) and
    /// `C · ∏ r` counts the accumulation length of the channel/tap
    /// reduction. Deliberately conservative (a guaranteed no-false-trip
    /// threshold for the runtime accuracy sentinels, often orders of
    /// magnitude above typical error) but strictly monotone in every
    /// `m_d`, which is what bound-driven tile demotion needs.
    pub fn predicted_bound(&self) -> f64 {
        let gamma: f64 = self.plans.iter().map(|p| p.conditioning().gamma).product();
        let taps: usize = self.shape.kernel_dims.iter().product();
        let terms = (self.shape.in_channels * taps) as f64;
        f64::from(f32::EPSILON) * gamma * terms
    }
}

/// Per-thread ping-pong tile buffers (each `T·S` floats).
pub(crate) struct ThreadBuf {
    pub a: AlignedVec,
    pub b: AlignedVec,
}

/// Per-thread buffers for the compensated stage-2 reduction
/// ([`ConvOptions::compensated`]): one panel-sized product buffer and one
/// panel-sized Kahan compensation buffer. Allocated only for compensated
/// plans.
pub(crate) struct CompBuf {
    /// One reduction block's product `U_k · V_k` (β = 0 target).
    pub tmp: AlignedVec,
    /// Running Kahan–Neumaier compensation for the panel accumulator.
    pub comp: AlignedVec,
}

/// One thread slot's [`CompBuf`], shareable across the executor's workers.
pub(crate) struct CompBufCell(UnsafeCell<CompBuf>);

// SAFETY: each executor thread slot accesses only its own cell (the
// Executor slot contract); see `Scratch::thread_buf` for the same pattern.
unsafe impl Sync for CompBufCell {}

impl CompBufCell {
    /// Raw pointer to the slot's buffers; the caller upholds the slot
    /// exclusivity contract before dereferencing.
    pub(crate) fn get(&self) -> *mut CompBuf {
        self.0.get()
    }
}

/// The paper's auxiliary memory: transformed inputs `I` (`u`), transformed
/// kernels `W` (`v`), blocked intermediate `I'_tmp` (`x`), tile-major
/// transformed outputs `I'` (`y`), plus per-thread codelet buffers.
///
/// Reused across invocations (and across layers of the same plan); sized
/// once at construction.
pub struct Scratch {
    pub u: BlockedMatrices,
    pub v: BlockedMatrices,
    pub x: BlockedMatrices,
    pub y: TileMajor,
    bufs: Vec<UnsafeCell<ThreadBuf>>,
    /// Compensated-reduction panels, one per thread slot; empty unless
    /// the layer was planned with [`ConvOptions::compensated`].
    cbufs: Vec<CompBufCell>,
}

// SAFETY: each executor thread slot accesses only its own `bufs[slot]`
// and `cbufs[slot]` (guaranteed by the Executor contract), and the
// matrices are written at disjoint offsets per task.
unsafe impl Sync for Scratch {}

impl Scratch {
    /// Allocate scratch for `layer`, usable with executors of up to
    /// `threads` thread slots.
    pub fn new(layer: &WinogradLayer, threads: usize) -> Scratch {
        Scratch::build(layer, threads, None)
    }

    /// As [`Scratch::new`], but the four large transformed-data buffers
    /// (`u`, `v`, `x`, `y`) are zeroed — and therefore NUMA-placed —
    /// through `exec` (`wino_tensor::first_touch`): each executor thread
    /// first-touches the region of scratch that the same executor's
    /// partition will steer it at during the forward pass. Thread-slot
    /// count is taken from `exec.threads()`.
    pub fn new_first_touch(layer: &WinogradLayer, exec: &dyn wino_sched::Executor) -> Scratch {
        Scratch::build(layer, exec.threads(), Some(exec))
    }

    /// Fallible [`Scratch::new`]: a typed [`wino_simd::AllocError`]
    /// instead of an abort when any of the scratch buffers is refused.
    /// The run-time memory degradation ladder (`Network::ensure_scratch`)
    /// allocates through this seam.
    pub fn try_new(layer: &WinogradLayer, threads: usize) -> Result<Scratch, wino_simd::AllocError> {
        Scratch::try_build(layer, threads, None)
    }

    /// Fallible [`Scratch::new_first_touch`].
    pub fn try_new_first_touch(
        layer: &WinogradLayer,
        exec: &dyn wino_sched::Executor,
    ) -> Result<Scratch, wino_simd::AllocError> {
        Scratch::try_build(layer, exec.threads(), Some(exec))
    }

    fn try_build(
        layer: &WinogradLayer,
        threads: usize,
        exec: Option<&dyn wino_sched::Executor>,
    ) -> Result<Scratch, wino_simd::AllocError> {
        let t = layer.t_vol();
        let rows = layer.rows();
        let (c, cp) = (layer.shape.in_channels, layer.shape.out_channels);
        let b = layer.block;
        let (u, v, x, y) = match exec {
            Some(e) => (
                BlockedMatrices::try_new_first_touch(t, rows, c, b.n_blk, b.c_blk, e)?,
                BlockedMatrices::try_new_first_touch(t, c, cp, b.c_blk, b.cp_blk, e)?,
                BlockedMatrices::try_new_first_touch(t, rows, cp, b.n_blk, b.cp_blk, e)?,
                TileMajor::try_new_first_touch(layer.shape.batch, cp, layer.n_tiles(), t, e)?,
            ),
            None => (
                BlockedMatrices::try_new(t, rows, c, b.n_blk, b.c_blk)?,
                BlockedMatrices::try_new(t, c, cp, b.c_blk, b.cp_blk)?,
                BlockedMatrices::try_new(t, rows, cp, b.n_blk, b.cp_blk)?,
                TileMajor::try_new(layer.shape.batch, cp, layer.n_tiles(), t)?,
            ),
        };
        let mut bufs = Vec::with_capacity(threads.max(1));
        for _ in 0..threads.max(1) {
            bufs.push(UnsafeCell::new(ThreadBuf {
                a: AlignedVec::try_zeroed(t * S)?,
                b: AlignedVec::try_zeroed(t * S)?,
            }));
        }
        let mut cbufs = Vec::new();
        if layer.opts.compensated {
            let panel = b.n_blk * b.cp_blk;
            for _ in 0..threads.max(1) {
                cbufs.push(CompBufCell(UnsafeCell::new(CompBuf {
                    tmp: AlignedVec::try_zeroed(panel)?,
                    comp: AlignedVec::try_zeroed(panel)?,
                })));
            }
        }
        Ok(Scratch { u, v, x, y, bufs, cbufs })
    }

    fn build(
        layer: &WinogradLayer,
        threads: usize,
        exec: Option<&dyn wino_sched::Executor>,
    ) -> Scratch {
        let t = layer.t_vol();
        let rows = layer.rows();
        let (c, cp) = (layer.shape.in_channels, layer.shape.out_channels);
        let b = layer.block;
        let (u, v, x, y) = match exec {
            Some(e) => (
                BlockedMatrices::new_first_touch(t, rows, c, b.n_blk, b.c_blk, e),
                BlockedMatrices::new_first_touch(t, c, cp, b.c_blk, b.cp_blk, e),
                BlockedMatrices::new_first_touch(t, rows, cp, b.n_blk, b.cp_blk, e),
                TileMajor::new_first_touch(layer.shape.batch, cp, layer.n_tiles(), t, e),
            ),
            None => (
                BlockedMatrices::new(t, rows, c, b.n_blk, b.c_blk),
                BlockedMatrices::new(t, c, cp, b.c_blk, b.cp_blk),
                BlockedMatrices::new(t, rows, cp, b.n_blk, b.cp_blk),
                TileMajor::new(layer.shape.batch, cp, layer.n_tiles(), t),
            ),
        };
        let bufs = (0..threads.max(1))
            .map(|_| {
                UnsafeCell::new(ThreadBuf {
                    // ALLOC: `build` is the infallible Scratch half;
                    // `try_build` below is the accounted path.
                    a: AlignedVec::zeroed(t * S),
                    b: AlignedVec::zeroed(t * S), // ALLOC: as above
                })
            })
            .collect();
        let cbufs = if layer.opts.compensated {
            let panel = b.n_blk * b.cp_blk;
            (0..threads.max(1))
                .map(|_| {
                    CompBufCell(UnsafeCell::new(CompBuf {
                        tmp: AlignedVec::zeroed(panel), // ALLOC: as above
                        comp: AlignedVec::zeroed(panel), // ALLOC: as above
                    }))
                })
                .collect()
        } else {
            Vec::new()
        };
        Scratch { u, v, x, y, bufs, cbufs }
    }

    /// Total auxiliary bytes (the paper's memory-overhead number).
    pub fn bytes(&self) -> usize {
        self.u.bytes() + self.v.bytes() + self.x.bytes() + self.y.bytes()
    }

    pub(crate) fn thread_slots(&self) -> usize {
        self.bufs.len()
    }

    /// Exclusive access to thread `slot`'s ping-pong buffers.
    ///
    /// # Safety
    /// At most one task may hold a given slot's buffers at a time (the
    /// Executor slot contract).
    // Audited (PR 2): clippy::mut_from_ref targets *safe* fns minting
    // `&mut` from `&`; here the `&mut` derives from an `UnsafeCell` and the
    // fn is `unsafe` with the exclusivity contract stated above, which is
    // exactly the sanctioned interior-mutability escape hatch. Keep.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn thread_buf(&self, slot: usize) -> &mut ThreadBuf {
        &mut *self.bufs[slot].get()
    }

    /// The compensated-reduction buffers, or `None` for plans without
    /// [`ConvOptions::compensated`]. Each slot's buffer is subject to the
    /// same Executor slot-exclusivity contract as [`Scratch::thread_buf`].
    pub(crate) fn comp_bufs(&self) -> Option<&[CompBufCell]> {
        if self.cbufs.is_empty() {
            None
        } else {
            Some(&self.cbufs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape2d() -> ConvShape {
        ConvShape::new(2, 32, 32, &[12, 12], &[3, 3], &[1, 1]).unwrap()
    }

    #[test]
    fn plan_basics() {
        let layer = WinogradLayer::new(shape2d(), &[4, 4], ConvOptions::default()).unwrap();
        assert_eq!(layer.rank(), 2);
        assert_eq!(layer.t_vol(), 36);
        assert_eq!(layer.grid.counts, vec![3, 3]);
        assert_eq!(layer.rows(), 2 * 9);
        assert_eq!(layer.shape.out_dims(), vec![12, 12]);
        // Blocking legality.
        assert_eq!(32 % layer.block.c_blk, 0);
        assert_eq!(32 % layer.block.cp_blk, 0);
    }

    #[test]
    fn plan_rejects_bad_channels() {
        let s = ConvShape::new(1, 24, 32, &[8, 8], &[3, 3], &[0, 0]).unwrap();
        assert!(matches!(
            WinogradLayer::new(s, &[2, 2], ConvOptions::default()),
            Err(PlanError::Shape(ShapeError::ChannelsNotVectorMultiple { .. }))
        ));
    }

    #[test]
    fn plan_rejects_bad_blocking() {
        let opts = ConvOptions {
            block: Some(BlockShape { n_blk: 8, c_blk: 48, cp_blk: 16 }),
            ..Default::default()
        };
        assert!(matches!(
            WinogradLayer::new(shape2d(), &[2, 2], opts),
            Err(PlanError::BadBlocking { .. })
        ));
        let opts = ConvOptions {
            block: Some(BlockShape { n_blk: 40, c_blk: 16, cp_blk: 16 }),
            ..Default::default()
        };
        assert!(matches!(
            WinogradLayer::new(shape2d(), &[2, 2], opts),
            Err(PlanError::BadBlocking { .. })
        ));
    }

    #[test]
    fn plan_rejects_huge_tiles() {
        assert!(matches!(
            WinogradLayer::new(shape2d(), &[40, 4], ConvOptions::default()),
            Err(PlanError::BadTileSize { dim: 0, .. })
        ));
    }

    #[test]
    fn scratch_sizes() {
        let layer = WinogradLayer::new(shape2d(), &[4, 4], ConvOptions::default()).unwrap();
        let scratch = Scratch::new(&layer, 4);
        assert_eq!(scratch.u.t_count(), 36);
        assert_eq!(scratch.u.rows(), 18);
        assert_eq!(scratch.u.cols(), 32);
        assert_eq!(scratch.v.rows(), 32);
        assert_eq!(scratch.v.cols(), 32);
        assert_eq!(scratch.y.n_tiles(), 9);
        assert_eq!(scratch.thread_slots(), 4);
        assert!(scratch.bytes() > 0);
    }

    #[test]
    fn scratch_first_touch_matches_plain_scratch() {
        let layer = WinogradLayer::new(shape2d(), &[4, 4], ConvOptions::default()).unwrap();
        let exec = wino_sched::StaticExecutor::new(3);
        let ft = Scratch::new_first_touch(&layer, &exec);
        let plain = Scratch::new(&layer, 3);
        assert_eq!(ft.bytes(), plain.bytes());
        assert_eq!(ft.thread_slots(), 3);
        // First-touch zeroing must produce exactly the all-zero state the
        // plain constructor guarantees.
        assert!(ft.u.as_slice().iter().all(|&x| x == 0.0));
        assert!(ft.x.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn three_d_plan() {
        let s = ConvShape::new(1, 16, 16, &[6, 8, 8], &[3, 3, 3], &[1, 1, 1]).unwrap();
        let layer = WinogradLayer::new(s, &[2, 4, 4], ConvOptions::default()).unwrap();
        assert_eq!(layer.t_vol(), 4 * 6 * 6);
        assert_eq!(layer.grid.counts, vec![3, 2, 2]);
    }

    #[test]
    fn superblock_geometry_is_planned() {
        let layer = WinogradLayer::new(shape2d(), &[4, 4], ConvOptions::default()).unwrap();
        assert!(layer.superblock >= 1);
        assert!(layer.num_superblocks() >= 1);
        // Superblocks tile the row blocks exactly.
        assert!(layer.num_superblocks() * layer.superblock >= layer.row_blocks());
        assert!((layer.num_superblocks() - 1) * layer.superblock < layer.row_blocks());
    }

    #[test]
    fn superblock_override_is_honoured_and_validated() {
        let opts = ConvOptions { superblock: Some(2), ..Default::default() };
        let layer = WinogradLayer::new(shape2d(), &[4, 4], opts).unwrap();
        assert_eq!(layer.superblock, 2);
        let opts = ConvOptions { superblock: Some(0), ..Default::default() };
        assert!(matches!(
            WinogradLayer::new(shape2d(), &[4, 4], opts),
            Err(PlanError::BadBlocking { .. })
        ));
    }

    #[test]
    fn pipelined_rejects_jit_backend() {
        let opts = ConvOptions {
            schedule: Schedule::Pipelined,
            stage2: Stage2Backend::Jit,
            ..Default::default()
        };
        assert!(matches!(
            WinogradLayer::new(shape2d(), &[4, 4], opts),
            Err(PlanError::Jit { .. })
        ));
    }

    #[test]
    fn schedule_names_and_fusion() {
        assert_eq!(Schedule::ALL.len(), 3);
        assert_eq!(Schedule::default(), Schedule::FusedScatter);
        assert!(!Schedule::Unfused.fuses_scatter());
        assert!(Schedule::FusedScatter.fuses_scatter());
        assert!(Schedule::Pipelined.fuses_scatter());
        let names: Vec<&str> = Schedule::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["unfused", "fused-scatter", "pipelined"]);
    }

    #[test]
    fn budget_admits_and_rejects_by_conditioning() {
        // γ(4,3)·ε ≈ 5.72e-6, γ(6,3)·ε ≈ 8.07e-6, γ(8,3)·ε ≈ 1.07e-4
        // (mixed points). A 6e-6 budget sits between m=4 and m=5.
        let tight = ConvOptions {
            budget: Some(AccuracyBudget::new(6e-6)),
            ..Default::default()
        };
        let s = ConvShape::new(1, 32, 32, &[20, 20], &[3, 3], &[1, 1]).unwrap();
        assert!(WinogradLayer::new(s.clone(), &[4, 4], tight).is_ok());
        assert!(matches!(
            WinogradLayer::new(s.clone(), &[8, 8], tight),
            Err(PlanError::AccuracyBudget { dim: 0, m: 8 })
        ));
        // No budget (the default): any structurally valid tile plans.
        assert!(WinogradLayer::new(s, &[8, 8], ConvOptions::default()).is_ok());
    }

    #[test]
    fn predicted_bound_is_monotone_in_tile_size() {
        let mut last = 0.0;
        for m in [2, 4, 6, 8] {
            let s = ConvShape::new(1, 32, 32, &[20, 20], &[3, 3], &[1, 1]).unwrap();
            let layer = WinogradLayer::new(s, &[m, m], ConvOptions::default()).unwrap();
            let b = layer.predicted_bound();
            assert!(b > last, "bound not monotone at m={m}: {b} ≤ {last}");
            assert!(b.is_finite() && b > 0.0);
            last = b;
        }
    }

    #[test]
    fn compensated_plans_get_buffers_and_reject_jit() {
        let opts = ConvOptions { compensated: true, ..Default::default() };
        let layer = WinogradLayer::new(shape2d(), &[4, 4], opts).unwrap();
        let scratch = Scratch::new(&layer, 2);
        assert_eq!(scratch.comp_bufs().map(<[_]>::len), Some(2));
        // Plain plans allocate none.
        let plain = WinogradLayer::new(shape2d(), &[4, 4], ConvOptions::default()).unwrap();
        assert!(Scratch::new(&plain, 2).comp_bufs().is_none());
        // The JIT kernels hard-code β-accumulation; compensated requires mono.
        let opts = ConvOptions {
            compensated: true,
            stage2: Stage2Backend::Jit,
            ..Default::default()
        };
        assert!(matches!(
            WinogradLayer::new(shape2d(), &[4, 4], opts),
            Err(PlanError::Jit { .. })
        ));
    }

    #[test]
    fn asymmetric_tiles_and_kernels() {
        // F(6×8, 3×3)-style and arbitrary kernel 4×2.
        let s = ConvShape::new(1, 16, 16, &[20, 20], &[4, 2], &[0, 0]).unwrap();
        let layer = WinogradLayer::new(s, &[3, 5], ConvOptions::default()).unwrap();
        assert_eq!(layer.plans[0].alpha(), 6);
        assert_eq!(layer.plans[1].alpha(), 6);
        assert_eq!(layer.grid.out_dims, vec![17, 19]);
    }
}
