//! Geometry dispatch: route every (stride, dilation, groups) combination
//! of a representable layer onto an engine that can execute it.
//!
//! [`crate::WinogradLayer`] is a stride-1, dense algorithm; this module is
//! the layer above it that closes the rest of the scenario matrix:
//!
//! * **identity geometry** — the plain three-stage pipeline, planned via
//!   [`plan_with_fallback`] exactly as before ([`Route::Direct`]);
//! * **stride ≥ 2** — the sub-lattice (polyphase) decomposition
//!   ([`Route::Polyphase`]): writing every kernel tap `t` as
//!   `t = φ + j·s`, the strided output
//!   `y[o] = Σ_t w[t]·x̂[o·s + t]` (`x̂` = zero-padded input) regroups into
//!   `Σ_φ Σ_j w_φ[j] · x̃_φ[o + j]` — one *stride-1, unpadded* convolution
//!   per phase `φ` on the decimated input `x̃_φ[i] = x̂[φ + i·s]` with the
//!   phase kernel `w_φ[j] = w[φ + j·s]` of extent `r_φ = ⌈(r − φ)/s⌉`.
//!   Each phase runs the existing Winograd pipeline and the phase outputs
//!   are summed. Phases accumulate in a fixed order, so the result is
//!   bitwise identical across executors and schedules;
//! * **groups with vector-wide per-group channels** — the C/C' loops are
//!   blocked per group around one shared sub-plan ([`Route::Grouped`]):
//!   all groups share the same spatial shape, so one plan plus one scratch
//!   serves every group;
//! * **everything else** (dilation, narrow/depthwise groups, sub-plan
//!   failures) — the im2col baseline ([`Route::Im2col`]), with a typed
//!   [`FallbackReason`] recording *why* Winograd declined. A representable
//!   layer is never rejected; only unrepresentable geometry
//!   ([`wino_tensor::ShapeError`]) is a [`PlanError`].

// Index-based loops walk several arrays with derived offsets; iterator
// rewrites obscure the math (same policy as the stage code).
#![allow(clippy::needless_range_loop)]

use wino_probe::{SpanCategory, StageWork, WorkModel, ALL_CATEGORIES};
use wino_sched::Executor;
use wino_simd::S;
use wino_tensor::{unflatten, BlockedImage, BlockedKernels, ConvGeometry, ConvShape};

use crate::error::WinoError;
use crate::net::{FallbackReason, LayerBackend};
use crate::plan::{ConvOptions, PlanError, Scratch, Stage2Backend, WinogradLayer, MAX_RANK};
use crate::select::{plan_with_fallback, FallbackPolicy};

/// One phase of the polyphase (sub-lattice) decomposition: the stride-1
/// Winograd sub-problem convolving the `offset`-decimated input with the
/// `offset`-decimated kernel taps.
#[derive(Debug)]
pub struct Phase {
    /// Phase offset `φ_d ∈ [0, stride_d)` per dimension.
    pub offset: Vec<usize>,
    /// The stride-1 plan for this phase (`r_φ[d] = ⌈(r_d − φ_d)/s_d⌉`
    /// taps over the trimmed extent `out_d + r_φ[d] − 1`, no padding).
    pub plan: WinogradLayer,
}

/// Which engine a dispatched layer runs on.
#[derive(Debug)]
pub enum Route {
    /// Identity geometry: the plain three-stage Winograd pipeline.
    Direct(Box<WinogradLayer>),
    /// Stride ≥ 2 (optionally grouped): sum of per-phase stride-1
    /// Winograd convolutions. Phases where some `r_φ[d] = 0` contribute
    /// nothing and are omitted.
    Polyphase { phases: Vec<Phase> },
    /// Stride 1, groups > 1 with `C/G` and `C'/G` both multiples of the
    /// vector width: one shared per-group Winograd plan, C/C' loops
    /// blocked per group.
    Grouped { plan: Box<WinogradLayer> },
    /// The im2col baseline over the full geometry — the universal
    /// fallback (dilation, narrow groups, sub-plan failure).
    Im2col,
}

/// A planned route for one layer shape under one [`ConvGeometry`].
#[derive(Debug)]
pub struct DispatchPlan {
    /// The layer's stride-1 description: input extents, *undilated*
    /// kernel extents, padding, and **global** channel counts. Kernels
    /// follow the grouped convention
    /// (`kernels.in_channels == C / groups`).
    pub shape: ConvShape,
    /// The geometry the route realises.
    pub geo: ConvGeometry,
    /// Output extents under the geometry.
    out_dims: Vec<usize>,
    pub route: Route,
}

/// Plan a route for `shape` under the geometry carried by `opts`
/// (see [`ConvOptions::geometry`]).
///
/// Returns the plan plus the typed reason Winograd was (partly) declined,
/// if any — [`FallbackReason::Dilated`] and
/// [`FallbackReason::GroupTooNarrow`] mark *designed* im2col routes and
/// are reported under every policy; plan failures are absorbed into
/// im2col only when `policy.im2col_on_plan_failure` allows. `Err` is
/// reserved for unrepresentable layers ([`PlanError::Shape`]) and for
/// plan failures a strict policy refuses to absorb.
pub fn plan_dispatch(
    shape: &ConvShape,
    m: &[usize],
    opts: ConvOptions,
    policy: &FallbackPolicy,
) -> Result<(DispatchPlan, Option<FallbackReason>), PlanError> {
    let rank = shape.rank();
    if rank > MAX_RANK {
        return Err(PlanError::RankTooHigh { rank });
    }
    let geo = opts.geometry(rank);
    geo.validate(shape)?; // unrepresentable layers are hard errors
    let out_dims = geo.out_dims(shape)?;
    let sub_opts = opts.with_identity_geometry();
    let done = |route, fb| {
        Ok((
            DispatchPlan { shape: shape.clone(), geo: geo.clone(), out_dims: out_dims.clone(), route },
            fb,
        ))
    };

    if geo.is_identity() {
        // Mirror the monolithic planning path exactly.
        return match plan_with_fallback(shape, m, sub_opts, policy) {
            Ok((p, jit)) => done(
                Route::Direct(Box::new(p)),
                jit.map(FallbackReason::JitUnavailable),
            ),
            Err(e @ PlanError::Shape(_)) => Err(e),
            Err(e) if policy.im2col_on_plan_failure => {
                done(Route::Im2col, Some(FallbackReason::PlanFailed(e)))
            }
            Err(e) => Err(e),
        };
    }

    // Dilation is outside what the Winograd transform stencils express:
    // a designed im2col route, not a failure.
    if geo.dilation.iter().any(|&d| d > 1) {
        return done(Route::Im2col, Some(FallbackReason::Dilated));
    }

    // Narrow groups (depthwise included) cannot fill the S-wide channel
    // vectors of the blocked layout: designed im2col route.
    let c_per_group = shape.in_channels / geo.groups;
    let k_per_group = shape.out_channels / geo.groups;
    if geo.groups > 1 && (!c_per_group.is_multiple_of(S) || !k_per_group.is_multiple_of(S)) {
        return done(Route::Im2col, Some(FallbackReason::GroupTooNarrow { c_per_group }));
    }

    // From here every sub-problem is a plain stride-1 Winograd plan over
    // the per-group channel counts (== the global ones when groups == 1).
    if geo.stride.iter().all(|&s| s == 1) {
        let gshape = ConvShape::new(
            shape.batch,
            c_per_group,
            k_per_group,
            &shape.image_dims,
            &shape.kernel_dims,
            &shape.padding,
        )?;
        return match plan_sub(&gshape, m, sub_opts, policy) {
            Ok((p, jit)) => done(
                Route::Grouped { plan: Box::new(p) },
                jit.map(FallbackReason::JitUnavailable),
            ),
            Err(e) if policy.im2col_on_plan_failure => {
                done(Route::Im2col, Some(FallbackReason::PlanFailed(e)))
            }
            Err(e) => Err(e),
        };
    }

    // Polyphase decomposition for stride ≥ 2.
    let n_phases: usize = geo.stride.iter().product();
    let mut phases = Vec::new();
    let mut jit_fb = None;
    for flat in 0..n_phases {
        let offset = unflatten(flat, &geo.stride);
        let mut r_phi = Vec::with_capacity(rank);
        for d in 0..rank {
            if shape.kernel_dims[d] <= offset[d] {
                // No kernel tap lands on this phase in dimension d: the
                // whole phase contributes nothing.
                r_phi.clear();
                break;
            }
            r_phi.push((shape.kernel_dims[d] - offset[d]).div_ceil(geo.stride[d]));
        }
        if r_phi.is_empty() {
            continue;
        }
        // Trim the decimated input so the valid (unpadded) phase conv
        // emits exactly `out_dims` — no cropping afterwards.
        let ext: Vec<usize> = (0..rank).map(|d| out_dims[d] + r_phi[d] - 1).collect();
        let pshape = ConvShape::new(
            shape.batch,
            c_per_group,
            k_per_group,
            &ext,
            &r_phi,
            &vec![0; rank],
        )?;
        match plan_sub(&pshape, m, sub_opts, policy) {
            Ok((p, jit)) => {
                jit_fb = jit_fb.or(jit);
                phases.push(Phase { offset, plan: p });
            }
            Err(e) if policy.im2col_on_plan_failure => {
                return done(Route::Im2col, Some(FallbackReason::PlanFailed(e)));
            }
            Err(e) => return Err(e),
        }
    }
    done(Route::Polyphase { phases }, jit_fb.map(FallbackReason::JitUnavailable))
}

/// Plan one stride-1 sub-problem: try the caller's tile clipped to the
/// sub-problem's output extents, then the minimal tile. Clipping keeps
/// the intent (larger tiles where they fit) while tolerating the small,
/// skewed extents polyphase phases produce.
fn plan_sub(
    shape: &ConvShape,
    m: &[usize],
    opts: ConvOptions,
    policy: &FallbackPolicy,
) -> Result<(WinogradLayer, Option<PlanError>), PlanError> {
    let out = shape.out_dims();
    let rank = shape.rank();
    let clip = |mm: &[usize]| -> Vec<usize> {
        (0..rank).map(|d| mm.get(d).copied().unwrap_or(2).min(out[d]).max(1)).collect()
    };
    let first = clip(m);
    match plan_with_fallback(shape, &first, opts, policy) {
        Ok(ok) => Ok(ok),
        Err(e) => {
            let minimal = clip(&vec![2; rank]);
            if minimal == first {
                return Err(e);
            }
            plan_with_fallback(shape, &minimal, opts, policy).map_err(|_| e)
        }
    }
}

impl DispatchPlan {
    /// Output extent per dimension under the geometry.
    pub fn out_dims(&self) -> &[usize] {
        &self.out_dims
    }

    /// Allocate the output image for this layer.
    pub fn new_output(&self) -> Result<BlockedImage, wino_tensor::ShapeError> {
        BlockedImage::zeros(self.shape.batch, self.shape.out_channels, &self.out_dims)
    }

    /// Kernel input-channel count under the grouped convention: `C / G`.
    pub fn kernel_in_channels(&self) -> usize {
        self.shape.in_channels / self.geo.groups
    }

    /// The backend this route reports as ([`LayerBackend::name`]).
    pub fn backend(&self) -> LayerBackend {
        match &self.route {
            Route::Direct(p) => match p.opts.stage2 {
                Stage2Backend::Jit => LayerBackend::WinogradJit,
                Stage2Backend::Mono => LayerBackend::WinogradMono,
            },
            Route::Polyphase { .. } => LayerBackend::WinogradPoly,
            Route::Grouped { .. } => LayerBackend::WinogradGrouped,
            Route::Im2col => LayerBackend::Im2col,
        }
    }

    /// Analytic memory footprint of executing this route at `threads`
    /// thread slots. [`Route::Direct`] is byte-exact (it delegates to
    /// [`WinogradLayer::footprint`]). The other routes are documented
    /// approximations covering the dominant allocations:
    ///
    /// * **Grouped** — the shared per-group scratch is exact; the output
    ///   component counts the full output plus one per-group transient
    ///   (`out_g` is assembled per group, then copied).
    /// * **Polyphase** — phases run sequentially, each allocating its own
    ///   scratch; the scratch components are the *maximum* over phases,
    ///   the output component adds the full output, the per-phase
    ///   accumulator image, and the largest decimated phase input. Phase
    ///   kernel copies (`C·C'·r_φ` floats) are omitted as second-order.
    /// * **Im2col** — the lowering matrices (`A`, packed `W`, `X`) from
    ///   [`Self::im2col_work_model`] are reported as scratch, plus the
    ///   output.
    pub fn footprint(&self, threads: usize) -> crate::MemoryFootprint {
        let out_bytes =
            BlockedImage::bytes_for(self.shape.batch, self.shape.out_channels, &self.out_dims);
        match &self.route {
            Route::Direct(p) => p.footprint(threads),
            Route::Grouped { plan } => {
                let mut fp = plan.footprint(threads);
                // Full output plus the per-group transient the loop holds.
                fp.output_bytes += out_bytes;
                fp
            }
            Route::Polyphase { phases } => {
                let mut fp = crate::MemoryFootprint {
                    scratch_bytes: 0,
                    tile_major_bytes: 0,
                    transformed_kernel_bytes: 0,
                    per_thread_bytes: 0,
                    output_bytes: 0,
                    threads,
                };
                let mut max_phase_in = 0;
                for ph in phases {
                    let p = ph.plan.footprint(threads);
                    fp.scratch_bytes = fp.scratch_bytes.max(p.scratch_bytes);
                    fp.tile_major_bytes = fp.tile_major_bytes.max(p.tile_major_bytes);
                    fp.transformed_kernel_bytes =
                        fp.transformed_kernel_bytes.max(p.transformed_kernel_bytes);
                    fp.per_thread_bytes = fp.per_thread_bytes.max(p.per_thread_bytes);
                    max_phase_in = max_phase_in.max(BlockedImage::bytes_for(
                        self.shape.batch,
                        self.shape.in_channels,
                        &ph.plan.shape.image_dims,
                    ));
                }
                // Output + the per-phase accumulator + the decimated copy.
                fp.output_bytes = 2 * out_bytes + max_phase_in;
                fp
            }
            Route::Im2col => {
                let wm = self.im2col_work_model();
                let lowering = wm
                    .get(SpanCategory::ElementwiseGemm)
                    .map_or(0, |w| w.bytes as usize);
                crate::MemoryFootprint {
                    scratch_bytes: lowering,
                    tile_major_bytes: 0,
                    transformed_kernel_bytes: 0,
                    per_thread_bytes: 0,
                    output_bytes: out_bytes,
                    threads,
                }
            }
        }
    }

    /// FLOPs of the equivalent direct convolution under this geometry —
    /// the effective-GFLOP/s normaliser (grouped layers do `1/G` of the
    /// dense work).
    pub fn direct_flops(&self) -> u128 {
        2 * self.geo.direct_macs(&self.shape).expect("geometry validated at plan time")
    }

    /// Per-stage operation/traffic model: the sub-plans' models summed
    /// (each per-group plan runs `G` times), or the im2col lowering+GEMM
    /// model for the fallback route.
    pub fn work_model(&self) -> WorkModel {
        let g = self.geo.groups as u128;
        let mut model = WorkModel::new();
        match &self.route {
            Route::Direct(p) => p.work_model(),
            Route::Grouped { plan } => {
                merge_scaled(&mut model, &plan.work_model(), g);
                model
            }
            Route::Polyphase { phases } => {
                for ph in phases {
                    merge_scaled(&mut model, &ph.plan.work_model(), g);
                }
                model
            }
            Route::Im2col => self.im2col_work_model(),
        }
    }

    /// The im2col lowering+GEMM model for this plan's geometry,
    /// regardless of route — also the model of the geometry-aware
    /// im2col baseline run on the same layer (the bench probes fold
    /// comparison rows against it).
    pub fn im2col_work_model(&self) -> WorkModel {
        const F32_BYTES: u128 = 4;
        let g = self.geo.groups as u128;
        let ker_vol: u128 = self.shape.kernel_dims.iter().map(|&d| d as u128).product();
        let in_vol: u128 = self.shape.image_dims.iter().map(|&d| d as u128).product();
        let out_vol: u128 = self.out_dims.iter().map(|&d| d as u128).product();
        let rows = self.shape.batch as u128 * out_vol;
        let c_pg = (self.shape.in_channels / self.geo.groups) as u128;
        let k_pg = (self.shape.out_channels / self.geo.groups) as u128;
        let inner = (c_pg * ker_vol).next_multiple_of(S as u128);
        let cp = k_pg.next_multiple_of(S as u128);
        let a_elems = g * rows * inner;
        let w_elems = g * inner * cp;
        let x_elems = g * rows * cp;
        let mut model = WorkModel::new();
        model.set(
            SpanCategory::Im2colLower,
            StageWork {
                flops: 0,
                bytes: (self.shape.batch as u128 * self.shape.in_channels as u128 * in_vol
                    + a_elems
                    + c_pg * self.shape.out_channels as u128 * ker_vol
                    + w_elems
                    + x_elems
                    + self.shape.batch as u128 * self.shape.out_channels as u128 * out_vol)
                    * F32_BYTES,
            },
        );
        model.set(
            SpanCategory::ElementwiseGemm,
            StageWork {
                flops: 2 * g * rows * inner * cp,
                bytes: (a_elems + w_elems + x_elems) * F32_BYTES,
            },
        );
        model
    }

    /// Execute the route. `kernels` follow the grouped convention
    /// (`in_channels == C / groups`, global output channels); `output`
    /// must be pre-sized to [`DispatchPlan::out_dims`]. Deterministic for
    /// a fixed plan: phases and groups run in a fixed order, so repeated
    /// calls (and different executors) are bitwise identical.
    pub fn forward(
        &self,
        input: &BlockedImage,
        kernels: &BlockedKernels,
        output: &mut BlockedImage,
        exec: &dyn Executor,
    ) -> Result<(), WinoError> {
        assert_eq!(input.dims, self.shape.image_dims, "input extent mismatch");
        assert_eq!(input.channels, self.shape.in_channels, "input channel mismatch");
        assert_eq!(kernels.in_channels, self.kernel_in_channels(), "grouped kernel convention");
        assert_eq!(kernels.out_channels, self.shape.out_channels, "output channel mismatch");
        assert_eq!(output.dims, self.out_dims, "output extent mismatch");
        let groups = self.geo.groups;
        let c_pg = self.shape.in_channels / groups;
        let k_pg = self.shape.out_channels / groups;
        match &self.route {
            Route::Direct(plan) => {
                let mut sc = Scratch::new(plan, exec.threads());
                plan.forward(input, kernels, output, &mut sc, exec)
            }
            Route::Grouped { plan } => {
                let mut sc = Scratch::new(plan, exec.threads());
                for g in 0..groups {
                    let in_g = input.channel_block(g * c_pg, c_pg)?;
                    let k_g = kernels.group_block(0, c_pg, g * k_pg, k_pg)?;
                    let mut out_g = plan.new_output()?;
                    plan.forward(&in_g, &k_g, &mut out_g, &mut sc, exec)?;
                    output.write_channel_block(g * k_pg, &out_g)?;
                }
                Ok(())
            }
            Route::Polyphase { phases } => {
                output.fill_zero();
                for ph in phases {
                    let pin = decimate(input, &ph.offset, &self.geo.stride, &self.shape.padding, &ph.plan.shape.image_dims);
                    let pker = phase_kernels(kernels, &ph.offset, &self.geo.stride, &ph.plan.shape.kernel_dims)?;
                    let mut sc = Scratch::new(&ph.plan, exec.threads());
                    let mut ptmp =
                        BlockedImage::zeros(self.shape.batch, self.shape.out_channels, &self.out_dims)?;
                    if groups == 1 {
                        ph.plan.forward(&pin, &pker, &mut ptmp, &mut sc, exec)?;
                    } else {
                        for g in 0..groups {
                            let in_g = pin.channel_block(g * c_pg, c_pg)?;
                            let k_g = pker.group_block(0, c_pg, g * k_pg, k_pg)?;
                            let mut out_g = ph.plan.new_output()?;
                            ph.plan.forward(&in_g, &k_g, &mut out_g, &mut sc, exec)?;
                            ptmp.write_channel_block(g * k_pg, &out_g)?;
                        }
                    }
                    output.accumulate(&ptmp)?;
                }
                Ok(())
            }
            Route::Im2col => {
                output.fill_zero();
                wino_baseline::im2col_conv_geo(
                    input,
                    kernels,
                    &self.shape.padding,
                    &self.geo,
                    output,
                    exec,
                )?;
                Ok(())
            }
        }
    }
}

/// Accumulate `times · other` into `acc`, category by category.
fn merge_scaled(acc: &mut WorkModel, other: &WorkModel, times: u128) {
    for cat in ALL_CATEGORIES {
        if let Some(w) = other.get(cat) {
            let cur = acc.get(cat).unwrap_or_default();
            acc.set(
                cat,
                StageWork { flops: cur.flops + w.flops * times, bytes: cur.bytes + w.bytes * times },
            );
        }
    }
}

/// The decimated phase input `x̃_φ[i] = x̂[φ + i·s]` (`x̂` = zero-padded
/// input), trimmed to `ext` — entries sampling the padding read zero.
/// Copies whole S-wide channel vectors per spatial site.
fn decimate(
    input: &BlockedImage,
    offset: &[usize],
    stride: &[usize],
    padding: &[usize],
    ext: &[usize],
) -> BlockedImage {
    let rank = input.dims.len();
    let mut out = BlockedImage::zeros(input.batch, input.channels, ext)
        .expect("phase extents validated at plan time");
    let ext_vol: usize = ext.iter().product();
    let cgs = input.channel_groups();
    let mut in_stride = [1usize; MAX_RANK];
    for d in (0..rank.saturating_sub(1)).rev() {
        in_stride[d] = in_stride[d + 1] * input.dims[d + 1];
    }
    let mut ic = vec![0usize; rank];
    for i in 0..ext_vol {
        let mut flat = i;
        for d in (0..rank).rev() {
            ic[d] = flat % ext[d];
            flat /= ext[d];
        }
        let mut inside = true;
        let mut src_spatial = 0usize;
        for d in 0..rank {
            let x = (offset[d] + ic[d] * stride[d]) as isize - padding[d] as isize;
            if x < 0 || x >= input.dims[d] as isize {
                inside = false;
                break;
            }
            src_spatial += x as usize * in_stride[d];
        }
        if !inside {
            continue; // zero-initialised
        }
        for b in 0..input.batch {
            for cg in 0..cgs {
                let so = input.vec_offset_flat(b, cg, src_spatial);
                let dof = out.vec_offset_flat(b, cg, i);
                out.as_mut_slice()[dof..dof + S].copy_from_slice(&input.as_slice()[so..so + S]);
            }
        }
    }
    out
}

/// The phase kernel `w_φ[j] = w[φ + j·s]` of extent `r_φ`.
fn phase_kernels(
    kernels: &BlockedKernels,
    offset: &[usize],
    stride: &[usize],
    r_phi: &[usize],
) -> Result<BlockedKernels, wino_tensor::ShapeError> {
    let rank = r_phi.len();
    let mut out = BlockedKernels::zeros(kernels.in_channels, kernels.out_channels, r_phi)?;
    let taps: usize = r_phi.iter().product();
    let mut j = vec![0usize; rank];
    let mut t = vec![0usize; rank];
    for flat in 0..taps {
        let mut f = flat;
        for d in (0..rank).rev() {
            j[d] = f % r_phi[d];
            f /= r_phi[d];
        }
        for d in 0..rank {
            t[d] = offset[d] + j[d] * stride[d];
        }
        for co in 0..kernels.out_channels {
            for ci in 0..kernels.in_channels {
                out.set(co, ci, &j, kernels.get(co, ci, &t));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_sched::SerialExecutor;
    use wino_tensor::{ShapeError, SimpleImage, SimpleKernels};

    fn image(batch: usize, c: usize, dims: &[usize]) -> SimpleImage {
        SimpleImage::from_fn(batch, c, dims, |b, c, xy| {
            ((b * 31 + c * 7 + xy.iter().sum::<usize>() * 3) % 13) as f32 * 0.1 - 0.5
        })
    }

    fn kernels(cp: usize, c_pg: usize, kd: &[usize]) -> SimpleKernels {
        SimpleKernels::from_fn(cp, c_pg, kd, |co, ci, xy| {
            ((co * 5 + ci * 11 + xy.iter().sum::<usize>()) % 7) as f32 * 0.3 - 0.9
        })
    }

    /// Plan + execute + compare against the f64 oracle; returns the
    /// route's reported backend for the caller to assert on.
    fn check(
        shape: &ConvShape,
        m: &[usize],
        opts: ConvOptions,
        tol: f32,
    ) -> (LayerBackend, Option<FallbackReason>) {
        let (dp, fb) =
            plan_dispatch(shape, m, opts, &FallbackPolicy::default()).expect("representable");
        let geo = opts.geometry(shape.rank());
        let si = image(shape.batch, shape.in_channels, &shape.image_dims);
        let sk = kernels(
            shape.out_channels,
            shape.in_channels / geo.groups,
            &shape.kernel_dims,
        );
        let want = wino_baseline::direct_f64_geo(&si, &sk, &shape.padding, &geo);
        let bi = BlockedImage::from_simple(&si).unwrap();
        let bk = BlockedKernels::from_simple(&sk).unwrap();
        let mut out = dp.new_output().unwrap();
        dp.forward(&bi, &bk, &mut out, &SerialExecutor).unwrap();
        assert_eq!(out.dims, want.dims, "output extents disagree with the oracle");
        let got = out.to_simple();
        for i in 0..got.data.len() {
            assert!(
                (got.data[i] - want.data[i]).abs() <= tol * want.data[i].abs().max(1.0),
                "elem {i}: {} vs {}",
                got.data[i],
                want.data[i]
            );
        }
        (dp.backend(), fb)
    }

    #[test]
    fn identity_routes_direct() {
        let s = ConvShape::new(1, 16, 16, &[10, 10], &[3, 3], &[1, 1]).unwrap();
        let (backend, fb) = check(&s, &[2, 2], ConvOptions::default(), 1e-3);
        assert_eq!(backend, LayerBackend::WinogradMono);
        assert!(fb.is_none());
    }

    #[test]
    fn stride2_polyphase_matches_oracle() {
        let s = ConvShape::new(2, 16, 32, &[13, 13], &[3, 3], &[1, 1]).unwrap();
        let opts = ConvOptions::default().with_stride(&[2, 2]);
        let (backend, fb) = check(&s, &[4, 4], opts, 1e-3);
        assert_eq!(backend, LayerBackend::WinogradPoly);
        assert!(fb.is_none());
    }

    #[test]
    fn stride2_even_kernel_and_no_padding() {
        // r = 2, stride 2: phase 1 has r_φ = 1 → F(m, 1) sub-plans.
        let s = ConvShape::new(1, 16, 16, &[12, 12], &[2, 2], &[0, 0]).unwrap();
        let opts = ConvOptions::default().with_stride(&[2, 2]);
        let (backend, _) = check(&s, &[4, 4], opts, 1e-3);
        assert_eq!(backend, LayerBackend::WinogradPoly);
    }

    #[test]
    fn mixed_stride_3d_matches_oracle() {
        let s = ConvShape::new(1, 16, 16, &[7, 9, 8], &[3, 3, 3], &[1, 1, 1]).unwrap();
        let opts = ConvOptions::default().with_stride(&[2, 1, 2]);
        let (backend, _) = check(&s, &[2, 2, 2], opts, 1e-3);
        assert_eq!(backend, LayerBackend::WinogradPoly);
    }

    #[test]
    fn wide_groups_route_grouped() {
        let s = ConvShape::new(1, 32, 32, &[8, 8], &[3, 3], &[1, 1]).unwrap();
        let opts = ConvOptions::default().with_groups(2);
        let (backend, fb) = check(&s, &[2, 2], opts, 1e-3);
        assert_eq!(backend, LayerBackend::WinogradGrouped);
        assert!(fb.is_none());
    }

    #[test]
    fn strided_grouped_composes() {
        let s = ConvShape::new(1, 32, 32, &[9, 9], &[3, 3], &[1, 1]).unwrap();
        let opts = ConvOptions::default().with_stride(&[2, 2]).with_groups(2);
        let (backend, fb) = check(&s, &[2, 2], opts, 1e-3);
        assert_eq!(backend, LayerBackend::WinogradPoly);
        assert!(fb.is_none());
    }

    #[test]
    fn dilated_routes_im2col_with_reason() {
        let s = ConvShape::new(1, 16, 16, &[9, 9], &[3, 3], &[2, 2]).unwrap();
        let opts = ConvOptions::default().with_dilation(&[2, 2]);
        let (backend, fb) = check(&s, &[2, 2], opts, 1e-3);
        assert_eq!(backend, LayerBackend::Im2col);
        assert_eq!(fb, Some(FallbackReason::Dilated));
    }

    #[test]
    fn depthwise_routes_im2col_with_reason() {
        let s = ConvShape::new(1, 32, 32, &[6, 6], &[3, 3], &[1, 1]).unwrap();
        let opts = ConvOptions::default().with_groups(32);
        let (backend, fb) = check(&s, &[2, 2], opts, 1e-3);
        assert_eq!(backend, LayerBackend::Im2col);
        assert_eq!(fb, Some(FallbackReason::GroupTooNarrow { c_per_group: 1 }));
    }

    #[test]
    fn designed_im2col_routes_survive_a_strict_policy() {
        // Dilation and narrow groups are representable and *designed* to
        // run on im2col — a strict policy must not turn them into errors.
        let s = ConvShape::new(1, 16, 16, &[9, 9], &[3, 3], &[1, 1]).unwrap();
        let opts = ConvOptions::default().with_dilation(&[2, 2]);
        let (dp, fb) = plan_dispatch(&s, &[2, 2], opts, &FallbackPolicy::strict()).unwrap();
        assert!(matches!(dp.route, Route::Im2col));
        assert_eq!(fb, Some(FallbackReason::Dilated));
    }

    #[test]
    fn unrepresentable_groups_are_a_typed_error() {
        let s = ConvShape::new(1, 16, 32, &[8, 8], &[3, 3], &[1, 1]).unwrap();
        let opts = ConvOptions::default().with_groups(3);
        assert!(matches!(
            plan_dispatch(&s, &[2, 2], opts, &FallbackPolicy::default()),
            Err(PlanError::Shape(ShapeError::BadGroups { channels: 16, groups: 3 }))
        ));
    }

    #[test]
    fn stride_larger_than_extent_still_executes() {
        // One output sample per dimension; every phase but the first few
        // vanishes (r_φ = 0) and the survivors have single-tap kernels.
        let s = ConvShape::new(1, 16, 16, &[9, 9], &[3, 3], &[1, 1]).unwrap();
        let opts = ConvOptions::default().with_stride(&[5, 5]);
        let (dp, fb) = plan_dispatch(&s, &[2, 2], opts, &FallbackPolicy::default()).unwrap();
        assert!(fb.is_none());
        assert_eq!(dp.out_dims(), &[2, 2]);
        let (backend, _) = check(&s, &[2, 2], opts, 1e-3);
        assert_eq!(backend, LayerBackend::WinogradPoly);
    }

    #[test]
    fn polyphase_is_bitwise_schedule_invariant() {
        use crate::plan::Schedule;
        let s = ConvShape::new(1, 16, 16, &[11, 11], &[3, 3], &[1, 1]).unwrap();
        let si = image(1, 16, &[11, 11]);
        let sk = kernels(16, 16, &[3, 3]);
        let bi = BlockedImage::from_simple(&si).unwrap();
        let bk = BlockedKernels::from_simple(&sk).unwrap();
        let mut outs = Vec::new();
        for sched in Schedule::ALL {
            let opts = ConvOptions { schedule: sched, ..ConvOptions::default() }
                .with_stride(&[2, 2]);
            let (dp, _) = plan_dispatch(&s, &[2, 2], opts, &FallbackPolicy::default()).unwrap();
            let mut out = dp.new_output().unwrap();
            dp.forward(&bi, &bk, &mut out, &SerialExecutor).unwrap();
            outs.push(out);
        }
        for o in &outs[1..] {
            assert_eq!(o.as_slice(), outs[0].as_slice(), "schedules disagree bitwise");
        }
        // And across executors.
        let pool = wino_sched::StaticExecutor::new(3);
        let opts = ConvOptions::default().with_stride(&[2, 2]);
        let (dp, _) = plan_dispatch(&s, &[2, 2], opts, &FallbackPolicy::default()).unwrap();
        let mut out = dp.new_output().unwrap();
        dp.forward(&bi, &bk, &mut out, &pool).unwrap();
        assert_eq!(out.as_slice(), outs[0].as_slice());
    }

    #[test]
    fn work_models_cover_the_routes() {
        let s = ConvShape::new(1, 32, 32, &[12, 12], &[3, 3], &[1, 1]).unwrap();
        let strided = ConvOptions::default().with_stride(&[2, 2]);
        let (dp, _) = plan_dispatch(&s, &[2, 2], strided, &FallbackPolicy::default()).unwrap();
        let wm = dp.work_model();
        assert!(wm.total_flops() > 0);
        assert!(wm.get(SpanCategory::ElementwiseGemm).is_some());
        assert!(dp.direct_flops() > 0);

        let grouped = ConvOptions::default().with_groups(2);
        let (dg, _) = plan_dispatch(&s, &[2, 2], grouped, &FallbackPolicy::default()).unwrap();
        // Grouped direct work is half the dense layer's.
        assert_eq!(dg.direct_flops() * 2, s.direct_flops());
        assert!(dg.work_model().total_flops() > 0);

        let dilated = ConvOptions::default().with_dilation(&[2, 2]);
        let (di, _) = plan_dispatch(&s, &[2, 2], dilated, &FallbackPolicy::default()).unwrap();
        let wm = di.work_model();
        assert!(wm.get(SpanCategory::Im2colLower).is_some());
        assert!(wm.get(SpanCategory::ElementwiseGemm).unwrap().flops > 0);
    }

    #[test]
    fn monolithic_planner_rejects_geometry_options() {
        let s = ConvShape::new(1, 16, 16, &[10, 10], &[3, 3], &[1, 1]).unwrap();
        let opts = ConvOptions::default().with_stride(&[2, 2]);
        assert!(matches!(
            WinogradLayer::new(s, &[2, 2], opts),
            Err(PlanError::Geometry { .. })
        ));
    }
}
