//! S-wide execution of transform codelet programs (§4.2.1).
//!
//! The paper's codelets operate on "S tiles at a time … tiles from S
//! adjacent channels". In our representation a tile of vectors is a
//! buffer of `∏ dims` elements, each element being `S = 16` consecutive
//! floats (one vector register). [`transform_dim`] applies a compiled
//! [`PairedProgram`] (the minimal-operation form of `Bᵀ`, `G` or `Aᵀ`)
//! along one dimension of such a tile; applying it along every dimension
//! in turn realises the tensor–matrix mode-n products of Eqn. 8.

use wino_simd::{F32x16, S};
use wino_transforms::{PairNode, PairedProgram, Term};

/// Dot product of a term list against a strided line of vectors.
///
/// # Safety
/// For every term `t`, `input + (base + t.src·stride)·S` must be valid for
/// 16 reads.
#[inline(always)]
unsafe fn dot_line(terms: &[Term], input: *const f32, base: usize, stride: usize) -> F32x16 {
    let mut acc = F32x16::zero();
    for t in terms {
        let v = F32x16::load(input.add((base + t.src * stride) * S));
        acc = F32x16::splat(t.coeff).mul_add(v, acc);
    }
    acc
}

/// Apply `prog` along dimension `d` of the vector-tile `input` with shape
/// `in_dims` (vector elements, row-major). The output tile has the same
/// shape except `out_dims[d] = prog.n_out`.
///
/// `input` and `output` must not alias (ping-pong between two scratch
/// buffers; the caller owns them).
pub fn transform_dim(
    prog: &PairedProgram,
    input: &[f32],
    in_dims: &[usize],
    d: usize,
    output: &mut [f32],
) {
    debug_assert_eq!(in_dims[d], prog.n_in, "dimension {d} extent != program input size");
    let in_vol: usize = in_dims.iter().product();
    debug_assert!(input.len() >= in_vol * S);
    let mut out_dims_v: [usize; 8] = [0; 8];
    debug_assert!(in_dims.len() <= 8);
    out_dims_v[..in_dims.len()].copy_from_slice(in_dims);
    out_dims_v[d] = prog.n_out;
    let out_dims = &out_dims_v[..in_dims.len()];
    let out_vol: usize = out_dims.iter().product();
    debug_assert!(output.len() >= out_vol * S);

    // Strides along d (in vector elements).
    let in_stride: usize = in_dims[d + 1..].iter().product();
    let out_stride: usize = out_dims[d + 1..].iter().product();
    // Lines: outer = dims before d, inner = dims after d.
    let outer: usize = in_dims[..d].iter().product();
    let inner: usize = in_stride;

    let in_ptr = input.as_ptr();
    let out_ptr = output.as_mut_ptr();
    for o in 0..outer {
        let in_base_o = o * in_dims[d] * in_stride;
        let out_base_o = o * prog.n_out * out_stride;
        for i in 0..inner {
            let in_base = in_base_o + i;
            let out_base = out_base_o + i;
            for node in &prog.nodes {
                // SAFETY: all indices are within the tile volumes computed
                // above; buffers were length-checked.
                unsafe {
                    match node {
                        PairNode::Direct { out, row } => {
                            let v = dot_line(&row.terms, in_ptr, in_base, in_stride);
                            v.store(out_ptr.add((out_base + out * out_stride) * S));
                        }
                        PairNode::Pair { out_plus, out_minus, u_terms, v_terms } => {
                            let u = dot_line(u_terms, in_ptr, in_base, in_stride);
                            let v = dot_line(v_terms, in_ptr, in_base, in_stride);
                            (u + v).store(out_ptr.add((out_base + out_plus * out_stride) * S));
                            (u - v).store(out_ptr.add((out_base + out_minus * out_stride) * S));
                        }
                    }
                }
            }
        }
    }
}

/// Apply per-dimension programs `progs[d]` along every dimension of the
/// tile in `buf_a` (shape `dims`, which is updated in place to the output
/// shape). Uses `buf_b` as the ping-pong partner; returns `true` if the
/// final result is in `buf_a`, `false` if in `buf_b`.
pub fn transform_all_dims(
    progs: &[&PairedProgram],
    buf_a: &mut [f32],
    buf_b: &mut [f32],
    dims: &mut [usize],
) -> bool {
    let n = dims.len();
    assert_eq!(progs.len(), n);
    let mut in_a = true;
    for d in 0..n {
        if in_a {
            transform_dim(progs[d], buf_a, dims, d, buf_b);
        } else {
            transform_dim(progs[d], buf_b, dims, d, buf_a);
        }
        dims[d] = progs[d].n_out;
        in_a = !in_a;
    }
    in_a
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_transforms::{FmrPlan, MatrixProgram};

    /// Scalar oracle: dense matrix applied along dimension d, one lane at
    /// a time.
    fn dense_transform_dim(
        mat: &wino_transforms::F32Matrix,
        input: &[f32],
        in_dims: &[usize],
        d: usize,
    ) -> (Vec<f32>, Vec<usize>) {
        let mut out_dims = in_dims.to_vec();
        out_dims[d] = mat.rows;
        let out_vol: usize = out_dims.iter().product();
        let mut out = vec![0.0f32; out_vol * S];
        let in_stride: usize = in_dims[d + 1..].iter().product();
        let out_stride: usize = out_dims[d + 1..].iter().product();
        let outer: usize = in_dims[..d].iter().product();
        for o in 0..outer {
            for i in 0..in_stride {
                for row in 0..mat.rows {
                    for lane in 0..S {
                        let mut acc = 0.0f32;
                        for col in 0..mat.cols {
                            let idx = (o * in_dims[d] + col) * in_stride + i;
                            acc += mat.at(row, col) * input[idx * S + lane];
                        }
                        let oidx = (o * mat.rows + row) * out_stride + i;
                        out[oidx * S + lane] = acc;
                    }
                }
            }
        }
        (out, out_dims)
    }

    fn filled(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 37 % 101) as f32 - 50.0) * 0.01).collect()
    }

    fn close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert!(
                (a[i] - b[i]).abs() <= 1e-4 * b[i].abs().max(1.0),
                "elem {i}: {} vs {}",
                a[i],
                b[i]
            );
        }
    }

    #[test]
    fn matches_dense_oracle_2d() {
        let plan = FmrPlan::new(2, 3); // alpha = 4
        let dims = [4usize, 4];
        let input = filled(16 * S);
        for d in 0..2 {
            let mut out = vec![0.0f32; 16 * S];
            transform_dim(&plan.bt, &input, &dims, d, &mut out);
            let (want, out_dims) = dense_transform_dim(&plan.transform.bt.to_f32(), &input, &dims, d);
            assert_eq!(out_dims, dims.to_vec());
            close(&out[..want.len()], &want);
        }
    }

    #[test]
    fn matches_dense_oracle_3d_nonsquare() {
        // G: r -> alpha (expanding transform) along each dim of a 3-D tile.
        let plan = FmrPlan::new(4, 3); // alpha = 6, r = 3
        let dims = [3usize, 3, 3];
        let input = filled(27 * S);
        for d in 0..3 {
            let mut out_dims = dims.to_vec();
            out_dims[d] = 6;
            let out_vol: usize = out_dims.iter().product();
            let mut out = vec![0.0f32; out_vol * S];
            transform_dim(&plan.g, &input, &dims, d, &mut out);
            let (want, wdims) = dense_transform_dim(&plan.transform.g.to_f32(), &input, &dims, d);
            assert_eq!(wdims, out_dims);
            close(&out, &want);
        }
    }

    #[test]
    fn contracting_transform() {
        // Aᵀ: alpha -> m.
        let plan = FmrPlan::new(2, 3);
        let dims = [4usize, 4];
        let input = filled(16 * S);
        let mut out = vec![0.0f32; 2 * 4 * S];
        transform_dim(&plan.at, &input, &dims, 0, &mut out);
        let (want, _) = dense_transform_dim(&plan.transform.at.to_f32(), &input, &dims, 0);
        close(&out, &want);
    }

    #[test]
    fn all_dims_pipeline_equals_sequential_dense() {
        let plan = FmrPlan::new(2, 3);
        let mut dims = vec![4usize, 4];
        let input = filled(16 * S);
        let mut a = input.clone();
        let mut b = vec![0.0f32; 16 * S];
        let in_a = transform_all_dims(&[&plan.bt, &plan.bt], &mut a, &mut b, &mut dims);
        let result = if in_a { &a } else { &b };

        let dense_bt = plan.transform.bt.to_f32();
        let (tmp, tdims) = dense_transform_dim(&dense_bt, &input, &[4, 4], 0);
        let (want, _) = dense_transform_dim(&dense_bt, &tmp, &tdims, 1);
        close(&result[..want.len()], &want);
        assert_eq!(dims, vec![4, 4]);
    }

    #[test]
    fn one_dimensional_tile() {
        let plan = FmrPlan::new(3, 2); // alpha = 4
        let dims = [4usize];
        let input = filled(4 * S);
        let mut out = vec![0.0f32; 3 * S];
        transform_dim(&plan.at, &input, &dims, 0, &mut out);
        let (want, _) = dense_transform_dim(&plan.transform.at.to_f32(), &input, &dims, 0);
        close(&out, &want);
    }

    #[test]
    fn unpaired_program_agrees_with_paired() {
        // Cross-check the Fig. 2 pairing optimisation in the vector domain:
        // build an all-Direct program from the same matrix and compare.
        let plan = FmrPlan::new(6, 3);
        let mp = MatrixProgram::compile(&plan.transform.bt.to_f32());
        let unpaired = PairedProgram {
            n_out: mp.n_out,
            n_in: mp.n_in,
            nodes: mp
                .rows
                .iter()
                .enumerate()
                .map(|(i, r)| PairNode::Direct { out: i, row: r.clone() })
                .collect(),
        };
        let dims = [8usize];
        let input = filled(8 * S);
        let mut out1 = vec![0.0f32; 8 * S];
        let mut out2 = vec![0.0f32; 8 * S];
        transform_dim(&plan.bt, &input, &dims, 0, &mut out1);
        transform_dim(&unpaired, &input, &dims, 0, &mut out2);
        close(&out1, &out2);
    }
}
