//! Probe-span recording helpers for the stage functions.
//!
//! Stage code records one *coordinator* span per invocation around its
//! fork–join (category = the stage), plus optional per-task worker spans
//! (e.g. `tile-extract`). The collector comes from
//! [`wino_sched::Executor::probe`] — plain executors return `None` and
//! everything here is free; `wino_sched::ProbedExecutor` returns its
//! collector. With `wino-probe`'s `enabled` feature off, every call
//! const-folds to nothing.

use wino_probe::{SpanCategory, COORDINATOR};
use wino_sched::Executor;

/// Timestamp for a later [`record_coord`] / [`record_slot`] call.
/// Zero (and free) when probing is disabled.
#[inline(always)]
pub(crate) fn span_start() -> u64 {
    wino_probe::now_ns()
}

/// Record a coordinator span of `cat` from `start` to now on `exec`'s
/// collector, if it has one. Must be called from the fork-issuing thread
/// with no fork–join in flight — which is exactly the position of stage
/// code right after `run_grid` returns.
#[inline]
pub(crate) fn record_coord(exec: &dyn Executor, cat: SpanCategory, start: u64) {
    if !wino_probe::ENABLED {
        return;
    }
    if let Some(c) = exec.probe() {
        // SAFETY: called on the coordinator thread between fork–joins per
        // this function's contract, so the coordinator buffer is exclusive.
        unsafe { c.record(COORDINATOR, cat, start, wino_probe::now_ns()) };
    }
}

/// Record a worker span of `cat` from `start` to now under `slot`. Must be
/// called from inside a `run_grid` task holding that slot (the Executor
/// slot-exclusivity contract makes the buffer exclusive).
#[inline]
pub(crate) fn record_slot(
    collector: Option<&wino_probe::Collector>,
    slot: usize,
    cat: SpanCategory,
    start: u64,
) {
    if !wino_probe::ENABLED {
        return;
    }
    if let Some(c) = collector {
        // SAFETY: the caller holds `slot` per the Executor contract, so
        // slot's buffer is exclusively this thread's for the call.
        unsafe { c.record(slot as u32, cat, start, wino_probe::now_ns()) };
    }
}
