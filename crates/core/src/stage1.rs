//! Stage 1 — input and kernel transforms (§4.2, operations ①–④).
//!
//! * **Input transform**: over the grid `B × C/S × N_D × … × N_W`, each
//!   task gathers one tile of `S` adjacent channels (with implicit zero
//!   fill for padding and ceil-division overhang), applies `Bᵀ` along
//!   every dimension with the compiled codelets, and scatters the `T`
//!   resulting vectors into the block-panel matrices `U` — a write range
//!   of only `T·n_blk·C_blk` floats ("scattering range of ②").
//! * **Kernel transform**: over `C × C'/S`, each task reads the contiguous
//!   kernel vectors, applies `G` (an expanding transform `r_d → α_d`), and
//!   scatters into `V`.
//!
//! Results are written with non-temporal streaming stores by default —
//! they will not be touched again until stage 2 (§4.2.1).

use wino_sched::Executor;
use wino_simd::{F32x16, S};
use wino_tensor::BlockedImage;
use wino_tensor::BlockedKernels;

use crate::error::{ensure_at_least, ensure_dims_eq, ensure_eq, WinoError};
use crate::plan::{Scratch, ThreadBuf, WinogradLayer, MAX_RANK};

/// Decompose a flat row-major index into coordinates (no allocation).
#[inline]
pub(crate) fn decompose(mut flat: usize, dims: &[usize], out: &mut [usize]) {
    for i in (0..dims.len()).rev() {
        out[i] = flat % dims[i];
        flat /= dims[i];
    }
}

/// Gather one tile of `S`-channel vectors from a blocked image, with zero
/// fill outside the image bounds (zero padding and overlap-add overhang).
///
/// # Safety
/// `dst` must be valid for `∏tile_dims · S` writes and 64-byte aligned.
unsafe fn gather_tile(
    input: &BlockedImage,
    b: usize,
    cg: usize,
    origin: &[isize],
    tile_dims: &[usize],
    dst: *mut f32,
) {
    let n = tile_dims.len();
    let in_dims = &input.dims;
    // Spatial strides of the input (row-major; innermost = 1).
    let mut sstride = [1usize; MAX_RANK];
    for d in (0..n.saturating_sub(1)).rev() {
        sstride[d] = sstride[d + 1] * in_dims[d + 1];
    }
    let base_vec = input.vec_offset_flat(b, cg, 0);
    let src = input.as_ptr().add(base_vec);

    let tw = tile_dims[n - 1];
    let w_extent = in_dims[n - 1] as isize;
    let ow = origin[n - 1];
    let outer_vol: usize = tile_dims[..n - 1].iter().product();

    let mut oc = [0usize; MAX_RANK];
    for outer in 0..outer_vol {
        decompose(outer, &tile_dims[..n - 1], &mut oc[..n.max(1) - 1]);
        // Validity and spatial base over the outer dimensions.
        let mut valid = true;
        let mut spatial = 0isize;
        for d in 0..n - 1 {
            let x = origin[d] + oc[d] as isize;
            if x < 0 || x >= in_dims[d] as isize {
                valid = false;
                break;
            }
            spatial += x * sstride[d] as isize;
        }
        let drow = dst.add(outer * tw * S);
        if !valid {
            for k in 0..tw {
                F32x16::zero().store(drow.add(k * S));
            }
            continue;
        }
        for k in 0..tw {
            let x = ow + k as isize;
            if x < 0 || x >= w_extent {
                F32x16::zero().store(drow.add(k * S));
            } else {
                let off = (spatial + x) as usize * S;
                F32x16::load(src.add(off)).store(drow.add(k * S));
            }
        }
    }
}

pub(crate) struct MutPtr(pub(crate) *mut f32);
// SAFETY: tasks write disjoint ranges (each owns its (row, col-group)).
unsafe impl Sync for MutPtr {}
// SAFETY: the pointer targets plan-owned scratch that outlives the
// fork–join moving this handle between threads.
unsafe impl Send for MutPtr {}
impl MutPtr {
    pub(crate) fn get(&self) -> *mut f32 {
        self.0
    }
}

/// Scatter `t_vol` transformed vectors from `buf` into a block-panel
/// matrix at logical (row, col = cg·S).
///
/// # Safety
/// `base` computed by the caller must give exclusive, in-bounds access for
/// this (row, col-group); `buf` holds `t_vol · S` floats.
#[inline]
unsafe fn scatter_vectors(
    buf: *const f32,
    dst: *mut f32,
    base: usize,
    t_stride: usize,
    t_vol: usize,
    streaming: bool,
) {
    if streaming {
        for t in 0..t_vol {
            F32x16::load(buf.add(t * S)).store_nt(dst.add(base + t * t_stride));
        }
    } else {
        for t in 0..t_vol {
            F32x16::load(buf.add(t * S)).store(dst.add(base + t * t_stride));
        }
    }
}

/// The per-tile body of operation ①② — gather one tile, `Bᵀ`-transform
/// it, scatter the `T` vectors into `U` — factored out so the monolithic
/// stage-1 fork–join and the superblock pipeline share one
/// implementation.
pub(crate) struct InputTransformCtx<'a> {
    layer: &'a WinogradLayer,
    input: &'a BlockedImage,
    u: MutPtr,
    n_tiles: usize,
    t_vol: usize,
    n_blk: usize,
    c_blk: usize,
    col_blocks: usize,
    t_stride: usize,
    progs: Vec<&'a wino_transforms::PairedProgram>,
    streaming: bool,
    probe: Option<&'a wino_probe::Collector>,
}

impl<'a> InputTransformCtx<'a> {
    /// Build the shared state. `streaming` selects NT stores for the `U`
    /// scatter (the monolithic schedules want them; the pipeline keeps
    /// `U` cache-resident and passes `false`).
    pub(crate) fn new(
        layer: &'a WinogradLayer,
        input: &'a BlockedImage,
        u: *mut f32,
        streaming: bool,
        probe: Option<&'a wino_probe::Collector>,
    ) -> InputTransformCtx<'a> {
        InputTransformCtx {
            layer,
            input,
            u: MutPtr(u),
            n_tiles: layer.n_tiles(),
            t_vol: layer.t_vol(),
            n_blk: layer.block.n_blk,
            c_blk: layer.block.c_blk,
            col_blocks: layer.shape.in_channels / layer.block.c_blk,
            t_stride: layer.block.n_blk * layer.block.c_blk,
            progs: layer.plans.iter().map(|p| &p.bt).collect(),
            streaming,
            probe,
        }
    }

    /// Gather, transform and scatter tile `(b, cg, n)` (`n` is the flat
    /// tile index within one image).
    ///
    /// # Safety
    /// The caller must hold `tb` exclusively (Executor slot contract) and
    /// own the `(row n' = b·N + n, column-group cg)` range of `u` — tasks
    /// of one fork–join must cover disjoint `(n', cg)` pairs.
    pub(crate) unsafe fn tile(&self, tb: &mut ThreadBuf, slot: usize, b: usize, cg: usize, n: usize) {
        let rank = self.layer.rank();
        let grid = &self.layer.grid;
        let mut tc = [0usize; MAX_RANK];
        decompose(n, &grid.counts, &mut tc[..rank]);
        // Input-space origin of the tile (may read the padding region).
        let mut origin = [0isize; MAX_RANK];
        for d in 0..rank {
            origin[d] = (tc[d] * grid.m[d]) as isize - grid.padding[d] as isize;
        }

        let gather_start = crate::spans::span_start();
        // SAFETY: buffers sized T·S at construction; tile fits.
        gather_tile(self.input, b, cg, &origin[..rank], &grid.tile_dims, tb.a.as_mut_ptr());
        crate::spans::record_slot(
            self.probe,
            slot,
            wino_probe::SpanCategory::TileExtract,
            gather_start,
        );

        let mut tdims = [0usize; MAX_RANK];
        tdims[..rank].copy_from_slice(&grid.tile_dims);
        let in_a = crate::vecprog::transform_all_dims(
            &self.progs,
            tb.a.as_mut_slice(),
            tb.b.as_mut_slice(),
            &mut tdims[..rank],
        );
        let result = if in_a { tb.a.as_ptr() } else { tb.b.as_ptr() };

        // Scatter into U (Table 1 "Transformed inputs").
        let n_prime = b * self.n_tiles + n;
        let (rb_i, r_in) = (n_prime / self.n_blk, n_prime % self.n_blk);
        let col = cg * S;
        let (cb_i, c_in) = (col / self.c_blk, col % self.c_blk);
        let base = ((rb_i * self.col_blocks + cb_i) * self.t_vol) * self.t_stride
            + r_in * self.c_blk
            + c_in;
        // SAFETY: disjoint (n', cg) ranges per the caller's contract;
        // offsets in bounds by construction of `u`.
        scatter_vectors(result, self.u.get(), base, self.t_stride, self.t_vol, self.streaming);
    }

    /// Hint-prefetch tile `(b, cg, n)`'s innermost source row toward L2 —
    /// called by the pipeline one tile ahead of the gather.
    pub(crate) fn prefetch_tile(&self, b: usize, cg: usize, n: usize) {
        let rank = self.layer.rank();
        let grid = &self.layer.grid;
        let mut tc = [0usize; MAX_RANK];
        decompose(n, &grid.counts, &mut tc[..rank]);
        // First in-bounds point of the tile.
        let mut pt = [0usize; MAX_RANK];
        for (d, p) in pt[..rank].iter_mut().enumerate() {
            let x = (tc[d] * grid.m[d]) as isize - grid.padding[d] as isize;
            *p = x.clamp(0, self.input.dims[d] as isize - 1) as usize;
        }
        let mut spatial = 0usize;
        for (&dim, &p) in self.input.dims.iter().zip(&pt[..rank]) {
            spatial = spatial * dim + p;
        }
        let off = self.input.vec_offset_flat(b, cg, 0) + spatial * S;
        let bytes = grid.tile_dims[rank - 1].min(self.input.dims[rank - 1] - pt[rank - 1])
            * S
            * std::mem::size_of::<f32>();
        // SAFETY: the span starts inside the image allocation; prefetch
        // never faults regardless.
        unsafe { wino_simd::prefetch_span_t1(self.input.as_ptr().add(off) as *const u8, bytes) };
    }
}

/// Operation ①②: transform all input tiles into `scratch.u`.
pub fn transform_inputs(
    layer: &WinogradLayer,
    input: &BlockedImage,
    scratch: &mut Scratch,
    exec: &dyn Executor,
) -> Result<(), WinoError> {
    ensure_at_least("scratch thread slots", exec.threads(), scratch.thread_slots())?;
    ensure_eq("input batch", layer.shape.batch, input.batch)?;
    ensure_eq("input channels", layer.shape.in_channels, input.channels)?;
    ensure_dims_eq("input extent", &layer.shape.image_dims, &input.dims)?;

    let rank = layer.rank();

    // Grid: B × C/S × N_D × … × N_W (§4.5).
    let mut dims = Vec::with_capacity(2 + rank);
    dims.push(layer.shape.batch);
    dims.push(layer.shape.in_channels / S);
    dims.extend_from_slice(&layer.grid.counts);

    let ctx = InputTransformCtx::new(
        layer,
        input,
        scratch.u.as_mut_ptr(),
        layer.opts.streaming_stores,
        exec.probe(),
    );
    let scratch_ref: &Scratch = scratch;
    let stage_start = crate::spans::span_start();

    exec.run_grid(&dims, &|slot, flat| {
        let mut coords = [0usize; MAX_RANK + 2];
        decompose(flat, &dims, &mut coords[..dims.len()]);
        let (b, cg) = (coords[0], coords[1]);
        let mut n = 0usize; // flat tile index
        for d in 0..rank {
            n = n * layer.grid.counts[d] + coords[2 + d];
        }
        // SAFETY: slot exclusivity per the Executor contract.
        let tb = unsafe { scratch_ref.thread_buf(slot) };
        // SAFETY: the grid enumerates each (b, cg, n) exactly once, so
        // tasks cover disjoint (n', cg) ranges of `u`.
        unsafe { ctx.tile(tb, slot, b, cg, n) };
    })?;
    crate::spans::record_coord(exec, wino_probe::SpanCategory::InputTransform, stage_start);
    #[cfg(feature = "fault-inject")]
    if wino_sched::fault::take_poison_stage(1) {
        scratch.u.as_mut_slice()[0] = f32::NAN;
    }
    Ok(())
}

/// Operation ③④: transform all kernels into `scratch.v`.
pub fn transform_kernels(
    layer: &WinogradLayer,
    kernels: &BlockedKernels,
    scratch: &mut Scratch,
    exec: &dyn Executor,
) -> Result<(), WinoError> {
    ensure_at_least("scratch thread slots", exec.threads(), scratch.thread_slots())?;
    ensure_eq("kernel in-channels", layer.shape.in_channels, kernels.in_channels)?;
    ensure_eq("kernel out-channels", layer.shape.out_channels, kernels.out_channels)?;
    ensure_dims_eq("kernel extent", &layer.shape.kernel_dims, &kernels.dims)?;

    let rank = layer.rank();
    let t_vol = layer.t_vol();
    let (c_blk, cp_blk) = (layer.block.c_blk, layer.block.cp_blk);
    let col_blocks = layer.shape.out_channels / cp_blk;
    let r_vol: usize = layer.shape.kernel_dims.iter().product();
    let streaming = layer.opts.streaming_stores;

    let dims = [layer.shape.in_channels, layer.shape.out_channels / S];
    let v_ptr = MutPtr(scratch.v.as_mut_ptr());
    let t_stride = c_blk * cp_blk;
    let scratch_ref: &Scratch = scratch;
    let progs: Vec<&wino_transforms::PairedProgram> = layer.plans.iter().map(|p| &p.g).collect();
    let stage_start = crate::spans::span_start();

    exec.run_grid(&dims, &|slot, flat| {
        let (c, og) = (flat / dims[1], flat % dims[1]);
        // SAFETY: slot exclusivity per the Executor contract.
        let tb = unsafe { scratch_ref.thread_buf(slot) };
        // Kernel vectors are contiguous in the blocked layout: copy r_vol
        // vectors straight in.
        let src_off = kernels.vec_offset_flat(c, og, 0);
        tb.a.as_mut_slice()[..r_vol * S]
            .copy_from_slice(&kernels.as_slice()[src_off..src_off + r_vol * S]);

        let mut tdims = [0usize; MAX_RANK];
        tdims[..rank].copy_from_slice(&layer.shape.kernel_dims);
        let in_a = crate::vecprog::transform_all_dims(
            &progs,
            tb.a.as_mut_slice(),
            tb.b.as_mut_slice(),
            &mut tdims[..rank],
        );
        let result = if in_a { tb.a.as_ptr() } else { tb.b.as_ptr() };

        // Scatter into V (Table 1 "Transformed kernels"): row = c,
        // col = og·S.
        let (rb_i, r_in) = (c / c_blk, c % c_blk);
        let col = og * S;
        let (cb_i, c_in) = (col / cp_blk, col % cp_blk);
        let base = ((rb_i * col_blocks + cb_i) * t_vol) * t_stride + r_in * cp_blk + c_in;
        // SAFETY: disjoint (c, og) ranges per task.
        unsafe { scatter_vectors(result, v_ptr.get(), base, t_stride, t_vol, streaming) };
    })?;
    crate::spans::record_coord(exec, wino_probe::SpanCategory::KernelTransform, stage_start);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ConvOptions;
    use wino_sched::{SerialExecutor, StaticExecutor};
    use wino_tensor::{ConvShape, SimpleImage, SimpleKernels};

    fn make_layer(pad: usize, m: &[usize]) -> WinogradLayer {
        let s = ConvShape::new(2, 32, 32, &[10, 10], &[3, 3], &[pad, pad]).unwrap();
        WinogradLayer::new(s, m, ConvOptions::default()).unwrap()
    }

    /// Oracle: transformed tile element (t, n', c) computed densely from
    /// the simple image.
    fn dense_input_transform(
        layer: &WinogradLayer,
        img: &SimpleImage,
        t: (usize, usize),
        n_prime: usize,
        c: usize,
    ) -> f32 {
        let n_tiles = layer.n_tiles();
        let (b, n) = (n_prime / n_tiles, n_prime % n_tiles);
        let tc = layer.grid.tile_coords(n);
        let origin = layer.grid.input_origin(&tc);
        let td = &layer.grid.tile_dims;
        // Gather the raw tile.
        let mut tile = vec![0.0f32; td[0] * td[1]];
        for i in 0..td[0] {
            for j in 0..td[1] {
                tile[i * td[1] + j] =
                    img.get_padded(b, c, &[origin[0] + i as isize, origin[1] + j as isize]);
            }
        }
        // Bᵀ · tile · B via dense mats.
        let bt0 = layer.plans[0].transform.bt.to_f32();
        let bt1 = layer.plans[1].transform.bt.to_f32();
        let mut acc = 0.0f64;
        for i in 0..td[0] {
            for j in 0..td[1] {
                acc += (bt0.at(t.0, i) as f64) * (bt1.at(t.1, j) as f64)
                    * tile[i * td[1] + j] as f64;
            }
        }
        acc as f32
    }

    #[test]
    fn input_transform_matches_dense_oracle() {
        for pad in [0usize, 1] {
            let layer = make_layer(pad, &[4, 4]);
            let img = SimpleImage::from_fn(2, 32, &[10, 10], |b, c, xy| {
                ((b * 31 + c * 7 + xy[0] * 13 + xy[1] * 3) % 17) as f32 * 0.1 - 0.8
            });
            let blocked = BlockedImage::from_simple(&img).unwrap();
            let mut scratch = Scratch::new(&layer, 1);
            transform_inputs(&layer, &blocked, &mut scratch, &SerialExecutor).unwrap();

            let td = &layer.grid.tile_dims;
            for n_prime in [0usize, 5, layer.rows() - 1] {
                for c in [0usize, 17, 31] {
                    for t0 in 0..td[0] {
                        for t1 in 0..td[1] {
                            let t = t0 * td[1] + t1;
                            let got = scratch.u.get(t, n_prime, c);
                            let want = dense_input_transform(&layer, &img, (t0, t1), n_prime, c);
                            assert!(
                                (got - want).abs() <= 1e-4 * want.abs().max(1.0),
                                "pad={pad} t=({t0},{t1}) n'={n_prime} c={c}: {got} vs {want}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn kernel_transform_matches_dense_oracle() {
        let layer = make_layer(1, &[4, 4]);
        let ker = SimpleKernels::from_fn(32, 32, &[3, 3], |co, ci, xy| {
            ((co * 5 + ci * 11 + xy[0] * 3 + xy[1]) % 13) as f32 * 0.05 - 0.3
        });
        let blocked = BlockedKernels::from_simple(&ker).unwrap();
        let mut scratch = Scratch::new(&layer, 1);
        transform_kernels(&layer, &blocked, &mut scratch, &SerialExecutor).unwrap();

        let g0 = layer.plans[0].transform.g.to_f32();
        let g1 = layer.plans[1].transform.g.to_f32();
        let td = &layer.grid.tile_dims;
        for c in [0usize, 9, 31] {
            for co in [0usize, 16, 31] {
                for t0 in 0..td[0] {
                    for t1 in 0..td[1] {
                        let t = t0 * td[1] + t1;
                        let got = scratch.v.get(t, c, co);
                        let mut want = 0.0f64;
                        for i in 0..3 {
                            for j in 0..3 {
                                want += g0.at(t0, i) as f64
                                    * g1.at(t1, j) as f64
                                    * ker.get(co, c, &[i, j]) as f64;
                            }
                        }
                        assert!(
                            (got as f64 - want).abs() <= 1e-4 * want.abs().max(1.0),
                            "t=({t0},{t1}) c={c} c'={co}: {got} vs {want}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let layer = make_layer(1, &[2, 2]);
        let img = SimpleImage::from_fn(2, 32, &[10, 10], |b, c, xy| {
            (b + c + xy[0] * xy[1]) as f32 * 0.01
        });
        let blocked = BlockedImage::from_simple(&img).unwrap();
        let mut s1 = Scratch::new(&layer, 1);
        let mut s2 = Scratch::new(&layer, 4);
        transform_inputs(&layer, &blocked, &mut s1, &SerialExecutor).unwrap();
        let pool = StaticExecutor::new(4);
        transform_inputs(&layer, &blocked, &mut s2, &pool).unwrap();
        assert_eq!(s1.u.as_slice(), s2.u.as_slice());
    }

    #[test]
    fn streaming_toggle_gives_identical_results() {
        let shape = ConvShape::new(1, 16, 16, &[8, 8], &[3, 3], &[1, 1]).unwrap();
        let img = SimpleImage::from_fn(1, 16, &[8, 8], |_, c, xy| (c + xy[0] + xy[1]) as f32);
        let blocked = BlockedImage::from_simple(&img).unwrap();
        let mk = |streaming| {
            let opts = ConvOptions { streaming_stores: streaming, ..Default::default() };
            let layer = WinogradLayer::new(shape.clone(), &[2, 2], opts).unwrap();
            let mut s = Scratch::new(&layer, 1);
            transform_inputs(&layer, &blocked, &mut s, &SerialExecutor).unwrap();
            s
        };
        let a = mk(true);
        let b = mk(false);
        assert_eq!(a.u.as_slice(), b.u.as_slice());
    }
}
