//! The superblock-pipelined schedule: stages 1→2→3 in one fork–join.
//!
//! The monolithic schedules run one fork–join per stage, so the
//! transformed tensors `Î` (`u`), `X̂`/`I'` (`x`/`y`) stream through DRAM
//! between barriers — the §4.3–4.4 data-movement pattern that leaves the
//! GEMM stage bandwidth-bound on layers whose panels outgrow L2. Here the
//! `n_blk`-row panels are grouped into *superblocks* sized by the
//! [`wino_gemm::SUPERBLOCK_L2_BYTES`] footprint model
//! ([`wino_gemm::BlockShape::superblock_row_blocks`]), and each task of a
//! *single* fork–join runs the whole stage chain over its own superblock:
//!
//! 1. gather + `Bᵀ`-transform its rows into `u` (regular stores — the
//!    data is consumed two phases later by the same core),
//! 2. the full stage-2 reduction for its row panels, with the ⑥ scatter
//!    into `y` (regular stores, same reason),
//! 3. the `Aᵀ` inverse transform of its rows into the output image
//!    (non-temporal stores — this *is* the final scatter).
//!
//! Each `Û`/`X̂` block is therefore produced, consumed and scattered while
//! still cache-hot, and the layer's three stage barriers collapse into
//! one. Writes are disjoint by construction: superblocks partition the
//! panel rows, and `u` panels, `y` tiles and output tiles are all indexed
//! by row.
//!
//! The kernel transform stays in its own (small) fork–join ahead of the
//! pipeline: every superblock reads all of `V̂`.

use wino_sched::Executor;
use wino_simd::S;
use wino_tensor::{BlockedImage, BlockedMatrices};

use crate::error::{ensure_at_least, ensure_dims_eq, ensure_eq, WinoError};
use crate::plan::{Scratch, WinogradLayer};
use crate::stage1::InputTransformCtx;
use crate::stage2::Stage2Ctx;
use crate::stage3::Stage3Ctx;

/// Run the pipelined forward pass: input transform → blocked GEMM →
/// inverse transform, per superblock, inside one fork–join. `v` holds the
/// already-transformed kernels (from `stage1::transform_kernels` or the
/// memoised FX transforms).
pub(crate) fn forward_pipelined(
    layer: &WinogradLayer,
    input: &BlockedImage,
    v: &BlockedMatrices,
    output: &mut BlockedImage,
    scratch: &mut Scratch,
    exec: &dyn Executor,
) -> Result<(), WinoError> {
    ensure_at_least("scratch thread slots", exec.threads(), scratch.thread_slots())?;
    ensure_eq("input batch", layer.shape.batch, input.batch)?;
    ensure_eq("input channels", layer.shape.in_channels, input.channels)?;
    ensure_dims_eq("input extent", &layer.shape.image_dims, &input.dims)?;
    ensure_eq("kernel-transform tile count", layer.t_vol(), v.t_count())?;
    ensure_eq("kernel-transform rows", layer.shape.in_channels, v.rows())?;
    ensure_eq("kernel-transform cols", layer.shape.out_channels, v.cols())?;
    ensure_eq("kernel-transform C_blk", layer.block.c_blk, v.rb())?;
    ensure_eq("kernel-transform C'_blk", layer.block.cp_blk, v.cb())?;
    let out_dims = layer.shape.out_dims();
    ensure_eq("output batch", layer.shape.batch, output.batch)?;
    ensure_eq("output channels", layer.shape.out_channels, output.channels)?;
    ensure_dims_eq("output extent", &out_dims, &output.dims)?;

    let rows = layer.rows();
    let row_blocks = layer.row_blocks();
    let n_tiles = layer.n_tiles();
    let n_blk = layer.block.n_blk;
    let t_vol = layer.t_vol();
    let in_groups = layer.shape.in_channels / S;
    let out_groups = layer.shape.out_channels / S;
    let col_blocks = layer.shape.out_channels / layer.block.cp_blk;

    // Superblock extent: the plan's L2-budget choice, shrunk if needed so
    // every thread slot gets at least one superblock to execute.
    let sb = layer.superblock.min(row_blocks.div_ceil(exec.threads())).max(1);
    let n_super = row_blocks.div_ceil(sb);

    // Intra-pipeline scatters use regular stores — the data is consumed
    // by the same core moments later; only stage 3's output write (the
    // final scatter) streams.
    let probe = exec.probe();
    let ctx1 = InputTransformCtx::new(layer, input, scratch.u.as_mut_ptr(), false, probe);
    let x_ptr = scratch.x.as_mut_ptr();
    let y_ptr = scratch.y.as_mut_ptr();
    let ctx2 = Stage2Ctx::new(
        layer,
        &scratch.u,
        v,
        x_ptr,
        &scratch.x,
        y_ptr,
        &scratch.y,
        false,
        scratch.comp_bufs(),
    );
    let ctx3 = Stage3Ctx::new(layer, &scratch.y, output.as_mut_ptr(), layer.opts.streaming_stores);
    let scratch_ref: &Scratch = scratch;
    let stage_start = crate::spans::span_start();

    exec.run_grid(&[n_super], &|slot, sb_i| {
        let lo_rb = sb_i * sb;
        let hi_rb = (lo_rb + sb).min(row_blocks);
        let lo_row = lo_rb * n_blk;
        let hi_row = (hi_rb * n_blk).min(rows);

        // SAFETY: slot exclusivity per the Executor contract.
        let tb = unsafe { scratch_ref.thread_buf(slot) };

        // Phase 1: transform this superblock's input tiles into `u`.
        for n_prime in lo_row..hi_row {
            let (b, n) = (n_prime / n_tiles, n_prime % n_tiles);
            // Pull the next tile's source row toward L2 while this one
            // is transformed.
            if n_prime + 1 < hi_row {
                let nx = n_prime + 1;
                ctx1.prefetch_tile(nx / n_tiles, 0, nx % n_tiles);
            }
            for cg in 0..in_groups {
                // SAFETY: superblocks partition the panel rows, so tasks
                // cover disjoint (n', cg) ranges of `u`; `tb` is held via
                // the slot contract.
                unsafe { ctx1.tile(tb, slot, b, cg, n) };
            }
        }

        // Phase 2: the full reduction for this superblock's panels, with
        // the ⑥ scatter into `y`. `V̂` blocks stay L2-resident across the
        // whole row range (the §4.5 loop order, rows innermost).
        for t in 0..t_vol {
            for j in 0..col_blocks {
                for i in lo_rb..hi_rb {
                    // SAFETY: panel rows are owned by this task (the
                    // superblock partition), so (t, j, i) triples are
                    // disjoint across tasks; `slot` is held by this task.
                    unsafe { ctx2.panel(slot, t, j, i) };
                }
            }
        }

        // Phase 3: inverse-transform this superblock's rows into the
        // output image while `y` is still cache-hot.
        for n_prime in lo_row..hi_row {
            let (b, n) = (n_prime / n_tiles, n_prime % n_tiles);
            for og in 0..out_groups {
                // SAFETY: output tiles are indexed by (b, og, n), owned
                // by this task via the row partition; `tb` per the slot
                // contract.
                unsafe { ctx3.tile(tb, b, og, n) };
            }
        }
    })?;
    crate::spans::record_coord(exec, wino_probe::SpanCategory::SuperblockPipeline, stage_start);

    // The monolithic schedules poison the staged tensors between
    // fork–joins; with the stages fused there is no such window, so each
    // consumed hook poisons the (already final) output directly.
    #[cfg(feature = "fault-inject")]
    for stage in 1..=3 {
        if wino_sched::fault::take_poison_stage(stage) {
            output.as_mut_slice()[0] = f32::NAN;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ConvOptions, Schedule};
    use crate::{stage1, stage2, stage3};
    use wino_sched::{DynamicExecutor, SerialExecutor, StaticExecutor};
    use wino_tensor::{BlockedKernels, ConvShape, SimpleImage, SimpleKernels};

    fn test_img(batch: usize, c: usize, dims: &[usize]) -> SimpleImage {
        SimpleImage::from_fn(batch, c, dims, |b, c, xy| {
            let mut h = b.wrapping_mul(31).wrapping_add(c.wrapping_mul(7));
            for (i, &x) in xy.iter().enumerate() {
                h = h.wrapping_mul(131).wrapping_add(x * (i + 3));
            }
            ((h % 1000) as f32 / 500.0 - 1.0) * 0.1
        })
    }

    fn test_ker(cp: usize, c: usize, dims: &[usize]) -> SimpleKernels {
        SimpleKernels::from_fn(cp, c, dims, |co, ci, xy| {
            let mut h = co.wrapping_mul(17).wrapping_add(ci.wrapping_mul(3));
            for &x in xy {
                h = h.wrapping_mul(37).wrapping_add(x);
            }
            ((h % 100) as f32 / 50.0 - 1.0) * 0.2
        })
    }

    /// The monolithic fused-scatter result for the same problem, computed
    /// stage by stage — the pipelined schedule must match it bitwise
    /// (identical per-value operation order, only the barriers differ).
    fn monolithic(
        shape: &ConvShape,
        m: &[usize],
        img: &SimpleImage,
        ker: &SimpleKernels,
    ) -> Vec<f32> {
        let layer = WinogradLayer::new(shape.clone(), m, ConvOptions::default()).unwrap();
        let input = BlockedImage::from_simple(img).unwrap();
        let kernels = BlockedKernels::from_simple(ker).unwrap();
        let mut scratch = Scratch::new(&layer, 1);
        let mut out = layer.new_output().unwrap();
        stage1::transform_inputs(&layer, &input, &mut scratch, &SerialExecutor).unwrap();
        stage1::transform_kernels(&layer, &kernels, &mut scratch, &SerialExecutor).unwrap();
        stage2::multiply(&layer, &mut scratch, &SerialExecutor).unwrap();
        stage3::inverse_transform(&layer, &mut scratch, &mut out, &SerialExecutor).unwrap();
        out.as_slice().to_vec()
    }

    fn pipelined(
        shape: &ConvShape,
        m: &[usize],
        img: &SimpleImage,
        ker: &SimpleKernels,
        superblock: Option<usize>,
        exec: &dyn Executor,
    ) -> Vec<f32> {
        let opts = ConvOptions { schedule: Schedule::Pipelined, superblock, ..Default::default() };
        let layer = WinogradLayer::new(shape.clone(), m, opts).unwrap();
        let input = BlockedImage::from_simple(img).unwrap();
        let kernels = BlockedKernels::from_simple(ker).unwrap();
        let mut scratch = Scratch::new(&layer, exec.threads());
        let mut out = layer.new_output().unwrap();
        layer.forward(&input, &kernels, &mut out, &mut scratch, exec).unwrap();
        out.as_slice().to_vec()
    }

    #[test]
    fn pipelined_matches_monolithic_bitwise() {
        let shape = ConvShape::new(2, 32, 32, &[10, 10], &[3, 3], &[1, 1]).unwrap();
        let img = test_img(2, 32, &[10, 10]);
        let ker = test_ker(32, 32, &[3, 3]);
        let mono = monolithic(&shape, &[4, 4], &img, &ker);
        // Every superblock extent must give the same answer — the
        // partition only changes which task computes what.
        for sb in [None, Some(1), Some(2), Some(1000)] {
            let pipe = pipelined(&shape, &[4, 4], &img, &ker, sb, &SerialExecutor);
            assert_eq!(pipe, mono, "superblock {sb:?}");
        }
    }

    #[test]
    fn pipelined_executors_agree() {
        let shape = ConvShape::new(2, 32, 48, &[11, 9], &[3, 3], &[1, 1]).unwrap();
        let img = test_img(2, 32, &[11, 9]);
        let ker = test_ker(48, 32, &[3, 3]);
        let serial = pipelined(&shape, &[4, 4], &img, &ker, Some(2), &SerialExecutor);
        let stat = StaticExecutor::new(4);
        assert_eq!(pipelined(&shape, &[4, 4], &img, &ker, Some(2), &stat), serial);
        let dyn_e = DynamicExecutor::new(4);
        assert_eq!(pipelined(&shape, &[4, 4], &img, &ker, Some(2), &dyn_e), serial);
    }

    #[test]
    fn pipelined_three_d() {
        let shape = ConvShape::new(1, 16, 16, &[5, 8, 8], &[3, 3, 3], &[1, 1, 1]).unwrap();
        let img = test_img(1, 16, &[5, 8, 8]);
        let ker = test_ker(16, 16, &[3, 3, 3]);
        let mono = monolithic(&shape, &[2, 2, 2], &img, &ker);
        let pipe = pipelined(&shape, &[2, 2, 2], &img, &ker, None, &StaticExecutor::new(2));
        assert_eq!(pipe, mono);
    }

    /// The tentpole's barrier claim, measured: a pipelined forward is 2
    /// fork–joins (kernel transform + superblock grid) where fused is 4
    /// and unfused is 5. Only meaningful with span recording on.
    #[test]
    fn pipelined_forward_halves_the_fork_join_count() {
        if !wino_probe::ENABLED {
            return;
        }
        let shape = ConvShape::new(1, 32, 32, &[10, 10], &[3, 3], &[1, 1]).unwrap();
        let img = test_img(1, 32, &[10, 10]);
        let ker = test_ker(32, 32, &[3, 3]);
        let input = BlockedImage::from_simple(&img).unwrap();
        let kernels = BlockedKernels::from_simple(&ker).unwrap();
        let count = |schedule: Schedule| {
            let opts = ConvOptions { schedule, ..Default::default() };
            let layer = WinogradLayer::new(shape.clone(), &[4, 4], opts).unwrap();
            let mut exec = wino_sched::ProbedExecutor::new(SerialExecutor);
            let mut scratch = Scratch::new(&layer, 1);
            let mut out = layer.new_output().unwrap();
            layer.forward(&input, &kernels, &mut out, &mut scratch, &exec).unwrap();
            exec.take_events()
                .iter()
                .filter(|e| e.category == wino_probe::SpanCategory::ForkJoin)
                .count()
        };
        assert_eq!(count(Schedule::Pipelined), 2);
        assert_eq!(count(Schedule::FusedScatter), 4);
        assert_eq!(count(Schedule::Unfused), 5);
    }

    #[test]
    fn pipelined_records_the_superblock_span() {
        if !wino_probe::ENABLED {
            return;
        }
        let shape = ConvShape::new(1, 16, 16, &[8, 8], &[3, 3], &[1, 1]).unwrap();
        let img = test_img(1, 16, &[8, 8]);
        let ker = test_ker(16, 16, &[3, 3]);
        let opts = ConvOptions { schedule: Schedule::Pipelined, ..Default::default() };
        let layer = WinogradLayer::new(shape, &[2, 2], opts).unwrap();
        let mut exec = wino_sched::ProbedExecutor::new(SerialExecutor);
        let mut scratch = Scratch::new(&layer, 1);
        let mut out = layer.new_output().unwrap();
        layer
            .forward(
                &BlockedImage::from_simple(&img).unwrap(),
                &BlockedKernels::from_simple(&ker).unwrap(),
                &mut out,
                &mut scratch,
                &exec,
            )
            .unwrap();
        let events = exec.take_events();
        let cats: Vec<_> = events.iter().map(|e| e.category).collect();
        assert!(cats.contains(&wino_probe::SpanCategory::SuperblockPipeline));
        assert!(cats.contains(&wino_probe::SpanCategory::KernelTransform));
        // The monolithic stage spans must NOT appear — the pipeline
        // subsumes them.
        assert!(!cats.contains(&wino_probe::SpanCategory::InputTransform));
        assert!(!cats.contains(&wino_probe::SpanCategory::ElementwiseGemm));
        assert!(!cats.contains(&wino_probe::SpanCategory::OutputTransform));
    }

    #[test]
    fn pipelined_multi_k_block() {
        // C > C_blk exercises the beta-accumulation inside one superblock.
        let shape = ConvShape::new(1, 64, 32, &[6, 6], &[3, 3], &[1, 1]).unwrap();
        let img = test_img(1, 64, &[6, 6]);
        let ker = test_ker(32, 64, &[3, 3]);
        let block = wino_gemm::BlockShape { n_blk: 5, c_blk: 32, cp_blk: 16 };
        let input = BlockedImage::from_simple(&img).unwrap();
        let kernels = BlockedKernels::from_simple(&ker).unwrap();
        let run = |schedule: Schedule| {
            let opts = ConvOptions {
                schedule,
                block: Some(block),
                superblock: Some(1),
                ..Default::default()
            };
            let layer = WinogradLayer::new(shape.clone(), &[2, 2], opts).unwrap();
            let mut scratch = Scratch::new(&layer, 1);
            let mut out = layer.new_output().unwrap();
            layer.forward(&input, &kernels, &mut out, &mut scratch, &SerialExecutor).unwrap();
            out.as_slice().to_vec()
        };
        assert_eq!(run(Schedule::Pipelined), run(Schedule::FusedScatter));
    }
}
