//! Runtime accuracy sentinels: sampled output-tile re-verification.
//!
//! The NaN/Inf guard ([`crate::error::check_finite`]) catches only
//! *non-finite* corruption; a flipped mantissa bit, a run of denormals or
//! a biased accumulator produces perfectly finite wrong answers. The
//! sentinels close that gap with an end-to-end spot check: after each
//! layer's forward, a seeded random sample of output tiles is recomputed
//! through the f64 direct convolution on the same receptive field and
//! compared against the layer's **a-priori error bound**
//! ([`crate::WinogradLayer::predicted_bound`], derived from the exact
//! transform conditioning in `wino-transforms`). A tile whose relative
//! error exceeds the bound *cannot* be ordinary f32 rounding — the bound
//! is a worst case — so a trip is hard evidence of corruption and feeds
//! the degradation ladder in [`crate::Network`]: demote the tile size,
//! and if the re-run still trips, rescue through im2col.
//!
//! Sampling is deterministic: the unit set is drawn by a seeded
//! Fisher–Yates prefix (`wino-rng`), so the same seed checks the same
//! tiles whatever schedule or executor produced the output. With
//! `samples == 0` the sentinel is provably free — no RNG is built, no
//! oracle runs, no counter moves.

use wino_rng::Rng;
use wino_tensor::{BlockedImage, BlockedKernels};

use crate::plan::WinogradLayer;

/// Sentinel sampling policy (part of [`crate::FallbackPolicy`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SentinelConfig {
    /// Output tiles to re-verify per layer forward (0 disables the
    /// sentinel entirely — provably zero overhead).
    pub samples: u32,
    /// Base seed for the tile sample; combined with the layer index so
    /// different layers check different tiles while staying reproducible.
    pub seed: u64,
    /// On a trip, first re-run the layer with every tile dimension
    /// demoted by 2 (better-conditioned transforms) before falling back
    /// to im2col.
    pub demote_tile: bool,
}

impl SentinelConfig {
    /// Disabled: sample nothing.
    pub fn off() -> SentinelConfig {
        SentinelConfig { samples: 0, seed: 0, demote_tile: true }
    }

    /// Check `samples` tiles per layer under the given seed.
    pub fn sampled(samples: u32, seed: u64) -> SentinelConfig {
        SentinelConfig { samples, seed, demote_tile: true }
    }
}

impl Default for SentinelConfig {
    /// Disabled by default: the spot check costs an f64 direct
    /// convolution per sampled tile, which callers opt into.
    fn default() -> Self {
        SentinelConfig::off()
    }
}

/// Evidence from a tripped sentinel: which unit failed and by how much.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SentinelError {
    /// Flat sampled unit index (`b * total_tiles + tile`).
    pub unit: usize,
    /// Measured relative error of the sampled tile.
    pub rel_err: f64,
    /// The a-priori bound it exceeded.
    pub bound: f64,
}

impl std::fmt::Display for SentinelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sentinel trip at unit {}: rel err {:.3e} > bound {:.3e}",
            self.unit, self.rel_err, self.bound
        )
    }
}

impl std::error::Error for SentinelError {}

/// The deterministic sample: `cfg.samples` distinct units out of
/// `batch × total_tiles`, drawn by a Fisher–Yates prefix seeded from
/// `(cfg.seed, layer_index)`. Exposed so tests can assert the set is
/// identical across schedules and executors.
pub fn sample_units(layer: &WinogradLayer, cfg: &SentinelConfig, layer_index: usize) -> Vec<usize> {
    let n = layer.shape.batch * layer.grid.total_tiles();
    let want = (cfg.samples as usize).min(n);
    if want == 0 {
        return Vec::new();
    }
    let mut rng = Rng::seed_from_u64(
        cfg.seed ^ (layer_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    let mut units: Vec<usize> = (0..n).collect();
    for i in 0..want {
        let j = rng.range_usize(i, n - 1);
        units.swap(i, j);
    }
    units.truncate(want);
    units
}

/// Re-verify the sampled output tiles of one layer forward against the
/// f64 direct oracle. `Ok(checked)` is the number of tiles verified;
/// `Err` carries the first trip. Trips compare against
/// [`WinogradLayer::predicted_bound`], so a finite-but-wrong output is
/// distinguishable from legitimate f32 rounding.
pub fn verify_sample(
    layer: &WinogradLayer,
    input: &BlockedImage,
    kernels: &BlockedKernels,
    output: &BlockedImage,
    cfg: &SentinelConfig,
    layer_index: usize,
) -> Result<usize, SentinelError> {
    let units = sample_units(layer, cfg, layer_index);
    if units.is_empty() {
        return Ok(0);
    }
    let bound = layer.predicted_bound();
    let total_tiles = layer.grid.total_tiles();
    for &unit in &units {
        let (b, tile) = (unit / total_tiles, unit % total_tiles);
        let rel_err = tile_rel_err(layer, input, kernels, output, b, tile);
        if rel_err > bound {
            return Err(SentinelError { unit, rel_err, bound });
        }
    }
    Ok(units.len())
}

/// Relative ∞-norm error of one output tile against the f64 oracle on
/// its receptive field: `max|got − truth| / max(‖truth‖∞, 1)`.
fn tile_rel_err(
    layer: &WinogradLayer,
    input: &BlockedImage,
    kernels: &BlockedKernels,
    output: &BlockedImage,
    b: usize,
    tile: usize,
) -> f64 {
    let grid = &layer.grid;
    let shape = &layer.shape;
    let rank = shape.rank();
    let tc = grid.tile_coords(tile);
    let origin = grid.output_origin(&tc);
    let extent = grid.output_extent(&tc);
    let tile_vol: usize = extent.iter().product();
    let ker_vol: usize = shape.kernel_dims.iter().product();

    let mut max_abs = 0.0f64;
    let mut max_truth = 0.0f64;
    for co in 0..shape.out_channels {
        for e in 0..tile_vol {
            let ec = wino_tensor::unflatten(e, &extent);
            let oc: Vec<usize> = (0..rank).map(|d| origin[d] + ec[d]).collect();
            // f64 direct cross-correlation on the receptive field.
            let mut truth = 0.0f64;
            for ci in 0..shape.in_channels {
                for k in 0..ker_vol {
                    let kc = wino_tensor::unflatten(k, &shape.kernel_dims);
                    let mut inside = true;
                    let mut ic = [0usize; crate::plan::MAX_RANK];
                    for d in 0..rank {
                        let x = (oc[d] + kc[d]) as isize - shape.padding[d] as isize;
                        if x < 0 || x >= shape.image_dims[d] as isize {
                            inside = false;
                            break;
                        }
                        ic[d] = x as usize;
                    }
                    if inside {
                        truth += input.get(b, ci, &ic[..rank]) as f64
                            * kernels.get(co, ci, &kc) as f64;
                    }
                }
            }
            let got = output.get(b, co, &oc) as f64;
            max_abs = max_abs.max((got - truth).abs());
            max_truth = max_truth.max(truth.abs());
        }
    }
    max_abs / max_truth.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ConvOptions, Scratch};
    use wino_sched::SerialExecutor;
    use wino_tensor::{ConvShape, SimpleImage, SimpleKernels};

    fn setup(m: &[usize]) -> (WinogradLayer, BlockedImage, BlockedKernels, BlockedImage) {
        let shape = ConvShape::new(2, 16, 16, &[12, 12], &[3, 3], &[1, 1]).unwrap();
        let layer = WinogradLayer::new(shape, m, ConvOptions::default()).unwrap();
        let img = SimpleImage::from_fn(2, 16, &[12, 12], |b, c, xy| {
            ((b * 5 + c * 3 + xy[0] * 7 + xy[1]) % 17) as f32 * 0.05 - 0.4
        });
        let ker = SimpleKernels::from_fn(16, 16, &[3, 3], |co, ci, xy| {
            ((co + ci * 2 + xy[0] + xy[1] * 3) % 11) as f32 * 0.06 - 0.3
        });
        let input = BlockedImage::from_simple(&img).unwrap();
        let kernels = BlockedKernels::from_simple(&ker).unwrap();
        let mut out = layer.new_output().unwrap();
        let mut scratch = Scratch::new(&layer, 1);
        layer.forward(&input, &kernels, &mut out, &mut scratch, &SerialExecutor).unwrap();
        (layer, input, kernels, out)
    }

    #[test]
    fn clean_forward_passes_the_sentinel() {
        let (layer, input, kernels, out) = setup(&[4, 4]);
        let cfg = SentinelConfig::sampled(8, 42);
        let checked = verify_sample(&layer, &input, &kernels, &out, &cfg, 0).unwrap();
        assert_eq!(checked, 8);
    }

    #[test]
    fn corrupted_output_trips_the_sentinel() {
        let (layer, input, kernels, mut out) = setup(&[4, 4]);
        // Finite corruption the NaN guard cannot see.
        for v in out.as_mut_slice().iter_mut() {
            *v += 64.0;
        }
        // Sampling every tile guarantees the corrupted region is seen.
        let n = (layer.shape.batch * layer.grid.total_tiles()) as u32;
        let cfg = SentinelConfig::sampled(n, 42);
        let e = verify_sample(&layer, &input, &kernels, &out, &cfg, 0).unwrap_err();
        assert!(e.rel_err > e.bound);
    }

    #[test]
    fn sample_is_seed_deterministic_and_distinct() {
        let (layer, ..) = setup(&[4, 4]);
        let cfg = SentinelConfig::sampled(6, 7);
        let a = sample_units(&layer, &cfg, 3);
        let b = sample_units(&layer, &cfg, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 6, "sampled units must be distinct");
        // Different layers draw different sets (overwhelmingly likely).
        assert_ne!(sample_units(&layer, &cfg, 4), a);
    }

    #[test]
    fn zero_samples_do_no_work() {
        let (layer, input, kernels, out) = setup(&[2, 2]);
        let cfg = SentinelConfig::off();
        assert!(sample_units(&layer, &cfg, 0).is_empty());
        assert_eq!(verify_sample(&layer, &input, &kernels, &out, &cfg, 0), Ok(0));
    }

    #[test]
    fn oversampling_clamps_to_the_unit_count() {
        let (layer, input, kernels, out) = setup(&[6, 6]);
        let n = layer.shape.batch * layer.grid.total_tiles();
        let cfg = SentinelConfig::sampled(u32::MAX, 1);
        assert_eq!(sample_units(&layer, &cfg, 0).len(), n);
        let checked = verify_sample(&layer, &input, &kernels, &out, &cfg, 0).unwrap();
        assert_eq!(checked, n);
    }
}
