//! The unified error type of the execution layer.
//!
//! Planning, shape validation, parallel execution and numeric guarding
//! each have their own typed error ([`PlanError`], [`ShapeError`],
//! [`PoolError`], [`NumericError`]); [`WinoError`] unifies them so
//! `run_layer` / `run_net` (and everything underneath) can thread one
//! `Result` end-to-end instead of panicking inside worker threads.

use wino_sched::PoolError;
use wino_simd::AllocError;
use wino_tensor::{ShapeError, TensorError};

use crate::plan::PlanError;
use crate::sentinel::SentinelError;

/// A non-finite value (NaN or ±Inf) detected by the numeric guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NumericError {
    /// Which buffer tripped the guard (e.g. `"output"`).
    pub stage: &'static str,
    /// Flat index of the first non-finite element.
    pub index: usize,
}

impl std::fmt::Display for NumericError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "non-finite value in {} at flat index {}", self.stage, self.index)
    }
}

impl std::error::Error for NumericError {}

/// Scan a buffer for non-finite values; `Err` carries the first offender.
pub fn check_finite(stage: &'static str, data: &[f32]) -> Result<(), NumericError> {
    match data.iter().position(|v| !v.is_finite()) {
        None => Ok(()),
        Some(index) => Err(NumericError { stage, index }),
    }
}

/// Any failure of the convolution engine, from planning to execution.
#[derive(Debug)]
pub enum WinoError {
    /// Plan construction failed.
    Plan(PlanError),
    /// Buffers passed to an execution entry point do not match the plan.
    Shape(ShapeError),
    /// The parallel substrate failed: a worker panicked mid-layer, a
    /// barrier watchdog fired, or the pool was already dead.
    Pool(PoolError),
    /// The numeric guard found NaN/Inf in a transformed output.
    Numeric(NumericError),
    /// An accuracy sentinel found a finite-but-wrong output (relative
    /// error above the plan's a-priori bound) in a context with no
    /// degradation ladder to absorb it (e.g. a guarded training step).
    Sentinel(SentinelError),
    /// The allocator (or the fault injector) refused a buffer — the
    /// run-time entry into the memory degradation ladder: `exec_layer`
    /// retries with demoted tiles, then the im2col rescue, before this
    /// surfaces as a failure.
    Alloc(AllocError),
    /// Kernel list length does not match the network's layer count.
    LayerCount { expected: usize, got: usize },
    /// The requested operation is not available for this plan (e.g.
    /// memoised kernel transforms for an im2col-planned layer).
    Unsupported(&'static str),
}

impl std::fmt::Display for WinoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WinoError::Plan(e) => write!(f, "planning failed: {e}"),
            WinoError::Shape(e) => write!(f, "shape error: {e}"),
            WinoError::Pool(e) => write!(f, "parallel execution failed: {e}"),
            WinoError::Numeric(e) => write!(f, "numeric guard: {e}"),
            WinoError::Sentinel(e) => write!(f, "accuracy sentinel: {e}"),
            WinoError::Alloc(e) => write!(f, "allocation failed: {e}"),
            WinoError::LayerCount { expected, got } => {
                write!(f, "network has {expected} layers but {got} kernel banks were supplied")
            }
            WinoError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for WinoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WinoError::Plan(e) => Some(e),
            WinoError::Shape(e) => Some(e),
            WinoError::Pool(e) => Some(e),
            WinoError::Numeric(e) => Some(e),
            WinoError::Sentinel(e) => Some(e),
            WinoError::Alloc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlanError> for WinoError {
    fn from(e: PlanError) -> Self {
        WinoError::Plan(e)
    }
}

impl From<ShapeError> for WinoError {
    fn from(e: ShapeError) -> Self {
        WinoError::Shape(e)
    }
}

impl From<PoolError> for WinoError {
    fn from(e: PoolError) -> Self {
        WinoError::Pool(e)
    }
}

impl From<NumericError> for WinoError {
    fn from(e: NumericError) -> Self {
        WinoError::Numeric(e)
    }
}

impl From<SentinelError> for WinoError {
    fn from(e: SentinelError) -> Self {
        WinoError::Sentinel(e)
    }
}

impl From<AllocError> for WinoError {
    fn from(e: AllocError) -> Self {
        WinoError::Alloc(e)
    }
}

impl From<TensorError> for WinoError {
    fn from(e: TensorError) -> Self {
        match e {
            TensorError::Shape(s) => WinoError::Shape(s),
            TensorError::Alloc(a) => WinoError::Alloc(a),
        }
    }
}

/// `Err(Shape(Mismatch))` unless `got == expected`.
pub(crate) fn ensure_eq(what: &'static str, expected: usize, got: usize) -> Result<(), WinoError> {
    if got == expected {
        Ok(())
    } else {
        Err(ShapeError::Mismatch { what, expected, got }.into())
    }
}

/// `Err(Shape(Mismatch))` unless `got >= expected`.
pub(crate) fn ensure_at_least(
    what: &'static str,
    expected: usize,
    got: usize,
) -> Result<(), WinoError> {
    if got >= expected {
        Ok(())
    } else {
        Err(ShapeError::Mismatch { what, expected, got }.into())
    }
}

/// `Err(Shape(Mismatch))` unless the dimension lists agree (rank checked
/// first, then each extent).
pub(crate) fn ensure_dims_eq(
    what: &'static str,
    expected: &[usize],
    got: &[usize],
) -> Result<(), WinoError> {
    if expected.len() != got.len() {
        return Err(ShapeError::RankMismatch { expected: expected.len(), got: got.len() }.into());
    }
    for (&e, &g) in expected.iter().zip(got) {
        if e != g {
            return Err(ShapeError::Mismatch { what, expected: e, got: g }.into());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_finite_reports_first_offender() {
        assert!(check_finite("output", &[1.0, 2.0, -3.0]).is_ok());
        let e = check_finite("output", &[1.0, f32::NAN, f32::INFINITY]).unwrap_err();
        assert_eq!(e.index, 1);
        assert_eq!(e.stage, "output");
        let e = check_finite("u", &[f32::NEG_INFINITY]).unwrap_err();
        assert_eq!(e.index, 0);
    }

    #[test]
    fn display_formats() {
        let e = WinoError::Numeric(NumericError { stage: "output", index: 7 });
        assert!(e.to_string().contains("output"));
        assert!(e.to_string().contains('7'));
        let e = WinoError::LayerCount { expected: 3, got: 2 };
        assert!(e.to_string().contains('3'));
        let e = WinoError::Plan(PlanError::RankTooHigh { rank: 9 });
        assert!(e.to_string().contains("planning failed"));
    }

    #[test]
    fn source_chain_reaches_inner_errors() {
        use std::error::Error;
        let e = WinoError::Pool(PoolError::Unusable);
        assert!(e.source().is_some());
        let e = WinoError::Unsupported("x");
        assert!(e.source().is_none());
    }

    #[test]
    fn conversions() {
        let e: WinoError = PlanError::RankTooHigh { rank: 7 }.into();
        assert!(matches!(e, WinoError::Plan(_)));
        let e: WinoError = ShapeError::ZeroDim.into();
        assert!(matches!(e, WinoError::Shape(_)));
        let e: WinoError = PoolError::Unusable.into();
        assert!(matches!(e, WinoError::Pool(_)));
        let e: WinoError = NumericError { stage: "y", index: 0 }.into();
        assert!(matches!(e, WinoError::Numeric(_)));
    }

    #[test]
    fn ensure_helpers() {
        assert!(ensure_eq("batch", 2, 2).is_ok());
        assert!(matches!(
            ensure_eq("batch", 2, 3),
            Err(WinoError::Shape(ShapeError::Mismatch { what: "batch", expected: 2, got: 3 }))
        ));
        assert!(ensure_at_least("slots", 2, 4).is_ok());
        assert!(ensure_at_least("slots", 4, 2).is_err());
        assert!(ensure_dims_eq("dim", &[3, 4], &[3, 4]).is_ok());
        assert!(matches!(
            ensure_dims_eq("dim", &[3, 4], &[3, 5]),
            Err(WinoError::Shape(ShapeError::Mismatch { .. }))
        ));
        assert!(matches!(
            ensure_dims_eq("dim", &[3, 4], &[3]),
            Err(WinoError::Shape(ShapeError::RankMismatch { .. }))
        ));
    }
}
