//! Multi-layer network execution with shared auxiliary memory (§4.4).
//!
//! "While the size of the auxiliary buffer can be a couple of times larger
//! than the memory required for storing the computed images, the same
//! memory buffer can be reused for the computation of each layer." —
//! [`Network`] realises that: it plans a sequence of convolutional layers
//! (each with its own `F(m, r)`), allocates **one** [`Scratch`] sized to
//! the maximum requirement, and runs the whole net through it. Layer
//! outputs stay in the blocked layout, so no reshuffling happens between
//! layers (§4.1).
//!
//! The module also owns the *execution-time* half of the
//! graceful-degradation chain (`Jit → Mono → im2col`,
//! [`crate::FallbackPolicy`]): a layer whose Winograd plan cannot be built
//! is planned as an im2col layer instead ([`LayerPlan::Im2col`]), and a
//! layer whose output trips the numeric guard is re-executed through
//! `wino-baseline`'s im2col convolution. Every [`Network::run_layer`] /
//! [`Network::run_net`] call reports which backend actually ran and why
//! via [`ExecutionReport`].

use wino_sched::Executor;
use wino_tensor::{BlockedImage, BlockedKernels, BlockedMatrices, ConvShape};

use crate::conv::TransformedKernels;
use crate::dispatch::{plan_dispatch, DispatchPlan, Route};
use crate::error::{check_finite, NumericError, WinoError};
use crate::plan::{ConvOptions, PlanError, Scratch, Stage2Backend, WinogradLayer};
use crate::select::{plan_with_fallback, FallbackPolicy};
use crate::sentinel::{verify_sample, SentinelError};

/// Pointwise activation applied between layers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Activation {
    #[default]
    None,
    Relu,
}

impl Activation {
    fn apply(self, img: &mut BlockedImage) {
        if self == Activation::Relu {
            for v in img.as_mut_slice() {
                *v = v.max(0.0);
            }
        }
    }
}

/// How a layer is planned to execute. One value exists per network
/// layer, so the size skew between the variants is irrelevant.
#[allow(clippy::large_enum_variant)] // one value per layer; Box would only add a pointer chase
pub enum LayerPlan {
    /// The paper's three-stage Winograd pipeline.
    Winograd(WinogradLayer),
    /// The `wino-baseline` im2col convolution — the end of the
    /// degradation chain, planned when no Winograd plan exists and the
    /// policy allows absorbing that.
    Im2col { shape: ConvShape },
    /// A non-identity (stride/dilation/groups) geometry routed through
    /// [`crate::dispatch`]: polyphase Winograd, grouped Winograd, or the
    /// geometry-aware im2col fallback.
    Dispatch(DispatchPlan),
}

impl LayerPlan {
    /// The layer geometry, whichever backend executes it.
    pub fn shape(&self) -> &ConvShape {
        match self {
            LayerPlan::Winograd(p) => &p.shape,
            LayerPlan::Im2col { shape } => shape,
            LayerPlan::Dispatch(p) => &p.shape,
        }
    }

    /// The Winograd plan, if this layer has one.
    pub fn winograd(&self) -> Option<&WinogradLayer> {
        match self {
            LayerPlan::Winograd(p) => Some(p),
            LayerPlan::Im2col { .. } | LayerPlan::Dispatch(_) => None,
        }
    }

    /// The dispatch route, for layers with a non-identity geometry.
    pub fn dispatch(&self) -> Option<&DispatchPlan> {
        match self {
            LayerPlan::Dispatch(p) => Some(p),
            _ => None,
        }
    }

    /// Output extent per dimension — geometry-aware, unlike
    /// `shape().out_dims()`.
    pub fn out_dims(&self) -> Vec<usize> {
        match self {
            LayerPlan::Dispatch(p) => p.out_dims().to_vec(),
            other => other.shape().out_dims(),
        }
    }
}

/// Which implementation computed a layer's output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayerBackend {
    WinogradJit,
    WinogradMono,
    /// Winograd re-run with a re-tiled plan: every tile dimension demoted
    /// by 2 after an accuracy-sentinel trip (better-conditioned
    /// transforms), or grown by 2 after a refused allocation (smaller
    /// transformed-data scratch). The paired [`FallbackReason`] says
    /// which ladder ran.
    WinogradDemoted,
    /// Stride ≥ 2 executed as a sum of per-phase stride-1 Winograd
    /// convolutions (the sub-lattice / polyphase decomposition).
    WinogradPoly,
    /// Grouped convolution executed by blocking the C/C' loops around a
    /// shared per-group Winograd plan.
    WinogradGrouped,
    Im2col,
}

impl LayerBackend {
    /// Stable serialization name — one of
    /// [`wino_probe::BACKEND_NAMES`], as emitted into
    /// `layers[i].execution.backend` of a `BENCH_*.json` report.
    pub fn name(self) -> &'static str {
        match self {
            LayerBackend::WinogradJit => "winograd-jit",
            LayerBackend::WinogradMono => "winograd-mono",
            LayerBackend::WinogradDemoted => "winograd-demoted",
            LayerBackend::WinogradPoly => "winograd-poly",
            LayerBackend::WinogradGrouped => "winograd-grouped",
            LayerBackend::Im2col => "im2col",
        }
    }
}

/// Why a layer ran on something other than what was asked for.
/// (`PartialEq` only: [`SentinelError`] carries measured f64 errors.)
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FallbackReason {
    /// The JIT stage-2 backend could not be built; the layer uses the
    /// monomorphised backend instead.
    JitUnavailable(PlanError),
    /// No Winograd plan exists for this layer; it runs via im2col.
    PlanFailed(PlanError),
    /// The Winograd output contained NaN/Inf; the layer was re-executed
    /// via im2col.
    NumericGuard(NumericError),
    /// A sampled output tile exceeded the layer's a-priori error bound;
    /// the layer was re-executed demoted (or via im2col — see the
    /// [`ExecutionReport::backend`]).
    SentinelTrip(SentinelError),
    /// The layer is dilated, which the Winograd transform stencils cannot
    /// express; it runs via the geometry-aware im2col baseline. A
    /// designed route, reported under every policy.
    Dilated,
    /// The layer's per-group channel width is narrower than the vector
    /// width (depthwise included), so the blocked Winograd layout cannot
    /// carry it; it runs via the geometry-aware im2col baseline.
    GroupTooNarrow { c_per_group: usize },
    /// The layer could not be executed (or planned) within available
    /// memory: the plan exceeded a [`crate::MemoryBudget`] or the
    /// allocator refused a buffer at run time. `bytes` is the offending
    /// request — the plan footprint at plan time, the refused allocation
    /// at run time. The memory ladder re-tiled the layer or rescued it
    /// through im2col (see [`ExecutionReport::backend`]).
    Memory { bytes: usize },
}

impl FallbackReason {
    /// Stable serialization code — one of
    /// [`wino_probe::FALLBACK_CODES`], as emitted into
    /// `layers[i].execution.fallback` of a `BENCH_*.json` report. The
    /// inner error detail is for `Display`, not the machine-readable
    /// shape.
    pub fn code(&self) -> &'static str {
        match self {
            FallbackReason::JitUnavailable(_) => "jit-unavailable",
            FallbackReason::PlanFailed(_) => "plan-failed",
            FallbackReason::NumericGuard(_) => "numeric-guard",
            FallbackReason::SentinelTrip(_) => "sentinel-trip",
            FallbackReason::Dilated => "dilated",
            FallbackReason::GroupTooNarrow { .. } => "group-narrow",
            FallbackReason::Memory { .. } => "memory",
        }
    }
}

impl std::fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FallbackReason::JitUnavailable(e) => write!(f, "jit unavailable ({e}); using mono"),
            FallbackReason::PlanFailed(e) => write!(f, "no winograd plan ({e}); using im2col"),
            FallbackReason::NumericGuard(e) => write!(f, "numeric guard tripped ({e}); using im2col"),
            FallbackReason::SentinelTrip(e) => write!(f, "accuracy {e}; re-executed"),
            FallbackReason::Dilated => {
                write!(f, "dilated layer outside the Winograd stencils; using im2col")
            }
            FallbackReason::GroupTooNarrow { c_per_group } => {
                write!(f, "per-group channel width {c_per_group} below the vector width; using im2col")
            }
            FallbackReason::Memory { bytes } => {
                write!(f, "memory pressure ({bytes} B refused); degraded")
            }
        }
    }
}

/// What actually happened when one layer executed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExecutionReport {
    /// Layer index within the network.
    pub layer: usize,
    /// The backend that produced the returned output.
    pub backend: LayerBackend,
    /// The degradation applied, if any (plan-time or execution-time).
    pub fallback: Option<FallbackReason>,
}

/// One planned layer of a [`Network`].
pub struct NetLayer {
    pub plan: LayerPlan,
    pub activation: Activation,
    /// Downgrade recorded at plan time (`Jit → Mono` or
    /// `plan failure → im2col`); echoed into every [`ExecutionReport`].
    pub planned_fallback: Option<FallbackReason>,
}

/// A sequential stack of convolution layers with per-layer resident
/// scratch.
pub struct Network {
    layers: Vec<NetLayer>,
    /// One scratch slot per layer, built once at plan time and reused on
    /// every pass. Per-layer slots (rather than one shared arena rebuilt
    /// per transition) keep repeat forwards allocation-free — the serving
    /// hot path's invariant — at the cost of summing, not maxing, the
    /// scratch footprint. A slot is `None` when the layer has no Winograd
    /// plan or its seeding allocation was refused (the execution-time
    /// ladder then deals with it when the layer runs).
    scratch: Vec<Option<Scratch>>,
}

impl Network {
    /// Plan a network from `(out_channels, kernel_dims, padding, m,
    /// activation)` layer specs applied successively to an input of shape
    /// `(batch, in_channels, image_dims)`.
    ///
    /// Strict planning: any plan failure is returned as an error. Use
    /// [`Network::with_policy`] to absorb failures into fallbacks.
    pub fn new(
        batch: usize,
        in_channels: usize,
        image_dims: &[usize],
        specs: &[LayerSpec],
        opts: ConvOptions,
        threads: usize,
    ) -> Result<Network, PlanError> {
        Self::with_policy(
            batch,
            in_channels,
            image_dims,
            specs,
            opts,
            threads,
            &FallbackPolicy::strict(),
        )
    }

    /// Plan a network, degrading per `policy` instead of failing where the
    /// policy allows it: a JIT plan failure retries with
    /// [`Stage2Backend::Mono`], and a layer with no Winograd plan at all
    /// is planned as an im2col layer. Downgrades are recorded on the
    /// [`NetLayer`] and surface in every [`ExecutionReport`].
    ///
    /// Geometry errors ([`PlanError::Shape`]) always fail: no backend can
    /// execute an ill-formed layer.
    pub fn with_policy(
        batch: usize,
        in_channels: usize,
        image_dims: &[usize],
        specs: &[LayerSpec],
        opts: ConvOptions,
        threads: usize,
        policy: &FallbackPolicy,
    ) -> Result<Network, PlanError> {
        assert!(!specs.is_empty(), "network needs at least one layer");
        let mut layers = Vec::with_capacity(specs.len());
        let mut c = in_channels;
        let mut dims = image_dims.to_vec();
        let identity = opts.has_identity_geometry(image_dims.len());
        for spec in specs {
            let shape =
                ConvShape::new(batch, c, spec.out_channels, &dims, &spec.kernel, &spec.padding)?;
            c = spec.out_channels;
            let (plan, planned_fallback) = if identity {
                dims = shape.out_dims();
                match plan_with_fallback(&shape, &spec.m, opts, policy) {
                    Ok((p, None)) => (LayerPlan::Winograd(p), None),
                    Ok((p, Some(PlanError::MemoryBudget { need_bytes, .. }))) => {
                        (LayerPlan::Winograd(p), Some(FallbackReason::Memory { bytes: need_bytes }))
                    }
                    Ok((p, Some(e))) => {
                        (LayerPlan::Winograd(p), Some(FallbackReason::JitUnavailable(e)))
                    }
                    Err(e @ PlanError::Shape(_)) => return Err(e),
                    Err(PlanError::MemoryBudget { need_bytes, .. })
                        if policy.im2col_on_plan_failure =>
                    {
                        // No supported tile fits the budget: the im2col
                        // rescue ends the plan-time memory ladder.
                        (LayerPlan::Im2col { shape }, Some(FallbackReason::Memory { bytes: need_bytes }))
                    }
                    Err(e) if policy.im2col_on_plan_failure => {
                        (LayerPlan::Im2col { shape }, Some(FallbackReason::PlanFailed(e)))
                    }
                    Err(e) => return Err(e),
                }
            } else {
                // Non-identity geometry: route through the dispatch
                // layer. Chaining uses the geometry's output extents.
                let (dp, fb) = plan_dispatch(&shape, &spec.m, opts, policy)?;
                dims = dp.out_dims().to_vec();
                match dp {
                    // An identity-geometry route can't reach here, but a
                    // Direct plan still executes through the ordinary
                    // Winograd machinery (scratch reuse, sentinels).
                    DispatchPlan { route: Route::Direct(p), .. } => {
                        (LayerPlan::Winograd(*p), fb)
                    }
                    dp => (LayerPlan::Dispatch(dp), fb),
                }
            };
            layers.push(NetLayer { plan, activation: spec.activation, planned_fallback });
        }

        // One resident scratch per layer, so repeat passes never rebuild.
        let scratch = Self::seed_scratches(&layers, threads);
        Ok(Network { layers, scratch })
    }

    fn seed_scratches(layers: &[NetLayer], threads: usize) -> Vec<Option<Scratch>> {
        // Pre-seeding is an optimisation, not a requirement: a refused
        // allocation leaves the slot empty and the execution-time ladder
        // (`ensure_scratch` + `exec_layer`) deals with memory pressure
        // when the layer actually runs.
        layers
            .iter()
            .map(|l| match &l.plan {
                LayerPlan::Winograd(p) => Scratch::try_new(p, threads).ok(),
                _ => None,
            })
            .collect()
    }

    /// The network's analytic memory footprint at `threads` thread slots:
    /// every component is a *sum* over the layers — each layer holds its
    /// own resident scratch slot (the price of allocation-free repeat
    /// forwards), its own memoised kernels and its own output. Layers
    /// without a Winograd plan contribute their output (and, for dispatch
    /// routes, the route's own model — see [`DispatchPlan::footprint`]).
    pub fn footprint(&self, threads: usize) -> crate::MemoryFootprint {
        let mut acc = crate::MemoryFootprint {
            scratch_bytes: 0,
            tile_major_bytes: 0,
            transformed_kernel_bytes: 0,
            per_thread_bytes: 0,
            output_bytes: 0,
            threads,
        };
        for l in &self.layers {
            let fp = match &l.plan {
                LayerPlan::Winograd(p) => p.footprint(threads),
                LayerPlan::Dispatch(dp) => dp.footprint(threads),
                LayerPlan::Im2col { shape } => crate::MemoryFootprint {
                    scratch_bytes: 0,
                    tile_major_bytes: 0,
                    transformed_kernel_bytes: 0,
                    per_thread_bytes: 0,
                    output_bytes: BlockedImage::bytes_for(
                        shape.batch,
                        shape.out_channels,
                        &shape.out_dims(),
                    ),
                    threads,
                },
            };
            acc.scratch_bytes += fp.scratch_bytes;
            acc.tile_major_bytes += fp.tile_major_bytes;
            acc.per_thread_bytes += fp.per_thread_bytes;
            acc.transformed_kernel_bytes += fp.transformed_kernel_bytes;
            acc.output_bytes += fp.output_bytes;
        }
        acc
    }

    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    pub fn layers(&self) -> &[NetLayer] {
        &self.layers
    }

    /// Auxiliary bytes currently held across all layer slots.
    pub fn scratch_bytes(&self) -> usize {
        self.scratch.iter().flatten().map(Scratch::bytes).sum()
    }

    /// Memoise all kernel transforms for inference (§4.2 "Inference
    /// only"); pass the result to [`Self::forward_fx`]. Layers planned as
    /// im2col have no kernel transform and make this an
    /// [`WinoError::Unsupported`] error.
    pub fn prepare_kernels(
        &mut self,
        kernels: &[BlockedKernels],
        exec: &dyn Executor,
    ) -> Result<Vec<TransformedKernels>, WinoError> {
        if kernels.len() != self.layers.len() {
            return Err(WinoError::LayerCount { expected: self.layers.len(), got: kernels.len() });
        }
        let mut out = Vec::with_capacity(kernels.len());
        for (i, (layer, kernel)) in self.layers.iter().zip(kernels).enumerate() {
            let Some(plan) = layer.plan.winograd() else {
                return Err(WinoError::Unsupported(
                    "kernel transforms for an im2col-planned layer",
                ));
            };
            Self::ensure_scratch(&mut self.scratch[i], plan, exec.threads())?;
            let sc = self.scratch[i].as_mut().expect("scratch ensured above");
            out.push(plan.prepare_kernels(kernel, sc, exec)?);
        }
        Ok(out)
    }

    fn ensure_scratch(
        scratch: &mut Option<Scratch>,
        p: &WinogradLayer,
        threads: usize,
    ) -> Result<(), WinoError> {
        let need_u = |m: &BlockedMatrices, t, rows, cols, rb, cb| -> bool {
            m.t_count() == t && m.rows() == rows && m.cols() == cols && m.rb() == rb && m.cb() == cb
        };
        let b = p.block;
        let ok = scratch.as_ref().is_some_and(|sc| {
            need_u(&sc.u, p.t_vol(), p.rows(), p.shape.in_channels, b.n_blk, b.c_blk)
                && need_u(
                    &sc.v,
                    p.t_vol(),
                    p.shape.in_channels,
                    p.shape.out_channels,
                    b.c_blk,
                    b.cp_blk,
                )
                && sc.y.n_tiles() == p.n_tiles()
                && sc.y.batch() == p.shape.batch
                && sc.y.channel_groups() == p.shape.out_channels / wino_simd::S
                && sc.y.t_vol() == p.t_vol()
                && sc.thread_slots() >= threads
        });
        if !ok {
            // Release the mismatched scratch before allocating the new
            // one: under memory pressure holding both arenas at once is
            // exactly what pushes the allocator over the edge.
            *scratch = None;
            *scratch = Some(Scratch::try_new(p, threads)?);
        }
        Ok(())
    }

    /// Execute one layer: Winograd forward plus the policy's
    /// execution-time degradations (numeric guard, im2col re-execution).
    ///
    /// Pool errors ([`WinoError::Pool`]) are **not** absorbed by im2col —
    /// a panicked worker or tripped watchdog means the executor itself is
    /// suspect, so they always propagate.
    pub fn run_layer(
        &mut self,
        index: usize,
        input: &BlockedImage,
        kernels: &BlockedKernels,
        exec: &dyn Executor,
        policy: &FallbackPolicy,
    ) -> Result<(BlockedImage, ExecutionReport), WinoError> {
        let layer = self
            .layers
            .get(index)
            .ok_or(WinoError::Unsupported("layer index out of range"))?;
        Self::exec_layer(&mut self.scratch[index], layer, index, input, kernels, exec, policy)
    }

    /// Run the whole network (training mode: kernels transformed every
    /// call), returning the final activation plus one [`ExecutionReport`]
    /// per layer.
    pub fn run_net(
        &mut self,
        input: &BlockedImage,
        kernels: &[BlockedKernels],
        exec: &dyn Executor,
        policy: &FallbackPolicy,
    ) -> Result<(BlockedImage, Vec<ExecutionReport>), WinoError> {
        if kernels.len() != self.layers.len() {
            return Err(WinoError::LayerCount { expected: self.layers.len(), got: kernels.len() });
        }
        let mut reports = Vec::with_capacity(self.layers.len());
        let mut current: Option<BlockedImage> = None;
        for (i, (layer, kernel)) in self.layers.iter().zip(kernels).enumerate() {
            let inp = current.as_ref().unwrap_or(input);
            let (out, report) =
                Self::exec_layer(&mut self.scratch[i], layer, i, inp, kernel, exec, policy)?;
            reports.push(report);
            current = Some(out);
        }
        Ok((current.expect("at least one layer"), reports))
    }

    /// Run the network strictly (training mode; no degradation, no
    /// numeric guard). Returns the final activation.
    pub fn forward(
        &mut self,
        input: &BlockedImage,
        kernels: &[BlockedKernels],
        exec: &dyn Executor,
    ) -> Result<BlockedImage, WinoError> {
        self.run_net(input, kernels, exec, &FallbackPolicy::strict()).map(|(out, _)| out)
    }

    /// Run the network in inference mode with memoised kernel transforms.
    pub fn forward_fx(
        &mut self,
        input: &BlockedImage,
        kernels: &[TransformedKernels],
        exec: &dyn Executor,
    ) -> Result<BlockedImage, WinoError> {
        if kernels.len() != self.layers.len() {
            return Err(WinoError::LayerCount { expected: self.layers.len(), got: kernels.len() });
        }
        let mut current: Option<BlockedImage> = None;
        for (i, (layer, kernel)) in self.layers.iter().zip(kernels).enumerate() {
            let Some(plan) = layer.plan.winograd() else {
                return Err(WinoError::Unsupported(
                    "memoised kernel transforms for an im2col-planned layer",
                ));
            };
            Self::ensure_scratch(&mut self.scratch[i], plan, exec.threads())?;
            let sc = self.scratch[i].as_mut().expect("scratch ensured above");
            let mut out = plan.try_new_output()?;
            {
                let inp = current.as_ref().unwrap_or(input);
                plan.forward_fx(inp, kernel, &mut out, sc, exec)?;
            }
            layer.activation.apply(&mut out);
            current = Some(out);
        }
        Ok(current.expect("at least one layer"))
    }

    fn exec_layer(
        scratch: &mut Option<Scratch>,
        layer: &NetLayer,
        index: usize,
        input: &BlockedImage,
        kernels: &BlockedKernels,
        exec: &dyn Executor,
        policy: &FallbackPolicy,
    ) -> Result<(BlockedImage, ExecutionReport), WinoError> {
        let mut report =
            ExecutionReport { layer: index, backend: LayerBackend::Im2col, fallback: layer.planned_fallback };
        // Subnormal operands put x86 cores into microcode assists (50–100×
        // per affected FMA); flush them for the duration of the layer.
        // MXCSR is per-thread, so this covers the coordinator's share of
        // the work — full coverage under a serial executor (see
        // `wino_simd::denormals` for the model).
        let _ftz = wino_simd::FlushDenormals::engage();
        let mut out = match &layer.plan {
            LayerPlan::Winograd(plan) => {
                report.backend = match plan.opts.stage2 {
                    Stage2Backend::Jit => LayerBackend::WinogradJit,
                    Stage2Backend::Mono => LayerBackend::WinogradMono,
                };
                let out = match Self::winograd_attempt(scratch, plan, input, kernels, exec) {
                    Ok(out) => out,
                    Err(WinoError::Alloc(cause)) => {
                        // Run-time memory ladder: re-tile, then im2col,
                        // then the typed failure. The replacement output
                        // is already guarded; skip the normal guard flow.
                        let (out, backend, reason) = Self::memory_ladder(
                            scratch, plan, cause, input, kernels, exec, policy,
                        )?;
                        report.backend = backend;
                        report.fallback = Some(reason);
                        let mut out = out;
                        layer.activation.apply(&mut out);
                        return Ok((out, report));
                    }
                    Err(e) => return Err(e),
                };
                // The guard must run BEFORE the activation: ReLU computes
                // `f32::max(x, 0.0)`, which maps NaN to 0.0 and would hide
                // the corruption.
                let guard = if policy.check_numerics {
                    check_finite("output", out.as_slice())
                } else {
                    Ok(())
                };
                match guard {
                    Ok(()) => {
                        // Guard passed: the output is finite — now the
                        // accuracy sentinels check it is also *right*.
                        match Self::sentinel_check(plan, index, input, kernels, &out, exec, policy)? {
                            None => out,
                            Some((replaced, backend, reason)) => {
                                report.backend = backend;
                                report.fallback = Some(reason);
                                replaced
                            }
                        }
                    }
                    Err(e) if policy.im2col_on_numeric => {
                        report.backend = LayerBackend::Im2col;
                        report.fallback = Some(FallbackReason::NumericGuard(e));
                        let rescue_start = crate::spans::span_start();
                        let rescued = Self::im2col_layer(&plan.shape, input, kernels, exec)?;
                        crate::spans::record_coord(
                            exec,
                            wino_probe::SpanCategory::FallbackRescue,
                            rescue_start,
                        );
                        // A second trip proves the corruption is not
                        // Winograd-specific (e.g. non-finite layer input);
                        // surface it instead of letting the activation
                        // below map the NaNs to 0.0.
                        check_finite("im2col rescue output", rescued.as_slice())?;
                        rescued
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            LayerPlan::Im2col { shape } => Self::im2col_layer(shape, input, kernels, exec)?,
            LayerPlan::Dispatch(dp) => {
                report.backend = dp.backend();
                let mut out = dp.new_output()?;
                dp.forward(input, kernels, &mut out, exec)?;
                let guard = if policy.check_numerics {
                    check_finite("output", out.as_slice())
                } else {
                    Ok(())
                };
                match guard {
                    Ok(()) => out,
                    Err(e)
                        if policy.im2col_on_numeric && !matches!(dp.route, Route::Im2col) =>
                    {
                        report.backend = LayerBackend::Im2col;
                        report.fallback = Some(FallbackReason::NumericGuard(e));
                        let rescue_start = crate::spans::span_start();
                        let mut rescued = dp.new_output()?;
                        wino_baseline::im2col_conv_geo(
                            input,
                            kernels,
                            &dp.shape.padding,
                            &dp.geo,
                            &mut rescued,
                            exec,
                        )?;
                        crate::spans::record_coord(
                            exec,
                            wino_probe::SpanCategory::FallbackRescue,
                            rescue_start,
                        );
                        // As with the identity path: a second trip means
                        // the corruption is not Winograd-specific.
                        check_finite("im2col rescue output", rescued.as_slice())?;
                        rescued
                    }
                    Err(e) => return Err(e.into()),
                }
            }
        };
        layer.activation.apply(&mut out);
        Ok((out, report))
    }

    /// The sentinel half of the execution-time degradation ladder. `None`
    /// means the output passed (or sampling is off); `Some` carries the
    /// replacement output plus how it was produced. The ladder: demote
    /// every tile dimension by 2 and re-run (better-conditioned
    /// transforms; skipped when `demote_tile` is off or the tile is
    /// already minimal), re-verify the demoted output, and if it still
    /// trips, rescue through im2col — whose longer f32 accumulation the
    /// sentinels do not judge, but whose arithmetic contains no transform
    /// amplification to corrupt.
    #[allow(clippy::too_many_arguments)] // mirrors exec_layer's context
    fn sentinel_check(
        plan: &WinogradLayer,
        index: usize,
        input: &BlockedImage,
        kernels: &BlockedKernels,
        out: &BlockedImage,
        exec: &dyn Executor,
        policy: &FallbackPolicy,
    ) -> Result<Option<(BlockedImage, LayerBackend, FallbackReason)>, WinoError> {
        let cfg = &policy.sentinel;
        if cfg.samples == 0 {
            // Disabled: no RNG, no oracle, no counters — provably free.
            return Ok(None);
        }
        let t0 = crate::spans::span_start();
        let verdict = verify_sample(plan, input, kernels, out, cfg, index);
        crate::spans::record_coord(exec, wino_probe::SpanCategory::SentinelVerify, t0);
        let trip = match verdict {
            Ok(checked) => {
                wino_probe::Counter::SentinelTilesChecked.add(checked as u64);
                return Ok(None);
            }
            Err(e) => e,
        };
        wino_probe::Counter::SentinelTrips.add(1);
        let reason = FallbackReason::SentinelTrip(trip);

        if cfg.demote_tile {
            let dm: Vec<usize> = plan
                .grid
                .m
                .iter()
                .map(|&m| if m <= 2 { m } else { (m - 2).max(2) })
                .collect();
            if dm != plan.grid.m {
                if let Ok(demoted) = WinogradLayer::new(plan.shape.clone(), &dm, plan.opts) {
                    let mut sc = Scratch::new(&demoted, exec.threads());
                    let mut out2 = demoted.new_output()?;
                    demoted.forward(input, kernels, &mut out2, &mut sc, exec)?;
                    let t0 = crate::spans::span_start();
                    let verdict = check_finite("demoted output", out2.as_slice())
                        .map_err(|_| ())
                        .and_then(|()| {
                            verify_sample(&demoted, input, kernels, &out2, cfg, index)
                                .map_err(|_| ())
                        });
                    crate::spans::record_coord(
                        exec,
                        wino_probe::SpanCategory::SentinelVerify,
                        t0,
                    );
                    if let Ok(checked) = verdict {
                        wino_probe::Counter::SentinelTilesChecked.add(checked as u64);
                        wino_probe::Counter::SentinelDemotions.add(1);
                        return Ok(Some((out2, LayerBackend::WinogradDemoted, reason)));
                    }
                }
            }
        }

        let t0 = crate::spans::span_start();
        let rescued = Self::im2col_layer(&plan.shape, input, kernels, exec)?;
        crate::spans::record_coord(exec, wino_probe::SpanCategory::FallbackRescue, t0);
        check_finite("im2col rescue output", rescued.as_slice())?;
        wino_probe::Counter::SentinelRescues.add(1);
        Ok(Some((rescued, LayerBackend::Im2col, reason)))
    }

    /// One Winograd forward through the fallible allocation seams: any
    /// refused buffer (scratch regrow, output image) surfaces as
    /// [`WinoError::Alloc`] for the memory ladder instead of aborting.
    fn winograd_attempt(
        scratch: &mut Option<Scratch>,
        plan: &WinogradLayer,
        input: &BlockedImage,
        kernels: &BlockedKernels,
        exec: &dyn Executor,
    ) -> Result<BlockedImage, WinoError> {
        Self::ensure_scratch(scratch, plan, exec.threads())?;
        let sc = scratch.as_mut().expect("scratch ensured above");
        let mut out = plan.try_new_output()?;
        plan.forward(input, kernels, &mut out, sc, exec)?;
        Ok(out)
    }

    /// The run-time memory degradation ladder, entered when an allocation
    /// is refused mid-execution: (1) drop the resident scratch and re-tile
    /// towards larger `m` — the memory-cheap direction, see
    /// [`crate::select::fit_tile_to_memory`] — retrying each supported
    /// tile through the fallible seams; (2) rescue through im2col, whose
    /// footprint has no transformed-data scratch; (3) surface the typed
    /// [`WinoError::Alloc`]. Non-allocation errors (pool failures) always
    /// propagate. The returned output is numeric-guarded here because the
    /// caller's guard flow is bypassed.
    #[allow(clippy::too_many_arguments)] // mirrors exec_layer's context
    fn memory_ladder(
        scratch: &mut Option<Scratch>,
        plan: &WinogradLayer,
        cause: wino_simd::AllocError,
        input: &BlockedImage,
        kernels: &BlockedKernels,
        exec: &dyn Executor,
        policy: &FallbackPolicy,
    ) -> Result<(BlockedImage, LayerBackend, FallbackReason), WinoError> {
        let reason = FallbackReason::Memory { bytes: cause.bytes };
        // The resident arena may be most of the pressure; release it
        // before any retry.
        *scratch = None;
        if policy.retile_on_memory {
            let out_dims = plan.shape.out_dims();
            let mut mm = plan.grid.m.clone();
            loop {
                let mut grew = false;
                for (d, v) in mm.iter_mut().enumerate() {
                    if *v + 2 <= crate::select::SEARCH_MAX_M.min(out_dims[d]) {
                        *v += 2;
                        grew = true;
                    }
                }
                if !grew {
                    break;
                }
                let Ok(retiled) = WinogradLayer::new(plan.shape.clone(), &mm, plan.opts) else {
                    continue;
                };
                let Ok(mut sc) = Scratch::try_new(&retiled, exec.threads()) else {
                    continue;
                };
                let mut out = match retiled.try_new_output() {
                    Ok(out) => out,
                    Err(_) => continue,
                };
                match retiled.forward(input, kernels, &mut out, &mut sc, exec) {
                    Ok(()) => {
                        if policy.check_numerics {
                            check_finite("output", out.as_slice())?;
                        }
                        wino_probe::Counter::MemoryDemotions.add(1);
                        return Ok((out, LayerBackend::WinogradDemoted, reason));
                    }
                    Err(WinoError::Alloc(_)) => continue,
                    Err(e) => return Err(e),
                }
            }
        }
        if policy.im2col_on_plan_failure {
            let rescue_start = crate::spans::span_start();
            let rescued = Self::im2col_layer(&plan.shape, input, kernels, exec)?;
            crate::spans::record_coord(
                exec,
                wino_probe::SpanCategory::FallbackRescue,
                rescue_start,
            );
            if policy.check_numerics {
                check_finite("im2col rescue output", rescued.as_slice())?;
            }
            wino_probe::Counter::MemoryRescues.add(1);
            return Ok((rescued, LayerBackend::Im2col, reason));
        }
        Err(WinoError::Alloc(cause))
    }

    fn im2col_layer(
        shape: &ConvShape,
        input: &BlockedImage,
        kernels: &BlockedKernels,
        exec: &dyn Executor,
    ) -> Result<BlockedImage, WinoError> {
        // `try_zeros`: the im2col rescue is the second rung of the memory
        // ladder, so its own output allocation must stay fallible too.
        let mut out =
            BlockedImage::try_zeros(shape.batch, shape.out_channels, &shape.out_dims())?;
        wino_baseline::im2col_conv(input, kernels, &shape.padding, &mut out, exec)?;
        Ok(out)
    }
}

/// Specification of one network layer.
#[derive(Clone, Debug)]
pub struct LayerSpec {
    pub out_channels: usize,
    pub kernel: Vec<usize>,
    pub padding: Vec<usize>,
    /// Winograd output-tile size per dimension.
    pub m: Vec<usize>,
    pub activation: Activation,
}

impl LayerSpec {
    /// A "same"-padded layer with cubic kernels and tiles.
    pub fn same(out_channels: usize, rank: usize, r: usize, m: usize) -> LayerSpec {
        LayerSpec {
            out_channels,
            kernel: vec![r; rank],
            padding: vec![r / 2; rank],
            m: vec![m; rank],
            activation: Activation::Relu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_sched::SerialExecutor;
    use wino_tensor::{SimpleImage, SimpleKernels};

    #[test]
    fn serialization_names_match_schema_sets() {
        // The schema validator (wino-probe) pins the wire names; the
        // producers here must stay inside those sets or reports fail
        // validation at emit time.
        for b in [
            LayerBackend::WinogradJit,
            LayerBackend::WinogradMono,
            LayerBackend::WinogradDemoted,
            LayerBackend::WinogradPoly,
            LayerBackend::WinogradGrouped,
            LayerBackend::Im2col,
        ] {
            assert!(
                wino_probe::BACKEND_NAMES.contains(&b.name()),
                "{:?} serializes to unknown name {}",
                b,
                b.name()
            );
        }
        let reasons = [
            FallbackReason::JitUnavailable(PlanError::RankTooHigh { rank: 9 }),
            FallbackReason::PlanFailed(PlanError::RankTooHigh { rank: 9 }),
            FallbackReason::NumericGuard(NumericError { stage: "output", index: 0 }),
            FallbackReason::SentinelTrip(SentinelError { unit: 0, rel_err: 1.0, bound: 0.5 }),
            FallbackReason::Dilated,
            FallbackReason::GroupTooNarrow { c_per_group: 1 },
            FallbackReason::Memory { bytes: 4096 },
        ];
        for r in &reasons {
            assert!(
                wino_probe::FALLBACK_CODES.contains(&r.code()),
                "{r:?} serializes to unknown code {}",
                r.code()
            );
        }
    }

    fn kernels_for(net: &Network, seed: usize) -> Vec<BlockedKernels> {
        net.layers()
            .iter()
            .map(|l| {
                let s = l.plan.shape();
                let k = SimpleKernels::from_fn(s.out_channels, s.in_channels, &s.kernel_dims, |co, ci, xy| {
                    ((co * 7 + ci * 3 + xy.iter().sum::<usize>() + seed) % 13) as f32 * 0.05 - 0.3
                });
                BlockedKernels::from_simple(&k).unwrap()
            })
            .collect()
    }

    #[test]
    fn steady_state_run_allocates_one_output_per_layer() {
        // The serving hot path relies on this: once the scratch arena
        // and memoised transforms are resident, a repeat forward pass
        // allocates exactly the per-layer output images and nothing
        // else (no scratch regrow, no hidden temporaries).
        let specs = vec![LayerSpec::same(32, 2, 3, 2), LayerSpec::same(16, 2, 3, 2)];
        let mut net = Network::new(1, 16, &[12, 12], &specs, ConvOptions::default(), 1).unwrap();
        let img = SimpleImage::from_fn(1, 16, &[12, 12], |_, c, xy| {
            ((c + xy[0] * 3 + xy[1]) % 11) as f32 * 0.1 - 0.5
        });
        let input = BlockedImage::from_simple(&img).unwrap();
        let kernels = kernels_for(&net, 0);
        let policy = FallbackPolicy::default();
        net.run_net(&input, &kernels, &SerialExecutor, &policy).unwrap();
        for round in 0..3 {
            let before = wino_simd::thread_alloc_calls();
            net.run_net(&input, &kernels, &SerialExecutor, &policy).unwrap();
            let delta = wino_simd::thread_alloc_calls() - before;
            assert_eq!(delta, 2, "round {round}: expected one output per layer");
        }
    }

    #[test]
    fn footprint_predicts_observed_bytes_within_ten_percent() {
        // The end-to-end accounting gate: the analytic model must price
        // a whole cold start — plan (scratch seeding), kernel
        // memoisation, one forward (per-layer outputs) — within 10% of
        // what the allocator actually handed out. Everything runs on
        // this thread (serial executor), so the per-thread byte tally
        // is exact and immune to concurrent tests.
        let specs = vec![LayerSpec::same(32, 2, 3, 2), LayerSpec::same(16, 2, 3, 4)];
        let img = SimpleImage::from_fn(1, 16, &[12, 12], |_, c, xy| {
            ((c + xy[0] * 3 + xy[1]) % 11) as f32 * 0.1 - 0.5
        });
        let input = BlockedImage::from_simple(&img).unwrap();

        let before = wino_simd::thread_alloc_bytes();
        let mut net =
            Network::new(1, 16, &[12, 12], &specs, ConvOptions::default(), 1).unwrap();
        let kernels = kernels_for(&net, 3);
        let kernel_bytes: usize = kernels.iter().map(|k| k.as_slice().len() * 4).sum();
        let fx = net.prepare_kernels(&kernels, &SerialExecutor).unwrap();
        let _out = net.forward_fx(&input, &fx, &SerialExecutor).unwrap();
        // The raw kernel tensors are inputs, not part of the plan's
        // footprint — subtract them from the observation.
        let observed =
            (wino_simd::thread_alloc_bytes() - before) as usize - kernel_bytes;

        let modeled = net.footprint(1).total();
        let ratio = observed as f64 / modeled as f64;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "modeled {modeled} vs observed {observed} bytes (ratio {ratio:.3})"
        );
    }

    #[test]
    fn two_layer_net_matches_manual_chaining() {
        let specs = vec![LayerSpec::same(32, 2, 3, 2), LayerSpec::same(16, 2, 3, 2)];
        let mut net =
            Network::new(1, 16, &[12, 12], &specs, ConvOptions::default(), 1).unwrap();
        assert_eq!(net.num_layers(), 2);
        let img = SimpleImage::from_fn(1, 16, &[12, 12], |_, c, xy| {
            ((c + xy[0] * 3 + xy[1]) % 11) as f32 * 0.1 - 0.5
        });
        let input = BlockedImage::from_simple(&img).unwrap();
        let kernels = kernels_for(&net, 0);
        let out = net.forward(&input, &kernels, &SerialExecutor).unwrap();

        // Manual chaining with fresh plans and scratches.
        let s1 = ConvShape::new(1, 16, 32, &[12, 12], &[3, 3], &[1, 1]).unwrap();
        let p1 = WinogradLayer::new(s1.clone(), &[2, 2], ConvOptions::default()).unwrap();
        let s2 = ConvShape::new(1, 32, 16, &[12, 12], &[3, 3], &[1, 1]).unwrap();
        let p2 = WinogradLayer::new(s2, &[2, 2], ConvOptions::default()).unwrap();
        let mut sc1 = Scratch::new(&p1, 1);
        let mut sc2 = Scratch::new(&p2, 1);
        let mut a1 = p1.new_output().unwrap();
        p1.forward(&input, &kernels[0], &mut a1, &mut sc1, &SerialExecutor).unwrap();
        for v in a1.as_mut_slice() {
            *v = v.max(0.0);
        }
        let mut a2 = p2.new_output().unwrap();
        p2.forward(&a1, &kernels[1], &mut a2, &mut sc2, &SerialExecutor).unwrap();
        for v in a2.as_mut_slice() {
            *v = v.max(0.0);
        }
        assert_eq!(out.as_slice(), a2.as_slice());
    }

    #[test]
    fn fx_mode_matches_training_mode() {
        let specs = vec![LayerSpec::same(16, 2, 3, 4), LayerSpec::same(16, 2, 3, 4)];
        let mut net = Network::new(1, 16, &[14, 14], &specs, ConvOptions::default(), 1).unwrap();
        let img = SimpleImage::from_fn(1, 16, &[14, 14], |_, c, xy| (c + xy[0] + xy[1]) as f32 * 0.02);
        let input = BlockedImage::from_simple(&img).unwrap();
        let kernels = kernels_for(&net, 5);
        let train = net.forward(&input, &kernels, &SerialExecutor).unwrap();
        let tks = net.prepare_kernels(&kernels, &SerialExecutor).unwrap();
        let fx = net.forward_fx(&input, &tks, &SerialExecutor).unwrap();
        assert_eq!(train.as_slice(), fx.as_slice());
    }

    #[test]
    fn pipelined_network_matches_default_schedule() {
        // The whole network runs under the superblock pipeline — each
        // layer collapses to one stage fork–join — and must match the
        // monolithic schedule bitwise, in training and FX mode alike.
        let specs = vec![LayerSpec::same(32, 2, 3, 4), LayerSpec::same(16, 2, 3, 2)];
        let img = SimpleImage::from_fn(1, 16, &[12, 12], |_, c, xy| {
            ((c + xy[0] * 5 + xy[1]) % 9) as f32 * 0.07 - 0.3
        });
        let input = BlockedImage::from_simple(&img).unwrap();

        let mut mono = Network::new(1, 16, &[12, 12], &specs, ConvOptions::default(), 1).unwrap();
        let kernels = kernels_for(&mono, 3);
        let want = mono.forward(&input, &kernels, &SerialExecutor).unwrap();

        let opts = ConvOptions { schedule: crate::Schedule::Pipelined, ..Default::default() };
        let mut pipe = Network::new(1, 16, &[12, 12], &specs, opts, 2).unwrap();
        let pool = wino_sched::StaticExecutor::new(2);
        let got = pipe.forward(&input, &kernels, &pool).unwrap();
        assert_eq!(got.as_slice(), want.as_slice());

        let tks = pipe.prepare_kernels(&kernels, &pool).unwrap();
        let fx = pipe.forward_fx(&input, &tks, &pool).unwrap();
        assert_eq!(fx.as_slice(), want.as_slice());
    }

    #[test]
    fn valid_padding_shrinks_through_layers() {
        let specs = vec![
            LayerSpec {
                out_channels: 16,
                kernel: vec![3, 3],
                padding: vec![0, 0],
                m: vec![2, 2],
                activation: Activation::None,
            };
            3
        ];
        let mut net = Network::new(1, 16, &[16, 16], &specs, ConvOptions::default(), 1).unwrap();
        let img = SimpleImage::from_fn(1, 16, &[16, 16], |_, c, xy| (c + xy[0]) as f32 * 0.01);
        let input = BlockedImage::from_simple(&img).unwrap();
        let kernels = kernels_for(&net, 9);
        let out = net.forward(&input, &kernels, &SerialExecutor).unwrap();
        assert_eq!(out.dims, vec![10, 10]); // 16 -> 14 -> 12 -> 10
    }

    #[test]
    fn wider_executor_than_planned_regrows_scratch() {
        // Regression: Network planned with 1 thread must still run on a
        // 4-slot executor (scratch thread slots regrow on demand).
        let specs = vec![LayerSpec::same(16, 2, 3, 2)];
        let mut net = Network::new(1, 16, &[10, 10], &specs, ConvOptions::default(), 1).unwrap();
        let img = SimpleImage::from_fn(1, 16, &[10, 10], |_, c, xy| (c + xy[0]) as f32 * 0.02);
        let input = BlockedImage::from_simple(&img).unwrap();
        let kernels = kernels_for(&net, 4);
        let serial = net.forward(&input, &kernels, &SerialExecutor).unwrap();
        let pool = wino_sched::StaticExecutor::new(4);
        let parallel = net.forward(&input, &kernels, &pool).unwrap();
        assert_eq!(serial.as_slice(), parallel.as_slice());
    }

    #[test]
    fn repeated_forwards_are_deterministic() {
        let specs = vec![LayerSpec::same(16, 2, 3, 2)];
        let mut net = Network::new(2, 16, &[10, 10], &specs, ConvOptions::default(), 1).unwrap();
        let img = SimpleImage::from_fn(2, 16, &[10, 10], |b, c, xy| (b + c + xy[1]) as f32 * 0.03);
        let input = BlockedImage::from_simple(&img).unwrap();
        let kernels = kernels_for(&net, 2);
        let a = net.forward(&input, &kernels, &SerialExecutor).unwrap();
        let b = net.forward(&input, &kernels, &SerialExecutor).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn layer_count_mismatch_is_typed() {
        let specs = vec![LayerSpec::same(16, 2, 3, 2)];
        let mut net = Network::new(1, 16, &[10, 10], &specs, ConvOptions::default(), 1).unwrap();
        let img = SimpleImage::from_fn(1, 16, &[10, 10], |_, c, xy| (c + xy[0]) as f32 * 0.02);
        let input = BlockedImage::from_simple(&img).unwrap();
        let err = net.forward(&input, &[], &SerialExecutor).unwrap_err();
        assert!(matches!(err, WinoError::LayerCount { expected: 1, got: 0 }));
        let err = net.run_net(&input, &[], &SerialExecutor, &FallbackPolicy::default()).unwrap_err();
        assert!(matches!(err, WinoError::LayerCount { expected: 1, got: 0 }));
    }

    #[test]
    fn clean_net_reports_winograd_backend() {
        let specs = vec![LayerSpec::same(16, 2, 3, 2), LayerSpec::same(16, 2, 3, 2)];
        let mut net =
            Network::with_policy(1, 16, &[10, 10], &specs, ConvOptions::default(), 1, &FallbackPolicy::default())
                .unwrap();
        let img = SimpleImage::from_fn(1, 16, &[10, 10], |_, c, xy| (c + xy[1]) as f32 * 0.02);
        let input = BlockedImage::from_simple(&img).unwrap();
        let kernels = kernels_for(&net, 3);
        let (_, reports) =
            net.run_net(&input, &kernels, &SerialExecutor, &FallbackPolicy::default()).unwrap();
        assert_eq!(reports.len(), 2);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.layer, i);
            assert_eq!(r.backend, LayerBackend::WinogradMono);
            assert!(r.fallback.is_none());
        }
    }

    #[test]
    fn unplannable_layer_degrades_to_im2col() {
        // m = 40 on a 10×10 output is BadTileSize: strict planning fails…
        let specs = vec![LayerSpec {
            out_channels: 16,
            kernel: vec![3, 3],
            padding: vec![1, 1],
            m: vec![40, 40],
            activation: Activation::Relu,
        }];
        assert!(matches!(
            Network::new(1, 16, &[10, 10], &specs, ConvOptions::default(), 1),
            Err(PlanError::BadTileSize { .. })
        ));

        // …while the permissive policy plans the layer as im2col and the
        // result matches a well-planned Winograd net within 1e-4.
        let mut net = Network::with_policy(
            1,
            16,
            &[10, 10],
            &specs,
            ConvOptions::default(),
            1,
            &FallbackPolicy::default(),
        )
        .unwrap();
        assert!(net.layers()[0].plan.winograd().is_none());
        assert!(matches!(
            net.layers()[0].planned_fallback,
            Some(FallbackReason::PlanFailed(PlanError::BadTileSize { .. }))
        ));
        assert_eq!(net.scratch_bytes(), 0); // no Winograd layer, no scratch

        let img = SimpleImage::from_fn(1, 16, &[10, 10], |_, c, xy| {
            ((c + xy[0] * 2 + xy[1]) % 9) as f32 * 0.07 - 0.3
        });
        let input = BlockedImage::from_simple(&img).unwrap();
        let kernels = kernels_for(&net, 6);
        let (out, reports) =
            net.run_net(&input, &kernels, &SerialExecutor, &FallbackPolicy::default()).unwrap();
        assert_eq!(reports[0].backend, LayerBackend::Im2col);
        assert!(matches!(reports[0].fallback, Some(FallbackReason::PlanFailed(_))));

        let good = vec![LayerSpec { m: vec![2, 2], ..specs[0].clone() }];
        let mut wino = Network::new(1, 16, &[10, 10], &good, ConvOptions::default(), 1).unwrap();
        let reference = wino.forward(&input, &kernels, &SerialExecutor).unwrap();
        assert_eq!(out.as_slice().len(), reference.as_slice().len());
        for (a, b) in out.as_slice().iter().zip(reference.as_slice()) {
            assert!((a - b).abs() < 1e-4, "im2col fallback diverged: {a} vs {b}");
        }
    }

    #[test]
    fn non_finite_input_is_an_error_not_a_silent_rescue() {
        // A NaN in the *layer input* trips the output guard, but the
        // im2col rescue reproduces it — the second guard trip must
        // surface as an error instead of ReLU mapping the NaN to 0.0.
        let specs = vec![LayerSpec::same(16, 2, 3, 2)];
        let mut net = Network::new(1, 16, &[10, 10], &specs, ConvOptions::default(), 1).unwrap();
        let img = SimpleImage::from_fn(1, 16, &[10, 10], |_, c, xy| {
            if c == 3 && xy == [5, 5] {
                f32::NAN
            } else {
                (c + xy[0]) as f32 * 0.02
            }
        });
        let input = BlockedImage::from_simple(&img).unwrap();
        let kernels = kernels_for(&net, 4);
        let err = net
            .run_net(&input, &kernels, &SerialExecutor, &FallbackPolicy::default())
            .expect_err("a NaN input must not be silently absorbed");
        match err {
            WinoError::Numeric(e) => assert_eq!(e.stage, "im2col rescue output"),
            other => panic!("expected Numeric, got {other:?}"),
        }
    }

    #[test]
    fn im2col_layer_rejects_kernel_memoisation() {
        let specs = vec![LayerSpec {
            out_channels: 16,
            kernel: vec![3, 3],
            padding: vec![1, 1],
            m: vec![40, 40],
            activation: Activation::None,
        }];
        let mut net = Network::with_policy(
            1,
            16,
            &[10, 10],
            &specs,
            ConvOptions::default(),
            1,
            &FallbackPolicy::default(),
        )
        .unwrap();
        let kernels = kernels_for(&net, 1);
        assert!(matches!(
            net.prepare_kernels(&kernels, &SerialExecutor),
            Err(WinoError::Unsupported(_))
        ));
    }

    #[test]
    fn run_layer_executes_one_layer() {
        let specs = vec![LayerSpec::same(16, 2, 3, 2), LayerSpec::same(16, 2, 3, 2)];
        let mut net = Network::new(1, 16, &[10, 10], &specs, ConvOptions::default(), 1).unwrap();
        let img = SimpleImage::from_fn(1, 16, &[10, 10], |_, c, xy| (c + xy[0]) as f32 * 0.02);
        let input = BlockedImage::from_simple(&img).unwrap();
        let kernels = kernels_for(&net, 8);
        let policy = FallbackPolicy::default();
        let (a1, r1) = net.run_layer(0, &input, &kernels[0], &SerialExecutor, &policy).unwrap();
        let (a2, r2) = net.run_layer(1, &a1, &kernels[1], &SerialExecutor, &policy).unwrap();
        assert_eq!(r1.layer, 0);
        assert_eq!(r2.layer, 1);
        let full = net.forward(&input, &kernels, &SerialExecutor).unwrap();
        assert_eq!(a2.as_slice(), full.as_slice());
        // Out-of-range index is a typed error, not a panic.
        assert!(net.run_layer(9, &input, &kernels[0], &SerialExecutor, &policy).is_err());
    }

    /// One oracle layer: f64 direct conv over the full geometry, then
    /// (optionally) ReLU — the ground truth the dispatch-backed network
    /// paths are compared against.
    fn oracle_layer(
        img: &SimpleImage,
        ker: &BlockedKernels,
        padding: &[usize],
        geo: &wino_tensor::ConvGeometry,
        relu: bool,
    ) -> SimpleImage {
        let mut out = wino_baseline::direct_f64_geo(img, &ker.to_simple(), padding, geo);
        if relu {
            for v in &mut out.data {
                *v = v.max(0.0);
            }
        }
        out
    }

    fn assert_close(got: &BlockedImage, want: &SimpleImage, tol: f32, what: &str) {
        let got = got.to_simple();
        assert_eq!(got.dims, want.dims, "{what}: dims");
        assert_eq!(got.channels, want.channels, "{what}: channels");
        for (i, (a, b)) in got.data.iter().zip(&want.data).enumerate() {
            assert!((a - b).abs() <= tol, "{what}: [{i}] {a} vs {b}");
        }
    }

    #[test]
    fn strided_network_chains_geometry_and_reports_polyphase() {
        // Two stride-2 layers: 12×12 → 6×6 → 3×3, every layer executed by
        // the polyphase route and reported as such.
        let specs = vec![LayerSpec::same(16, 2, 3, 2), LayerSpec::same(16, 2, 3, 2)];
        let opts = ConvOptions::default().with_stride(&[2, 2]);
        let mut net =
            Network::with_policy(1, 16, &[12, 12], &specs, opts, 1, &FallbackPolicy::default())
                .unwrap();
        assert_eq!(net.layers()[0].plan.out_dims(), vec![6, 6]);
        assert_eq!(net.layers()[1].plan.out_dims(), vec![3, 3]);

        let img = SimpleImage::from_fn(1, 16, &[12, 12], |_, c, xy| {
            ((c + xy[0] * 3 + xy[1]) % 11) as f32 * 0.1 - 0.5
        });
        let input = BlockedImage::from_simple(&img).unwrap();
        let kernels = kernels_for(&net, 7);
        let (out, reports) =
            net.run_net(&input, &kernels, &SerialExecutor, &FallbackPolicy::default()).unwrap();
        for r in &reports {
            assert_eq!(r.backend, LayerBackend::WinogradPoly);
            assert!(r.fallback.is_none(), "polyphase is a first-class route, not a fallback");
        }
        assert_eq!(out.dims, vec![3, 3]);

        let geo = opts.geometry(2);
        let a1 = oracle_layer(&img, &kernels[0], &[1, 1], &geo, true);
        let want = oracle_layer(&a1, &kernels[1], &[1, 1], &geo, true);
        assert_close(&out, &want, 1e-3, "strided net");
    }

    #[test]
    fn grouped_network_reports_grouped_backend() {
        // C = C' = 32, groups = 2: each group is a 16→16 sub-conv — wide
        // enough for the blocked layouts, so the grouped Winograd route
        // runs (and reports) rather than falling back.
        let specs = vec![LayerSpec::same(32, 2, 3, 2)];
        let opts = ConvOptions::default().with_groups(2);
        let mut net =
            Network::with_policy(1, 32, &[10, 10], &specs, opts, 1, &FallbackPolicy::default())
                .unwrap();
        let dp = net.layers()[0].plan.dispatch().expect("grouped layer routes via dispatch");
        assert!(matches!(dp.route, crate::dispatch::Route::Grouped { .. }));
        assert_eq!(dp.kernel_in_channels(), 16);

        let img = SimpleImage::from_fn(1, 32, &[10, 10], |_, c, xy| {
            ((c * 2 + xy[0] + xy[1] * 3) % 13) as f32 * 0.06 - 0.4
        });
        let input = BlockedImage::from_simple(&img).unwrap();
        // Grouped kernels carry C/G input channels; the dense helper
        // above would build the wrong shape.
        let k = SimpleKernels::from_fn(32, 16, &[3, 3], |co, ci, xy| {
            ((co * 5 + ci * 3 + xy[0] + xy[1]) % 11) as f32 * 0.05 - 0.25
        });
        let kernels = vec![BlockedKernels::from_simple(&k).unwrap()];
        let (out, reports) =
            net.run_net(&input, &kernels, &SerialExecutor, &FallbackPolicy::default()).unwrap();
        assert_eq!(reports[0].backend, LayerBackend::WinogradGrouped);
        assert!(reports[0].fallback.is_none());

        let want = oracle_layer(&img, &kernels[0], &[1, 1], &opts.geometry(2), true);
        assert_close(&out, &want, 1e-3, "grouped net");

        // Memoised kernel transforms are a dense-Winograd feature; a
        // dispatch-planned layer declines them with a typed error.
        assert!(matches!(
            net.prepare_kernels(&kernels, &SerialExecutor),
            Err(WinoError::Unsupported(_))
        ));
    }

    #[test]
    fn dilated_network_takes_the_designed_im2col_route() {
        // Dilation 2 with "same" padding (effective kernel 5, pad 2).
        // The designed route is im2col with a typed provenance — even
        // under the strict policy `Network::new` uses, because this is
        // routing, not degradation.
        let specs = vec![LayerSpec {
            out_channels: 16,
            kernel: vec![3, 3],
            padding: vec![2, 2],
            m: vec![2, 2],
            activation: Activation::Relu,
        }];
        let opts = ConvOptions::default().with_dilation(&[2, 2]);
        let mut net = Network::new(1, 16, &[12, 12], &specs, opts, 1).unwrap();
        assert_eq!(net.layers()[0].plan.out_dims(), vec![12, 12]);
        assert!(matches!(net.layers()[0].planned_fallback, Some(FallbackReason::Dilated)));

        let img = SimpleImage::from_fn(1, 16, &[12, 12], |_, c, xy| {
            ((c + xy[0] * 2 + xy[1]) % 9) as f32 * 0.08 - 0.3
        });
        let input = BlockedImage::from_simple(&img).unwrap();
        let kernels = kernels_for(&net, 11);
        let (out, reports) =
            net.run_net(&input, &kernels, &SerialExecutor, &FallbackPolicy::strict()).unwrap();
        assert_eq!(reports[0].backend, LayerBackend::Im2col);
        assert!(matches!(reports[0].fallback, Some(FallbackReason::Dilated)));

        let want = oracle_layer(&img, &kernels[0], &[2, 2], &opts.geometry(2), true);
        assert_close(&out, &want, 1e-4, "dilated net");
    }

    #[test]
    fn depthwise_network_reports_group_too_narrow() {
        // groups == C: one input channel per group — far below the S=16
        // channel block, so the dispatch layer routes to im2col and says
        // exactly why.
        let specs = vec![LayerSpec::same(16, 2, 3, 2)];
        let opts = ConvOptions::default().with_groups(16);
        let mut net = Network::new(1, 16, &[10, 10], &specs, opts, 1).unwrap();
        assert!(matches!(
            net.layers()[0].planned_fallback,
            Some(FallbackReason::GroupTooNarrow { c_per_group: 1 })
        ));

        let img = SimpleImage::from_fn(1, 16, &[10, 10], |_, c, xy| {
            ((c * 3 + xy[0] + xy[1]) % 7) as f32 * 0.09 - 0.3
        });
        let input = BlockedImage::from_simple(&img).unwrap();
        let k = SimpleKernels::from_fn(16, 1, &[3, 3], |co, _, xy| {
            ((co + xy[0] * 2 + xy[1]) % 5) as f32 * 0.1 - 0.2
        });
        let kernels = vec![BlockedKernels::from_simple(&k).unwrap()];
        let (out, reports) =
            net.run_net(&input, &kernels, &SerialExecutor, &FallbackPolicy::strict()).unwrap();
        assert_eq!(reports[0].backend, LayerBackend::Im2col);
        assert!(matches!(
            reports[0].fallback,
            Some(FallbackReason::GroupTooNarrow { c_per_group: 1 })
        ));

        let want = oracle_layer(&img, &kernels[0], &[1, 1], &opts.geometry(2), true);
        assert_close(&out, &want, 1e-4, "depthwise net");
    }
}
