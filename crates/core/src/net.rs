//! Multi-layer network execution with shared auxiliary memory (§4.4).
//!
//! "While the size of the auxiliary buffer can be a couple of times larger
//! than the memory required for storing the computed images, the same
//! memory buffer can be reused for the computation of each layer." —
//! [`Network`] realises that: it plans a sequence of convolutional layers
//! (each with its own `F(m, r)`), allocates **one** [`Scratch`] sized to
//! the maximum requirement, and runs the whole net through it. Layer
//! outputs stay in the blocked layout, so no reshuffling happens between
//! layers (§4.1).

use wino_sched::Executor;
use wino_tensor::{BlockedImage, BlockedKernels, BlockedMatrices, ConvShape};

use crate::conv::TransformedKernels;
use crate::plan::{ConvOptions, PlanError, Scratch, WinogradLayer};

/// Pointwise activation applied between layers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Activation {
    #[default]
    None,
    Relu,
}

impl Activation {
    fn apply(self, img: &mut BlockedImage) {
        if self == Activation::Relu {
            for v in img.as_mut_slice() {
                *v = v.max(0.0);
            }
        }
    }
}

/// One planned layer of a [`Network`].
pub struct NetLayer {
    pub plan: WinogradLayer,
    pub activation: Activation,
}

/// A sequential stack of Winograd convolution layers sharing one scratch
/// allocation.
pub struct Network {
    layers: Vec<NetLayer>,
    /// One scratch sized to the maximum over all layers (re-created only
    /// when a layer's geometry requires different buffer shapes — the
    /// paper's single-arena reuse, expressed with typed buffers).
    scratch: Scratch,
}

impl Network {
    /// Plan a network from `(out_channels, kernel_dims, padding, m,
    /// activation)` layer specs applied successively to an input of shape
    /// `(batch, in_channels, image_dims)`.
    pub fn new(
        batch: usize,
        in_channels: usize,
        image_dims: &[usize],
        specs: &[LayerSpec],
        opts: ConvOptions,
        threads: usize,
    ) -> Result<Network, PlanError> {
        assert!(!specs.is_empty(), "network needs at least one layer");
        let mut layers = Vec::with_capacity(specs.len());
        let mut c = in_channels;
        let mut dims = image_dims.to_vec();
        for spec in specs {
            let shape = ConvShape::new(batch, c, spec.out_channels, &dims, &spec.kernel, &spec.padding)?;
            let plan = WinogradLayer::new(shape.clone(), &spec.m, opts)?;
            c = spec.out_channels;
            dims = shape.out_dims();
            layers.push(NetLayer { plan, activation: spec.activation });
        }

        // One scratch seeded with the largest layer's requirement.
        let scratch = Self::max_scratch(&layers, threads);
        Ok(Network { layers, scratch })
    }

    fn max_scratch(layers: &[NetLayer], threads: usize) -> Scratch {
        // Build per-layer scratches lazily and keep the largest of each
        // component. Simpler and still exact: find the layer maximising
        // each component size, then allocate a scratch that fits all.
        let mut best = Scratch::new(&layers[0].plan, threads);
        for l in &layers[1..] {
            let s = Scratch::new(&l.plan, threads);
            if s.bytes() > best.bytes() {
                best = s;
            }
        }
        // The per-component shapes differ between layers, so Scratch is
        // re-created per layer in `forward` when shapes mismatch; `best`
        // seeds the reuse. (The paper's artifact does the same: one arena,
        // per-layer views.)
        best
    }

    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    pub fn layers(&self) -> &[NetLayer] {
        &self.layers
    }

    /// Auxiliary bytes currently held.
    pub fn scratch_bytes(&self) -> usize {
        self.scratch.bytes()
    }

    /// Memoise all kernel transforms for inference (§4.2 "Inference
    /// only"); pass the result to [`Self::forward_fx`].
    pub fn prepare_kernels(
        &mut self,
        kernels: &[BlockedKernels],
        exec: &dyn Executor,
    ) -> Result<Vec<TransformedKernels>, PlanError> {
        assert_eq!(kernels.len(), self.layers.len());
        let layers = std::mem::take(&mut self.layers);
        let mut out = Vec::with_capacity(kernels.len());
        for (l, k) in layers.iter().zip(kernels) {
            self.ensure_scratch(l, exec.threads());
            out.push(l.plan.prepare_kernels(k, &mut self.scratch, exec));
        }
        self.layers = layers;
        Ok(out)
    }

    fn ensure_scratch(&mut self, layer: &NetLayer, threads: usize) {
        let p = &layer.plan;
        let need_u = |m: &BlockedMatrices, t, rows, cols, rb, cb| -> bool {
            m.t_count() == t && m.rows() == rows && m.cols() == cols && m.rb() == rb && m.cb() == cb
        };
        let b = p.block;
        let ok = need_u(&self.scratch.u, p.t_vol(), p.rows(), p.shape.in_channels, b.n_blk, b.c_blk)
            && need_u(&self.scratch.v, p.t_vol(), p.shape.in_channels, p.shape.out_channels, b.c_blk, b.cp_blk)
            && self.scratch.y.n_tiles() == p.n_tiles()
            && self.scratch.y.batch() == p.shape.batch
            && self.scratch.y.channel_groups() == p.shape.out_channels / wino_simd::S
            && self.scratch.y.t_vol() == p.t_vol()
            && self.scratch.thread_slots() >= threads;
        if !ok {
            self.scratch = Scratch::new(p, threads);
        }
    }

    /// Run the network (training mode: kernels transformed every call).
    /// Returns the final activation.
    pub fn forward(
        &mut self,
        input: &BlockedImage,
        kernels: &[BlockedKernels],
        exec: &dyn Executor,
    ) -> BlockedImage {
        assert_eq!(kernels.len(), self.layers.len());
        self.run(input, exec, |layer, inp, out, scratch, exec, i| {
            layer.plan.forward(inp, &kernels[i], out, scratch, exec);
        })
    }

    /// Run the network in inference mode with memoised kernel transforms.
    pub fn forward_fx(
        &mut self,
        input: &BlockedImage,
        kernels: &[TransformedKernels],
        exec: &dyn Executor,
    ) -> BlockedImage {
        assert_eq!(kernels.len(), self.layers.len());
        self.run(input, exec, |layer, inp, out, scratch, exec, i| {
            layer.plan.forward_fx(inp, &kernels[i], out, scratch, exec);
        })
    }

    fn run(
        &mut self,
        input: &BlockedImage,
        exec: &dyn Executor,
        mut step: impl FnMut(&NetLayer, &BlockedImage, &mut BlockedImage, &mut Scratch, &dyn Executor, usize),
    ) -> BlockedImage {
        // Move the layer list out so `self.scratch` can be borrowed
        // mutably while iterating; restored before returning.
        let layers = std::mem::take(&mut self.layers);
        let mut current: Option<BlockedImage> = None;
        for (i, layer) in layers.iter().enumerate() {
            self.ensure_scratch(layer, exec.threads());
            let mut out = layer.plan.new_output().expect("planned shapes are valid");
            {
                let inp = current.as_ref().unwrap_or(input);
                step(layer, inp, &mut out, &mut self.scratch, exec, i);
            }
            layer.activation.apply(&mut out);
            current = Some(out);
        }
        self.layers = layers;
        current.expect("at least one layer")
    }
}

/// Specification of one network layer.
#[derive(Clone, Debug)]
pub struct LayerSpec {
    pub out_channels: usize,
    pub kernel: Vec<usize>,
    pub padding: Vec<usize>,
    /// Winograd output-tile size per dimension.
    pub m: Vec<usize>,
    pub activation: Activation,
}

impl LayerSpec {
    /// A "same"-padded layer with cubic kernels and tiles.
    pub fn same(out_channels: usize, rank: usize, r: usize, m: usize) -> LayerSpec {
        LayerSpec {
            out_channels,
            kernel: vec![r; rank],
            padding: vec![r / 2; rank],
            m: vec![m; rank],
            activation: Activation::Relu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_sched::SerialExecutor;
    use wino_tensor::{SimpleImage, SimpleKernels};

    fn kernels_for(net: &Network, seed: usize) -> Vec<BlockedKernels> {
        net.layers()
            .iter()
            .map(|l| {
                let s = &l.plan.shape;
                let k = SimpleKernels::from_fn(s.out_channels, s.in_channels, &s.kernel_dims, |co, ci, xy| {
                    ((co * 7 + ci * 3 + xy.iter().sum::<usize>() + seed) % 13) as f32 * 0.05 - 0.3
                });
                BlockedKernels::from_simple(&k).unwrap()
            })
            .collect()
    }

    #[test]
    fn two_layer_net_matches_manual_chaining() {
        let specs = vec![LayerSpec::same(32, 2, 3, 2), LayerSpec::same(16, 2, 3, 2)];
        let mut net =
            Network::new(1, 16, &[12, 12], &specs, ConvOptions::default(), 1).unwrap();
        assert_eq!(net.num_layers(), 2);
        let img = SimpleImage::from_fn(1, 16, &[12, 12], |_, c, xy| {
            ((c + xy[0] * 3 + xy[1]) % 11) as f32 * 0.1 - 0.5
        });
        let input = BlockedImage::from_simple(&img).unwrap();
        let kernels = kernels_for(&net, 0);
        let out = net.forward(&input, &kernels, &SerialExecutor);

        // Manual chaining with fresh plans and scratches.
        let s1 = ConvShape::new(1, 16, 32, &[12, 12], &[3, 3], &[1, 1]).unwrap();
        let p1 = WinogradLayer::new(s1.clone(), &[2, 2], ConvOptions::default()).unwrap();
        let s2 = ConvShape::new(1, 32, 16, &[12, 12], &[3, 3], &[1, 1]).unwrap();
        let p2 = WinogradLayer::new(s2, &[2, 2], ConvOptions::default()).unwrap();
        let mut sc1 = Scratch::new(&p1, 1);
        let mut sc2 = Scratch::new(&p2, 1);
        let mut a1 = p1.new_output().unwrap();
        p1.forward(&input, &kernels[0], &mut a1, &mut sc1, &SerialExecutor);
        for v in a1.as_mut_slice() {
            *v = v.max(0.0);
        }
        let mut a2 = p2.new_output().unwrap();
        p2.forward(&a1, &kernels[1], &mut a2, &mut sc2, &SerialExecutor);
        for v in a2.as_mut_slice() {
            *v = v.max(0.0);
        }
        assert_eq!(out.as_slice(), a2.as_slice());
    }

    #[test]
    fn fx_mode_matches_training_mode() {
        let specs = vec![LayerSpec::same(16, 2, 3, 4), LayerSpec::same(16, 2, 3, 4)];
        let mut net = Network::new(1, 16, &[14, 14], &specs, ConvOptions::default(), 1).unwrap();
        let img = SimpleImage::from_fn(1, 16, &[14, 14], |_, c, xy| (c + xy[0] + xy[1]) as f32 * 0.02);
        let input = BlockedImage::from_simple(&img).unwrap();
        let kernels = kernels_for(&net, 5);
        let train = net.forward(&input, &kernels, &SerialExecutor);
        let tks = net.prepare_kernels(&kernels, &SerialExecutor).unwrap();
        let fx = net.forward_fx(&input, &tks, &SerialExecutor);
        assert_eq!(train.as_slice(), fx.as_slice());
    }

    #[test]
    fn valid_padding_shrinks_through_layers() {
        let specs = vec![
            LayerSpec {
                out_channels: 16,
                kernel: vec![3, 3],
                padding: vec![0, 0],
                m: vec![2, 2],
                activation: Activation::None,
            };
            3
        ];
        let mut net = Network::new(1, 16, &[16, 16], &specs, ConvOptions::default(), 1).unwrap();
        let img = SimpleImage::from_fn(1, 16, &[16, 16], |_, c, xy| (c + xy[0]) as f32 * 0.01);
        let input = BlockedImage::from_simple(&img).unwrap();
        let kernels = kernels_for(&net, 9);
        let out = net.forward(&input, &kernels, &SerialExecutor);
        assert_eq!(out.dims, vec![10, 10]); // 16 -> 14 -> 12 -> 10
    }

    #[test]
    fn wider_executor_than_planned_regrows_scratch() {
        // Regression: Network planned with 1 thread must still run on a
        // 4-slot executor (scratch thread slots regrow on demand).
        let specs = vec![LayerSpec::same(16, 2, 3, 2)];
        let mut net = Network::new(1, 16, &[10, 10], &specs, ConvOptions::default(), 1).unwrap();
        let img = SimpleImage::from_fn(1, 16, &[10, 10], |_, c, xy| (c + xy[0]) as f32 * 0.02);
        let input = BlockedImage::from_simple(&img).unwrap();
        let kernels = kernels_for(&net, 4);
        let serial = net.forward(&input, &kernels, &SerialExecutor);
        let pool = wino_sched::StaticExecutor::new(4);
        let parallel = net.forward(&input, &kernels, &pool);
        assert_eq!(serial.as_slice(), parallel.as_slice());
    }

    #[test]
    fn repeated_forwards_are_deterministic() {
        let specs = vec![LayerSpec::same(16, 2, 3, 2)];
        let mut net = Network::new(2, 16, &[10, 10], &specs, ConvOptions::default(), 1).unwrap();
        let img = SimpleImage::from_fn(2, 16, &[10, 10], |b, c, xy| (b + c + xy[1]) as f32 * 0.03);
        let input = BlockedImage::from_simple(&img).unwrap();
        let kernels = kernels_for(&net, 2);
        let a = net.forward(&input, &kernels, &SerialExecutor);
        let b = net.forward(&input, &kernels, &SerialExecutor);
        assert_eq!(a.as_slice(), b.as_slice());
    }
}
