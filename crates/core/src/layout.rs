//! The tile-major transformed-output layout (Table 1, row
//! `I'[b][c'/S][n][t_d][t_h][t_w][c' mod S]`).
//!
//! Stage 2's fused scatter (operation ⑥) writes here so that stage 3 reads
//! each tile's `T` transform values as one contiguous `T·S`-float chunk —
//! "the previous stage has ensured that each transformed output occupies a
//! contiguous chunk of memory" (§4.4).

use wino_simd::{AlignedVec, S};

/// Transformed outputs in tile-major order: `[B][C'/S][N][T][S]`.
#[derive(Debug)]
pub struct TileMajor {
    batch: usize,
    channel_groups: usize,
    n_tiles: usize,
    t_vol: usize,
    data: AlignedVec,
}

impl TileMajor {
    pub fn new(batch: usize, out_channels: usize, n_tiles: usize, t_vol: usize) -> TileMajor {
        let len = Self::elems(batch, out_channels, n_tiles, t_vol);
        // ALLOC: the infallible half of the constructor pair; memory-aware
        // callers route through `try_new` below.
        Self::assemble(batch, out_channels, n_tiles, t_vol, AlignedVec::zeroed(len))
    }

    /// As [`Self::new`], zeroed — and therefore NUMA-placed — through
    /// `exec` (see `wino_tensor::first_touch`).
    pub fn new_first_touch(
        batch: usize,
        out_channels: usize,
        n_tiles: usize,
        t_vol: usize,
        exec: &dyn wino_sched::Executor,
    ) -> TileMajor {
        let len = Self::elems(batch, out_channels, n_tiles, t_vol);
        // ALLOC: infallible first-touch half; `try_new_first_touch` is the
        // accounted path.
        let data = wino_tensor::zeroed_first_touch(len, exec);
        Self::assemble(batch, out_channels, n_tiles, t_vol, data)
    }

    /// Fallible [`Self::new`]: a typed [`wino_simd::AllocError`] instead
    /// of an abort when the allocator refuses the buffer.
    pub fn try_new(
        batch: usize,
        out_channels: usize,
        n_tiles: usize,
        t_vol: usize,
    ) -> Result<TileMajor, wino_simd::AllocError> {
        let len = Self::elems(batch, out_channels, n_tiles, t_vol);
        Ok(Self::assemble(batch, out_channels, n_tiles, t_vol, AlignedVec::try_zeroed(len)?))
    }

    /// Fallible [`Self::new_first_touch`].
    pub fn try_new_first_touch(
        batch: usize,
        out_channels: usize,
        n_tiles: usize,
        t_vol: usize,
        exec: &dyn wino_sched::Executor,
    ) -> Result<TileMajor, wino_simd::AllocError> {
        let len = Self::elems(batch, out_channels, n_tiles, t_vol);
        let data = wino_tensor::try_zeroed_first_touch(len, exec)?;
        Ok(Self::assemble(batch, out_channels, n_tiles, t_vol, data))
    }

    /// Bytes a `new(batch, out_channels, n_tiles, t_vol)` instance
    /// allocates — the analytic side of the memory-footprint model.
    pub fn bytes_for(batch: usize, out_channels: usize, n_tiles: usize, t_vol: usize) -> usize {
        Self::elems(batch, out_channels, n_tiles, t_vol) * std::mem::size_of::<f32>()
    }

    fn elems(batch: usize, out_channels: usize, n_tiles: usize, t_vol: usize) -> usize {
        assert!(out_channels.is_multiple_of(S));
        batch * (out_channels / S) * n_tiles * t_vol * S
    }

    fn assemble(
        batch: usize,
        out_channels: usize,
        n_tiles: usize,
        t_vol: usize,
        data: AlignedVec,
    ) -> TileMajor {
        TileMajor { batch, channel_groups: out_channels / S, n_tiles, t_vol, data }
    }

    pub fn batch(&self) -> usize {
        self.batch
    }

    pub fn channel_groups(&self) -> usize {
        self.channel_groups
    }

    pub fn n_tiles(&self) -> usize {
        self.n_tiles
    }

    pub fn t_vol(&self) -> usize {
        self.t_vol
    }

    pub fn bytes(&self) -> usize {
        self.data.len() * 4
    }

    /// Offset of the vector for `(b, channel-group og, tile n, position t)`.
    #[inline]
    pub fn vec_offset(&self, b: usize, og: usize, n: usize, t: usize) -> usize {
        debug_assert!(
            b < self.batch && og < self.channel_groups && n < self.n_tiles && t < self.t_vol
        );
        (((b * self.channel_groups + og) * self.n_tiles + n) * self.t_vol + t) * S
    }

    /// Distance (in floats) between channel-group `og` and `og + 1` at the
    /// same `(b, n, t)` — the scatter `group_stride` of the micro-kernel.
    #[inline]
    pub fn group_stride(&self) -> usize {
        self.n_tiles * self.t_vol * S
    }

    /// The contiguous `T·S` floats of one tile (stage-3 gather source).
    pub fn tile(&self, b: usize, og: usize, n: usize) -> &[f32] {
        let o = self.vec_offset(b, og, n, 0);
        &self.data[o..o + self.t_vol * S]
    }

    pub fn as_ptr(&self) -> *const f32 {
        self.data.as_ptr()
    }

    pub fn as_mut_ptr(&mut self) -> *mut f32 {
        self.data.as_mut_ptr()
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_are_contiguous() {
        let mut tm = TileMajor::new(2, 32, 5, 36);
        let o = tm.vec_offset(1, 1, 3, 0);
        for t in 0..36 {
            assert_eq!(tm.vec_offset(1, 1, 3, t), o + t * S);
        }
        tm.as_mut_slice()[o] = 5.0;
        assert_eq!(tm.tile(1, 1, 3)[0], 5.0);
        assert_eq!(tm.tile(1, 1, 3).len(), 36 * S);
    }

    #[test]
    fn group_stride_matches_layout() {
        let tm = TileMajor::new(3, 48, 7, 16);
        assert_eq!(
            tm.vec_offset(0, 1, 0, 0) - tm.vec_offset(0, 0, 0, 0),
            tm.group_stride()
        );
        assert_eq!(tm.group_stride(), 7 * 16 * S);
    }

    #[test]
    fn offsets_are_vector_aligned() {
        let tm = TileMajor::new(1, 16, 4, 9);
        for n in 0..4 {
            for t in 0..9 {
                assert_eq!(tm.vec_offset(0, 0, n, t) % S, 0);
            }
        }
        assert_eq!(tm.as_ptr() as usize % 64, 0);
    }

    #[test]
    fn size_accounting() {
        let tm = TileMajor::new(2, 32, 10, 36);
        assert_eq!(tm.bytes(), 2 * 2 * 10 * 36 * 16 * 4);
    }
}
