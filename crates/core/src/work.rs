//! Per-stage operation and traffic models for the observability layer
//! (DESIGN.md §8).
//!
//! [`WinogradLayer::work_model`] predicts, per pipeline stage, how many
//! floating-point operations one forward pass performs and how many bytes
//! it moves under an ideal-cache model (each logical buffer read or
//! written exactly once). `wino-probe` divides measured wall time into
//! these to report per-stage GFLOP/s, arithmetic intensity and a roofline
//! bound.
//!
//! ## Formulas
//!
//! With `ρ = B·N` panel rows, `T = ∏α_d` the tile volume, and
//! `O(P)` the scalar op count of a compiled 1-D transform program `P`
//! ([`wino_transforms::PairedProgram::op_count`], FMA = 2 ops):
//!
//! * **input-transform** — `Bᵀ` is square (`α_d → α_d`), applied along
//!   every dimension of every tile line: `ρ · C · Σ_d (T/α_d) · O(Bᵀ_d)`.
//! * **kernel-transform** — `G` expands `r_d → α_d` in dimension order,
//!   so applications along `d` count already-expanded dims before and
//!   unexpanded dims after: `C·C' · Σ_d (∏_{e<d} α_e · ∏_{e>d} r_e) ·
//!   O(G_d)`.
//! * **elementwise-gemm** — `T` products of `(ρ × C) · (C × C')`:
//!   `2 · T · ρ · C · C'` (logical rows; panel padding does a little
//!   extra real work that the model deliberately ignores).
//! * **output-transform** — `Aᵀ` contracts `α_d → m_d` in dimension
//!   order: `ρ · C' · Σ_d (∏_{e<d} m_e · ∏_{e>d} α_e) · O(Aᵀ_d)`.
//!
//! Byte counts move each buffer once at 4 B/f32: the stage's inputs are
//! read, its outputs written (e.g. elementwise-gemm reads `U` and `V`,
//! writes `Y`). Real caches re-read evicted panels, so measured intensity
//! is an upper bound — which is the correct direction for a roofline.

use wino_probe::{SpanCategory, StageWork, WorkModel};

use crate::plan::WinogradLayer;

const F32_BYTES: u128 = 4;

impl WinogradLayer {
    /// The per-stage operation/traffic model for one forward pass of this
    /// layer (see the module docs for the formulas).
    pub fn work_model(&self) -> WorkModel {
        let rank = self.rank();
        let rows = self.rows() as u128;
        let t_vol = self.t_vol() as u128;
        let c = self.shape.in_channels as u128;
        let cp = self.shape.out_channels as u128;
        let batch = self.shape.batch as u128;
        let alpha = &self.grid.tile_dims;
        let m = &self.grid.m;
        let r = &self.shape.kernel_dims;
        let in_vol: u128 = self.shape.image_dims.iter().map(|&d| d as u128).product();
        let out_vol: u128 = self.shape.out_dims().iter().map(|&d| d as u128).product();
        let r_vol: u128 = r.iter().map(|&d| d as u128).product();

        // Σ_d applications·ops for each transform family.
        let mut bt_ops = 0u128;
        let mut g_ops = 0u128;
        let mut at_ops = 0u128;
        for d in 0..rank {
            let o_bt = self.plans[d].bt.op_count().total() as u128;
            let o_g = self.plans[d].g.op_count().total() as u128;
            let o_at = self.plans[d].at.op_count().total() as u128;
            bt_ops += (t_vol / alpha[d] as u128) * o_bt;
            let mut g_apps = 1u128;
            let mut at_apps = 1u128;
            for e in 0..rank {
                if e < d {
                    g_apps *= alpha[e] as u128;
                    at_apps *= m[e] as u128;
                } else if e > d {
                    g_apps *= r[e] as u128;
                    at_apps *= alpha[e] as u128;
                }
            }
            g_ops += g_apps * o_g;
            at_ops += at_apps * o_at;
        }

        let u_elems = t_vol * rows * c;
        let v_elems = t_vol * c * cp;
        let y_elems = t_vol * rows * cp;

        let mut model = WorkModel::new();
        model.set(
            SpanCategory::InputTransform,
            StageWork {
                flops: rows * c * bt_ops,
                bytes: (batch * c * in_vol + u_elems) * F32_BYTES,
            },
        );
        model.set(
            SpanCategory::KernelTransform,
            StageWork {
                flops: c * cp * g_ops,
                bytes: (c * cp * r_vol + v_elems) * F32_BYTES,
            },
        );
        model.set(
            SpanCategory::ElementwiseGemm,
            StageWork {
                flops: 2 * t_vol * rows * c * cp,
                bytes: (u_elems + v_elems + y_elems) * F32_BYTES,
            },
        );
        model.set(
            SpanCategory::OutputTransform,
            StageWork {
                flops: rows * cp * at_ops,
                bytes: (y_elems + batch * cp * out_vol) * F32_BYTES,
            },
        );
        // The pipelined schedule runs stages 1–3 in one fork–join, so its
        // single span covers all three stage-work entries. Flops are the
        // plain sum; bytes keep the per-stage ideal-cache accounting
        // (image + U in, U+V in / Y out, Y in + image out), which
        // overstates DRAM traffic when superblocks stay L2-resident —
        // again the conservative direction for a roofline.
        model.set(
            SpanCategory::SuperblockPipeline,
            StageWork {
                flops: rows * c * bt_ops + 2 * t_vol * rows * c * cp + rows * cp * at_ops,
                bytes: (batch * c * in_vol
                    + 2 * u_elems
                    + v_elems
                    + 2 * y_elems
                    + batch * cp * out_vol)
                    * F32_BYTES,
            },
        );
        model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ConvOptions;
    use wino_tensor::ConvShape;

    fn layer_2d() -> WinogradLayer {
        let s = ConvShape::new(2, 32, 32, &[10, 10], &[3, 3], &[1, 1]).unwrap();
        WinogradLayer::new(s, &[2, 2], ConvOptions::default()).unwrap()
    }

    #[test]
    fn gemm_flops_formula() {
        let l = layer_2d();
        let w = l.work_model();
        let gemm = w.get(SpanCategory::ElementwiseGemm).unwrap();
        // T = 16 tiles of (rows × 32)·(32 × 32): rows = 2 · 25 = 50.
        assert_eq!(l.t_vol(), 16);
        assert_eq!(l.rows(), 50);
        assert_eq!(gemm.flops, 2 * 16 * 50 * 32 * 32);
    }

    #[test]
    fn input_transform_counts_bt_applications() {
        let l = layer_2d();
        let w = l.work_model();
        // F(2,3): Bᵀ is 4×4 with 4 adds per line; T/α = 4 lines per dim,
        // two dims → 32 ops per (tile, channel).
        let o_bt = l.plans[0].bt.op_count().total() as u128;
        let expect = l.rows() as u128 * 32 * 2 * (16 / 4) * o_bt;
        assert_eq!(w.get(SpanCategory::InputTransform).unwrap().flops, expect);
    }

    #[test]
    fn gemm_bytes_move_u_v_y_once() {
        let l = layer_2d();
        let w = l.work_model().get(SpanCategory::ElementwiseGemm).unwrap();
        let t = l.t_vol() as u128;
        let rows = l.rows() as u128;
        assert_eq!(w.bytes, (t * rows * 32 + t * 32 * 32 + t * rows * 32) * 4);
    }

    #[test]
    fn all_stage_categories_modelled() {
        let w = layer_2d().work_model();
        for cat in [
            SpanCategory::InputTransform,
            SpanCategory::KernelTransform,
            SpanCategory::ElementwiseGemm,
            SpanCategory::OutputTransform,
            SpanCategory::SuperblockPipeline,
        ] {
            let s = w.get(cat).unwrap();
            assert!(s.flops > 0, "{cat:?} flops");
            assert!(s.bytes > 0, "{cat:?} bytes");
        }
    }

    #[test]
    fn pipeline_work_is_the_sum_of_its_stages() {
        let w = layer_2d().work_model();
        let sum: u128 = [
            SpanCategory::InputTransform,
            SpanCategory::ElementwiseGemm,
            SpanCategory::OutputTransform,
        ]
        .iter()
        .map(|&c| w.get(c).unwrap().flops)
        .sum();
        assert_eq!(w.get(SpanCategory::SuperblockPipeline).unwrap().flops, sum);
    }

    #[test]
    fn three_d_model_is_consistent() {
        let s = ConvShape::new(1, 16, 16, &[6, 8, 8], &[3, 3, 3], &[1, 1, 1]).unwrap();
        let l = WinogradLayer::new(s, &[2, 2, 2], ConvOptions::default()).unwrap();
        let w = l.work_model();
        let gemm = w.get(SpanCategory::ElementwiseGemm).unwrap();
        assert_eq!(
            gemm.flops,
            2 * l.t_vol() as u128 * l.rows() as u128 * 16 * 16
        );
        // Winograd total flops must undercut direct flops on this shape…
        // only for the gemm; transform overhead may push the total over.
        assert!(w.total_flops() > 0);
    }
}
