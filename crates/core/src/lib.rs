//! # wino-conv
//!
//! The paper's primary contribution: **N-dimensional, Winograd-based
//! convolution with arbitrary kernel and tile sizes, optimised for
//! manycore CPUs** (Jia, Zlateski, Durand, Li — PPoPP 2018).
//!
//! A convolution `F(m₁×…×m_n, r₁×…×r_n)` runs in three statically
//! scheduled stages (Fig. 1):
//!
//! 1. **Transform** ([`stage1`]): input tiles (overlap-add, §3.1–3.2) and
//!    kernels are transformed by vectorised codelets operating on `S = 16`
//!    channels at a time, and scattered — with non-temporal streaming
//!    stores — into block-panel matrices (Table 1 layouts).
//! 2. **Multiply** ([`stage2`]): `T` tall-skinny matrix products
//!    `X_t = U_t·V_t` via the register-blocked micro-kernels of
//!    `wino-gemm`, with the final reduction block scattering results
//!    directly into a tile-major layout (operation ⑥).
//! 3. **Inverse transform** ([`stage3`]): `Aᵀ` codelets produce the output
//!    image — applied *after* the channel summation (Eqn. 7/8), which is
//!    where the arithmetic savings come from.
//!
//! ```
//! use wino_tensor::{SimpleImage, SimpleKernels};
//!
//! // 16-channel 2-D layer, 3×3 kernels, "same" padding, F(2×2, 3×3).
//! let img = SimpleImage::from_fn(1, 16, &[8, 8], |_, c, xy| (c + xy[0] * xy[1]) as f32 * 0.01);
//! let ker = SimpleKernels::from_fn(16, 16, &[3, 3], |co, ci, _| ((co + ci) % 5) as f32 * 0.1);
//! let out = wino_conv::convolve_simple(&img, &ker, &[1, 1], &[2, 2]).unwrap();
//! assert_eq!(out.dims, vec![8, 8]);
//! ```

pub mod conv;
pub mod dispatch;
pub mod error;
pub mod footprint;
pub mod layout;
pub mod net;
pub(crate) mod pipeline;
pub mod plan;
pub mod select;
pub mod sentinel;
pub(crate) mod spans;
pub mod training;
pub mod stage1;
pub mod stage2;
pub mod stage3;
pub mod vecprog;
pub mod work;

pub use conv::{convolve_simple, TransformedKernels};
pub use dispatch::{plan_dispatch, DispatchPlan, Phase, Route};
pub use error::{check_finite, NumericError, WinoError};
pub use footprint::MemoryFootprint;
pub use layout::TileMajor;
pub use net::{
    Activation, ExecutionReport, FallbackReason, LayerBackend, LayerPlan, LayerSpec, NetLayer,
    Network,
};
pub use plan::{
    AccuracyBudget, ConvOptions, MemoryBudget, PlanError, Schedule, Scratch, Stage2Backend,
    WinogradLayer, MAX_RANK,
};
pub use select::{candidate_tiles, plan_with_fallback, select_tile, FallbackPolicy, Purpose, Selection};
pub use sentinel::{sample_units, verify_sample, SentinelConfig, SentinelError};
