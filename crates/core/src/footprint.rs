//! Analytic memory accounting for planned layers.
//!
//! A [`MemoryFootprint`] states, without allocating anything, exactly how
//! many bytes a plan will ask the allocator for: the four transformed-data
//! scratch buffers ([`Scratch`](crate::Scratch)), the per-thread codelet
//! buffers, the memoised kernel-transform clone
//! ([`TransformedKernels`](crate::TransformedKernels)) and the output
//! image. Each component reuses the container's own `bytes_for` helper
//! with the same parameters the real constructor receives, so the model
//! cannot drift from the allocation code — a property the footprint unit
//! tests pin by comparing predictions against observed allocation tallies
//! ([`wino_simd::thread_alloc_bytes`]).
//!
//! Consumers:
//!
//! * plan-time admission — [`ConvOptions::memory`](crate::ConvOptions)
//!   rejects plans whose `total()` exceeds the budget, steering the
//!   selector towards smaller tiles;
//! * serve-time admission — `wino-serve` prices a concurrent batch in
//!   bytes before accepting it;
//! * the BENCH schema's `memory` section.

use wino_simd::S;
use wino_tensor::{BlockedImage, BlockedMatrices};

use crate::layout::TileMajor;
use crate::plan::WinogradLayer;

/// Byte-exact breakdown of a plan's allocations at a given thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// The four large transformed-data buffers: `u` + `v` + `x`
    /// ([`BlockedMatrices`]) and `y` ([`TileMajor`]).
    pub scratch_bytes: usize,
    /// The tile-major transformed-output buffer `y` alone (also counted
    /// in `scratch_bytes`; broken out because serving sizes it per batch).
    pub tile_major_bytes: usize,
    /// The memoised kernel-transform clone (`TransformedKernels`) — the
    /// same shape as scratch `v`.
    pub transformed_kernel_bytes: usize,
    /// Per-thread codelet buffers, totalled across all `threads` slots:
    /// two `T·S` ping-pong tile buffers each, plus two panel-sized
    /// compensation buffers when the plan is compensated.
    pub per_thread_bytes: usize,
    /// The blocked output image.
    pub output_bytes: usize,
    /// Thread-slot count the per-thread component was priced at.
    pub threads: usize,
}

impl MemoryFootprint {
    /// Footprint of `layer` executed with `threads` thread slots.
    ///
    /// Mirrors `Scratch::build`, `WinogradLayer::new_output` and
    /// `Network::prepare` parameter-for-parameter.
    pub fn of_layer(layer: &WinogradLayer, threads: usize) -> MemoryFootprint {
        let t = layer.t_vol();
        let rows = layer.rows();
        let (c, cp) = (layer.shape.in_channels, layer.shape.out_channels);
        let b = layer.block;
        let u = BlockedMatrices::bytes_for(t, rows, c, b.n_blk, b.c_blk);
        let v = BlockedMatrices::bytes_for(t, c, cp, b.c_blk, b.cp_blk);
        let x = BlockedMatrices::bytes_for(t, rows, cp, b.n_blk, b.cp_blk);
        let y = TileMajor::bytes_for(layer.shape.batch, cp, layer.n_tiles(), t);

        let slots = threads.max(1);
        let mut per_slot = 2 * t * S * 4;
        if layer.opts.compensated {
            per_slot += 2 * b.n_blk * b.cp_blk * 4;
        }

        MemoryFootprint {
            scratch_bytes: u + v + x + y,
            tile_major_bytes: y,
            transformed_kernel_bytes: v,
            per_thread_bytes: slots * per_slot,
            output_bytes: BlockedImage::bytes_for(
                layer.shape.batch,
                cp,
                &layer.shape.out_dims(),
            ),
            threads,
        }
    }

    /// All components summed — what a fresh `prepare` + forward pass asks
    /// the allocator for (scratch, memoised kernels, per-thread buffers,
    /// output).
    pub fn total(&self) -> usize {
        self.scratch_bytes
            + self.transformed_kernel_bytes
            + self.per_thread_bytes
            + self.output_bytes
    }

    /// The per-inference marginal cost once a plan's scratch and kernels
    /// are resident: the output image alone. Serving uses this to price
    /// additional in-flight requests against the byte ceiling.
    pub fn marginal_bytes(&self) -> usize {
        self.output_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ConvOptions, Scratch};
    use wino_tensor::ConvShape;

    fn layer(batch: usize, c: usize, cp: usize, dims: &[usize]) -> WinogradLayer {
        let shape = ConvShape::new(batch, c, cp, dims, &[3, 3], &[1, 1]).unwrap();
        WinogradLayer::new(shape, &[2, 2], ConvOptions::default()).unwrap()
    }

    #[test]
    fn scratch_component_matches_observed_allocation() {
        let l = layer(1, 16, 16, &[8, 8]);
        for threads in [1usize, 4] {
            let fp = l.footprint(threads);
            let before = wino_simd::thread_alloc_bytes();
            let s = Scratch::new(&l, threads);
            let observed = wino_simd::thread_alloc_bytes() - before;
            assert_eq!(
                fp.scratch_bytes + fp.per_thread_bytes,
                observed as usize,
                "threads={threads}"
            );
            assert_eq!(fp.tile_major_bytes, s.y.bytes());
            assert_eq!(fp.transformed_kernel_bytes, s.v.bytes());
            assert_eq!(fp.scratch_bytes, s.bytes());
        }
    }

    #[test]
    fn compensated_plans_price_the_panel_buffers() {
        let shape = ConvShape::new(1, 16, 16, &[8, 8], &[3, 3], &[1, 1]).unwrap();
        let opts = ConvOptions { compensated: true, ..ConvOptions::default() };
        let l = WinogradLayer::new(shape, &[2, 2], opts).unwrap();
        let fp = l.footprint(2);
        let before = wino_simd::thread_alloc_bytes();
        let _s = Scratch::new(&l, 2);
        let observed = (wino_simd::thread_alloc_bytes() - before) as usize;
        assert_eq!(fp.scratch_bytes + fp.per_thread_bytes, observed);
    }

    #[test]
    fn output_component_matches_observed_allocation() {
        let l = layer(2, 16, 32, &[9, 7]);
        let fp = l.footprint(1);
        let before = wino_simd::thread_alloc_bytes();
        let out = l.new_output().unwrap();
        let observed = (wino_simd::thread_alloc_bytes() - before) as usize;
        assert_eq!(fp.output_bytes, observed);
        assert_eq!(fp.output_bytes, out.as_slice().len() * 4);
    }

    #[test]
    fn total_sums_components() {
        let fp = layer(1, 16, 16, &[10, 10]).footprint(3);
        assert_eq!(
            fp.total(),
            fp.scratch_bytes + fp.transformed_kernel_bytes + fp.per_thread_bytes + fp.output_bytes
        );
        assert_eq!(fp.marginal_bytes(), fp.output_bytes);
        assert_eq!(fp.threads, 3);
    }

    /// The memory ladder moves towards *larger* tiles — opposite of the
    /// accuracy ladder. The transformed-data inflation factor is
    /// `((m+r−1)/m)^d` per dimension, which shrinks as `m` grows, and the
    /// big scratch buffers dominate the per-thread `T·S` buffers that
    /// grow with `m`.
    #[test]
    fn larger_tiles_shrink_the_footprint() {
        let shape = ConvShape::new(1, 16, 16, &[16, 16], &[3, 3], &[1, 1]).unwrap();
        let m4 = WinogradLayer::new(shape.clone(), &[4, 4], ConvOptions::default()).unwrap();
        let m2 = WinogradLayer::new(shape, &[2, 2], ConvOptions::default()).unwrap();
        assert!(
            m4.footprint(1).scratch_bytes < m2.footprint(1).scratch_bytes,
            "F(4,3) must need less transformed-data scratch than F(2,3)"
        );
        assert!(m4.footprint(1).total() < m2.footprint(1).total());
    }
}
