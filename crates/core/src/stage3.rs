//! Stage 3 — inverse transformation (§4.4).
//!
//! Over the grid `B × C'/S × N`, each task reads one tile's `T` transform
//! vectors — a single contiguous `T·S`-float chunk thanks to stage 2's
//! tile-major scatter — applies `Aᵀ` along every dimension (a contracting
//! transform `α_d → m_d`), and writes the `∏m_d` output vectors into the
//! blocked output image, clipping the ceil-division overhang of boundary
//! tiles.
//!
//! Note the key algebraic property (Eqn. 7/8): `Aᵀ` is applied *after* the
//! channel reduction of stage 2 — `BNC'/S` inverse transforms total,
//! independent of `C`.

use wino_sched::Executor;
use wino_simd::{F32x16, S};
use wino_tensor::BlockedImage;

use crate::error::{ensure_at_least, ensure_dims_eq, ensure_eq, WinoError};
use crate::layout::TileMajor;
use crate::plan::{Scratch, ThreadBuf, WinogradLayer, MAX_RANK};
use crate::stage1::{decompose, MutPtr};

/// The per-tile body of the inverse transform — gather one tile's `T`
/// vectors, apply `Aᵀ` along every dimension, write the clipped `m`-tile
/// to the output image — factored out so the monolithic stage-3
/// fork–join and the superblock pipeline share one implementation.
pub(crate) struct Stage3Ctx<'a> {
    layer: &'a WinogradLayer,
    y: &'a TileMajor,
    out: MutPtr,
    out_dims: Vec<usize>,
    ostride: [usize; MAX_RANK],
    out_channel_groups: usize,
    out_vol: usize,
    t_vol: usize,
    progs: Vec<&'a wino_transforms::PairedProgram>,
    streaming: bool,
}

impl<'a> Stage3Ctx<'a> {
    /// Build the shared state. The output write is the pipeline's *final*
    /// scatter, so `streaming` follows
    /// [`crate::ConvOptions::streaming_stores`] in every schedule.
    pub(crate) fn new(
        layer: &'a WinogradLayer,
        y: &'a TileMajor,
        out: *mut f32,
        streaming: bool,
    ) -> Stage3Ctx<'a> {
        let out_dims = layer.shape.out_dims();
        let rank = layer.rank();
        let mut ostride = [1usize; MAX_RANK];
        for d in (0..rank.saturating_sub(1)).rev() {
            ostride[d] = ostride[d + 1] * out_dims[d + 1];
        }
        Stage3Ctx {
            layer,
            y,
            out: MutPtr(out),
            out_vol: out_dims.iter().product(),
            out_dims,
            ostride,
            out_channel_groups: layer.shape.out_channels / S,
            t_vol: layer.t_vol(),
            progs: layer.plans.iter().map(|p| &p.at).collect(),
            streaming,
        }
    }

    /// Inverse-transform tile `(b, og, n)` and write its clipped output.
    ///
    /// # Safety
    /// The caller must hold `tb` exclusively (Executor slot contract) and
    /// own output tile `(b, og, n)` — tasks of one fork–join must cover
    /// disjoint `(b, og, n)` triples.
    pub(crate) unsafe fn tile(&self, tb: &mut ThreadBuf, b: usize, og: usize, n: usize) {
        let layer = self.layer;
        let rank = layer.rank();
        // Contiguous gather (§4.4: "fast memory access and as few TLB
        // misses as possible").
        tb.a.as_mut_slice()[..self.t_vol * S].copy_from_slice(self.y.tile(b, og, n));

        let mut tdims = [0usize; MAX_RANK];
        tdims[..rank].copy_from_slice(&layer.grid.tile_dims);
        let in_a = crate::vecprog::transform_all_dims(
            &self.progs,
            tb.a.as_mut_slice(),
            tb.b.as_mut_slice(),
            &mut tdims[..rank],
        );
        let result = if in_a { tb.a.as_ptr() } else { tb.b.as_ptr() };

        // Write the m-tile into the output image, clipped to the real
        // output extent.
        let mut tile_coords = [0usize; MAX_RANK];
        decompose(n, &layer.grid.counts, &mut tile_coords[..rank]);
        let mut out_origin = [0usize; MAX_RANK];
        let mut extent = [0usize; MAX_RANK];
        for d in 0..rank {
            out_origin[d] = tile_coords[d] * layer.grid.m[d];
            extent[d] = layer.grid.m[d].min(self.out_dims[d] - out_origin[d]);
        }
        let base_vec = (b * self.out_channel_groups + og) * self.out_vol * S;

        let m_last = layer.grid.m[rank - 1];
        let ext_last = extent[rank - 1];
        let outer_vol: usize = extent[..rank - 1].iter().product();
        let m_outer = &layer.grid.m[..rank - 1];
        let mut oc = [0usize; MAX_RANK];
        // SAFETY: disjoint output tiles per the caller's contract;
        // offsets bounded by the extent clipping above.
        let dst = self.out.get().add(base_vec);
        for outer in 0..outer_vol {
            decompose(outer, &extent[..rank - 1], &mut oc[..rank.max(1) - 1]);
            let mut spatial = 0usize;
            let mut src_row = 0usize;
            for d in 0..rank - 1 {
                spatial += (out_origin[d] + oc[d]) * self.ostride[d];
                src_row = src_row * m_outer[d].max(1) + oc[d];
            }
            let src_base = src_row * m_last;
            let spatial_w = spatial + out_origin[rank - 1];
            for k in 0..ext_last {
                let v = F32x16::load(result.add((src_base + k) * S));
                let o = (spatial_w + k) * S;
                if self.streaming {
                    v.store_nt(dst.add(o));
                } else {
                    v.store(dst.add(o));
                }
            }
        }
    }
}

/// Apply the inverse transforms and write the output image.
pub fn inverse_transform(
    layer: &WinogradLayer,
    scratch: &mut Scratch,
    output: &mut BlockedImage,
    exec: &dyn Executor,
) -> Result<(), WinoError> {
    ensure_at_least("scratch thread slots", exec.threads(), scratch.thread_slots())?;
    let out_dims = layer.shape.out_dims();
    ensure_eq("output batch", layer.shape.batch, output.batch)?;
    ensure_eq("output channels", layer.shape.out_channels, output.channels)?;
    ensure_dims_eq("output extent", &out_dims, &output.dims)?;

    let n_tiles = layer.n_tiles();
    let out_channel_groups = layer.shape.out_channels / S;
    let dims = [layer.shape.batch, out_channel_groups, n_tiles];
    let ctx = Stage3Ctx::new(layer, &scratch.y, output.as_mut_ptr(), layer.opts.streaming_stores);
    let scratch_ref: &Scratch = scratch;
    let stage_start = crate::spans::span_start();

    exec.run_grid(&dims, &|slot, flat| {
        let n = flat % n_tiles;
        let og = (flat / n_tiles) % out_channel_groups;
        let b = flat / (n_tiles * out_channel_groups);
        // SAFETY: slot exclusivity per the Executor contract.
        let tb = unsafe { scratch_ref.thread_buf(slot) };
        // SAFETY: the grid enumerates each (b, og, n) exactly once, so
        // tasks own disjoint output tiles.
        unsafe { ctx.tile(tb, b, og, n) };
    })?;
    crate::spans::record_coord(exec, wino_probe::SpanCategory::OutputTransform, stage_start);
    #[cfg(feature = "fault-inject")]
    if wino_sched::fault::take_poison_stage(3) {
        output.as_mut_slice()[0] = f32::NAN;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ConvOptions, WinogradLayer};
    use wino_sched::{SerialExecutor, StaticExecutor};
    use wino_tensor::ConvShape;

    /// Fill y with a recognisable pattern and check the inverse transform
    /// against a dense Aᵀ·(tile)·A oracle.
    fn run_case(m: &[usize], img: &[usize], pad: usize) {
        let s = ConvShape::new(2, 16, 16, img, &[3; 2], &[pad; 2]).unwrap();
        let layer = WinogradLayer::new(s, m, ConvOptions::default()).unwrap();
        let mut scratch = Scratch::new(&layer, 2);
        for (i, f) in scratch.y.as_mut_slice().iter_mut().enumerate() {
            *f = ((i.wrapping_mul(2654435761) >> 20) & 0x1f) as f32 / 16.0 - 1.0;
        }
        let mut out = layer.new_output().unwrap();
        inverse_transform(&layer, &mut scratch, &mut out, &SerialExecutor).unwrap();

        let at0 = layer.plans[0].transform.at.to_f32();
        let at1 = layer.plans[1].transform.at.to_f32();
        let td = &layer.grid.tile_dims;
        let out_dims = layer.shape.out_dims();
        for b in 0..2 {
            for c in [0usize, 7, 15] {
                for n in 0..layer.n_tiles() {
                    let tc = layer.grid.tile_coords(n);
                    let origin = layer.grid.output_origin(&tc);
                    let ext = layer.grid.output_extent(&tc);
                    let tile = scratch.y.tile(b, c / 16, n);
                    for i in 0..ext[0] {
                        for j in 0..ext[1] {
                            let mut want = 0.0f64;
                            for ti in 0..td[0] {
                                for tj in 0..td[1] {
                                    want += at0.at(i, ti) as f64
                                        * at1.at(j, tj) as f64
                                        * tile[(ti * td[1] + tj) * 16 + c % 16] as f64;
                                }
                            }
                            let got = out.get(b, c, &[origin[0] + i, origin[1] + j]);
                            assert!(
                                (got as f64 - want).abs() <= 1e-3 * want.abs().max(1.0),
                                "m={m:?} img={img:?} b={b} c={c} n={n} ({i},{j}): {got} vs {want}"
                            );
                        }
                    }
                    let _ = out_dims.len();
                }
            }
        }
    }

    #[test]
    fn exact_tiling() {
        run_case(&[4, 4], &[10, 10], 1); // out 10, tiles 3x3 with overhang? 10/4 -> 3 tiles, overhang
    }

    #[test]
    fn divisible_tiling() {
        run_case(&[2, 2], &[9, 9], 0); // out 7 -> ceil(7/2)=4 tiles, overhang 1
        run_case(&[2, 2], &[10, 10], 1); // out 10 -> 5 tiles exact
    }

    #[test]
    fn asymmetric_m() {
        run_case(&[2, 4], &[8, 12], 1);
    }

    #[test]
    fn parallel_matches_serial() {
        let s = ConvShape::new(2, 16, 32, &[10, 10], &[3, 3], &[1, 1]).unwrap();
        let layer = WinogradLayer::new(s, &[4, 4], ConvOptions::default()).unwrap();
        let mut scratch = Scratch::new(&layer, 4);
        for (i, f) in scratch.y.as_mut_slice().iter_mut().enumerate() {
            *f = (i % 97) as f32 * 0.01;
        }
        let mut o1 = layer.new_output().unwrap();
        let mut o2 = layer.new_output().unwrap();
        inverse_transform(&layer, &mut scratch, &mut o1, &SerialExecutor).unwrap();
        let pool = StaticExecutor::new(4);
        inverse_transform(&layer, &mut scratch, &mut o2, &pool).unwrap();
        assert_eq!(o1.as_slice(), o2.as_slice());
    }
}
