//! Overhead guard: the instrumentation API must be fully linkable with
//! the `enabled` feature off, and must then record nothing at all. The
//! same test source compiles in both configurations — `scripts/check.sh`
//! runs the suite with and without `--features probe`.

use wino_probe::{fold, Collector, MachineModel, SpanCategory, WorkModel, COORDINATOR, ENABLED};

#[test]
fn api_is_linkable_and_respects_feature_flag() {
    let c = Collector::new(8);
    assert_eq!(c.slots(), 8);

    // Exercise every entry point an instrumented hot path uses.
    let t0 = wino_probe::tick();
    let t1 = wino_probe::now_ns();
    // SAFETY: single-threaded test — buffer access is exclusive.
    unsafe {
        c.record(0, SpanCategory::InputTransform, t0, t1);
        c.record(7, SpanCategory::TileExtract, t0, t1);
        c.record(COORDINATOR, SpanCategory::ForkJoin, t0, t1);
    }
    // SAFETY: nothing records concurrently.
    let events = unsafe { c.drain() };

    if ENABLED {
        assert_eq!(events.len(), 3, "enabled build must keep every span");
    } else {
        assert!(events.is_empty(), "disabled build must record zero events");
        assert_eq!((t0, t1), (0, 0), "disabled clock must be the constant 0");
        // SAFETY: nothing records concurrently.
        assert!(unsafe { c.is_empty() });
    }

    // Folding the (possibly empty) event set must always work: bench
    // binaries run unconditionally and only their reports differ.
    let report = fold(&events, &WorkModel::new(), &MachineModel::assumed());
    if ENABLED {
        assert_eq!(report.barrier.fork_joins, 1);
    } else {
        assert!(report.stages.is_empty());
        assert_eq!(report.barrier.fork_joins, 0);
    }
}
