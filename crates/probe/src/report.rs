//! The analysis half: fold raw span events into a [`StageReport`].
//!
//! A report answers the paper's §5 question — *where does the time go?* —
//! per stage: wall time, worker CPU time, effective GFLOP/s, arithmetic
//! intensity, bytes moved, and a software-roofline attainable rate; plus
//! barrier-imbalance statistics per fork–join (the §4.5 static-scheduling
//! story measured rather than asserted).
//!
//! ## What the numbers mean
//!
//! * **wall_ms** — sum of the *coordinator* spans of a category. Stage
//!   functions record exactly one coordinator span per invocation around
//!   their fork–join, so over one convolution these are disjoint and sum
//!   to pipeline wall time.
//! * **cpu_ms** — sum of worker-thread spans of the category (e.g.
//!   `tile-extract` gathers). CPU seconds, not wall seconds: with `P`
//!   busy threads, `cpu_ms ≈ P × wall share`.
//! * **gflops** — `flops / wall`, with `flops` supplied by a
//!   [`WorkModel`] (the *algorithm's* operation count for that stage, so
//!   Winograd stages report real work, while a whole-layer
//!   effective-GFLOP/s number keeps the Fig. 5 direct-FLOPs normaliser).
//! * **arith_intensity** — `flops / bytes` with `bytes` the model's
//!   ideal-cache traffic estimate (each buffer moved once per pass);
//!   see `WinogradLayer::work_model` for the per-stage formulas.
//! * **roofline_gflops** — `min(peak, intensity × bandwidth)` under a
//!   supplied [`MachineModel`]; a *software* roofline: peak and bandwidth
//!   come from microbenchmarks, not vendor datasheets.
//! * **barrier** — per fork–join, workers record when they arrived at
//!   the end barrier; skew is `max − min` arrival within one fork–join,
//!   and `total_wait_ms` sums every worker's arrival→join wait.

use crate::event::{SpanCategory, SpanEvent, ALL_CATEGORIES, COORDINATOR};
use crate::json::Json;

/// Operation/traffic estimate for one stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageWork {
    /// Floating-point operations the stage performs (multiply and add
    /// counted separately, i.e. one FMA = 2).
    pub flops: u128,
    /// Bytes moved under an ideal-cache model: every input buffer read
    /// once, every output buffer written once.
    pub bytes: u128,
}

/// Per-category work estimates, supplied by whoever knows the algorithm
/// (`WinogradLayer::work_model`, the baseline runners, …).
#[derive(Clone, Debug, Default)]
pub struct WorkModel {
    entries: Vec<(SpanCategory, StageWork)>,
}

impl WorkModel {
    pub fn new() -> WorkModel {
        WorkModel { entries: Vec::new() }
    }

    /// Set the work for a category (last set wins).
    pub fn set(&mut self, category: SpanCategory, work: StageWork) -> &mut Self {
        self.entries.retain(|(c, _)| *c != category);
        self.entries.push((category, work));
        self
    }

    pub fn get(&self, category: SpanCategory) -> Option<StageWork> {
        self.entries.iter().find(|(c, _)| *c == category).map(|(_, w)| *w)
    }

    /// Total modelled flops across stages.
    pub fn total_flops(&self) -> u128 {
        self.entries.iter().map(|(_, w)| w.flops).sum()
    }
}

/// Microbenchmark-derived machine characteristics for the roofline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineModel {
    /// Attainable all-core compute rate, GFLOP/s.
    pub peak_gflops: f64,
    /// Attainable memory bandwidth, GB/s.
    pub mem_bw_gbps: f64,
    /// Worker threads the measurement used.
    pub threads: usize,
}

impl MachineModel {
    /// A deliberately conservative placeholder (one core, scalar-ish) for
    /// contexts that cannot calibrate. Real reports should use measured
    /// values — `wino-bench` calibrates at startup.
    pub fn assumed() -> MachineModel {
        MachineModel { peak_gflops: 8.0, mem_bw_gbps: 10.0, threads: 1 }
    }

    /// Roofline-attainable GFLOP/s at a given arithmetic intensity
    /// (FLOP/byte): `min(peak, intensity × bandwidth)`.
    pub fn attainable_gflops(&self, intensity: f64) -> f64 {
        (intensity * self.mem_bw_gbps).min(self.peak_gflops)
    }
}

/// One stage row of a report.
#[derive(Clone, Debug)]
pub struct StageRow {
    pub category: SpanCategory,
    /// Coordinator wall time of this stage, milliseconds.
    pub wall_ms: f64,
    /// Summed worker-thread span time, milliseconds (CPU time).
    pub cpu_ms: f64,
    /// Number of spans recorded for the category (all threads).
    pub spans: usize,
    /// Modelled stage flops / wall time, if the work model covers it and
    /// wall time is non-zero.
    pub gflops: Option<f64>,
    /// Modelled flops / modelled bytes.
    pub arith_intensity: Option<f64>,
    /// Modelled bytes moved.
    pub bytes: Option<u128>,
    /// Roofline-attainable GFLOP/s at this stage's intensity.
    pub roofline_gflops: Option<f64>,
}

/// Barrier-imbalance statistics over every fork–join in the window.
#[derive(Clone, Copy, Debug, Default)]
pub struct BarrierStats {
    /// Fork–joins observed.
    pub fork_joins: usize,
    /// Worst max−min arrival skew across fork–joins, microseconds.
    pub max_skew_us: f64,
    /// Mean of the per-fork–join skews, microseconds.
    pub mean_skew_us: f64,
    /// Total worker time spent waiting at end barriers, milliseconds
    /// (CPU time, summed over workers).
    pub total_wait_ms: f64,
}

/// The folded result: per-stage accounting plus barrier statistics.
#[derive(Clone, Debug)]
pub struct StageReport {
    /// Stages with at least one span, in taxonomy order.
    pub stages: Vec<StageRow>,
    pub barrier: BarrierStats,
    /// Sum of stage wall times, milliseconds.
    pub total_wall_ms: f64,
    /// Machine model the roofline used.
    pub machine: MachineModel,
}

const NS_PER_MS: f64 = 1e6;

/// Fold raw events into a [`StageReport`].
///
/// Events may span several convolutions (e.g. all reps of a benchmark);
/// wall and CPU times then accumulate accordingly, which is the desired
/// behaviour for "time per rep × reps" accounting. Work models describe
/// *one* pass, so callers who fold multi-rep event sets should scale the
/// model or (as `wino-bench` does) fold a single instrumented run.
pub fn fold(events: &[SpanEvent], work: &WorkModel, machine: &MachineModel) -> StageReport {
    let mut stages = Vec::new();
    let mut total_wall_ms = 0.0;
    for cat in ALL_CATEGORIES {
        if !cat.is_stage() && cat != SpanCategory::TileExtract {
            continue;
        }
        let mut wall_ns = 0u64;
        let mut cpu_ns = 0u64;
        let mut spans = 0usize;
        for e in events.iter().filter(|e| e.category == cat) {
            spans += 1;
            if e.thread == COORDINATOR {
                wall_ns += e.duration_ns();
            } else {
                cpu_ns += e.duration_ns();
            }
        }
        if spans == 0 {
            continue;
        }
        let wall_ms = wall_ns as f64 / NS_PER_MS;
        let work_entry = work.get(cat);
        let gflops = work_entry.filter(|_| wall_ns > 0).map(|w| {
            w.flops as f64 / (wall_ms * 1e-3) / 1e9
        });
        let arith_intensity =
            work_entry.filter(|w| w.bytes > 0).map(|w| w.flops as f64 / w.bytes as f64);
        let roofline_gflops = arith_intensity.map(|ai| machine.attainable_gflops(ai));
        if cat.is_stage() {
            total_wall_ms += wall_ms;
        }
        stages.push(StageRow {
            category: cat,
            wall_ms,
            cpu_ms: cpu_ns as f64 / NS_PER_MS,
            spans,
            gflops,
            arith_intensity,
            bytes: work_entry.map(|w| w.bytes),
            roofline_gflops,
        });
    }
    StageReport {
        stages,
        barrier: barrier_stats(events),
        total_wall_ms,
        machine: *machine,
    }
}

/// Pair `ForkJoin` windows with the `BarrierWait` spans inside them.
fn barrier_stats(events: &[SpanEvent]) -> BarrierStats {
    let mut stats = BarrierStats::default();
    let mut skew_sum = 0.0f64;
    let mut total_wait_ns = 0u64;
    for fj in events.iter().filter(|e| e.category == SpanCategory::ForkJoin) {
        stats.fork_joins += 1;
        // Arrival time = start of each worker's BarrierWait span within
        // this fork–join window.
        let mut min_arr = u64::MAX;
        let mut max_arr = 0u64;
        for w in events.iter().filter(|e| {
            e.category == SpanCategory::BarrierWait
                && e.start_ns >= fj.start_ns
                && e.end_ns <= fj.end_ns
        }) {
            min_arr = min_arr.min(w.start_ns);
            max_arr = max_arr.max(w.start_ns);
            total_wait_ns += w.duration_ns();
        }
        if max_arr >= min_arr && min_arr != u64::MAX {
            skew_sum += (max_arr - min_arr) as f64 / 1e3;
            stats.max_skew_us = stats.max_skew_us.max((max_arr - min_arr) as f64 / 1e3);
        }
    }
    if stats.fork_joins > 0 {
        stats.mean_skew_us = skew_sum / stats.fork_joins as f64;
    }
    stats.total_wait_ms = total_wait_ns as f64 / NS_PER_MS;
    stats
}

impl StageReport {
    /// JSON form of the per-stage rows (see `docs/bench-schema.md`).
    pub fn stages_json(&self) -> Json {
        Json::Arr(
            self.stages
                .iter()
                .map(|s| {
                    let mut fields = vec![
                        ("stage".to_string(), Json::Str(s.category.name().to_string())),
                        ("wall_ms".to_string(), Json::Num(s.wall_ms)),
                        ("cpu_ms".to_string(), Json::Num(s.cpu_ms)),
                        ("spans".to_string(), Json::Num(s.spans as f64)),
                    ];
                    if let Some(g) = s.gflops {
                        fields.push(("gflops".to_string(), Json::Num(g)));
                    }
                    if let Some(ai) = s.arith_intensity {
                        fields.push(("arith_intensity".to_string(), Json::Num(ai)));
                    }
                    if let Some(b) = s.bytes {
                        fields.push(("bytes".to_string(), Json::Num(b as f64)));
                    }
                    if let Some(r) = s.roofline_gflops {
                        fields.push(("roofline_gflops".to_string(), Json::Num(r)));
                    }
                    Json::Obj(fields)
                })
                .collect(),
        )
    }

    /// JSON form of the barrier statistics.
    pub fn barrier_json(&self) -> Json {
        Json::Obj(vec![
            ("fork_joins".to_string(), Json::Num(self.barrier.fork_joins as f64)),
            ("max_skew_us".to_string(), Json::Num(self.barrier.max_skew_us)),
            ("mean_skew_us".to_string(), Json::Num(self.barrier.mean_skew_us)),
            ("total_wait_ms".to_string(), Json::Num(self.barrier.total_wait_ms)),
        ])
    }

    /// Plain-text table for terminal output.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str("stage              wall_ms    cpu_ms    GFLOP/s      AI  roofline\n");
        for s in &self.stages {
            let fmt_opt = |v: Option<f64>| match v {
                Some(x) => format!("{x:9.2}"),
                None => format!("{:>9}", "-"),
            };
            out.push_str(&format!(
                "{:<18} {:8.3} {:9.3} {} {} {}\n",
                s.category.name(),
                s.wall_ms,
                s.cpu_ms,
                fmt_opt(s.gflops),
                fmt_opt(s.arith_intensity.map(|x| (x * 100.0).round() / 100.0)),
                fmt_opt(s.roofline_gflops),
            ));
        }
        out.push_str(&format!(
            "barrier: {} fork-joins, max skew {:.1} µs, mean {:.1} µs, total wait {:.3} ms\n",
            self.barrier.fork_joins,
            self.barrier.max_skew_us,
            self.barrier.mean_skew_us,
            self.barrier.total_wait_ms
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(category: SpanCategory, thread: u32, start_ns: u64, end_ns: u64) -> SpanEvent {
        SpanEvent { category, thread, start_ns, end_ns }
    }

    #[test]
    fn fold_computes_gflops_and_intensity() {
        // One 2 ms gemm stage doing 4 GFLOP over 1 GB.
        let events = [ev(SpanCategory::ElementwiseGemm, COORDINATOR, 0, 2_000_000)];
        let mut work = WorkModel::new();
        work.set(
            SpanCategory::ElementwiseGemm,
            StageWork { flops: 4_000_000_000, bytes: 1_000_000_000 },
        );
        let machine = MachineModel { peak_gflops: 100.0, mem_bw_gbps: 50.0, threads: 4 };
        let r = fold(&events, &work, &machine);
        assert_eq!(r.stages.len(), 1);
        let s = &r.stages[0];
        // 4 GFLOP in 2 ms = 2000 GFLOP/s.
        assert!((s.gflops.unwrap() - 2000.0).abs() < 1e-9);
        // AI = 4e9 / 1e9 = 4 FLOP/byte → roofline min(100, 4*50) = 100.
        assert!((s.arith_intensity.unwrap() - 4.0).abs() < 1e-12);
        assert!((s.roofline_gflops.unwrap() - 100.0).abs() < 1e-9);
        assert_eq!(s.bytes, Some(1_000_000_000));
        assert!((r.total_wall_ms - 2.0).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_roofline() {
        let m = MachineModel { peak_gflops: 100.0, mem_bw_gbps: 10.0, threads: 1 };
        // AI 0.5 → 5 GFLOP/s attainable, memory bound.
        assert!((m.attainable_gflops(0.5) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn barrier_skew_from_fork_join_windows() {
        let events = [
            ev(SpanCategory::ForkJoin, COORDINATOR, 0, 1000),
            ev(SpanCategory::BarrierWait, 0, 400, 1000), // arrived at 400
            ev(SpanCategory::BarrierWait, 1, 900, 1000), // arrived at 900
            ev(SpanCategory::ForkJoin, COORDINATOR, 2000, 3000),
            ev(SpanCategory::BarrierWait, 0, 2950, 3000),
            ev(SpanCategory::BarrierWait, 1, 2850, 3000),
        ];
        let r = fold(&events, &WorkModel::new(), &MachineModel::assumed());
        assert_eq!(r.barrier.fork_joins, 2);
        // Skews: 500 ns = 0.5 µs and 100 ns = 0.1 µs.
        assert!((r.barrier.max_skew_us - 0.5).abs() < 1e-9);
        assert!((r.barrier.mean_skew_us - 0.3).abs() < 1e-9);
        // Waits: 600 + 100 + 50 + 150 = 900 ns.
        assert!((r.barrier.total_wait_ms - 0.0009).abs() < 1e-12);
    }

    #[test]
    fn cpu_vs_wall_split() {
        let events = [
            ev(SpanCategory::TileExtract, 0, 0, 500),
            ev(SpanCategory::TileExtract, 1, 0, 700),
            ev(SpanCategory::InputTransform, COORDINATOR, 0, 1000),
        ];
        let r = fold(&events, &WorkModel::new(), &MachineModel::assumed());
        let tile = r.stages.iter().find(|s| s.category == SpanCategory::TileExtract).unwrap();
        assert_eq!(tile.spans, 2);
        assert!((tile.cpu_ms - 0.0012).abs() < 1e-12);
        assert_eq!(tile.wall_ms, 0.0);
        // tile-extract is a sub-span: not in total wall.
        assert!((r.total_wall_ms - 0.001).abs() < 1e-12);
    }

    #[test]
    fn work_model_set_overwrites() {
        let mut w = WorkModel::new();
        w.set(SpanCategory::ElementwiseGemm, StageWork { flops: 1, bytes: 1 });
        w.set(SpanCategory::ElementwiseGemm, StageWork { flops: 2, bytes: 3 });
        assert_eq!(w.get(SpanCategory::ElementwiseGemm).unwrap().flops, 2);
        assert_eq!(w.total_flops(), 2);
    }

    #[test]
    fn json_shapes() {
        let events = [ev(SpanCategory::ElementwiseGemm, COORDINATOR, 0, 1_000_000)];
        let mut work = WorkModel::new();
        work.set(SpanCategory::ElementwiseGemm, StageWork { flops: 1_000_000, bytes: 500 });
        let r = fold(&events, &work, &MachineModel::assumed());
        let stages = r.stages_json();
        let row = &stages.as_arr().unwrap()[0];
        assert_eq!(row.get("stage").unwrap().as_str(), Some("elementwise-gemm"));
        assert!(row.get("gflops").is_some());
        assert!(row.get("arith_intensity").is_some());
        let b = r.barrier_json();
        assert_eq!(b.get("fork_joins").unwrap().as_f64(), Some(0.0));
        assert!(!r.to_table().is_empty());
    }
}
