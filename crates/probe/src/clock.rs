//! Monotonic time sources for span timestamps.
//!
//! The canonical clock is [`now_ns`]: nanoseconds since a process-local
//! epoch, read from [`std::time::Instant`] (monotonic, immune to wall-clock
//! steps). On x86-64 a raw [`cycles`] reading is also available for
//! ad-hoc cycle accounting; span events always store nanoseconds so that
//! reports are comparable across hosts with different TSC frequencies.
//!
//! With the `enabled` feature off, [`now_ns`] is a `const`-foldable zero:
//! instrumented call sites guarded by [`crate::ENABLED`] compile away
//! entirely.

#[cfg(feature = "enabled")]
use std::sync::OnceLock;
#[cfg(feature = "enabled")]
use std::time::Instant;

/// Nanoseconds since the first call in this process (monotonic).
#[cfg(feature = "enabled")]
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Nanoseconds since the process epoch — disabled build: always 0.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn now_ns() -> u64 {
    0
}

/// Current time if instrumentation is enabled, else 0 without touching
/// the clock. Use this on hot paths: the disabled form is a constant and
/// the surrounding recording branch folds away.
#[inline(always)]
pub fn tick() -> u64 {
    if crate::ENABLED {
        now_ns()
    } else {
        0
    }
}

/// Raw time-stamp-counter reading (x86-64 only). Frequency is
/// machine-dependent; use only for relative cycle accounting on one host.
/// Not serialising: pair with a fence if you need precise ordering
/// against surrounding loads/stores.
#[cfg(target_arch = "x86_64")]
pub fn cycles() -> u64 {
    // SAFETY: `rdtsc` is unprivileged and has no memory effects; it is
    // safe to execute on every x86-64 CPU.
    unsafe { core::arch::x86_64::_rdtsc() }
}

/// Raw cycle counter — unavailable on this architecture, returns 0.
#[cfg(not(target_arch = "x86_64"))]
pub fn cycles() -> u64 {
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_is_monotonic_or_zero() {
        let a = now_ns();
        let b = now_ns();
        if crate::ENABLED {
            assert!(b >= a);
        } else {
            assert_eq!((a, b), (0, 0));
        }
    }

    #[test]
    fn tick_matches_feature_state() {
        if !crate::ENABLED {
            assert_eq!(tick(), 0);
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn cycles_advances() {
        let a = cycles();
        let b = cycles();
        assert!(b >= a);
    }
}
