//! The per-thread, append-only event store.
//!
//! A [`Collector`] holds one `Vec<SpanEvent>` per executor slot plus one
//! for the coordinator. Recording appends to the caller's own buffer —
//! no locks, no atomics, no cross-thread traffic on the hot path. The
//! price is a contract, identical to the one `wino-conv`'s `Scratch`
//! thread buffers already impose: a given buffer is touched by at most
//! one thread at a time (the Executor slot contract for worker buffers;
//! single-threaded fork-issuing for the coordinator buffer). Buffers are
//! merged only at fork–join boundaries, when every worker has provably
//! exited the job closure.
//!
//! With the crate's `enabled` feature off the buffers are never
//! allocated and [`Collector::record`] is an empty inline function.

#[cfg(feature = "enabled")]
use std::cell::UnsafeCell;

use crate::event::{SpanCategory, SpanEvent};
#[cfg(any(feature = "enabled", test))]
use crate::event::COORDINATOR;

/// Per-slot span buffers. See the module docs for the threading contract.
#[derive(Debug)]
pub struct Collector {
    slots: usize,
    /// `slots + 1` buffers: index `slots` is the coordinator's.
    #[cfg(feature = "enabled")]
    bufs: Vec<UnsafeCell<Vec<SpanEvent>>>,
}

// SAFETY: every buffer is accessed by at most one thread at a time — the
// Executor slot contract guarantees it for worker buffers (slot i is held
// by one task at a time), and the coordinator buffer is written only by
// the thread issuing fork–joins, never from inside a job closure. `drain`
// additionally requires that no fork–join is in flight.
unsafe impl Sync for Collector {}

impl Collector {
    /// A collector for executors of up to `slots` worker slots.
    pub fn new(slots: usize) -> Collector {
        Collector {
            slots,
            #[cfg(feature = "enabled")]
            bufs: (0..slots + 1).map(|_| UnsafeCell::new(Vec::new())).collect(),
        }
    }

    /// Number of worker slots this collector serves.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Append one span to `thread`'s buffer ([`COORDINATOR`](crate::event::COORDINATOR) for the
    /// fork-issuing thread). No-op when the `enabled` feature is off.
    ///
    /// # Safety
    /// At most one thread may record to a given `thread` id at a time,
    /// and `thread` must be `< slots` or [`COORDINATOR`](crate::event::COORDINATOR). Worker slots
    /// satisfy this through the Executor slot contract; the coordinator
    /// id must only be used outside in-flight fork–joins.
    #[inline]
    pub unsafe fn record(&self, thread: u32, category: SpanCategory, start_ns: u64, end_ns: u64) {
        #[cfg(feature = "enabled")]
        {
            let idx = if thread == COORDINATOR { self.slots } else { thread as usize };
            // SAFETY: exclusive buffer access per this function's contract.
            let buf = unsafe { &mut *self.bufs[idx].get() };
            buf.push(SpanEvent { category, thread, start_ns, end_ns });
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (thread, category, start_ns, end_ns);
        }
    }

    /// Merge and clear every per-thread buffer, returning the events
    /// sorted by start time. Always empty in disabled builds.
    ///
    /// # Safety
    /// No thread may be recording into this collector during the call —
    /// in executor terms, no fork–join sharing this collector may be in
    /// flight. Calling it after a `run_grid` returned (its join is the
    /// synchronisation point) satisfies this.
    pub unsafe fn drain(&self) -> Vec<SpanEvent> {
        #[cfg(feature = "enabled")]
        {
            let mut out = Vec::new();
            for b in &self.bufs {
                // SAFETY: no concurrent recording per this function's
                // contract, so the exclusive reference is unique.
                out.append(unsafe { &mut *b.get() });
            }
            out.sort_by_key(|e| (e.start_ns, e.thread));
            out
        }
        #[cfg(not(feature = "enabled"))]
        {
            Vec::new()
        }
    }

    /// Total buffered events. Same exclusivity contract as [`Collector::drain`].
    ///
    /// # Safety
    /// See [`Collector::drain`].
    pub unsafe fn len(&self) -> usize {
        #[cfg(feature = "enabled")]
        {
            // SAFETY: no concurrent recording per this function's contract.
            self.bufs.iter().map(|b| unsafe { (*b.get()).len() }).sum()
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    /// Whether no events are buffered. Same contract as [`Collector::drain`].
    ///
    /// # Safety
    /// See [`Collector::drain`].
    pub unsafe fn is_empty(&self) -> bool {
        // SAFETY: forwarded contract.
        unsafe { self.len() == 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_drain() {
        let c = Collector::new(2);
        // SAFETY: single-threaded test — trivially exclusive.
        unsafe {
            c.record(0, SpanCategory::InputTransform, 10, 20);
            c.record(1, SpanCategory::ElementwiseGemm, 5, 8);
            c.record(COORDINATOR, SpanCategory::ForkJoin, 0, 30);
        }
        // SAFETY: no recording in flight.
        let events = unsafe { c.drain() };
        if crate::ENABLED {
            assert_eq!(events.len(), 3);
            // Sorted by start time.
            assert_eq!(events[0].category, SpanCategory::ForkJoin);
            assert_eq!(events[1].start_ns, 5);
            assert_eq!(events[2].thread, 0);
            // Drained: second drain is empty.
            // SAFETY: no recording in flight.
            assert!(unsafe { c.drain() }.is_empty());
        } else {
            assert!(events.is_empty());
        }
    }

    #[test]
    fn disabled_build_records_nothing() {
        let c = Collector::new(4);
        // SAFETY: single-threaded test.
        unsafe { c.record(3, SpanCategory::Other, 1, 2) };
        // SAFETY: no recording in flight.
        let n = unsafe { c.len() };
        if crate::ENABLED {
            assert_eq!(n, 1);
        } else {
            assert_eq!(n, 0);
            // SAFETY: no recording in flight.
            assert!(unsafe { c.is_empty() });
        }
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn concurrent_slots_do_not_interfere() {
        let c = Collector::new(4);
        std::thread::scope(|s| {
            for slot in 0..4u32 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..100 {
                        // SAFETY: each spawned thread owns exactly one slot.
                        unsafe { c.record(slot, SpanCategory::TileExtract, i, i + 1) };
                    }
                });
            }
        });
        // SAFETY: all writers joined by the scope.
        assert_eq!(unsafe { c.len() }, 400);
    }
}
