//! A minimal JSON value, writer and parser.
//!
//! The repo is dependency-free by policy, so `BENCH_*.json` emission and
//! schema validation cannot lean on `serde`. This module implements the
//! small subset needed: a [`Json`] tree, a deterministic renderer
//! (object keys keep insertion order, floats print with enough digits to
//! round-trip), and a strict recursive-descent parser used by the
//! `--validate` path of the bench binaries.

use std::fmt::Write as _;

/// A JSON document node. Objects preserve insertion order — reports are
/// meant to be diffed, so field order must be stable across runs.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Render to a compact single-line string.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        s
    }

    /// Render with 2-space indentation (the `BENCH_*.json` on-disk form).
    pub fn render_pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, Some(2), 0);
        s.push('\n');
        s
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(a) if a.is_empty() => out.push_str("[]"),
            Json::Arr(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(o) if o.is_empty() => out.push_str("{}"),
            Json::Obj(o) => {
                out.push('{');
                for (i, (k, v)) in o.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; reports must never contain them, but a
        // renderer that emits invalid JSON is worse than a null.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let b = input.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { offset: self.i, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn lit(&mut self, s: &str, v: Json) -> Result<Json, ParseError> {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let val = self.value()?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.i + 4 >= self.b.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex =
                                std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                    .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our
                            // reports; reject instead of mis-decoding.
                            let ch = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(ch);
                            self.i += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = &self.b[self.i..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad utf-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap_or("");
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact() {
        let doc = Json::Obj(vec![
            ("a".into(), Json::Num(1.5)),
            ("b".into(), Json::Arr(vec![Json::Null, Json::Bool(true), Json::Str("x\"y".into())])),
            ("n".into(), Json::Num(42.0)),
        ]);
        let text = doc.render();
        assert_eq!(parse(&text).unwrap(), doc);
        // Integral floats render without a fraction.
        assert!(text.contains("\"n\":42"));
    }

    #[test]
    fn round_trip_pretty() {
        let doc = Json::Obj(vec![(
            "layers".into(),
            Json::Arr(vec![Json::Obj(vec![("ms".into(), Json::Num(0.125))])]),
        )]);
        assert_eq!(parse(&doc.render_pretty()).unwrap(), doc);
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v = parse(r#"{"s": "a\nA", "x": -1.25e2}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\nA"));
        assert_eq!(v.get("x").unwrap().as_f64(), Some(-125.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a": [1, 2], "o": {"k": "v"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("o").unwrap().as_obj().unwrap().len(), 1);
        assert!(v.get("missing").is_none());
        assert!(v.as_f64().is_none());
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }
}
