//! Always-on monotonic counters for rare, discrete events.
//!
//! The span substrate ([`crate::Collector`]) measures *time* and compiles
//! out without the `enabled` feature; the numerical-robustness subsystem
//! additionally needs to *count* things that are cheap, rare and
//! semantically load-bearing — how many output tiles the accuracy
//! sentinels re-verified, how many tripped, how the degradation ladder
//! resolved them. Tests assert on these (e.g. "sample rate 0 ⇒ zero
//! tiles checked"), so unlike spans they are compiled unconditionally:
//! one relaxed atomic add per *sampled tile*, nothing per output element.
//!
//! Counters are process-global and monotonic; [`reset_all`] exists for
//! tests and report boundaries. The serving layer (`wino-serve`) adds
//! its own family — admission/shed tallies, batch outcomes, breaker
//! trips, pool rebuilds and a high-water queue depth — with the same
//! compiled-unconditionally contract: the overload gates assert on them.

use std::sync::atomic::{AtomicU64, Ordering};

/// The counted event kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Output tiles re-verified against the f64 oracle by the sentinels.
    SentinelTilesChecked,
    /// Sampled tiles whose relative error exceeded the predicted bound.
    SentinelTrips,
    /// Layers demoted to a smaller tile size after a sentinel trip.
    SentinelDemotions,
    /// Layers rescued by the im2col baseline after demotion also failed.
    SentinelRescues,
    /// Requests accepted into the serve queue.
    ServeAdmitted,
    /// Requests rejected at enqueue because the queue was full.
    ServeShedOverload,
    /// Requests rejected with an already-expired (or expired-in-queue)
    /// deadline.
    ServeShedDeadline,
    /// Requests shed at admission because the roofline service-time
    /// estimate predicted a deadline miss.
    ServeShedPredicted,
    /// Batches the serve executor dispatched.
    ServeBatches,
    /// Batch executions that failed with a typed error (before retry
    /// accounting — each failed attempt counts once).
    ServeBatchFailures,
    /// Circuit-breaker trips (each one degrades the serving ladder).
    ServeBreakerTrips,
    /// Circuit-breaker recoveries (consecutive successes promoted the
    /// ladder back up one level).
    ServeBreakerRecoveries,
    /// Fork–join pools rebuilt after poisoning.
    ServePoolRebuilds,
    /// High-water mark of the serve queue depth (recorded with
    /// [`Counter::record_max`], not [`Counter::add`]).
    ServeQueuePeakDepth,
    /// High-water mark of live `AlignedVec` bytes (recorded with
    /// [`Counter::record_max`] by `wino-simd` at every allocation).
    AllocBytesPeak,
    /// Aligned-buffer allocations performed (every `AlignedVec`
    /// constructed, fallible or not; zero-length buffers excluded).
    AllocCalls,
    /// Layers replanned with smaller tiles because an allocation failed
    /// or a memory budget was exceeded.
    MemoryDemotions,
    /// Layers rescued by the im2col baseline after a memory demotion
    /// also failed to allocate.
    MemoryRescues,
    /// Requests shed at admission because the modeled concurrent-batch
    /// footprint would exceed the configured memory ceiling.
    ServeShedMemory,
}

const N: usize = 19;

static COUNTERS: [AtomicU64; N] = [const { AtomicU64::new(0) }; N];

impl Counter {
    /// All counters, in reporting order.
    pub const ALL: [Counter; N] = [
        Counter::SentinelTilesChecked,
        Counter::SentinelTrips,
        Counter::SentinelDemotions,
        Counter::SentinelRescues,
        Counter::ServeAdmitted,
        Counter::ServeShedOverload,
        Counter::ServeShedDeadline,
        Counter::ServeShedPredicted,
        Counter::ServeBatches,
        Counter::ServeBatchFailures,
        Counter::ServeBreakerTrips,
        Counter::ServeBreakerRecoveries,
        Counter::ServePoolRebuilds,
        Counter::ServeQueuePeakDepth,
        Counter::AllocBytesPeak,
        Counter::AllocCalls,
        Counter::MemoryDemotions,
        Counter::MemoryRescues,
        Counter::ServeShedMemory,
    ];

    /// Stable kebab-case name used in JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::SentinelTilesChecked => "sentinel-tiles-checked",
            Counter::SentinelTrips => "sentinel-trips",
            Counter::SentinelDemotions => "sentinel-demotions",
            Counter::SentinelRescues => "sentinel-rescues",
            Counter::ServeAdmitted => "serve-admitted",
            Counter::ServeShedOverload => "serve-shed-overload",
            Counter::ServeShedDeadline => "serve-shed-deadline",
            Counter::ServeShedPredicted => "serve-shed-predicted",
            Counter::ServeBatches => "serve-batches",
            Counter::ServeBatchFailures => "serve-batch-failures",
            Counter::ServeBreakerTrips => "serve-breaker-trips",
            Counter::ServeBreakerRecoveries => "serve-breaker-recoveries",
            Counter::ServePoolRebuilds => "serve-pool-rebuilds",
            Counter::ServeQueuePeakDepth => "serve-queue-peak-depth",
            Counter::AllocBytesPeak => "alloc-bytes-peak",
            Counter::AllocCalls => "alloc-calls",
            Counter::MemoryDemotions => "memory-demotions",
            Counter::MemoryRescues => "memory-rescues",
            Counter::ServeShedMemory => "serve-shed-memory",
        }
    }

    fn cell(self) -> &'static AtomicU64 {
        &COUNTERS[self as usize]
    }

    /// Add `n` to the counter.
    pub fn add(self, n: u64) {
        // Monotonic tally: no ordering requirement beyond atomicity.
        self.cell().fetch_add(n, Ordering::Relaxed);
    }

    /// Raise the counter to `v` if it is currently lower (high-water
    /// marks such as [`Counter::ServeQueuePeakDepth`]).
    pub fn record_max(self, v: u64) {
        // Monotonic high-water mark: atomicity is all that matters.
        self.cell().fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.cell().load(Ordering::Relaxed)
    }
}

/// Zero every counter (test scaffolding / report boundaries).
pub fn reset_all() {
    for c in Counter::ALL {
        c.cell().store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Counters are process-global; tests that write them must not
    // interleave (reset_all would erase a sibling's tallies mid-assert).
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn counters_tally_and_reset() {
        let _g = lock();
        reset_all();
        Counter::SentinelTilesChecked.add(3);
        Counter::SentinelTilesChecked.add(2);
        Counter::SentinelTrips.add(1);
        assert_eq!(Counter::SentinelTilesChecked.get(), 5);
        assert_eq!(Counter::SentinelTrips.get(), 1);
        assert_eq!(Counter::SentinelRescues.get(), 0);
        reset_all();
        for c in Counter::ALL {
            assert_eq!(c.get(), 0, "{} not reset", c.name());
        }
    }

    #[test]
    fn record_max_keeps_high_water() {
        let _g = lock();
        reset_all();
        Counter::ServeQueuePeakDepth.record_max(5);
        Counter::ServeQueuePeakDepth.record_max(3);
        assert_eq!(Counter::ServeQueuePeakDepth.get(), 5, "lower value must not shrink the mark");
        Counter::ServeQueuePeakDepth.record_max(9);
        assert_eq!(Counter::ServeQueuePeakDepth.get(), 9);
        reset_all();
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<_> = Counter::ALL.iter().map(|c| c.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
