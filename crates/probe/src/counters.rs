//! Always-on monotonic counters for rare, discrete events.
//!
//! The span substrate ([`crate::Collector`]) measures *time* and compiles
//! out without the `enabled` feature; the numerical-robustness subsystem
//! additionally needs to *count* things that are cheap, rare and
//! semantically load-bearing — how many output tiles the accuracy
//! sentinels re-verified, how many tripped, how the degradation ladder
//! resolved them. Tests assert on these (e.g. "sample rate 0 ⇒ zero
//! tiles checked"), so unlike spans they are compiled unconditionally:
//! one relaxed atomic add per *sampled tile*, nothing per output element.
//!
//! Counters are process-global and monotonic; [`reset_all`] exists for
//! tests and report boundaries.

use std::sync::atomic::{AtomicU64, Ordering};

/// The counted event kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Output tiles re-verified against the f64 oracle by the sentinels.
    SentinelTilesChecked,
    /// Sampled tiles whose relative error exceeded the predicted bound.
    SentinelTrips,
    /// Layers demoted to a smaller tile size after a sentinel trip.
    SentinelDemotions,
    /// Layers rescued by the im2col baseline after demotion also failed.
    SentinelRescues,
}

const N: usize = 4;

static COUNTERS: [AtomicU64; N] =
    [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];

impl Counter {
    /// All counters, in reporting order.
    pub const ALL: [Counter; N] = [
        Counter::SentinelTilesChecked,
        Counter::SentinelTrips,
        Counter::SentinelDemotions,
        Counter::SentinelRescues,
    ];

    /// Stable kebab-case name used in JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::SentinelTilesChecked => "sentinel-tiles-checked",
            Counter::SentinelTrips => "sentinel-trips",
            Counter::SentinelDemotions => "sentinel-demotions",
            Counter::SentinelRescues => "sentinel-rescues",
        }
    }

    fn cell(self) -> &'static AtomicU64 {
        &COUNTERS[self as usize]
    }

    /// Add `n` to the counter.
    pub fn add(self, n: u64) {
        // Monotonic tally: no ordering requirement beyond atomicity.
        self.cell().fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.cell().load(Ordering::Relaxed)
    }
}

/// Zero every counter (test scaffolding / report boundaries).
pub fn reset_all() {
    for c in Counter::ALL {
        c.cell().store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_tally_and_reset() {
        reset_all();
        Counter::SentinelTilesChecked.add(3);
        Counter::SentinelTilesChecked.add(2);
        Counter::SentinelTrips.add(1);
        assert_eq!(Counter::SentinelTilesChecked.get(), 5);
        assert_eq!(Counter::SentinelTrips.get(), 1);
        assert_eq!(Counter::SentinelRescues.get(), 0);
        reset_all();
        for c in Counter::ALL {
            assert_eq!(c.get(), 0, "{} not reset", c.name());
        }
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<_> = Counter::ALL.iter().map(|c| c.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
