//! # wino-probe
//!
//! Stage-level observability for the Winograd pipeline: *where does the
//! time go?* The paper's argument (§5, Figs. 5–7) is a per-stage
//! accounting — transform time vs. element-wise GEMM time vs. barrier
//! overhead — and Zlateski et al. ("FFT Convolutions are Faster than
//! Winograd …") show such conclusions flip with arithmetic intensity and
//! cache behaviour. This crate makes both measurable without perturbing
//! the thing being measured.
//!
//! Two halves:
//!
//! * **Recording** ([`Collector`], [`SpanCategory`], [`now_ns`]):
//!   monotonic span timers writing to per-thread append-only buffers —
//!   no locks or shared cache lines on the hot path; buffers merge only
//!   at fork–join boundaries. Behind the `enabled` feature the whole
//!   substrate compiles to no-ops while staying API-compatible, so
//!   instrumented code carries no `cfg` noise (gate on the [`ENABLED`]
//!   const, which folds the branch away).
//! * **Analysis** ([`fold`], [`StageReport`], [`WorkModel`],
//!   [`MachineModel`]): folds events into per-stage wall/CPU time,
//!   effective GFLOP/s, arithmetic intensity, bytes moved, a software
//!   roofline estimate, and barrier-imbalance statistics; renders the
//!   versioned JSON perf-report schema ([`schema`], `docs/bench-schema.md`).
//!
//! The crate is dependency-free and knows nothing about convolution:
//! executors record fork–joins, stage code records categorised spans, and
//! whoever understands the algorithm supplies the [`WorkModel`].
//!
//! ```
//! use wino_probe::{fold, Collector, MachineModel, SpanCategory, StageWork, WorkModel,
//!                  COORDINATOR};
//!
//! let collector = Collector::new(1);
//! // SAFETY: single-threaded example — buffer access is trivially exclusive.
//! unsafe { collector.record(COORDINATOR, SpanCategory::ElementwiseGemm, 0, 2_000_000) };
//! // SAFETY: nothing is recording concurrently.
//! let events = unsafe { collector.drain() };
//!
//! let mut work = WorkModel::new();
//! work.set(SpanCategory::ElementwiseGemm,
//!          StageWork { flops: 4_000_000_000, bytes: 1_000_000_000 });
//! let machine = MachineModel { peak_gflops: 100.0, mem_bw_gbps: 50.0, threads: 4 };
//! let report = fold(&events, &work, &machine);
//!
//! if wino_probe::ENABLED {
//!     // 4 GFLOP in 2 ms → 2000 GFLOP/s, arithmetic intensity 4 FLOP/byte.
//!     let gemm = &report.stages[0];
//!     assert_eq!(gemm.arith_intensity, Some(4.0));
//! } else {
//!     // Disabled builds record nothing — and that is a guarantee.
//!     assert!(events.is_empty());
//! }
//! ```

pub mod clock;
pub mod collector;
pub mod counters;
pub mod event;
pub mod json;
pub mod report;
pub mod schema;

pub use clock::{cycles, now_ns, tick};
pub use collector::Collector;
pub use counters::Counter;
pub use event::{SpanCategory, SpanEvent, ALL_CATEGORIES, COORDINATOR};
pub use json::{parse as parse_json, Json, ParseError};
pub use report::{fold, BarrierStats, MachineModel, StageReport, StageRow, StageWork, WorkModel};
pub use schema::{
    validate as validate_schema, BACKEND_NAMES, FALLBACK_CODES, SCALING_MODES, SCHEMA_VERSION,
    SMOKE_SKEW_BUDGET_US,
};

/// Whether instrumentation is compiled in (the `enabled` cargo feature).
/// A `const`, so `if ENABLED { … }` guards fold away in disabled builds.
pub const ENABLED: bool = cfg!(feature = "enabled");
