//! The versioned `BENCH_*.json` schema and its validator.
//!
//! The on-disk perf-report format is documented field-by-field in
//! `docs/bench-schema.md`; this module is the executable half of that
//! document. The versioning rule: **additive changes** (new optional
//! fields) keep [`SCHEMA_VERSION`]; any rename, removal, unit change or
//! semantic change bumps it. Validators accept exactly one version.

use crate::event::SpanCategory;
use crate::json::Json;

/// Current schema version of emitted perf reports.
///
/// v2: layer entries gained accuracy fields — `max_rel_error` (measured
/// vs. the f64 direct oracle) and `predicted_bound` (the a-priori
/// conditioning bound) — and documents may carry a top-level `counters`
/// object (sentinel tallies). The fields are additive, but their
/// *presence contract* (the smoke bench must emit `max_rel_error`)
/// changed what consumers may rely on, hence the bump.
pub const SCHEMA_VERSION: u64 = 2;

/// Validate a parsed `BENCH_*.json` document. Returns every problem
/// found (empty = valid).
pub fn validate(doc: &Json) -> Result<(), Vec<String>> {
    let mut errs = Vec::new();
    let mut err = |m: String| errs.push(m);

    match doc.get("schema_version").and_then(Json::as_f64) {
        Some(v) if v == SCHEMA_VERSION as f64 => {}
        Some(v) => err(format!("schema_version {v} != supported {SCHEMA_VERSION}")),
        None => err("missing numeric schema_version".into()),
    }
    for key in ["generated_by", "date"] {
        if doc.get(key).and_then(Json::as_str).is_none() {
            err(format!("missing string field '{key}'"));
        }
    }
    match doc.get("machine") {
        Some(m) => {
            for key in ["peak_gflops", "mem_bw_gbps", "threads"] {
                if m.get(key).and_then(Json::as_f64).is_none() {
                    err(format!("machine.{key} missing or not a number"));
                }
            }
            if m.get("simd").and_then(Json::as_str).is_none() {
                err("machine.simd missing or not a string".into());
            }
        }
        None => err("missing 'machine' object".into()),
    }

    match doc.get("layers").and_then(Json::as_arr) {
        None => err("missing 'layers' array".into()),
        Some([]) => err("'layers' is empty".into()),
        Some(layers) => {
            for (i, layer) in layers.iter().enumerate() {
                validate_layer(i, layer, &mut errs);
            }
        }
    }

    // v2: an optional top-level `counters` object (sentinel tallies).
    // When present, every counter name must be known and numeric.
    if let Some(counters) = doc.get("counters") {
        match counters {
            Json::Obj(fields) => {
                for (name, v) in fields {
                    if !crate::Counter::ALL.iter().any(|c| c.name() == name) {
                        errs.push(format!("counters.{name} is not a known counter"));
                    } else if v.as_f64().is_none() {
                        errs.push(format!("counters.{name} is not a number"));
                    }
                }
            }
            _ => errs.push("'counters' is not an object".into()),
        }
    }

    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

fn validate_layer(i: usize, layer: &Json, errs: &mut Vec<String>) {
    let ctx = |f: &str| format!("layers[{i}].{f}");
    for key in ["layer", "impl"] {
        if layer.get(key).and_then(Json::as_str).is_none() {
            errs.push(format!("{} missing or not a string", ctx(key)));
        }
    }
    for key in ["best_ms", "mean_ms", "effective_gflops", "reps"] {
        if layer.get(key).and_then(Json::as_f64).is_none() {
            errs.push(format!("{} missing or not a number", ctx(key)));
        }
    }
    // v2 accuracy fields: optional, but must be numeric when present.
    for key in ["max_rel_error", "predicted_bound"] {
        if let Some(v) = layer.get(key) {
            if v.as_f64().is_none() {
                errs.push(format!("{} is not a number", ctx(key)));
            }
        }
    }
    match layer.get("barrier") {
        None => errs.push(format!("{} missing", ctx("barrier"))),
        Some(b) => {
            for key in ["fork_joins", "max_skew_us", "mean_skew_us", "total_wait_ms"] {
                if b.get(key).and_then(Json::as_f64).is_none() {
                    errs.push(format!("{}.{key} missing or not a number", ctx("barrier")));
                }
            }
        }
    }
    match layer.get("stages").and_then(Json::as_arr) {
        None => errs.push(format!("{} missing or not an array", ctx("stages"))),
        Some(stages) => {
            let mut with_work = 0usize;
            for (j, s) in stages.iter().enumerate() {
                let sctx = format!("layers[{i}].stages[{j}]");
                match s.get("stage").and_then(Json::as_str) {
                    Some(name) if SpanCategory::from_name(name).is_some() => {}
                    Some(name) => errs.push(format!("{sctx}.stage '{name}' is not a known category")),
                    None => errs.push(format!("{sctx}.stage missing or not a string")),
                }
                for key in ["wall_ms", "cpu_ms", "spans"] {
                    if s.get(key).and_then(Json::as_f64).is_none() {
                        errs.push(format!("{sctx}.{key} missing or not a number"));
                    }
                }
                // Optional work fields must be numeric when present, and
                // gflops/arith_intensity travel together.
                for key in ["gflops", "arith_intensity", "bytes", "roofline_gflops"] {
                    if let Some(v) = s.get(key) {
                        if v.as_f64().is_none() {
                            errs.push(format!("{sctx}.{key} is not a number"));
                        }
                    }
                }
                if s.get("gflops").is_some() && s.get("arith_intensity").is_some() {
                    with_work += 1;
                }
            }
            if stages.is_empty() {
                errs.push(format!("{} is empty (was the probe feature enabled?)", ctx("stages")));
            } else if with_work == 0 {
                errs.push(format!(
                    "{} has no stage with gflops + arith_intensity (work model missing)",
                    ctx("stages")
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn valid_doc() -> String {
        r#"{
          "schema_version": 2,
          "generated_by": "wino-bench perf",
          "date": "2026-08-07",
          "machine": {"peak_gflops": 100.0, "mem_bw_gbps": 20.0, "threads": 4, "simd": "avx2"},
          "layers": [
            {
              "layer": "VGG 3.2", "impl": "winograd F(4x4)",
              "best_ms": 1.5, "mean_ms": 1.6, "effective_gflops": 120.0, "reps": 3,
              "max_rel_error": 1.3e-6, "predicted_bound": 2.9e-2,
              "stages": [
                {"stage": "elementwise-gemm", "wall_ms": 0.7, "cpu_ms": 2.1, "spans": 1,
                 "gflops": 90.0, "arith_intensity": 3.5, "bytes": 1000, "roofline_gflops": 70.0}
              ],
              "barrier": {"fork_joins": 4, "max_skew_us": 11.0, "mean_skew_us": 5.0, "total_wait_ms": 0.02}
            }
          ]
        }"#
        .to_string()
    }

    #[test]
    fn accepts_valid_document() {
        let doc = parse(&valid_doc()).unwrap();
        validate(&doc).unwrap();
    }

    #[test]
    fn rejects_wrong_version() {
        // v1 documents lack the accuracy contract — reject, don't coerce.
        let doc = parse(&valid_doc().replace("\"schema_version\": 2", "\"schema_version\": 1")).unwrap();
        let errs = validate(&doc).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("schema_version")));
    }

    #[test]
    fn counters_optional_but_checked_when_present() {
        // Absent: fine (the minimal document has none).
        let doc = parse(&valid_doc()).unwrap();
        assert!(validate(&doc).is_ok());
        // Present and well-formed: fine.
        let with = valid_doc().replace(
            "\"layers\": [",
            "\"counters\": {\"sentinel-trips\": 0, \"sentinel-tiles-checked\": 12},\n\"layers\": [",
        );
        assert!(validate(&parse(&with).unwrap()).is_ok());
        // Unknown counter name or non-numeric tally: rejected.
        let bad = valid_doc()
            .replace("\"layers\": [", "\"counters\": {\"sentinel-typos\": 1},\n\"layers\": [");
        let errs = validate(&parse(&bad).unwrap()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("sentinel-typos")));
        let bad = valid_doc()
            .replace("\"layers\": [", "\"counters\": {\"sentinel-trips\": \"no\"},\n\"layers\": [");
        let errs = validate(&parse(&bad).unwrap()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("sentinel-trips")));
    }

    #[test]
    fn rejects_non_numeric_accuracy_fields() {
        let doc = parse(&valid_doc().replace("\"max_rel_error\": 1.3e-6", "\"max_rel_error\": \"tiny\""))
            .unwrap();
        let errs = validate(&doc).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("max_rel_error")));
    }

    #[test]
    fn rejects_unknown_stage_and_missing_fields() {
        let doc = parse(&valid_doc().replace("elementwise-gemm", "warp-drive")).unwrap();
        let errs = validate(&doc).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("not a known category")));

        let doc = parse(&valid_doc().replace("\"barrier\"", "\"barrierz\"")).unwrap();
        let errs = validate(&doc).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("barrier missing")));
    }

    #[test]
    fn rejects_empty_layers_and_stages() {
        let doc = parse(r#"{"schema_version": 2, "generated_by": "x", "date": "d",
            "machine": {"peak_gflops": 1, "mem_bw_gbps": 1, "threads": 1, "simd": "scalar"},
            "layers": []}"#)
        .unwrap();
        let errs = validate(&doc).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("'layers' is empty")));
    }

    #[test]
    fn rejects_stage_without_work_fields() {
        let stripped = valid_doc()
            .replace("\"gflops\": 90.0, \"arith_intensity\": 3.5, ", "");
        let doc = parse(&stripped).unwrap();
        let errs = validate(&doc).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("work model missing")));
    }
}
