//! The versioned `BENCH_*.json` schema and its validator.
//!
//! The on-disk perf-report format is documented field-by-field in
//! `docs/bench-schema.md`; this module is the executable half of that
//! document. The versioning rule: **additive changes** (new optional
//! fields) keep [`SCHEMA_VERSION`]; any rename, removal, unit change or
//! semantic change bumps it. Validators accept exactly one version.

use crate::event::SpanCategory;
use crate::json::Json;

/// Current schema version of emitted perf reports.
///
/// v2: layer entries gained accuracy fields — `max_rel_error` (measured
/// vs. the f64 direct oracle) and `predicted_bound` (the a-priori
/// conditioning bound) — and documents may carry a top-level `counters`
/// object (sentinel tallies). The fields are additive, but their
/// *presence contract* (the smoke bench must emit `max_rel_error`)
/// changed what consumers may rely on, hence the bump.
///
/// v3: serve reports and perf reports share one document shape. Layer
/// entries may carry an `execution` object (the serialized
/// `ExecutionReport`: which backend produced the output and why it fell
/// back, names from [`BACKEND_NAMES`] / [`FALLBACK_CODES`]), and a
/// document may instead carry a top-level `serve` object (overload-test
/// results: latency percentiles, goodput, shed and breaker tallies) —
/// the `layers` array, previously mandatory and non-empty, is required
/// exactly when `serve` is absent. That relaxation changes what
/// consumers may assume about `layers`, hence the bump.
///
/// v4: scaling reports. A document may carry a top-level `scaling`
/// object (strong/weak-scaling sweep results: per-point speedup and
/// parallel efficiency, optional barrier-skew columns, the detected
/// topology, and Amdahl-fitted serial fractions) — and `layers` is now
/// required exactly when *neither* `serve` nor `scaling` is present.
/// That relaxation again changes what consumers may assume about
/// `layers`, hence the bump.
///
/// v5: memory accounting. A document may carry a top-level `memory`
/// object (the analytic footprint model's prediction next to observed
/// allocator tallies, plus degradation-ladder counts), the `serve`
/// section gains an optional `shed_memory` column (requests refused by
/// the byte-budget admission gate), and [`FALLBACK_CODES`] gains
/// `memory` (a layer degraded because an allocation was refused). The
/// new fallback code widens an enumerated set consumers may have
/// treated as closed, hence the bump.
pub const SCHEMA_VERSION: u64 = 5;

/// Barrier-skew budget (µs) the `--scaling-smoke` gate holds smoke-layer
/// sweeps to: the worst single fork–join skew a smoke-sized layer may
/// exhibit before the run fails. Sized from the probe layer's own
/// measurements — smoke layers complete a fork–join in hundreds of µs,
/// so 25 ms of skew means a participant was descheduled for an entire
/// timeslice (oversubscription), not load imbalance; CI hosts routinely
/// show a handful of ms. Scaling reports echo the budget they were
/// gated against in `scaling.skew_budget_us`.
pub const SMOKE_SKEW_BUDGET_US: f64 = 25_000.0;

/// The stable mode names of scaling sweep points
/// (`scaling.points[i].mode`): `strong` = fixed problem, growing thread
/// count; `weak` = problem grows proportionally with threads.
pub const SCALING_MODES: [&str; 2] = ["strong", "weak"];

/// The stable names of `wino_conv::LayerBackend` variants as serialized
/// into `layers[i].execution.backend` and serve `backends` tallies. The
/// producer crates assert their `name()` methods stay inside this set.
pub const BACKEND_NAMES: [&str; 6] = [
    "winograd-jit",
    "winograd-mono",
    "winograd-demoted",
    "winograd-poly",
    "winograd-grouped",
    "im2col",
];

/// The stable reason codes of `wino_conv::FallbackReason` as serialized
/// into `layers[i].execution.fallback` and serve `fallbacks` tallies.
pub const FALLBACK_CODES: [&str; 7] = [
    "jit-unavailable",
    "plan-failed",
    "numeric-guard",
    "sentinel-trip",
    "dilated",
    "group-narrow",
    "memory",
];

/// Validate a parsed `BENCH_*.json` document. Returns every problem
/// found (empty = valid).
pub fn validate(doc: &Json) -> Result<(), Vec<String>> {
    let mut errs = Vec::new();
    let mut err = |m: String| errs.push(m);

    match doc.get("schema_version").and_then(Json::as_f64) {
        Some(v) if v == SCHEMA_VERSION as f64 => {}
        Some(v) => err(format!("schema_version {v} != supported {SCHEMA_VERSION}")),
        None => err("missing numeric schema_version".into()),
    }
    for key in ["generated_by", "date"] {
        if doc.get(key).and_then(Json::as_str).is_none() {
            err(format!("missing string field '{key}'"));
        }
    }
    match doc.get("machine") {
        Some(m) => {
            for key in ["peak_gflops", "mem_bw_gbps", "threads"] {
                if m.get(key).and_then(Json::as_f64).is_none() {
                    err(format!("machine.{key} missing or not a number"));
                }
            }
            if m.get("simd").and_then(Json::as_str).is_none() {
                err("machine.simd missing or not a string".into());
            }
        }
        None => err("missing 'machine' object".into()),
    }

    // v4: `layers` is mandatory (and non-empty) exactly when the document
    // has neither a `serve` nor a `scaling` section; those reports have no
    // per-layer stage breakdowns but may still include layer rows.
    let has_alternate = doc.get("serve").is_some() || doc.get("scaling").is_some();
    match doc.get("layers").and_then(Json::as_arr) {
        None if !has_alternate => err("missing 'layers' array".into()),
        Some([]) if !has_alternate => err("'layers' is empty".into()),
        Some(layers) => {
            for (i, layer) in layers.iter().enumerate() {
                validate_layer(i, layer, &mut errs);
            }
        }
        _ => {}
    }

    if let Some(serve) = doc.get("serve") {
        validate_serve(serve, &mut errs);
    }

    if let Some(scaling) = doc.get("scaling") {
        validate_scaling(scaling, &mut errs);
    }

    // v5: an optional top-level `memory` object (analytic footprint
    // prediction next to observed allocator tallies).
    if let Some(memory) = doc.get("memory") {
        validate_memory(memory, &mut errs);
    }

    // v2: an optional top-level `counters` object (sentinel tallies).
    // When present, every counter name must be known and numeric.
    if let Some(counters) = doc.get("counters") {
        match counters {
            Json::Obj(fields) => {
                for (name, v) in fields {
                    if !crate::Counter::ALL.iter().any(|c| c.name() == name) {
                        errs.push(format!("counters.{name} is not a known counter"));
                    } else if v.as_f64().is_none() {
                        errs.push(format!("counters.{name} is not a number"));
                    }
                }
            }
            _ => errs.push("'counters' is not an object".into()),
        }
    }

    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

fn validate_layer(i: usize, layer: &Json, errs: &mut Vec<String>) {
    let ctx = |f: &str| format!("layers[{i}].{f}");
    for key in ["layer", "impl"] {
        if layer.get(key).and_then(Json::as_str).is_none() {
            errs.push(format!("{} missing or not a string", ctx(key)));
        }
    }
    for key in ["best_ms", "mean_ms", "effective_gflops", "reps"] {
        if layer.get(key).and_then(Json::as_f64).is_none() {
            errs.push(format!("{} missing or not a number", ctx(key)));
        }
    }
    // v2 accuracy fields: optional, but must be numeric when present.
    for key in ["max_rel_error", "predicted_bound"] {
        if let Some(v) = layer.get(key) {
            if v.as_f64().is_none() {
                errs.push(format!("{} is not a number", ctx(key)));
            }
        }
    }
    // v3: optional serialized ExecutionReport.
    if let Some(exec) = layer.get("execution") {
        validate_execution(&ctx("execution"), exec, errs);
    }
    match layer.get("barrier") {
        None => errs.push(format!("{} missing", ctx("barrier"))),
        Some(b) => {
            for key in ["fork_joins", "max_skew_us", "mean_skew_us", "total_wait_ms"] {
                if b.get(key).and_then(Json::as_f64).is_none() {
                    errs.push(format!("{}.{key} missing or not a number", ctx("barrier")));
                }
            }
        }
    }
    match layer.get("stages").and_then(Json::as_arr) {
        None => errs.push(format!("{} missing or not an array", ctx("stages"))),
        Some(stages) => {
            let mut with_work = 0usize;
            for (j, s) in stages.iter().enumerate() {
                let sctx = format!("layers[{i}].stages[{j}]");
                match s.get("stage").and_then(Json::as_str) {
                    Some(name) if SpanCategory::from_name(name).is_some() => {}
                    Some(name) => errs.push(format!("{sctx}.stage '{name}' is not a known category")),
                    None => errs.push(format!("{sctx}.stage missing or not a string")),
                }
                for key in ["wall_ms", "cpu_ms", "spans"] {
                    if s.get(key).and_then(Json::as_f64).is_none() {
                        errs.push(format!("{sctx}.{key} missing or not a number"));
                    }
                }
                // Optional work fields must be numeric when present, and
                // gflops/arith_intensity travel together.
                for key in ["gflops", "arith_intensity", "bytes", "roofline_gflops"] {
                    if let Some(v) = s.get(key) {
                        if v.as_f64().is_none() {
                            errs.push(format!("{sctx}.{key} is not a number"));
                        }
                    }
                }
                if s.get("gflops").is_some() && s.get("arith_intensity").is_some() {
                    with_work += 1;
                }
            }
            if stages.is_empty() {
                errs.push(format!("{} is empty (was the probe feature enabled?)", ctx("stages")));
            } else if with_work == 0 {
                errs.push(format!(
                    "{} has no stage with gflops + arith_intensity (work model missing)",
                    ctx("stages")
                ));
            }
        }
    }
}

/// A serialized `ExecutionReport`: `{backend, fallback?}` with names
/// pinned to [`BACKEND_NAMES`] / [`FALLBACK_CODES`].
fn validate_execution(ctx: &str, exec: &Json, errs: &mut Vec<String>) {
    match exec.get("backend").and_then(Json::as_str) {
        Some(name) if BACKEND_NAMES.contains(&name) => {}
        Some(name) => errs.push(format!("{ctx}.backend '{name}' is not a known backend")),
        None => errs.push(format!("{ctx}.backend missing or not a string")),
    }
    if let Some(fb) = exec.get("fallback") {
        match fb.as_str() {
            Some(code) if FALLBACK_CODES.contains(&code) => {}
            Some(code) => {
                errs.push(format!("{ctx}.fallback '{code}' is not a known fallback code"));
            }
            None => errs.push(format!("{ctx}.fallback is not a string")),
        }
    }
}

/// The v3 `serve` section: whole-run overload-test results from the
/// open-loop load generator.
fn validate_serve(serve: &Json, errs: &mut Vec<String>) {
    for key in [
        "requests",
        "admitted",
        "completed",
        "failed",
        "shed_overload",
        "shed_deadline",
        "shed_predicted",
        "p50_ms",
        "p99_ms",
        "goodput_rps",
        "shed_rate",
        "breaker_trips",
    ] {
        if serve.get(key).and_then(Json::as_f64).is_none() {
            errs.push(format!("serve.{key} missing or not a number"));
        }
    }
    // Optional numeric columns (run parameters and extra percentiles).
    // v5: `shed_memory` — requests refused by the byte-budget admission
    // gate; optional so pre-memory-ceiling runs stay valid.
    for key in [
        "pool_rebuilds",
        "offered_rps",
        "sustainable_rps",
        "duration_s",
        "deadline_ms",
        "max_batch",
        "mean_ms",
        "p95_ms",
        "shed_memory",
        "memory_ceiling_bytes",
    ] {
        if let Some(v) = serve.get(key) {
            if v.as_f64().is_none() {
                errs.push(format!("serve.{key} is not a number"));
            }
        }
    }
    // Optional per-backend / per-fallback tallies over completed
    // requests' execution reports.
    for (key, known) in
        [("backends", &BACKEND_NAMES as &[&str]), ("fallbacks", &FALLBACK_CODES as &[&str])]
    {
        if let Some(tally) = serve.get(key) {
            match tally {
                Json::Obj(fields) => {
                    for (name, v) in fields {
                        if !known.contains(&name.as_str()) {
                            errs.push(format!("serve.{key}.{name} is not a known name"));
                        } else if v.as_f64().is_none() {
                            errs.push(format!("serve.{key}.{name} is not a number"));
                        }
                    }
                }
                _ => errs.push(format!("serve.{key} is not an object")),
            }
        }
    }
}

/// The v5 `memory` section: the analytic footprint model's prediction
/// for the run next to what the allocator actually tallied, plus the
/// memory-degradation-ladder counts. Modeled vs. observed side by side
/// is the point — the footprint unit gate holds them within 10%.
fn validate_memory(memory: &Json, errs: &mut Vec<String>) {
    for key in ["modeled_bytes", "alloc_bytes_peak", "alloc_calls"] {
        if memory.get(key).and_then(Json::as_f64).is_none() {
            errs.push(format!("memory.{key} missing or not a number"));
        }
    }
    // Optional columns: the configured budget (absent = unbudgeted run)
    // and ladder tallies.
    for key in ["budget_bytes", "demotions", "rescues", "injected_failures"] {
        if let Some(v) = memory.get(key) {
            if v.as_f64().is_none() {
                errs.push(format!("memory.{key} is not a number"));
            }
        }
    }
}

/// The v4 `scaling` section: strong/weak-scaling sweep results from the
/// `wino-bench` scaling binary.
fn validate_scaling(scaling: &Json, errs: &mut Vec<String>) {
    for key in ["host_threads", "efficiency_floor"] {
        if scaling.get(key).and_then(Json::as_f64).is_none() {
            errs.push(format!("scaling.{key} missing or not a number"));
        }
    }
    if let Some(v) = scaling.get("skew_budget_us") {
        if v.as_f64().is_none() {
            errs.push("scaling.skew_budget_us is not a number".into());
        }
    }
    // Optional topology provenance: how the sweep saw the machine.
    if let Some(topo) = scaling.get("topology") {
        for key in ["domains", "cpus", "smt"] {
            if topo.get(key).and_then(Json::as_f64).is_none() {
                errs.push(format!("scaling.topology.{key} missing or not a number"));
            }
        }
        for key in ["source", "spec"] {
            if topo.get(key).and_then(Json::as_str).is_none() {
                errs.push(format!("scaling.topology.{key} missing or not a string"));
            }
        }
    }
    match scaling.get("points").and_then(Json::as_arr) {
        None => errs.push("scaling.points missing or not an array".into()),
        Some([]) => errs.push("scaling.points is empty".into()),
        Some(points) => {
            for (i, p) in points.iter().enumerate() {
                let ctx = |f: &str| format!("scaling.points[{i}].{f}");
                if p.get("layer").and_then(Json::as_str).is_none() {
                    errs.push(format!("{} missing or not a string", ctx("layer")));
                }
                match p.get("mode").and_then(Json::as_str) {
                    Some(m) if SCALING_MODES.contains(&m) => {}
                    Some(m) => errs.push(format!("{} '{m}' is not a known mode", ctx("mode"))),
                    None => errs.push(format!("{} missing or not a string", ctx("mode"))),
                }
                for key in ["threads", "best_ms", "speedup", "efficiency"] {
                    if p.get(key).and_then(Json::as_f64).is_none() {
                        errs.push(format!("{} missing or not a number", ctx(key)));
                    }
                }
                for key in ["batch", "mean_ms", "max_skew_us", "mean_skew_us"] {
                    if let Some(v) = p.get(key) {
                        if v.as_f64().is_none() {
                            errs.push(format!("{} is not a number", ctx(key)));
                        }
                    }
                }
                if let Some(v) = p.get("executor") {
                    if v.as_str().is_none() {
                        errs.push(format!("{} is not a string", ctx("executor")));
                    }
                }
            }
        }
    }
    // Optional Amdahl fits, one per strong-scaled layer.
    if let Some(fits) = scaling.get("fits") {
        match fits.as_arr() {
            Some(fits) => {
                for (i, fit) in fits.iter().enumerate() {
                    if fit.get("layer").and_then(Json::as_str).is_none() {
                        errs.push(format!("scaling.fits[{i}].layer missing or not a string"));
                    }
                    match fit.get("serial_fraction").and_then(Json::as_f64) {
                        Some(s) if (0.0..=1.0).contains(&s) => {}
                        Some(s) => errs.push(format!(
                            "scaling.fits[{i}].serial_fraction {s} outside [0, 1]"
                        )),
                        None => errs.push(format!(
                            "scaling.fits[{i}].serial_fraction missing or not a number"
                        )),
                    }
                }
            }
            None => errs.push("scaling.fits is not an array".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn valid_doc() -> String {
        r#"{
          "schema_version": 5,
          "generated_by": "wino-bench perf",
          "date": "2026-08-07",
          "machine": {"peak_gflops": 100.0, "mem_bw_gbps": 20.0, "threads": 4, "simd": "avx2"},
          "layers": [
            {
              "layer": "VGG 3.2", "impl": "winograd F(4x4)",
              "best_ms": 1.5, "mean_ms": 1.6, "effective_gflops": 120.0, "reps": 3,
              "max_rel_error": 1.3e-6, "predicted_bound": 2.9e-2,
              "execution": {"backend": "winograd-mono", "fallback": "jit-unavailable"},
              "stages": [
                {"stage": "elementwise-gemm", "wall_ms": 0.7, "cpu_ms": 2.1, "spans": 1,
                 "gflops": 90.0, "arith_intensity": 3.5, "bytes": 1000, "roofline_gflops": 70.0}
              ],
              "barrier": {"fork_joins": 4, "max_skew_us": 11.0, "mean_skew_us": 5.0, "total_wait_ms": 0.02}
            }
          ]
        }"#
        .to_string()
    }

    fn valid_serve_doc() -> String {
        r#"{
          "schema_version": 5,
          "generated_by": "wino-bench serve_load",
          "date": "2026-08-07",
          "machine": {"peak_gflops": 100.0, "mem_bw_gbps": 20.0, "threads": 4, "simd": "avx2"},
          "serve": {
            "requests": 10000, "admitted": 9100, "completed": 9050, "failed": 50,
            "shed_overload": 500, "shed_deadline": 100, "shed_predicted": 300,
            "p50_ms": 4.2, "p99_ms": 18.9, "goodput_rps": 830.0, "shed_rate": 0.09,
            "breaker_trips": 3, "pool_rebuilds": 1, "offered_rps": 2000.0,
            "duration_s": 5.0, "deadline_ms": 25.0, "max_batch": 8,
            "backends": {"winograd-mono": 9000, "im2col": 50},
            "fallbacks": {"numeric-guard": 2}
          },
          "counters": {"serve-admitted": 9100, "serve-breaker-trips": 3}
        }"#
        .to_string()
    }

    fn valid_scaling_doc() -> String {
        r#"{
          "schema_version": 5,
          "generated_by": "wino-bench scaling",
          "date": "2026-08-09",
          "machine": {"peak_gflops": 100.0, "mem_bw_gbps": 20.0, "threads": 4, "simd": "avx2"},
          "scaling": {
            "host_threads": 4, "efficiency_floor": 0.6, "skew_budget_us": 25000,
            "topology": {"domains": 2, "cpus": 4, "smt": 1, "source": "env", "spec": "0-1;2-3"},
            "points": [
              {"layer": "VGG 3.2", "mode": "strong", "threads": 1, "executor": "sharded",
               "best_ms": 4.0, "mean_ms": 4.2, "speedup": 1.0, "efficiency": 1.0,
               "max_skew_us": 0.0, "mean_skew_us": 0.0},
              {"layer": "VGG 3.2", "mode": "strong", "threads": 4,
               "best_ms": 1.25, "speedup": 3.2, "efficiency": 0.8,
               "max_skew_us": 40.0, "mean_skew_us": 11.0},
              {"layer": "VGG 3.2", "mode": "weak", "threads": 4, "batch": 8,
               "best_ms": 4.4, "speedup": 3.6, "efficiency": 0.91}
            ],
            "fits": [{"layer": "VGG 3.2", "serial_fraction": 0.083}]
          }
        }"#
        .to_string()
    }

    #[test]
    fn accepts_valid_document() {
        let doc = parse(&valid_doc()).unwrap();
        validate(&doc).unwrap();
    }

    #[test]
    fn scaling_document_validates_without_layers() {
        let doc = parse(&valid_scaling_doc()).unwrap();
        validate(&doc).unwrap();
    }

    #[test]
    fn scaling_section_is_field_checked() {
        // Required top-level number missing.
        let bad = valid_scaling_doc().replace("\"efficiency_floor\": 0.6, ", "");
        let errs = validate(&parse(&bad).unwrap()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("scaling.efficiency_floor")), "{errs:?}");
        // Unknown sweep mode.
        let bad = valid_scaling_doc().replace("\"mode\": \"weak\"", "\"mode\": \"diagonal\"");
        let errs = validate(&parse(&bad).unwrap()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("not a known mode")), "{errs:?}");
        // Point missing a required numeric column.
        let bad = valid_scaling_doc().replace("\"speedup\": 3.6, ", "");
        let errs = validate(&parse(&bad).unwrap()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("speedup")), "{errs:?}");
        // Serial fraction outside [0, 1].
        let bad = valid_scaling_doc().replace("\"serial_fraction\": 0.083", "\"serial_fraction\": 1.5");
        let errs = validate(&parse(&bad).unwrap()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("outside [0, 1]")), "{errs:?}");
        // Empty points array.
        let bad = valid_scaling_doc().replace("\"points\": [", "\"pointz\": [");
        let errs = validate(&parse(&bad).unwrap()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("scaling.points missing")), "{errs:?}");
        // Topology provenance is type-checked when present.
        let bad = valid_scaling_doc().replace("\"source\": \"env\"", "\"source\": 3");
        let errs = validate(&parse(&bad).unwrap()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("scaling.topology.source")), "{errs:?}");
    }

    #[test]
    fn rejects_wrong_version() {
        // v4 documents lack the memory fallback code — reject, don't coerce.
        let doc = parse(&valid_doc().replace("\"schema_version\": 5", "\"schema_version\": 4")).unwrap();
        let errs = validate(&doc).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("schema_version")));
    }

    #[test]
    fn memory_section_optional_but_checked_when_present() {
        // Well-formed: modeled vs observed plus ladder tallies.
        let with = valid_doc().replace(
            "\"layers\": [",
            "\"memory\": {\"modeled_bytes\": 524288, \"alloc_bytes_peak\": 530000,
              \"alloc_calls\": 12, \"budget_bytes\": 1048576, \"demotions\": 1,
              \"rescues\": 0, \"injected_failures\": 0},\n\"layers\": [",
        );
        validate(&parse(&with).unwrap()).unwrap();
        // Required column missing.
        let bad = with.replace("\"alloc_calls\": 12, ", "");
        let errs = validate(&parse(&bad).unwrap()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("memory.alloc_calls")), "{errs:?}");
        // Non-numeric optional column.
        let bad = with.replace("\"demotions\": 1", "\"demotions\": \"one\"");
        let errs = validate(&parse(&bad).unwrap()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("memory.demotions")), "{errs:?}");
        // The memory fallback code is a known name (v5).
        let ok = valid_doc().replace("\"fallback\": \"jit-unavailable\"", "\"fallback\": \"memory\"");
        validate(&parse(&ok).unwrap()).unwrap();
        // And serve's shed_memory column is numeric when present.
        let serve = valid_serve_doc()
            .replace("\"breaker_trips\": 3,", "\"breaker_trips\": 3, \"shed_memory\": 41,");
        validate(&parse(&serve).unwrap()).unwrap();
        let bad = valid_serve_doc()
            .replace("\"breaker_trips\": 3,", "\"breaker_trips\": 3, \"shed_memory\": \"some\",");
        let errs = validate(&parse(&bad).unwrap()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("serve.shed_memory")), "{errs:?}");
    }

    #[test]
    fn serve_document_validates_without_layers() {
        let doc = parse(&valid_serve_doc()).unwrap();
        validate(&doc).unwrap();
    }

    #[test]
    fn serve_section_is_field_checked() {
        // A required serve column missing.
        let bad = valid_serve_doc().replace("\"p99_ms\": 18.9, ", "");
        let errs = validate(&parse(&bad).unwrap()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("serve.p99_ms")), "{errs:?}");
        // Non-numeric required column.
        let bad = valid_serve_doc().replace("\"shed_rate\": 0.09", "\"shed_rate\": \"low\"");
        let errs = validate(&parse(&bad).unwrap()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("serve.shed_rate")));
        // Unknown backend tally name.
        let bad = valid_serve_doc().replace("\"im2col\": 50", "\"abacus\": 50");
        let errs = validate(&parse(&bad).unwrap()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("serve.backends.abacus")));
        // Unknown fallback tally name.
        let bad = valid_serve_doc().replace("\"numeric-guard\": 2", "\"cosmic-rays\": 2");
        let errs = validate(&parse(&bad).unwrap()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("serve.fallbacks.cosmic-rays")));
    }

    #[test]
    fn execution_object_is_name_checked() {
        let bad = valid_doc().replace("winograd-mono", "winograd-warp");
        let errs = validate(&parse(&bad).unwrap()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("not a known backend")), "{errs:?}");
        let bad = valid_doc().replace("jit-unavailable", "jit-on-vacation");
        let errs = validate(&parse(&bad).unwrap()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("not a known fallback code")));
        // `fallback` is optional: an execution object without one is fine.
        let ok = valid_doc().replace(", \"fallback\": \"jit-unavailable\"", "");
        validate(&parse(&ok).unwrap()).unwrap();
    }

    #[test]
    fn counters_optional_but_checked_when_present() {
        // Absent: fine (the minimal document has none).
        let doc = parse(&valid_doc()).unwrap();
        assert!(validate(&doc).is_ok());
        // Present and well-formed: fine.
        let with = valid_doc().replace(
            "\"layers\": [",
            "\"counters\": {\"sentinel-trips\": 0, \"sentinel-tiles-checked\": 12},\n\"layers\": [",
        );
        assert!(validate(&parse(&with).unwrap()).is_ok());
        // Unknown counter name or non-numeric tally: rejected.
        let bad = valid_doc()
            .replace("\"layers\": [", "\"counters\": {\"sentinel-typos\": 1},\n\"layers\": [");
        let errs = validate(&parse(&bad).unwrap()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("sentinel-typos")));
        let bad = valid_doc()
            .replace("\"layers\": [", "\"counters\": {\"sentinel-trips\": \"no\"},\n\"layers\": [");
        let errs = validate(&parse(&bad).unwrap()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("sentinel-trips")));
    }

    #[test]
    fn rejects_non_numeric_accuracy_fields() {
        let doc = parse(&valid_doc().replace("\"max_rel_error\": 1.3e-6", "\"max_rel_error\": \"tiny\""))
            .unwrap();
        let errs = validate(&doc).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("max_rel_error")));
    }

    #[test]
    fn rejects_unknown_stage_and_missing_fields() {
        let doc = parse(&valid_doc().replace("elementwise-gemm", "warp-drive")).unwrap();
        let errs = validate(&doc).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("not a known category")));

        let doc = parse(&valid_doc().replace("\"barrier\"", "\"barrierz\"")).unwrap();
        let errs = validate(&doc).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("barrier missing")));
    }

    #[test]
    fn rejects_empty_layers_and_stages() {
        let doc = parse(r#"{"schema_version": 5, "generated_by": "x", "date": "d",
            "machine": {"peak_gflops": 1, "mem_bw_gbps": 1, "threads": 1, "simd": "scalar"},
            "layers": []}"#)
        .unwrap();
        let errs = validate(&doc).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("'layers' is empty")));
        // And a document with neither layers nor serve is rejected.
        let doc = parse(r#"{"schema_version": 5, "generated_by": "x", "date": "d",
            "machine": {"peak_gflops": 1, "mem_bw_gbps": 1, "threads": 1, "simd": "scalar"}}"#)
        .unwrap();
        let errs = validate(&doc).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("missing 'layers'")));
    }

    #[test]
    fn rejects_stage_without_work_fields() {
        let stripped = valid_doc()
            .replace("\"gflops\": 90.0, \"arith_intensity\": 3.5, ", "");
        let doc = parse(&stripped).unwrap();
        let errs = validate(&doc).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("work model missing")));
    }
}
