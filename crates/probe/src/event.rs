//! Span events and the category taxonomy of the paper's pipeline.

/// Thread id used for spans recorded by the coordinating (fork-issuing)
/// thread rather than a worker slot.
pub const COORDINATOR: u32 = u32::MAX;

/// What a span measures. The first four are the paper's pipeline stages
/// (Fig. 1 / Fig. 6 stage breakdown); the rest are finer-grained or
/// infrastructural.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanCategory {
    /// Stage 1a: input tiles gathered, `Bᵀ`-transformed, scattered into U.
    InputTransform,
    /// Stage 1b: kernels `G`-transformed, scattered into V.
    KernelTransform,
    /// Stage 2: the `T` batched tall-skinny matrix products (also the one
    /// big GEMM of the im2col baseline).
    ElementwiseGemm,
    /// Stage 3: `Aᵀ` inverse transform into the output image (also the
    /// im2col baseline's scatter back to the blocked layout).
    OutputTransform,
    /// The pipelined schedule's fused stage chain: stages 1→2→3 executed
    /// per L2-resident superblock inside a single fork–join (coordinator
    /// wall time of that fork–join).
    SuperblockPipeline,
    /// Per-task gather of one input tile (a sub-span of InputTransform —
    /// worker-thread CPU time, not wall time).
    TileExtract,
    /// Time a worker spent waiting at the end barrier after finishing its
    /// share of a fork–join (arrival → join).
    BarrierWait,
    /// One whole fork–join on an executor (fork → join, coordinator wall
    /// time). Barrier-imbalance statistics pair these with the
    /// `BarrierWait` spans inside them.
    ForkJoin,
    /// A degradation-chain rescue re-executing a layer (e.g. numeric
    /// guard → im2col; see `wino-conv`'s failure model).
    FallbackRescue,
    /// Accuracy-sentinel re-verification: sampled output tiles recomputed
    /// through the f64 direct oracle and compared against the layer's
    /// a-priori error bound.
    SentinelVerify,
    /// The im2col baseline's input/kernel lowering pass.
    Im2colLower,
    /// The vectorised direct-convolution baseline's whole kernel.
    DirectKernel,
    /// Anything else.
    Other,
}

/// All categories, in the order stage reports list them.
pub const ALL_CATEGORIES: [SpanCategory; 13] = [
    SpanCategory::InputTransform,
    SpanCategory::KernelTransform,
    SpanCategory::ElementwiseGemm,
    SpanCategory::OutputTransform,
    SpanCategory::SuperblockPipeline,
    SpanCategory::TileExtract,
    SpanCategory::BarrierWait,
    SpanCategory::ForkJoin,
    SpanCategory::FallbackRescue,
    SpanCategory::SentinelVerify,
    SpanCategory::Im2colLower,
    SpanCategory::DirectKernel,
    SpanCategory::Other,
];

impl SpanCategory {
    /// Stable kebab-case name used in JSON reports (see
    /// `docs/bench-schema.md`).
    pub fn name(self) -> &'static str {
        match self {
            SpanCategory::InputTransform => "input-transform",
            SpanCategory::KernelTransform => "kernel-transform",
            SpanCategory::ElementwiseGemm => "elementwise-gemm",
            SpanCategory::OutputTransform => "output-transform",
            SpanCategory::SuperblockPipeline => "superblock-pipeline",
            SpanCategory::TileExtract => "tile-extract",
            SpanCategory::BarrierWait => "barrier-wait",
            SpanCategory::ForkJoin => "fork-join",
            SpanCategory::FallbackRescue => "fallback-rescue",
            SpanCategory::SentinelVerify => "sentinel-verify",
            SpanCategory::Im2colLower => "im2col-lower",
            SpanCategory::DirectKernel => "direct-kernel",
            SpanCategory::Other => "other",
        }
    }

    /// Inverse of [`SpanCategory::name`].
    pub fn from_name(s: &str) -> Option<SpanCategory> {
        ALL_CATEGORIES.iter().copied().find(|c| c.name() == s)
    }

    /// Whether this category is a pipeline *stage* (reported with work
    /// accounting) as opposed to infrastructure (`ForkJoin`,
    /// `BarrierWait`) or a sub-span (`TileExtract`).
    pub fn is_stage(self) -> bool {
        !matches!(
            self,
            SpanCategory::ForkJoin | SpanCategory::BarrierWait | SpanCategory::TileExtract
        )
    }
}

/// One recorded span: `[start_ns, end_ns]` on `thread` (a worker slot, or
/// [`COORDINATOR`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    pub category: SpanCategory,
    pub thread: u32,
    pub start_ns: u64,
    pub end_ns: u64,
}

impl SpanEvent {
    /// Span duration in nanoseconds (0 for inverted spans, which only a
    /// broken clock could produce).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for c in ALL_CATEGORIES {
            assert_eq!(SpanCategory::from_name(c.name()), Some(c));
        }
        assert_eq!(SpanCategory::from_name("nope"), None);
    }

    #[test]
    fn stage_classification() {
        assert!(SpanCategory::InputTransform.is_stage());
        assert!(SpanCategory::SuperblockPipeline.is_stage());
        assert!(SpanCategory::DirectKernel.is_stage());
        assert!(!SpanCategory::ForkJoin.is_stage());
        assert!(!SpanCategory::BarrierWait.is_stage());
        assert!(!SpanCategory::TileExtract.is_stage());
    }

    #[test]
    fn duration_saturates() {
        let e = SpanEvent { category: SpanCategory::Other, thread: 0, start_ns: 10, end_ns: 4 };
        assert_eq!(e.duration_ns(), 0);
    }
}
